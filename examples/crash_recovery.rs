//! Crash-consistency demo: what survives a power failure under each policy?
//!
//! The simulated NVRAM backend can track, per 8-byte word, both the volatile image
//! (what the caches + DRAM held) and the persisted image (what was explicitly written
//! back and fenced). Taking an adversarial "crash image" shows the difference between
//! writing through FliT p-stores, v-stores, and not using the library at all.
//!
//! Run with: `cargo run --example crash_recovery`

use flit::{FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_pmem::SimNvram;

type Word = <FlitPolicy<HashedScheme, SimNvram> as Policy>::Word<u64>;

fn main() {
    // A tracking backend with zero simulated latency: we only care about the
    // bookkeeping here.
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();

    // Three "database fields".
    let balance = Word::new(0);
    let sequence = Word::new(0);
    let scratch = Word::new(0);

    // A committed update: both stores are p-stores, so by the time the operation
    // completes they are durable (P-V Interface condition 4).
    balance.store(&h, 1_000, PFlag::Persisted);
    sequence.store(&h, 1, PFlag::Persisted);
    h.operation_completion();

    // An uncommitted update: a v-store is visible to other threads but nothing forces
    // it to persistent memory.
    scratch.store(&h, 42, PFlag::Volatile);

    // ---- power failure ----
    let crash = nvram.tracker().unwrap().crash_image();
    let volatile = nvram.tracker().unwrap().volatile_image();

    println!("state at the moment of the crash (volatile memory):");
    println!("  balance  = {:?}", volatile.read(balance.addr()));
    println!("  sequence = {:?}", volatile.read(sequence.addr()));
    println!("  scratch  = {:?}", volatile.read(scratch.addr()));

    println!("\nstate recovered from NVRAM after the crash:");
    println!("  balance  = {:?}", crash.read(balance.addr()));
    println!("  sequence = {:?}", crash.read(sequence.addr()));
    println!(
        "  scratch  = {:?}  (v-store: correctly lost)",
        crash.read(scratch.addr())
    );

    assert_eq!(crash.read(balance.addr()), Some(1_000));
    assert_eq!(crash.read(sequence.addr()), Some(1));
    assert_eq!(crash.read(scratch.addr()), None);

    println!(
        "\npersistence instructions issued: {} pwbs, {} pfences",
        nvram.stats().pwbs(),
        nvram.stats().pfences()
    );
    println!("every p-store was durable before its operation completed; the v-store cost nothing.");
}
