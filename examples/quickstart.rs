//! Quickstart: make a lock-free map durable with FliT's default (automatic) mode.
//!
//! This mirrors the paper's headline usage story: take a linearizable data structure,
//! declare its words persisted (here: choose a policy and instantiate the structure
//! with it), call `operation_completion` at the end of each operation (the structures
//! do this internally), and you have a durably linearizable structure.
//!
//! Run with: `cargo run --example quickstart`

use flit::FlitDb;
use flit_datastructs::{Automatic, ConcurrentMap, NatarajanTree};
use flit_pmem::SimNvram;

fn main() {
    // The persistent-memory backend. On a machine with real NVRAM you would use
    // `HardwarePmem`; here we use the simulated backend with Optane-like latencies.
    let nvram = SimNvram::default();

    // Open a database: flit-HT (the FliT algorithm with a 1MB hashed flit-counter
    // table) over the backend. The db owns the policy, the reclamation collector
    // and the arenas the structures allocate from.
    let db = FlitDb::flit_ht(nvram.clone());

    // Register a session (handle) for this thread: every operation takes it.
    let h = db.handle();

    // Any of the four data structures works; the BST is the paper's main example.
    // `Automatic` = every load/store is a p-instruction = durably linearizable with
    // zero algorithm-specific reasoning (Theorem 3.1).
    let map: NatarajanTree<_, Automatic> = NatarajanTree::with_capacity(&db, 1024);

    for key in 0..1000u64 {
        map.insert(&h, key, key * 10);
    }
    for key in (0..1000u64).step_by(3) {
        map.remove(&h, key);
    }

    let mut present = 0;
    for key in 0..1000u64 {
        if let Some(value) = map.get(&h, key) {
            assert_eq!(value, key * 10);
            present += 1;
        }
    }

    println!("keys present: {present} (expected {})", 1000 - 334);
    println!("map size:     {}", map.len());

    // The backend counted every persistence instruction the structure executed.
    let stats = nvram.stats().snapshot();
    println!(
        "persistence instructions: {} pwbs, {} pfences ({:.2} pwbs per update)",
        stats.pwbs,
        stats.pfences,
        stats.pwbs as f64 / (1000.0 + 334.0),
    );
    println!(
        "read-side pwbs (flushes a p-load had to perform because a store was in flight): {}",
        stats.read_side_pwbs
    );
}
