//! A small durable key-value store built on the FliT hash table, comparing the cost
//! of the persistence variants on the same workload — the scenario the paper's
//! introduction motivates (persistent indexes that survive power failure without a
//! recovery log).
//!
//! Run with: `cargo run --release --example durable_kv`

use std::time::Instant;

use flit::FlitDb;
use flit_datastructs::{Automatic, ConcurrentMap, HashTable, NvTraverse};
use flit_pmem::{LatencyModel, SimNvram};

const KEYS: u64 = 8_192;
const OPS: u64 = 200_000;

fn backend() -> SimNvram {
    SimNvram::builder().latency(LatencyModel::optane()).build()
}

/// Run a simple 90% read / 10% update KV workload and report throughput and flushes.
fn run<M: ConcurrentMap<P>, P: flit::Policy>(label: &str, map: M) {
    let h = map.db().handle();
    // Warm the store with half the key space.
    for k in (0..KEYS).step_by(2) {
        map.insert(&h, k, k);
    }
    let before = map.policy().stats_snapshot().unwrap_or_default();
    let start = Instant::now();
    let mut x = 0x12345678u64;
    for i in 0..OPS {
        // xorshift key selection
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % KEYS;
        if i % 10 == 0 {
            if key % 2 == 0 {
                map.remove(&h, key);
            } else {
                map.insert(&h, key, key);
            }
        } else {
            std::hint::black_box(map.get(&h, key));
        }
    }
    let elapsed = start.elapsed();
    let after = map.policy().stats_snapshot().unwrap_or_default();
    let delta = after.delta_since(&before);
    println!(
        "{label:<18} {:>8.3} Mops/s   {:>6.3} pwbs/op   {:>6.3} pfences/op",
        OPS as f64 / elapsed.as_secs_f64() / 1e6,
        delta.pwbs as f64 / OPS as f64,
        delta.pfences as f64 / OPS as f64,
    );
}

fn main() {
    println!("durable KV store: {KEYS} keys, {OPS} operations, 10% updates\n");
    run(
        "non-persistent",
        HashTable::<_, Automatic>::with_capacity(&FlitDb::no_persist(), KEYS as usize),
    );
    run(
        "plain",
        HashTable::<_, Automatic>::with_capacity(&FlitDb::plain(backend()), KEYS as usize),
    );
    run(
        "flit-HT",
        HashTable::<_, Automatic>::with_capacity(&FlitDb::flit_ht(backend()), KEYS as usize),
    );
    run(
        "flit-adjacent",
        HashTable::<_, Automatic>::with_capacity(&FlitDb::flit_adjacent(backend()), KEYS as usize),
    );
    run(
        "link-and-persist",
        HashTable::<_, Automatic>::with_capacity(
            &FlitDb::link_and_persist(backend()),
            KEYS as usize,
        ),
    );
    run(
        "flit-HT+nvtraverse",
        HashTable::<_, NvTraverse>::with_capacity(&FlitDb::flit_ht(backend()), KEYS as usize),
    );
    println!("\nLower pwbs/op is the FliT effect: read-side flushes are skipped unless a");
    println!("concurrent store is still in flight on the same word.");
}
