//! Counter-placement study in miniature (the paper's Figure 5 / §5.1 discussion).
//!
//! Sweeps the flit-HT table size on a read-mostly and an update-heavy workload over
//! the automatic BST, and also shows flit-adjacent and the cache-line-granularity
//! placement (the paper's suggested future work).
//!
//! Run with: `cargo run --release --example counter_placement`

use flit_pmem::{ElisionMode, LatencyModel};
use flit_workload::{run_case, Case, DsKind, DurKind, PolicyKind, WorkloadConfig};

fn run(policy: PolicyKind, updates: u32) -> f64 {
    let case = Case {
        ds: DsKind::Bst,
        dur: DurKind::Automatic,
        policy,
        config: WorkloadConfig::new(10_000, updates, 4, 3_000),
        latency: LatencyModel::optane(),
        elision: ElisionMode::default(),
        commit: flit_pmem::CommitMode::Immediate,
    };
    run_case(&case).mops
}

fn main() {
    println!("automatic BST, 10K keys, 4 threads — throughput in Mops/s\n");
    println!(
        "{:<22} {:>12} {:>12}",
        "placement", "0% updates", "50% updates"
    );
    for bytes in [4 << 10, 64 << 10, 1 << 20, 16 << 20] {
        let label = format!("flit-HT ({})", flit::human_bytes(bytes));
        println!(
            "{:<22} {:>12.3} {:>12.3}",
            label,
            run(PolicyKind::FlitHt(bytes), 0),
            run(PolicyKind::FlitHt(bytes), 50)
        );
    }
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "flit-adjacent",
        run(PolicyKind::FlitAdjacent, 0),
        run(PolicyKind::FlitAdjacent, 50)
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "flit-cacheline",
        run(PolicyKind::FlitCacheLine, 0),
        run(PolicyKind::FlitCacheLine, 50)
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "plain (no tagging)",
        run(PolicyKind::Plain, 0),
        run(PolicyKind::Plain, 50)
    );
    println!("\nThe counters are interchangeable: correctness never depends on the placement,");
    println!("only the number of spurious read-side flushes and extra cache traffic does.");
}
