//! Producer/consumer pipeline over the durable Michael–Scott queue: the second
//! workload family of the suite.
//!
//! ```text
//! cargo run --release --example producer_consumer
//! ```
//!
//! Runs the same bursty producer:consumer traffic under three policy presets and
//! prints throughput plus the persistence-instruction cost per operation, then
//! demonstrates crash recovery from an adversarial crash image.

use flit::{compat, FlitDb, FlitPolicy, HashedScheme};
use flit_pmem::{ElisionMode, LatencyModel, SimNvram};
use flit_queues::{Automatic, ConcurrentQueue, MsQueue};
use flit_workload::{run_queue_case, PolicyKind, QueueCase, QueueWorkloadConfig};

fn main() {
    println!("Durable FIFO queue: bursty producer/consumer traffic (3 producers : 1 consumer)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12}",
        "policy", "Mops/s", "pwbs/op", "pfences/op", "queue-left"
    );
    for policy in [
        PolicyKind::NoPersist,
        PolicyKind::Plain,
        PolicyKind::FlitHt(1 << 20),
    ] {
        let case = QueueCase {
            dur: flit_workload::DurKind::Automatic,
            policy,
            config: QueueWorkloadConfig::producer_consumer(3, 1, 50_000)
                .with_burst(32)
                .with_prefill(1_000),
            latency: LatencyModel::optane(),
            elision: ElisionMode::default(),
            commit: flit_pmem::CommitMode::Immediate,
        };
        let r = run_queue_case(&case);
        // Remaining length counts the prefilled values too (dequeues drain them
        // first, so this never underflows).
        let queue_left = case.config.prefill + r.enqueues - r.dequeues_hit;
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>12.3} {:>12}",
            policy.name(),
            r.mops,
            r.pwbs_per_op(),
            r.pfences_per_op(),
            queue_left,
        );
    }

    // Crash recovery: run a little traffic on a tracking backend, "crash", recover.
    println!("\nCrash recovery from an adversarial image (flushed-and-fenced stores only):");
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let queue: MsQueue<FlitPolicy<HashedScheme, SimNvram>, Automatic> = MsQueue::new(&db);
    // One explicit session for this thread (`pin_current_thread` is the
    // migration-friendly alias for `db.handle()`).
    let h = compat::pin_current_thread(&db);
    let _guard = h.pin();
    for v in 1..=8u64 {
        queue.enqueue(&h, v * 11);
    }
    queue.dequeue(&h);
    queue.dequeue(&h);
    let image = nvram.tracker().unwrap().crash_image();
    let recovered = queue.recover(&image);
    println!("  enqueued 11,22,...,88 then dequeued twice");
    println!(
        "  recovered after crash: {:?} (truncated: {})",
        recovered.values, recovered.truncated
    );
    assert_eq!(recovered.values, vec![33, 44, 55, 66, 77, 88]);
    println!("  recovery matches the durably linearized queue.");
}
