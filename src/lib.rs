//! `flit-suite` — the workspace umbrella crate.
//!
//! This crate exists to host the workspace-level integration tests (`tests/`) and the
//! runnable examples (`examples/`); it simply re-exports the member crates so the
//! examples can use a single dependency root.
//!
//! See `README.md` for the project overview and `DESIGN.md` for the reproduction plan.

pub use flit;
pub use flit_datastructs as datastructs;
pub use flit_ebr as ebr;
pub use flit_pmem as pmem;
pub use flit_queues as queues;
pub use flit_workload as workload;
