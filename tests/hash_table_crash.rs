//! Crash-recovery coverage for the hash table — previously the only map without a
//! dedicated crash test. The table is the structurally interesting case for
//! recovery: its abstract state is the union of 64+ independent Harris-list
//! buckets, each with its own EBR collector and its own persisted sentinel chain,
//! so a single crash image must reconstruct *every* bucket consistently.

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_crashtest::{run_case, HistorySpec, MethodKind, PolicyKind, StructureKind, SweepSettings};
use flit_datastructs::{Automatic, ConcurrentMap, HashTable};
use flit_pmem::SimNvram;

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

/// Direct recovery at quiescence: after a mixed insert/remove run, the recovered
/// pairs must equal the table's live contents exactly.
#[test]
fn quiescent_crash_image_recovers_the_exact_table() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let table: HashTable<HtPolicy, Automatic> = HashTable::new(&db, 64);

    for k in 0..100u64 {
        assert!(table.insert(&h, k, 1000 + k));
    }
    for k in (0..100u64).step_by(3) {
        assert!(table.remove(&h, k));
    }
    // Re-insert over a removed key with a fresh value.
    assert!(table.insert(&h, 3, 7777));

    let image = nvram.tracker().unwrap().crash_image();
    // Image-only: recovery needs nothing from the live structure but its arena.
    let recovered = table.recover(&image);
    assert!(
        !recovered.truncated,
        "every bucket walk must stay persisted"
    );

    let expected: Vec<(u64, u64)> = (0..100u64)
        .filter(|k| k % 3 != 0 || *k == 3)
        .map(|k| (k, if k == 3 { 7777 } else { 1000 + k }))
        .collect();
    assert_eq!(recovered.sorted_pairs(), expected);
    assert_eq!(recovered.pairs.len(), table.len());
}

/// The sweep: crash at every persistence event of the scripted history, under all
/// three correct durability methods. The recovered union-of-buckets must be a
/// prefix-consistent linearization at every point.
#[test]
fn hash_table_survives_a_crash_at_every_event() {
    for method in MethodKind::CORRECT {
        let report = run_case(
            StructureKind::HashTable,
            method,
            PolicyKind::FlitHt,
            HistorySpec::Scripted,
            &SweepSettings {
                budget: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
    }
}

/// Seeded random histories under a budget, across two policies (the plain
/// transformation is the slowest but also the most conservatively persisted).
#[test]
fn random_histories_recover_under_plain_and_flit() {
    for policy in [PolicyKind::Plain, PolicyKind::FlitHt] {
        let report = run_case(
            StructureKind::HashTable,
            MethodKind::NvTraverse,
            policy,
            HistorySpec::Random {
                seed: 0xbeef,
                ops: 48,
                key_range: 24,
            },
            &SweepSettings {
                budget: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
    }
}

/// The broken all-volatile control through the hash table specifically: losing
/// completed inserts across bucket boundaries must be detected.
#[test]
fn broken_durability_is_caught_on_the_hash_table() {
    let report = run_case(
        StructureKind::HashTable,
        MethodKind::VolatileBroken,
        PolicyKind::FlitHt,
        HistorySpec::Scripted,
        &SweepSettings {
            budget: 30,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        !report.clean(),
        "the volatile-broken control must produce durability violations"
    );
    assert!(report.violations[0]
        .repro
        .contains("--structures hashtable"));
}
