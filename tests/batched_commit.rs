//! End-to-end group-commit semantics through the public API: tickets cut by
//! [`FlitHandle::ticket`]/[`FlitHandle::flush_async`], the db-wide durability
//! watermark, cross-thread waiters, and the acknowledged-operations half of the
//! weaker crash contract — all driven through a real structure, not raw words.
//! (The crash half of the contract — what an *unacknowledged* suffix may lose —
//! is swept exhaustively by the `flit-crashtest` engine; see `tests/sweep.rs`
//! in that crate.)

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_datastructs::{Automatic, ConcurrentMap, HashTable};
use flit_pmem::{CommitMode, SimNvram};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

fn batched_db(nvram: SimNvram, k: usize) -> FlitDb<HtPolicy> {
    FlitDb::builder(FlitPolicy::new(HashedScheme::with_bytes(1 << 14), nvram))
        .commit_mode(CommitMode::Batched(k))
        .build()
}

/// `flush_async` drains the handle's queue before returning, so its ticket is
/// durable at issue and `wait` on it never blocks.
#[test]
fn flush_async_tickets_are_durable_at_issue() {
    let nvram = SimNvram::for_crash_testing();
    let db = batched_db(nvram, 64);
    let map: HashTable<HtPolicy, Automatic> = HashTable::with_capacity(&db, 64);
    let h = db.handle();
    for k in 0..10u64 {
        assert!(map.insert(&h, k, k * 2));
    }
    assert_eq!(
        db.durable_watermark(),
        0,
        "a batch of 64 never overflowed on 10 operations"
    );
    let t = h.flush_async();
    assert_eq!(t.covered(), 10);
    assert!(db.is_durable(t));
    db.wait(t); // must return immediately
    assert_eq!(db.durable_watermark(), 10);
}

/// Batch overflow acknowledges mid-stream without any explicit flush: a ticket
/// cut between two overflows becomes durable when the second one fires.
#[test]
fn batch_overflow_acknowledges_mid_stream() {
    let nvram = SimNvram::for_crash_testing();
    let db = batched_db(nvram, 4);
    let map: HashTable<HtPolicy, Automatic> = HashTable::with_capacity(&db, 64);
    let h = db.handle();
    for k in 0..6u64 {
        assert!(map.insert(&h, k, k));
    }
    let t = h.ticket();
    assert_eq!(t.covered(), 6);
    assert!(
        !db.is_durable(t),
        "only the first batch of 4 is acknowledged so far"
    );
    assert_eq!(db.durable_watermark(), 4);
    for k in 6..8u64 {
        assert!(map.insert(&h, k, k));
    }
    assert!(db.is_durable(t), "the second overflow covered the ticket");
    assert_eq!(db.durable_watermark(), 8);
}

/// Tickets are plain `Copy` data checkable from any thread: a waiter spinning
/// on `wait` observes the issuing handle's drain.
#[test]
fn a_waiter_on_another_thread_observes_the_drain() {
    let nvram = SimNvram::for_crash_testing();
    let db = batched_db(nvram, 1024);
    let map: HashTable<HtPolicy, Automatic> = HashTable::with_capacity(&db, 64);
    let h = db.handle();
    for k in 0..5u64 {
        assert!(map.insert(&h, k, k + 7));
    }
    let t = h.ticket();
    assert!(!db.is_durable(t));
    std::thread::scope(|s| {
        let waiter = s.spawn(|| {
            db.wait(t);
            db.durable_watermark()
        });
        let flushed = h.flush_async();
        assert!(db.is_durable(flushed));
        assert!(waiter.join().expect("waiter thread") >= 5);
    });
}

/// Under the default `Immediate` mode the group-commit surface degenerates
/// gracefully: completions are synchronously durable, every ticket is trivially
/// durable, and the watermark (which counts batched acknowledgments) stays 0.
#[test]
fn immediate_mode_tickets_are_trivially_durable() {
    let db = FlitDb::flit_ht(SimNvram::for_crash_testing());
    let map: HashTable<HtPolicy, Automatic> = HashTable::with_capacity(&db, 64);
    let h = db.handle();
    assert!(map.insert(&h, 1, 2));
    let t = h.ticket();
    assert_eq!(t.covered(), 0, "immediate mode enqueues no obligations");
    assert!(db.is_durable(t));
    db.wait(t);
    let flushed = h.flush_async();
    assert!(db.is_durable(flushed));
    assert_eq!(db.durable_watermark(), 0);
}

/// The acknowledged half of the group-commit contract, tracker-verified: once a
/// ticket is durable, a crash image cut at that moment recovers every operation
/// the ticket covers.
#[test]
fn acknowledged_inserts_survive_the_crash_image() {
    let nvram = SimNvram::for_crash_testing();
    let db = batched_db(nvram.clone(), 8);
    let map: HashTable<HtPolicy, Automatic> = HashTable::with_capacity(&db, 64);
    let h = db.handle();
    // Pin so no retired node is reclaimed while we walk the crash image.
    let _guard = h.pin();
    for k in 0..5u64 {
        assert!(map.insert(&h, k, k + 50));
    }
    let t = h.flush_async();
    assert!(db.is_durable(t));
    let image = nvram.tracker().unwrap().crash_image();
    let recovered = map.recover(&image);
    assert!(!recovered.truncated);
    let expected: Vec<(u64, u64)> = (0..5u64).map(|k| (k, k + 50)).collect();
    assert_eq!(
        recovered.sorted_pairs(),
        expected,
        "every acknowledged insert must be in the image"
    );
}
