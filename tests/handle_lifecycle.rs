//! Lifecycle invariants of the explicit-handle API ([`FlitDb`]/[`FlitHandle`]),
//! exercised through the public interface:
//!
//! * dropping a *dirty* handle issues the trailing `pfence` (nothing a handle
//!   flushed is ever left un-committed);
//! * two handles on one OS thread keep independent dirty counts (elision
//!   decisions are per handle, not per thread);
//! * a handle outliving its spawning thread stays sound: it can be created on
//!   one thread, moved, used and dropped on another;
//! * dropped handles return their EBR slots, so short-lived workers no longer
//!   exhaust the participant table (the handle-retirement leak fix).

use flit::{FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_datastructs::{Automatic, ConcurrentMap, HarrisList};
use flit_pmem::{CommitMode, LatencyModel, PmemBackend, SimNvram};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;
type Word = <HtPolicy as Policy>::Word<u64>;

fn counting() -> SimNvram {
    SimNvram::builder().latency(LatencyModel::none()).build()
}

/// A handle abandoned mid-operation (flush issued, no fence yet) must commit its
/// pending write-backs on drop: the tracker shows the value durable only after
/// the drop.
#[test]
fn dropping_a_dirty_handle_issues_the_trailing_pfence() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let word = Word::new(0);
    {
        let h = db.handle();
        let pm = h.pmem();
        pm.record_store(word.addr() as *const u8, 123);
        pm.pwb(word.addr() as *const u8);
        assert!(h.is_dirty(), "an unfenced pwb leaves the handle dirty");
        assert_eq!(
            nvram.tracker().unwrap().persisted_value(word.addr()),
            None,
            "no fence yet: the flush is still pending"
        );
    } // <- drop: the trailing fence
    assert_eq!(
        nvram.tracker().unwrap().persisted_value(word.addr()),
        Some(123),
        "the dirty handle's drop must commit its pending flush"
    );
    // A clean handle's drop, by contrast, fences nothing.
    let fences_before = nvram.stats().pfences();
    drop(db.handle());
    assert_eq!(nvram.stats().pfences(), fences_before);
}

/// Group commit: a dirty batched handle dropped mid-batch must drain its
/// obligation queue — the drop fences, acknowledges the open batch (db-wide
/// watermark plus the handle's tickets), and the tracker shows the batch's
/// last store durable only after the drop.
#[test]
fn dropping_a_batched_handle_mid_batch_drains_its_obligations() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::builder(FlitPolicy::new(
        HashedScheme::with_bytes(1 << 12),
        nvram.clone(),
    ))
    .commit_mode(CommitMode::Batched(8))
    .build();
    let word = Word::new(0);
    let ticket = {
        let h = db.handle();
        for i in 1..=3u64 {
            word.store(&h, 10 + i, PFlag::Persisted);
            h.operation_completion();
        }
        let t = h.ticket();
        assert!(
            !db.is_durable(t),
            "mid-batch (3 of 8 obligations): nothing is acknowledged yet"
        );
        assert_eq!(db.durable_watermark(), 0);
        // The trailing fence of the *last* store is deferred: its predecessor
        // was committed by the leading fence of store 3, but 13 itself is only
        // in volatile memory.
        assert_eq!(
            nvram.tracker().unwrap().persisted_value(word.addr()),
            Some(12),
            "the deferred trailing fence leaves the batch's last store pending"
        );
        t
    }; // <- drop: one drain fence commits and acknowledges the whole batch
    assert!(
        db.is_durable(ticket),
        "the drop must acknowledge the open batch"
    );
    assert_eq!(db.durable_watermark(), 3);
    assert_eq!(
        nvram.tracker().unwrap().persisted_value(word.addr()),
        Some(13),
        "the drop's drain fence made the last store durable"
    );
}

/// Two handles on one OS thread: each owns its own persist epoch, so dirtiness
/// never leaks between them — one handle's completion fence fires while the
/// other's is elided, on the same thread, against the same backend.
#[test]
fn two_handles_on_one_thread_keep_independent_dirty_counts() {
    let nvram = counting();
    let db = FlitDb::flit_ht(nvram.clone());
    let h1 = db.handle();
    let h2 = db.handle();
    let word = Word::new(0);

    h1.pmem().pwb(word.addr() as *const u8);
    assert!(h1.is_dirty());
    assert!(!h2.is_dirty(), "h2 must not inherit h1's pwb");
    assert_eq!(h1.epoch().pending_pwbs(), 1);
    assert_eq!(h2.epoch().pending_pwbs(), 0);

    h2.operation_completion(); // clean: elided
    assert_eq!(nvram.stats().pfences(), 0);
    assert!(h1.is_dirty(), "h2's elided fence must not clean h1");

    h1.operation_completion(); // dirty: fences
    assert_eq!(nvram.stats().pfences(), 1);
    assert!(!h1.is_dirty());
    assert_eq!(nvram.stats().elided_pfences(), 1);
}

/// A handle created on a worker thread, moved back to the main thread, and used
/// there (map operations, pinning, drop) stays sound — nothing about a handle is
/// keyed to the OS thread that created it.
#[test]
fn a_handle_outlives_its_spawning_thread() {
    let nvram = counting();
    let db = FlitDb::flit_ht(nvram.clone());
    let list: HarrisList<HtPolicy, Automatic> = HarrisList::new(&db);

    std::thread::scope(|s| {
        // The worker registers the handle, dirties it, and sends it back.
        let h = s
            .spawn(|| {
                let h = db.handle();
                assert!(list.insert(&h, 1, 10));
                h.pmem().pwb(&list as *const _ as *const u8);
                assert!(h.is_dirty());
                h
            })
            .join()
            .expect("worker thread");
        // The spawning thread is gone; the handle keeps working here.
        assert!(h.is_dirty(), "dirtiness travelled with the handle");
        assert!(list.insert(&h, 2, 20));
        assert!(!h.is_dirty(), "the insert's completion fence cleaned it");
        assert_eq!(list.get(&h, 1), Some(10));
        assert_eq!(list.get(&h, 2), Some(20));
        drop(h);
    });
    assert_eq!(list.len(), 2);
}

/// The handle-retirement fix, end to end: spawning (and dropping) far more
/// short-lived worker handles than `MAX_PARTICIPANTS` must neither panic nor
/// grow the participant table — every dropped handle's slot is reused.
#[test]
fn short_lived_workers_recycle_their_slots() {
    let db = FlitDb::flit_ht(counting());
    let list: HarrisList<HtPolicy, Automatic> = HarrisList::new(&db);
    for round in 0..4 * flit_ebr::MAX_PARTICIPANTS as u64 {
        let h = db.handle();
        let k = round % 32;
        if round % 2 == 0 {
            list.insert(&h, k, round);
        } else {
            list.remove(&h, k);
        }
    }
    assert_eq!(
        db.collector().participants(),
        0,
        "every worker handle returned its slot"
    );
    assert!(db.handles_created() >= 4 * flit_ebr::MAX_PARTICIPANTS as u64);
}

/// Handle sessions honour the structure operations end to end: interleaving two
/// handles' operations on one thread yields the same abstract state as one
/// handle performing them all.
#[test]
fn interleaved_handles_preserve_map_semantics() {
    let db = FlitDb::flit_ht(counting());
    let list: HarrisList<HtPolicy, Automatic> = HarrisList::new(&db);
    let h1 = db.handle();
    let h2 = db.handle();
    for k in 0..50u64 {
        let h = if k % 2 == 0 { &h1 } else { &h2 };
        assert!(list.insert(h, k, k * 3));
    }
    for k in (0..50u64).step_by(5) {
        assert!(list.remove(&h2, k));
    }
    for k in 0..50u64 {
        assert_eq!(list.get(&h1, k).is_some(), k % 5 != 0, "key {k}");
    }
    assert_eq!(list.len(), 40);
}
