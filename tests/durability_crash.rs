//! Crash-consistency integration tests at the P-V interface level, driven by the
//! adversarial persistence tracker and the [`CrashPlan`] crash-injection hook: only
//! stores that were explicitly written back *and* fenced survive the simulated
//! crash. These exercise Theorem 3.1's guarantee from the outside: anything an
//! operation depended on when it completed must be in the crash image.
//!
//! (Whole-structure crash sweeps live in `flit-crashtest` and the per-structure
//! crash tests; this file covers the raw word-level interface.)

use flit::{presets, FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_pmem::{CrashPlan, SimNvram};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;
type Word = <HtPolicy as Policy>::Word<u64>;

/// Multi-threaded: each thread performs a chain of p-stores on its own slots, calling
/// `operation_completion` after each. After the crash, for every thread the *prefix
/// property* must hold: if operation i's value survived, every operation j < i that it
/// depended on (its own earlier stores) must have survived too — and every operation
/// that completed before the crash must be present.
#[test]
fn completed_operations_survive_an_adversarial_crash() {
    const THREADS: usize = 4;
    const SLOTS: usize = 32;

    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let slots: Vec<Vec<Word>> = (0..THREADS)
        .map(|_| (0..SLOTS).map(|_| Word::new(0)).collect())
        .collect();
    let slots = std::sync::Arc::new(slots);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            let slots = std::sync::Arc::clone(&slots);
            s.spawn(move || {
                let h = db.handle();
                for (i, slot) in slots[t].iter().enumerate() {
                    // Each operation reads the previous slot (p-load) and writes its
                    // own (p-store): a dependency chain.
                    if i > 0 {
                        let _ = slots[t][i - 1].load(&h, PFlag::Persisted);
                    }
                    slot.store(&h, (t * 1000 + i + 1) as u64, PFlag::Persisted);
                    h.operation_completion();
                }
            });
        }
    });

    // Crash: all threads completed all operations, so every slot must be durable with
    // its final value.
    let image = nvram.tracker().unwrap().crash_image();
    for (t, thread_slots) in slots.iter().enumerate() {
        for (i, slot) in thread_slots.iter().enumerate() {
            assert_eq!(
                image.read(slot.addr()),
                Some((t * 1000 + i + 1) as u64),
                "thread {t} operation {i} completed but its value did not survive"
            );
        }
    }
}

/// An operation interrupted *before* completion may lose its last store, but a prefix
/// of its work must still be consistent: a later store never survives while an
/// earlier store of the same thread (a dependency) is lost.
#[test]
fn dependency_order_is_never_inverted() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let a = Word::new(0);
    let b = Word::new(0);

    // a is written and persisted by the p-store protocol; then b is written as a
    // v-store (no persistence), then the "crash" happens before any further fence.
    a.store(&h, 1, PFlag::Persisted);
    b.store(&h, 2, PFlag::Volatile);

    let image = nvram.tracker().unwrap().crash_image();
    let a_survived = image.read(a.addr()).is_some();
    let b_survived = image.read(b.addr()).is_some();
    assert!(a_survived, "the persisted dependency must survive");
    assert!(
        !b_survived,
        "the volatile store must not outlive its dependency"
    );
}

/// Run a dependency chain of p-stores under `policy_factory` with a [`CrashPlan`]
/// armed at `crash_at`, and return which chain slots survived the frozen image.
fn chain_survivors<P, F>(policy_factory: F, crash_at: Option<u64>) -> (Vec<bool>, u64)
where
    P: Policy<Backend = SimNvram>,
    F: FnOnce(SimNvram) -> P,
{
    const CHAIN: usize = 16;
    let plan = match crash_at {
        Some(k) => CrashPlan::armed_at(k),
        None => CrashPlan::counting(),
    };
    let nvram = SimNvram::for_crash_testing_with_plan(plan.clone());
    let db = FlitDb::create(policy_factory(nvram.clone()));
    let h = db.handle();
    let chain: Vec<P::Word<u64>> = (0..CHAIN).map(|_| P::Word::<u64>::new(0)).collect();
    for (i, w) in chain.iter().enumerate() {
        if i > 0 {
            let _ = chain[i - 1].load(&h, PFlag::Persisted);
        }
        w.store(&h, i as u64 + 1, PFlag::Persisted);
    }
    let image = match crash_at {
        Some(_) => plan
            .crash_image()
            .unwrap_or_else(|| nvram.tracker().unwrap().crash_image()),
        None => nvram.tracker().unwrap().crash_image(),
    };
    let survivors = chain
        .iter()
        .map(|w| image.read(w.addr()).is_some())
        .collect();
    (survivors, plan.events_seen())
}

/// Sweep a crash across *every* persistence event of a p-store dependency chain,
/// through both the plain transformation and FliT: at every crash point the
/// survivors must form a prefix of the chain (a later store must never be durable
/// while an earlier dependency is lost). This is the word-level version of the
/// structure sweeps in `flit-crashtest`, driving the `CrashPlan` hook directly.
#[test]
fn dependency_chains_survive_as_prefixes_at_every_crash_point() {
    fn sweep<P, F>(label: &str, factory: F)
    where
        P: Policy<Backend = SimNvram>,
        F: Fn(SimNvram) -> P,
    {
        let (all, total) = chain_survivors(&factory, None);
        assert!(
            all.iter().all(|s| *s),
            "{label}: crash-free run persists all"
        );
        for k in 0..total {
            let (survived, _) = chain_survivors(&factory, Some(k));
            let first_lost = survived.iter().position(|s| !s).unwrap_or(survived.len());
            assert!(
                survived[first_lost..].iter().all(|s| !s),
                "{label}, crash at event {k}: a later store survived while an earlier \
                 dependency was lost: {survived:?}"
            );
        }
    }
    sweep("plain", presets::plain);
    sweep("flit-ht", presets::flit_ht);
    sweep("link-and-persist", presets::link_and_persist);
}
