//! Crash-consistency integration tests using the adversarial persistence tracker:
//! only stores that were explicitly written back *and* fenced survive the simulated
//! crash. These exercise Theorem 3.1's guarantee from the outside: anything an
//! operation depended on when it completed must be in the crash image.

use flit::{presets, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_pmem::SimNvram;

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;
type Word = <HtPolicy as Policy>::Word<u64>;

/// Multi-threaded: each thread performs a chain of p-stores on its own slots, calling
/// `operation_completion` after each. After the crash, for every thread the *prefix
/// property* must hold: if operation i's value survived, every operation j < i that it
/// depended on (its own earlier stores) must have survived too — and every operation
/// that completed before the crash must be present.
#[test]
fn completed_operations_survive_an_adversarial_crash() {
    const THREADS: usize = 4;
    const SLOTS: usize = 32;

    let nvram = SimNvram::for_crash_testing();
    let policy = std::sync::Arc::new(presets::flit_ht(nvram.clone()));
    let slots: Vec<Vec<Word>> = (0..THREADS)
        .map(|_| (0..SLOTS).map(|_| Word::new(0)).collect())
        .collect();
    let slots = std::sync::Arc::new(slots);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let policy = std::sync::Arc::clone(&policy);
            let slots = std::sync::Arc::clone(&slots);
            s.spawn(move || {
                for (i, slot) in slots[t].iter().enumerate() {
                    // Each operation reads the previous slot (p-load) and writes its
                    // own (p-store): a dependency chain.
                    if i > 0 {
                        let _ = slots[t][i - 1].load(&policy, PFlag::Persisted);
                    }
                    slot.store(&policy, (t * 1000 + i + 1) as u64, PFlag::Persisted);
                    policy.operation_completion();
                }
            });
        }
    });

    // Crash: all threads completed all operations, so every slot must be durable with
    // its final value.
    let image = nvram.tracker().unwrap().crash_image();
    for (t, thread_slots) in slots.iter().enumerate() {
        for (i, slot) in thread_slots.iter().enumerate() {
            assert_eq!(
                image.read(slot.addr()),
                Some((t * 1000 + i + 1) as u64),
                "thread {t} operation {i} completed but its value did not survive"
            );
        }
    }
}

/// An operation interrupted *before* completion may lose its last store, but a prefix
/// of its work must still be consistent: a later store never survives while an
/// earlier store of the same thread (a dependency) is lost.
#[test]
fn dependency_order_is_never_inverted() {
    let nvram = SimNvram::for_crash_testing();
    let policy = presets::flit_ht(nvram.clone());
    let a = Word::new(0);
    let b = Word::new(0);

    // a is written and persisted by the p-store protocol; then b is written as a
    // v-store (no persistence), then the "crash" happens before any further fence.
    a.store(&policy, 1, PFlag::Persisted);
    b.store(&policy, 2, PFlag::Volatile);

    let image = nvram.tracker().unwrap().crash_image();
    let a_survived = image.read(a.addr()).is_some();
    let b_survived = image.read(b.addr()).is_some();
    assert!(a_survived, "the persisted dependency must survive");
    assert!(
        !b_survived,
        "the volatile store must not outlive its dependency"
    );
}

/// The same inversion check through the plain policy: even without tagging, the
/// p-store protocol itself (fence before store) prevents a later store from being
/// durable while an earlier dependency is not.
#[test]
fn plain_policy_also_preserves_dependency_order() {
    let nvram = SimNvram::for_crash_testing();
    let policy = presets::plain(nvram.clone());
    type PlainWord = <flit::PlainPolicy<SimNvram> as Policy>::Word<u64>;
    let chain: Vec<PlainWord> = (0..16).map(|_| PlainWord::new(0)).collect();
    for (i, w) in chain.iter().enumerate() {
        if i > 0 {
            let _ = chain[i - 1].load(&policy, PFlag::Persisted);
        }
        w.store(&policy, i as u64 + 1, PFlag::Persisted);
    }
    // No operation_completion: still, each completed p-store is durable.
    let image = nvram.tracker().unwrap().crash_image();
    let survived: Vec<bool> = chain
        .iter()
        .map(|w| image.read(w.addr()).is_some())
        .collect();
    // The survivors must form a prefix (no inversion).
    let first_lost = survived.iter().position(|s| !s).unwrap_or(survived.len());
    assert!(
        survived[first_lost..].iter().all(|s| !s),
        "a later store survived while an earlier dependency was lost: {survived:?}"
    );
    assert!(
        first_lost >= 15,
        "completed p-stores should essentially all survive"
    );
}
