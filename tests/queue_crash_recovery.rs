//! Adversarial crash-recovery tests for the durable Michael–Scott queue: the
//! persistence tracker's [`CrashImage`] contains only stores that were explicitly
//! written back *and* fenced, and recovery must reconstruct a queue state that is a
//! linearizable continuation of the completed operations.
//!
//! Durable linearizability for a queue means: after a crash, (a) every completed
//! enqueue's value is in the recovered queue unless a completed dequeue removed it,
//! (b) no completed dequeue's value reappears, and (c) FIFO order is preserved.
//! In quiescent states (all operations complete) this pins the recovered sequence
//! exactly; the tests below check that pin at every operation boundary and after
//! multi-threaded producer/consumer runs.

use std::sync::Arc;

use flit::{presets, FlitPolicy, HashedScheme};
use flit_pmem::SimNvram;
use flit_queues::{Automatic, ConcurrentQueue, Manual, MsQueue};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

/// Single-threaded, fully deterministic: after *every* completed operation, the
/// adversarial crash image must recover to exactly the abstract queue state — i.e.
/// the persisted prefix is the linearized history itself, at every boundary.
#[test]
fn persisted_prefix_matches_the_linearized_history_at_every_boundary() {
    let nvram = SimNvram::for_crash_testing();
    let queue: MsQueue<HtPolicy, Automatic> = MsQueue::new(presets::flit_ht(nvram.clone()));
    // Pin reclamation off so recovery may walk retired sentinels.
    let _guard = queue.collector().pin();
    let mut model = std::collections::VecDeque::new();

    let check = |queue: &MsQueue<HtPolicy, Automatic>, model: &std::collections::VecDeque<u64>| {
        let image = nvram.tracker().unwrap().crash_image();
        let recovered = unsafe { queue.recover(&image) };
        assert!(
            !recovered.truncated,
            "reachable node with unpersisted value"
        );
        assert_eq!(
            recovered.values,
            model.iter().copied().collect::<Vec<_>>(),
            "crash image diverged from the linearized queue"
        );
    };

    // A deterministic interleaving that grows, drains to empty, and regrows.
    let script: Vec<Option<u64>> = (0..40u64)
        .map(Some)
        .chain((0..45).map(|_| None))
        .chain((100..120u64).map(Some))
        .chain((0..10).map(|_| None))
        .collect();
    for step in script {
        match step {
            Some(v) => {
                queue.enqueue(v);
                model.push_back(v);
            }
            None => {
                assert_eq!(queue.dequeue(), model.pop_front());
            }
        }
        check(&queue, &model);
    }
}

/// Multi-threaded producer/consumer traffic, then quiescence: the recovered queue
/// must equal the volatile queue exactly (every surviving operation was completed),
/// preserve per-producer FIFO order, and contain no value any consumer dequeued.
#[test]
fn recovered_queue_is_linearizable_after_concurrent_producer_consumer_run() {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 500;

    let nvram = SimNvram::for_crash_testing();
    let queue: Arc<MsQueue<HtPolicy, Automatic>> =
        Arc::new(MsQueue::new(presets::flit_ht(nvram.clone())));
    // Pin from the main thread before any operation so no retired node is reclaimed
    // and recovery can safely dereference stale persisted pointers.
    let _guard = queue.collector().pin();

    let dequeued = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                for i in 0..PER_PRODUCER {
                    queue.enqueue((t << 32) | i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = Arc::clone(&queue);
            let dequeued = &dequeued;
            s.spawn(move || {
                // Consume only part of the stream so the final queue is non-empty.
                // Producers enqueue far more than the combined consumer quota, so
                // this terminates.
                let quota = (PER_PRODUCER / 4) as usize;
                let mut local = Vec::new();
                while local.len() < quota {
                    match queue.dequeue() {
                        Some(v) => local.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                dequeued.lock().unwrap().extend(local);
            });
        }
    });

    let image = nvram.tracker().unwrap().crash_image();
    let recovered = unsafe { queue.recover(&image) };
    assert!(!recovered.truncated);

    // (1) Quiescence: recovery equals the volatile queue exactly.
    assert_eq!(recovered.values, queue.volatile_contents());

    // (2) No completed dequeue resurfaces.
    let dequeued = dequeued.into_inner().unwrap();
    for v in &dequeued {
        assert!(
            !recovered.values.contains(v),
            "dequeued value {v:#x} reappeared after the crash"
        );
    }

    // (3) Conservation + per-producer FIFO order within the recovered suffix.
    assert_eq!(
        recovered.values.len() + dequeued.len(),
        (PRODUCERS * PER_PRODUCER) as usize
    );
    for t in 0..PRODUCERS {
        let seqs: Vec<u64> = recovered
            .values
            .iter()
            .filter(|v| (*v >> 32) == t)
            .map(|v| v & 0xFFFF_FFFF)
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "producer {t} out of FIFO order after recovery: {seqs:?}"
        );
        // The recovered values of each producer are a contiguous tail of its stream:
        // everything before them was dequeued, nothing in the middle is missing.
        if let Some(&first) = seqs.first() {
            assert_eq!(
                seqs,
                (first..first + seqs.len() as u64).collect::<Vec<_>>(),
                "producer {t} lost interior values"
            );
        }
    }
}

/// The manual p-marking variant persists only the linearization-point stores; the
/// tail swings stay volatile. A crash image taken mid-stream must still recover
/// every completed enqueue by walking the persisted `next` chain from `head`.
#[test]
fn manual_variant_survives_without_a_persisted_tail() {
    let nvram = SimNvram::for_crash_testing();
    let queue: MsQueue<HtPolicy, Manual> = MsQueue::new(presets::flit_ht(nvram.clone()));
    let _guard = queue.collector().pin();

    for v in 0..64u64 {
        queue.enqueue(v);
    }
    for expected in 0..16u64 {
        assert_eq!(queue.dequeue(), Some(expected));
    }

    let image = nvram.tracker().unwrap().crash_image();
    let recovered = unsafe { queue.recover(&image) };
    assert!(!recovered.truncated);
    assert_eq!(recovered.values, (16..64).collect::<Vec<_>>());
}
