//! Adversarial crash-recovery tests for the durable Michael–Scott queue.
//!
//! The single-threaded cases are driven by the `flit-crashtest` engine, which is
//! strictly stronger than the hand-rolled op-boundary checks it replaced: it
//! injects a simulated crash at **every persistence event** (store/pwb/pfence) of
//! the history — including mid-operation windows — rebuilds the queue from the
//! frozen [`CrashImage`](flit_pmem::CrashImage), and checks the recovered state is
//! a prefix-consistent linearization of the issued history.
//!
//! The multi-threaded case keeps its direct tracker usage: the sweep engine is
//! deliberately single-threaded (that is what makes event indices deterministic),
//! so concurrent traffic is validated at quiescence instead.

use std::sync::Arc;

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_crashtest::{run_case, HistorySpec, MethodKind, PolicyKind, StructureKind, SweepSettings};
use flit_pmem::SimNvram;
use flit_queues::{Automatic, ConcurrentQueue, MsQueue};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

const EVERY_EVENT: SweepSettings = SweepSettings {
    budget: 0,
    crash_at: None,
    elision: flit_pmem::ElisionMode::Enabled,
    commit: flit_pmem::CommitMode::Immediate,
    broken_acks: false,
};

/// Single-threaded, fully deterministic: crash at *every* persistence event of the
/// scripted grow/drain/regrow history. At each point the recovered queue must equal
/// the model queue after the completed operations (± the one in flight), i.e. the
/// persisted prefix is the linearized history at every boundary — and inside every
/// operation.
#[test]
fn persisted_prefix_matches_the_linearized_history_at_every_crash_point() {
    for method in MethodKind::CORRECT {
        let report = run_case(
            StructureKind::MsQueue,
            method,
            PolicyKind::FlitHt,
            HistorySpec::Scripted,
            &EVERY_EVENT,
        )
        .expect("supported combination");
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
        // The sweep really covered the whole absolute event span (construction
        // window included) plus the end control.
        assert_eq!(report.points_tested as u64, report.events_total + 1);
    }
}

/// The same every-event sweep through seeded random histories: different seeds
/// exercise different enqueue/dequeue interleavings, and each failure (if any)
/// would print a `(seed, crash offset)` repro string.
#[test]
fn random_histories_recover_at_every_crash_point() {
    for seed in [1u64, 0xdead] {
        let report = run_case(
            StructureKind::MsQueue,
            MethodKind::Automatic,
            PolicyKind::FlitHt,
            HistorySpec::Random {
                seed,
                ops: 40,
                key_range: 8,
            },
            &EVERY_EVENT,
        )
        .unwrap();
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
    }
}

/// The manual p-marking variant persists only the linearization-point stores; the
/// tail swings stay volatile. The every-event sweep proves a crash image taken at
/// any moment still recovers every completed enqueue by walking the persisted
/// `next` chain from `head`.
#[test]
fn manual_variant_survives_without_a_persisted_tail() {
    let report = run_case(
        StructureKind::MsQueue,
        MethodKind::Manual,
        PolicyKind::FlitHt,
        HistorySpec::Random {
            seed: 7,
            ops: 64,
            key_range: 8,
        },
        &EVERY_EVENT,
    )
    .unwrap();
    assert!(
        report.clean(),
        "{}: first violation: {}",
        report.case.id(),
        report.violations[0]
    );
}

/// Multi-threaded producer/consumer traffic, then quiescence: the recovered queue
/// must equal the volatile queue exactly (every surviving operation was completed),
/// preserve per-producer FIFO order, and contain no value any consumer dequeued.
#[test]
fn recovered_queue_is_linearizable_after_concurrent_producer_consumer_run() {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 500;

    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let queue: Arc<MsQueue<HtPolicy, Automatic>> = Arc::new(MsQueue::new(&db));
    // Pin a main-thread handle before any operation so no retired node is
    // reclaimed and recovery can safely dereference stale persisted pointers.
    let main_handle = db.handle();
    let _guard = main_handle.pin();

    let dequeued = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            let db = &db;
            s.spawn(move || {
                let h = db.handle();
                for i in 0..PER_PRODUCER {
                    queue.enqueue(&h, (t << 32) | i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = Arc::clone(&queue);
            let dequeued = &dequeued;
            let db = &db;
            s.spawn(move || {
                let h = db.handle();
                // Consume only part of the stream so the final queue is non-empty.
                // Producers enqueue far more than the combined consumer quota, so
                // this terminates.
                let quota = (PER_PRODUCER / 4) as usize;
                let mut local = Vec::new();
                while local.len() < quota {
                    match queue.dequeue(&h) {
                        Some(v) => local.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                dequeued.lock().unwrap().extend(local);
            });
        }
    });

    let image = nvram.tracker().unwrap().crash_image();
    let recovered = queue.recover(&image);
    assert!(!recovered.truncated);

    // (1) Quiescence: recovery equals the volatile queue exactly.
    assert_eq!(recovered.values, queue.volatile_contents());

    // (2) No completed dequeue resurfaces.
    let dequeued = dequeued.into_inner().unwrap();
    for v in &dequeued {
        assert!(
            !recovered.values.contains(v),
            "dequeued value {v:#x} reappeared after the crash"
        );
    }

    // (3) Conservation + per-producer FIFO order within the recovered suffix.
    assert_eq!(
        recovered.values.len() + dequeued.len(),
        (PRODUCERS * PER_PRODUCER) as usize
    );
    for t in 0..PRODUCERS {
        let seqs: Vec<u64> = recovered
            .values
            .iter()
            .filter(|v| (*v >> 32) == t)
            .map(|v| v & 0xFFFF_FFFF)
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "producer {t} out of FIFO order after recovery: {seqs:?}"
        );
        // The recovered values of each producer are a contiguous tail of its stream:
        // everything before them was dequeued, nothing in the middle is missing.
        if let Some(&first) = seqs.first() {
            assert_eq!(
                seqs,
                (first..first + seqs.len() as u64).collect::<Vec<_>>(),
                "producer {t} lost interior values"
            );
        }
    }
}
