//! Integration tests for the P-V Interface guarantees, exercised through the public
//! API exactly as a library user would.

use flit::{FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_datastructs::{Automatic, ConcurrentMap, HarrisList, HashTable, NatarajanTree};
use flit_pmem::{LatencyModel, SimNvram};

fn backend() -> SimNvram {
    SimNvram::builder().latency(LatencyModel::none()).build()
}

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

/// Condition 2/4: a completed p-store is durable before its operation completes.
#[test]
fn completed_p_stores_are_durable() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let word = <HtPolicy as Policy>::Word::<u64>::new(0);
    for i in 1..=50u64 {
        word.store(&h, i, PFlag::Persisted);
        h.operation_completion();
        assert_eq!(
            nvram.tracker().unwrap().persisted_value(word.addr()),
            Some(i),
            "value {i} must be durable once the operation completed"
        );
    }
}

/// V-stores stay volatile until something forces them (they add no dependencies).
#[test]
fn v_stores_are_not_forced_to_persist() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let word = <HtPolicy as Policy>::Word::<u64>::new(0);
    word.store(&h, 7, PFlag::Volatile);
    h.operation_completion();
    assert_eq!(nvram.tracker().unwrap().persisted_value(word.addr()), None);
    assert_eq!(
        nvram.tracker().unwrap().volatile_value(word.addr()),
        Some(7)
    );
}

/// Condition 3: a p-load that observes a concurrent p-store's value flushes the
/// location, so the reader's later operations can never depend on a lost value.
#[test]
fn tagged_p_load_flushes_the_location() {
    let nvram = SimNvram::for_crash_testing();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let scheme = db.policy().scheme().clone();
    let word = <HtPolicy as Policy>::Word::<u64>::new(5);

    // Simulate a writer paused between its store and its flush: the location is
    // tagged and the new value is only in volatile memory.
    scheme.begin_store(&(), word.addr());
    word.store_direct(9);
    nvram.record_store(word.addr() as *const u8, 9);
    assert_eq!(nvram.tracker().unwrap().persisted_value(word.addr()), None);

    // The reader must flush on its own; after its fence the value is durable.
    use flit::TagScheme;
    use flit_pmem::PmemBackend;
    let observed = word.load(&h, PFlag::Persisted);
    h.pmem().pfence();
    assert_eq!(observed, 9);
    assert_eq!(
        nvram.tracker().unwrap().persisted_value(word.addr()),
        Some(9)
    );
    scheme.end_store(&(), word.addr());
}

/// The read-side elision claim in miniature: a read-only workload on a FliT structure
/// performs no pwbs at all, while the plain transformation flushes on every p-load.
#[test]
fn zero_update_workloads_flush_nothing_with_flit() {
    let flit_backend = backend();
    let plain_backend = backend();
    let flit_db = FlitDb::flit_ht(flit_backend.clone());
    let plain_db = FlitDb::plain(plain_backend.clone());
    let hf = flit_db.handle();
    let hp = plain_db.handle();
    let flit_map: NatarajanTree<_, Automatic> = NatarajanTree::with_capacity(&flit_db, 1024);
    let plain_map: NatarajanTree<_, Automatic> = NatarajanTree::with_capacity(&plain_db, 1024);
    for k in 0..512u64 {
        flit_map.insert(&hf, k, k);
        plain_map.insert(&hp, k, k);
    }
    let flit_before = flit_backend.stats().snapshot();
    let plain_before = plain_backend.stats().snapshot();
    for k in 0..512u64 {
        assert_eq!(flit_map.get(&hf, k), Some(k));
        assert_eq!(plain_map.get(&hp, k), Some(k));
    }
    let flit_delta = flit_backend.stats().snapshot().delta_since(&flit_before);
    let plain_delta = plain_backend.stats().snapshot().delta_since(&plain_before);
    assert_eq!(flit_delta.pwbs, 0, "FliT lookups must not flush");
    assert!(
        plain_delta.pwbs >= 512,
        "plain lookups flush every p-load (got {})",
        plain_delta.pwbs
    );
}

/// Lemma 5.1 at system level: after any amount of concurrent work, every flit-counter
/// is back to zero.
#[test]
fn flit_counters_return_to_zero_after_concurrent_work() {
    let scheme = HashedScheme::with_bytes(1 << 16);
    let db = FlitDb::create(FlitPolicy::new(scheme.clone(), backend()));
    let map: std::sync::Arc<HashTable<_, Automatic>> =
        std::sync::Arc::new(HashTable::with_capacity(&db, 256));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = std::sync::Arc::clone(&map);
            let db = &db;
            s.spawn(move || {
                let h = db.handle();
                for i in 0..2_000u64 {
                    let k = (t * 131 + i * 17) % 256;
                    match i % 3 {
                        0 => {
                            map.insert(&h, k, i);
                        }
                        1 => {
                            map.remove(&h, k);
                        }
                        _ => {
                            map.get(&h, k);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(scheme.table().tagged_count(), 0);
}

/// Operations completed on a tracked backend leave a durable footprint proportional to
/// the updates performed (no update is left entirely volatile).
#[test]
fn data_structure_updates_leave_durable_state() {
    let nvram = SimNvram::builder()
        .latency(LatencyModel::none())
        .tracking(true)
        .build();
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let list: HarrisList<_, Automatic> = HarrisList::with_capacity(&db, 64);
    for k in 0..64u64 {
        assert!(list.insert(&h, k, k));
    }
    let image = nvram.tracker().unwrap().crash_image();
    // Every inserted node published at least its link word durably (plus the node
    // contents flushed before publication).
    assert!(
        image.len() >= 64,
        "expected at least one durable word per insert, got {}",
        image.len()
    );
}
