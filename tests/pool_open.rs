//! File-backed pool lifecycle (`flit-pmem` pool × `flit-core` open pipeline):
//!
//! 1. **Roundtrip** — create a pool, run real map traffic, drop the process's
//!    view, re-open: the validate → adopt → recover → GC pipeline rebuilds the
//!    exact key→value state, reclaims leaked slots, and a second GC pass
//!    reclaims nothing (idempotence);
//! 2. **Graceful corruption handling** — every targeted clobber of a persisted
//!    field (superblock magic/version, truncation, commit-mode compat word,
//!    arena slot size, root-table entry) surfaces as the matching typed
//!    [`OpenError`] variant, never a panic;
//! 3. **Liveness** — a re-opened pool accepts new traffic; a pool mapped by a
//!    live database cannot be double-opened ([`OpenError::MappingConflict`]);
//!    [`FlitDb::create_volatile`] keeps the heap-backed path intact.

#![cfg(unix)]

use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use flit::{CommitMode, FlitDb, FlitPolicy, HashedScheme, OpenError};
use flit_alloc::post_crash_gc;
use flit_datastructs::{Automatic, ConcurrentMap, HashTable, RecoverInImage};
use flit_pmem::pool::{direntry, superblock, DIR_OFFSET};
use flit_pmem::{LatencyModel, SimNvram};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;
type Map = HashTable<HtPolicy, Automatic>;

fn policy() -> HtPolicy {
    FlitPolicy::new(
        HashedScheme::with_bytes(1 << 12),
        SimNvram::builder().latency(LatencyModel::none()).build(),
    )
}

fn temp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("flit-pool-open-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Build a pool with one hash table holding keys 1..=40 (evens removed again)
/// plus one deliberately leaked slot, and unmap it. Returns the expected pairs.
fn build_pool(path: &Path, commit: CommitMode) -> Vec<(u64, u64)> {
    let db = FlitDb::builder(policy())
        .commit_mode(commit)
        .create_pool(path)
        .unwrap();
    let map = Map::new(&db, 64);
    let h = db.handle();
    for k in 1..=40u64 {
        assert!(map.insert(&h, k, 100 + k));
    }
    for k in (2..=40u64).step_by(2) {
        assert!(map.remove(&h, k));
    }
    // A slot allocated but never published anywhere: guaranteed leak for the
    // open-time GC to find.
    let arena = &db.arenas()[0];
    assert!(!arena.alloc(&h.pmem()).is_null());
    drop(h);
    db.sync_pool().unwrap();
    (1..=40u64)
        .filter(|k| k % 2 == 1)
        .map(|k| (k, 100 + k))
        .collect()
}

fn recover_map(db: &FlitDb<HtPolicy>, report: &flit::OpenReport) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    for arena in db.arenas() {
        if arena
            .live_roots()
            .iter()
            .any(|(k, _)| *k == <Map as RecoverInImage>::ROOT_KEY)
        {
            pairs.extend(Map::recover_arena_image(&arena, &report.image).pairs);
        }
    }
    pairs.sort_unstable();
    pairs
}

fn write_word(path: &Path, offset: u64, value: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.write_at(&value.to_le_bytes(), offset).unwrap();
    f.sync_all().unwrap();
}

fn read_word(path: &Path, offset: u64) -> u64 {
    let f = std::fs::File::open(path).unwrap();
    let mut buf = [0u8; 8];
    f.read_exact_at(&mut buf, offset).unwrap();
    u64::from_le_bytes(buf)
}

/// Arena 0's header base offset in the file, via its directory entry.
fn header_off(path: &Path) -> u64 {
    read_word(path, (DIR_OFFSET + direntry::HEADER_OFF) as u64)
}

#[test]
fn create_then_reopen_recovers_pairs_and_reclaims_the_leak() {
    let path = temp_path("roundtrip");
    let expected = build_pool(&path, CommitMode::Immediate);

    let (db, report) = FlitDb::open(&path, policy()).unwrap();
    assert_eq!(recover_map(&db, &report), expected);
    assert!(
        report.leaked_slots() >= 1,
        "the unpublished slot (and any recycle-list remnants) must be reclaimed"
    );
    // Idempotence: the open-time pass closed every leak.
    assert_eq!(post_crash_gc(&db.arenas()).total_reclaimed(), 0);

    // The re-opened pool accepts new traffic through the adopted arenas.
    let map = Map::new(&db, 64); // a second table in the same pool
    let h = db.handle();
    assert!(map.insert(&h, 7_000, 1));
    assert_eq!(map.get(&h, 7_000), Some(1));
    drop(h);
    drop((map, db));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reopening_twice_is_stable() {
    let path = temp_path("twice");
    let expected = build_pool(&path, CommitMode::Immediate);
    {
        let (db, report) = FlitDb::open(&path, policy()).unwrap();
        assert_eq!(recover_map(&db, &report), expected);
        db.sync_pool().unwrap();
    }
    // Second open: the first open's GC already ran; nothing further leaks.
    let (db, report) = FlitDb::open(&path, policy()).unwrap();
    assert_eq!(recover_map(&db, &report), expected);
    assert_eq!(report.leaked_slots(), 0, "GC across reopen is idempotent");
    drop(db);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn double_open_of_a_live_pool_is_a_mapping_conflict() {
    let path = temp_path("double");
    let _ = build_pool(&path, CommitMode::Immediate);
    let (_db, _report) = FlitDb::open(&path, policy()).unwrap();
    // The pool is mapped at its recorded base by `_db`; a second map of the
    // same file in the same process must refuse, not corrupt.
    match FlitDb::open(&path, policy()) {
        Err(OpenError::MappingConflict { .. }) => {}
        other => panic!("expected MappingConflict, got {:?}", other.map(|_| ())),
    }
    drop(_db);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_pools_yield_typed_errors_not_panics() {
    let path = temp_path("corrupt-src");
    let _ = build_pool(&path, CommitMode::Immediate);

    let case = |name: &str, clobber: &dyn Fn(&Path), check: &dyn Fn(&OpenError) -> bool| {
        let copy = temp_path(&format!("corrupt-{name}"));
        std::fs::copy(&path, &copy).unwrap();
        clobber(&copy);
        match FlitDb::open(&copy, policy()) {
            Err(e) if check(&e) => {}
            Err(e) => panic!("case {name}: wrong error: {e}"),
            Ok(_) => panic!("case {name}: opened successfully"),
        }
        let _ = std::fs::remove_file(&copy);
    };

    case(
        "bad-magic",
        &|p| write_word(p, superblock::MAGIC as u64, 0x1BAD_1BAD),
        &|e| matches!(e, OpenError::BadMagic { found: 0x1BAD_1BAD }),
    );
    case(
        "bad-version",
        &|p| write_word(p, superblock::VERSION as u64, 42),
        &|e| matches!(e, OpenError::BadVersion { found: 42, .. }),
    );
    case(
        "truncated",
        &|p| {
            let f = std::fs::OpenOptions::new().write(true).open(p).unwrap();
            f.set_len(4096).unwrap();
        },
        &|e| matches!(e, OpenError::Truncated { .. }),
    );
    case(
        "commit-compat-word",
        &|p| write_word(p, superblock::COMMIT as u64, 0x77),
        &|e| matches!(e, OpenError::CommitModeMismatch { pool: None, .. }),
    );
    case(
        "slot-size-mismatch",
        &|p| {
            let h = header_off(p);
            write_word(p, h + flit_alloc::SLOT_SIZE_OFFSET as u64, 128);
        },
        &|e| matches!(e, OpenError::SlotSizeMismatch { arena: 0, .. }),
    );
    case(
        "torn-root-entry",
        &|p| {
            let h = header_off(p);
            let table = h + flit_alloc::ROOT_TABLE_OFFSET as u64;
            let mut torn = false;
            for i in 0..flit_alloc::ROOT_CAPACITY as u64 {
                let key_off = table + i * flit_alloc::ROOT_ENTRY_BYTES as u64;
                if read_word(p, key_off) != 0 {
                    write_word(p, key_off + 8, 0);
                    torn = true;
                    break;
                }
            }
            assert!(torn, "the built pool must have a live root to tear");
        },
        &|e| matches!(e, OpenError::TornRootEntry { arena: 0, .. }),
    );
    case(
        "arena-magic",
        &|p| {
            let h = header_off(p);
            write_word(p, h + flit_alloc::MAGIC_OFFSET as u64, 0);
        },
        &|e| matches!(e, OpenError::ArenaHeader { arena: 0, .. }),
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn commit_mode_is_recorded_and_enforced() {
    let path = temp_path("commit");
    let _ = build_pool(&path, CommitMode::Batched(4));
    {
        let (db, _) = FlitDb::open(&path, policy()).unwrap();
        assert_eq!(db.commit_mode(), CommitMode::Batched(4));
    }
    match FlitDb::builder(policy())
        .commit_mode(CommitMode::Batched(9))
        .open_pool(&path)
    {
        Err(OpenError::CommitModeMismatch {
            pool: Some(CommitMode::Batched(4)),
            requested: CommitMode::Batched(9),
        }) => {}
        other => panic!("expected CommitModeMismatch, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn create_volatile_smoke() {
    let db = FlitDb::create_volatile(policy());
    assert!(!db.is_pool_backed());
    let map = Map::new(&db, 16);
    let h = db.handle();
    assert!(map.insert(&h, 1, 2));
    assert_eq!(map.get(&h, 1), Some(2));
    h.operation_completion();
    db.sync_pool().unwrap(); // no-op without a pool
}

#[test]
fn killed_process_pools_verify_against_the_prefix_model() {
    // The in-process half of the kill harness: run the child workload to
    // completion here (no fork), then verify the pool exactly as the parent
    // does after a SIGKILL — same recovery walk, same prefix scan, same GC
    // idempotence check.
    use flit_crashtest::kill::{child_main, verify_pool};
    let pool = temp_path("killmodel");
    let sidecar = temp_path("killmodel-floor");
    for commit in [CommitMode::Immediate, CommitMode::Batched(8)] {
        child_main(&pool, &sidecar, 600, commit).unwrap();
        let report = verify_pool(&pool, 600, 600).unwrap();
        assert_eq!(report.matched_prefix, 600);
        assert_eq!(report.acked_floor, 600);
    }
    let _ = std::fs::remove_file(&pool);
    let _ = std::fs::remove_file(&sidecar);
}
