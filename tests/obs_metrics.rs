//! Observability invariants across the stack (`flit-obs` + core + server):
//!
//! * counter shards written from many threads aggregate exactly, and every
//!   concurrent snapshot reads a monotonically non-decreasing value;
//! * the flight-recorder ring keeps the *last* `FLIGHT_CAPACITY` events
//!   across wraparound, in order, with honest total accounting;
//! * `Op::Stats` round-trips through the full service path
//!   ([`KvServer::pump`]): the reply is a well-formed `flit-obs-v1` document
//!   whose per-shard op counters sum to the traffic actually served;
//! * the disabled recorder is a true zero-sized no-op, the enabled one is
//!   dormant until armed, and the flight dump document reports its
//!   enablement honestly either way.

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_datastructs::{Automatic, HashTable};
use flit_obs::{FlightEventKind, FlightRecorder, FlightSink, Registry, FLIGHT_CAPACITY};
use flit_pmem::{LatencyModel, SimNvram};
use flit_server::{KvServer, Op, Reply, ServerConfig};

type Policy_ = FlitPolicy<HashedScheme, SimNvram>;
type Map_ = HashTable<Policy_, Automatic>;

fn server(shards: usize) -> KvServer<Policy_, Map_> {
    KvServer::new_with(ServerConfig::new(shards, 512), |_| {
        FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build())
    })
}

/// Writers on per-thread counter shards, snapshots racing them: every
/// snapshot is monotone, and the final aggregate is exact.
#[test]
fn concurrent_counter_shards_aggregate_exactly() {
    const WRITERS: usize = 8;
    const ADDS: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("ops", &[("kind", "test")]);

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let shard = counter.shard();
            scope.spawn(move || {
                for _ in 0..ADDS {
                    shard.add(1);
                }
            });
        }
        // Concurrent reader: the aggregate value may lag the writers but can
        // never go backwards.
        let registry = &registry;
        scope.spawn(move || {
            let mut last = 0;
            for _ in 0..100 {
                let now = registry
                    .snapshot()
                    .value("ops", &[("kind", "test")])
                    .unwrap_or(0);
                assert!(now >= last, "snapshot went backwards: {last} -> {now}");
                last = now;
                std::thread::yield_now();
            }
        });
    });

    assert_eq!(counter.value(), WRITERS as u64 * ADDS);
    assert_eq!(
        registry.snapshot().value("ops", &[("kind", "test")]),
        Some(WRITERS as u64 * ADDS)
    );
}

/// After writing several times the ring's capacity, the snapshot holds
/// exactly the last `FLIGHT_CAPACITY` events, oldest first, and the total
/// still counts every event ever recorded.
#[test]
fn flight_ring_wraparound_keeps_the_tail() {
    if !FlightRecorder::ENABLED {
        let r = FlightRecorder::new();
        r.record(FlightEventKind::Pwb, 8, 1);
        assert!(r.snapshot().is_empty(), "disabled recorder records nothing");
        return;
    }
    let r = FlightRecorder::new();
    r.arm();
    let total = 3 * FLIGHT_CAPACITY as u64 + 5;
    for i in 0..total {
        r.record(FlightEventKind::Pwb, (i * 8) as usize, i);
    }
    assert_eq!(r.total_recorded(), total);
    let tail = r.snapshot();
    assert_eq!(tail.len(), FLIGHT_CAPACITY, "ring retains exactly capacity");
    assert_eq!(tail.first().unwrap().index, total - FLIGHT_CAPACITY as u64);
    assert_eq!(tail.last().unwrap().index, total - 1);
    for (a, b) in tail.iter().zip(tail.iter().skip(1)) {
        assert_eq!(b.index, a.index + 1, "tail is in order with no gaps");
    }
    assert_eq!(tail.last().unwrap().store_version, total - 1);
}

/// `Op::Stats` through the same pump as data traffic: the reply decodes to a
/// `flit-obs-v1` document whose `server_ops_total` samples sum to the ops
/// actually served.
#[test]
fn op_stats_round_trips_through_the_pump() {
    let s = server(2);
    let hs = s.handles();

    const PUTS: u64 = 24;
    const GETS: u64 = 16;
    let mut slab = Vec::new();
    for k in 0..PUTS {
        slab.push(Op::Put(k, k * 7).encode());
    }
    for k in 0..GETS {
        slab.push(Op::Get(k).encode());
    }
    slab.push(Op::Stats.encode());

    let mut stats_body = None;
    for token in 0..slab.len() as u64 {
        let (_served, reply) = s.pump(&hs, &slab, token).expect("well-formed request");
        if token == slab.len() as u64 - 1 {
            match Reply::decode(&reply).expect("stats reply decodes") {
                Reply::Stats(body) => stats_body = Some(body),
                other => panic!("expected Reply::Stats, got {other:?}"),
            }
        }
    }
    let body = String::from_utf8(stats_body.expect("stats reply arrived")).unwrap();
    assert!(
        body.contains("\"schema\":\"flit-obs-v1\""),
        "stats body carries the schema tag: {body}"
    );

    // The structured snapshot agrees with the wire document: per-shard op
    // counters sum to the traffic served, queue depths exist per shard.
    let snap = s.stats_snapshot();
    let sum_op = |op: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|c| c.name == "server_ops_total")
            .filter(|c| c.labels.iter().any(|(k, v)| k == "op" && v == op))
            .map(|c| c.value)
            .sum()
    };
    assert_eq!(sum_op("put"), PUTS);
    assert_eq!(sum_op("get"), GETS);
    for shard in 0..2 {
        let label = shard.to_string();
        assert_eq!(
            snap.value("server_queue_depth", &[("shard", &label)]),
            Some(0),
            "mailboxes drained"
        );
    }
}

/// A database under traffic exposes its persistence counters through the
/// registry, and each handle's flight recorder holds the tail of *its own*
/// persistence-event stream (when the feature is on).
#[test]
fn database_metrics_and_flight_tails_reflect_traffic() {
    let db = FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build());
    use flit_datastructs::ConcurrentMap;
    let map = Map_::with_capacity(&db, 64);
    {
        let h = db.handle();
        h.arm_flight_recorder();
        for k in 1..=50u64 {
            map.insert(&h, k, k);
        }
        let snap = db.metrics_snapshot();
        let pwbs = snap.value("flit_pwbs_total", &[]).expect("pwbs series");
        assert!(pwbs > 0, "inserts issued write-backs");

        let events = h.flight_events();
        if FlightRecorder::ENABLED {
            assert!(!events.is_empty(), "handle recorded its persistence tail");
            assert!(events.len() <= FLIGHT_CAPACITY);
            assert!(events
                .iter()
                .any(|e| matches!(e.kind, FlightEventKind::Pwb | FlightEventKind::Store)));
        } else {
            assert!(events.is_empty());
        }
    }
    let dump = db.dump_flight_recorder();
    assert!(dump.contains("\"schema\":\"flit-obs-flight-v1\""));
    assert!(dump.contains(&format!("\"enabled\":{}", FlightRecorder::ENABLED)));
}

/// The zero-overhead guard: with the `recorder` feature off the recorder is a
/// zero-sized type, so carrying one per session costs nothing; with it on,
/// the per-handle ring costs a fixed, bounded allocation shared by clones.
#[test]
fn recorder_cost_matches_its_feature_gate() {
    if FlightRecorder::ENABLED {
        assert!(std::mem::size_of::<FlightRecorder>() > 0);
        let r = FlightRecorder::new();
        assert_eq!(r.capacity(), FLIGHT_CAPACITY);
        let clone = r.clone();
        clone.record(FlightEventKind::Pfence, 0, 9);
        assert_eq!(r.total_recorded(), 0, "rings are dormant until armed");
        r.arm();
        clone.record(FlightEventKind::Pfence, 0, 9);
        assert_eq!(r.total_recorded(), 1, "clones share one armed ring");
    } else {
        assert_eq!(
            std::mem::size_of::<FlightRecorder>(),
            0,
            "disabled recorder is a ZST"
        );
        assert_eq!(FlightRecorder::new().capacity(), 0);
    }
}
