//! Invariants of persist-epoch elision (redundant-fence and duplicate-flush
//! elision), exercised through the public API end to end.
//!
//! These are the acceptance checks of the elision work:
//! * a clean thread's shared p-store costs exactly one `pfence` (trailing only),
//!   a dirty thread's still costs two;
//! * `operation_completion` after an untagged read-only operation costs zero
//!   fences;
//! * the plain baseline's `pwb` stream (the Figure 9 quantity) is identical with
//!   and without elision;
//! * epoch state is keyed per *handle*, so two handles driven by one OS thread
//!   never cross-contaminate;
//! * elision adds no per-word layout cost: `FlitAtomic` with a table scheme stays
//!   exactly one machine word.

use flit::{FlitAtomic, FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_datastructs::{Automatic, ConcurrentMap, HashTable};
use flit_pmem::{ElisionMode, LatencyModel, PersistEpoch, PmemBackend, PmemSession, SimNvram};
use flit_workload::runner::prefill;
use flit_workload::{run_workload, WorkloadConfig};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

fn backend_with(elision: ElisionMode) -> SimNvram {
    SimNvram::builder()
        .latency(LatencyModel::none())
        .elision(elision)
        .build()
}

#[test]
fn clean_handle_p_store_pays_one_fence_dirty_handle_two() {
    let nvram = backend_with(ElisionMode::Enabled);
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let word = <HtPolicy as Policy>::Word::<u64>::new(0);

    // Clean handle: the leading fence of Algorithm 4 would persist nothing.
    word.store(&h, 1, PFlag::Persisted);
    let clean = nvram.stats().snapshot();
    assert_eq!(clean.pwbs, 1);
    assert_eq!(clean.pfences, 1, "trailing fence only");
    assert_eq!(clean.elided_pfences, 1, "the leading fence was elided");

    // Dirty handle (an unfenced pwb outstanding): the leading fence must fire.
    h.pmem().pwb(&word as *const _ as *const u8);
    word.store(&h, 2, PFlag::Persisted);
    let dirty = nvram.stats().snapshot().delta_since(&clean);
    assert_eq!(dirty.pfences, 2, "leading + trailing");
}

#[test]
fn untagged_read_only_operation_completes_with_zero_fences() {
    let nvram = backend_with(ElisionMode::Enabled);
    let db = FlitDb::flit_ht(nvram.clone());
    let h = db.handle();
    let word = <HtPolicy as Policy>::Word::<u64>::new(7);
    h.operation_completion(); // settle anything construction did
    let before = nvram.stats().snapshot();
    for _ in 0..10 {
        assert_eq!(word.load(&h, PFlag::Persisted), 7);
        h.operation_completion();
    }
    let delta = nvram.stats().snapshot().delta_since(&before);
    assert_eq!(delta.pwbs, 0, "untagged loads never flush");
    assert_eq!(delta.pfences, 0, "clean completion fences are elided");
    assert_eq!(delta.elided_pfences, 10);
}

/// Figure 9 invariance: plain opts out of read-flush dedup, so its `pwb` stream is
/// bit-identical across elision modes. Driven on bare words for a closed-form
/// expected count (map runs go through arena slots and `operation_completion`,
/// whose fence elision is exactly what the next test measures).
#[test]
fn plain_pwbs_per_op_are_unchanged_by_elision() {
    let run = |elision| {
        let nvram = backend_with(elision);
        let db = FlitDb::plain(nvram.clone());
        let h = db.handle();
        let words: Vec<_> = (0..8u64)
            .map(<flit::PlainPolicy<SimNvram> as Policy>::Word::<u64>::new)
            .collect();
        for round in 0..100u64 {
            for w in &words {
                // Repeated p-loads of the same unchanged word: exactly the pattern
                // the FliT schemes dedup — plain must keep flushing every time.
                let _ = w.load(&h, PFlag::Persisted);
                let _ = w.load(&h, PFlag::Persisted);
                if round % 10 == 0 {
                    w.store(&h, round, PFlag::Persisted);
                }
                h.operation_completion();
            }
        }
        nvram.stats().snapshot().pwbs
    };
    let pwbs_on = run(ElisionMode::Enabled);
    let pwbs_off = run(ElisionMode::Disabled);
    assert_eq!(
        pwbs_on, pwbs_off,
        "plain's pwb stream (the Figure 9 quantity) must not change under elision"
    );
    // 2 read flushes per word per round + 1 store flush per word every 10th round.
    assert_eq!(pwbs_on, 8 * (2 * 100 + 10));
}

/// And the counterpart: flit-HT's *fence* stream does change — that is the point.
#[test]
fn flit_ht_pfences_per_op_drop_under_elision() {
    let run = |elision| {
        let nvram = backend_with(elision);
        let db = FlitDb::flit_ht(nvram.clone());
        let map: HashTable<_, Automatic> = HashTable::with_capacity(&db, 256);
        // Read-mostly (95/5), the workload where elision shines.
        let cfg = WorkloadConfig::new(256, 5, 1, 4_000);
        prefill(&map, &cfg);
        let r = run_workload(&map, &cfg);
        r.pfences_per_op()
    };
    let on = run(ElisionMode::Enabled);
    let off = run(ElisionMode::Disabled);
    assert!(
        on < off / 2.0,
        "expected a large drop in pfences/op: elision {on:.3} vs literal {off:.3}"
    );
}

#[test]
fn epoch_state_is_keyed_per_handle() {
    // Two handles on one database, one OS thread: each owns its own epoch, so
    // dirtiness and elision decisions never cross-contaminate — the invariant
    // that used to be (approximately) per backend instance is now exactly per
    // explicit session.
    let nvram = backend_with(ElisionMode::Enabled);
    let db = FlitDb::flit_ht(nvram.clone());
    let ha = db.handle();
    let hb = db.handle();
    let wa = <HtPolicy as Policy>::Word::<u64>::new(0);

    // Dirty handle A on this thread (a tagged-read flush with no fence yet).
    ha.pmem().pwb(&wa as *const _ as *const u8);
    // Handle B is clean: its completion fence must elide…
    hb.operation_completion();
    assert_eq!(nvram.stats().pfences(), 0, "B must not see A's pwb");
    // …while A's must fire.
    ha.operation_completion();
    assert_eq!(nvram.stats().pfences(), 1);
    // And B's fence must not have cleaned A's epoch before A fenced.
    assert_eq!(
        nvram.stats().elided_pfences(),
        1,
        "only B's completion elided"
    );

    // Two databases on one thread keep separate epochs too (separate handles by
    // construction).
    let b2 = backend_with(ElisionMode::Enabled);
    let db2 = FlitDb::flit_ht(b2.clone());
    let h2 = db2.handle();
    h2.operation_completion();
    assert_eq!(b2.stats().pfences(), 0, "fresh handle on fresh db is clean");
}

/// The dedup ABA window is closed (ROADMAP, PR 3): every dedup entry carries the
/// backend's store version at flush time, and a hit requires the version to be
/// unchanged. Any store recorded in between — such as a remote thread's
/// overwrite-and-restore of the very word being deduped — invalidates the entry,
/// so the stale-snapshot elision can no longer happen. Unconditionally sound.
#[test]
fn dedup_entries_are_invalidated_by_any_intervening_store() {
    let nvram = backend_with(ElisionMode::Enabled);
    let epoch = PersistEpoch::new();
    let s = PmemSession::for_backend(&nvram, &epoch);
    let x = 7u64;
    let addr = &x as *const u64 as *const u8;

    assert!(s.pwb_dedup(addr, 7), "first flush is real");
    assert!(
        !s.pwb_dedup(addr, 7),
        "same epoch, no intervening store: dedup hit"
    );

    // A "remote" overwrite-and-restore: two stores recorded through the backend
    // without any fence on this handle. The observed value is unchanged, but the
    // store version is not — the dedup entry must be dead.
    let y = 0u64;
    s.record_store(&y as *const u64 as *const u8, 1);
    s.record_store(&y as *const u64 as *const u8, 7);
    assert!(
        s.pwb_dedup(addr, 7),
        "a version bump must force a re-flush: the ABA window is closed"
    );
    assert_eq!(nvram.stats().elided_pwbs(), 1, "exactly one (sound) dedup");

    // Version stamping composes with tracking backends too: there the stamp is
    // the tracker's own store counter.
    let tracked = SimNvram::for_crash_testing();
    let te = PersistEpoch::new();
    let ts = PmemSession::for_backend(&tracked, &te);
    let z = 3u64;
    let zaddr = &z as *const u64 as *const u8;
    assert!(ts.pwb_dedup(zaddr, 3));
    assert!(!ts.pwb_dedup(zaddr, 3));
    ts.record_store(&y as *const u64 as *const u8, 9);
    assert!(ts.pwb_dedup(zaddr, 3), "tracker version bump re-flushes");
}

#[test]
fn elision_adds_no_per_word_layout_cost() {
    assert_eq!(
        std::mem::size_of::<FlitAtomic<u64, HashedScheme, SimNvram>>(),
        8,
        "table-scheme FliT words must stay exactly one machine word"
    );
}
