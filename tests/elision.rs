//! Invariants of persist-epoch elision (redundant-fence and duplicate-flush
//! elision), exercised through the public API end to end.
//!
//! These are the acceptance checks of the elision work:
//! * a clean thread's shared p-store costs exactly one `pfence` (trailing only),
//!   a dirty thread's still costs two;
//! * `operation_completion` after an untagged read-only operation costs zero
//!   fences;
//! * the plain baseline's `pwb` stream (the Figure 9 quantity) is identical with
//!   and without elision;
//! * epoch state is keyed per backend instance, so two backends driven by one
//!   thread never cross-contaminate;
//! * elision adds no per-word layout cost: `FlitAtomic` with a table scheme stays
//!   exactly one machine word.

use flit::{presets, FlitAtomic, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
use flit_datastructs::{Automatic, ConcurrentMap, HashTable};
use flit_pmem::{ElisionMode, LatencyModel, PmemBackend, SimNvram};
use flit_workload::runner::prefill;
use flit_workload::{run_workload, WorkloadConfig};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

fn backend_with(elision: ElisionMode) -> SimNvram {
    SimNvram::builder()
        .latency(LatencyModel::none())
        .elision(elision)
        .build()
}

#[test]
fn clean_thread_p_store_pays_one_fence_dirty_thread_two() {
    let nvram = backend_with(ElisionMode::Enabled);
    let policy = presets::flit_ht(nvram.clone());
    let word = <HtPolicy as Policy>::Word::<u64>::new(0);

    // Clean thread: the leading fence of Algorithm 4 would persist nothing.
    word.store(&policy, 1, PFlag::Persisted);
    let clean = nvram.stats().snapshot();
    assert_eq!(clean.pwbs, 1);
    assert_eq!(clean.pfences, 1, "trailing fence only");
    assert_eq!(clean.elided_pfences, 1, "the leading fence was elided");

    // Dirty thread (an unfenced pwb outstanding): the leading fence must fire.
    nvram.pwb(&word as *const _ as *const u8);
    word.store(&policy, 2, PFlag::Persisted);
    let dirty = nvram.stats().snapshot().delta_since(&clean);
    assert_eq!(dirty.pfences, 2, "leading + trailing");
}

#[test]
fn untagged_read_only_operation_completes_with_zero_fences() {
    let nvram = backend_with(ElisionMode::Enabled);
    let policy = presets::flit_ht(nvram.clone());
    let word = <HtPolicy as Policy>::Word::<u64>::new(7);
    policy.operation_completion(); // settle anything construction did
    let before = nvram.stats().snapshot();
    for _ in 0..10 {
        assert_eq!(word.load(&policy, PFlag::Persisted), 7);
        policy.operation_completion();
    }
    let delta = nvram.stats().snapshot().delta_since(&before);
    assert_eq!(delta.pwbs, 0, "untagged loads never flush");
    assert_eq!(delta.pfences, 0, "clean completion fences are elided");
    assert_eq!(delta.elided_pfences, 10);
}

/// Figure 9 invariance: plain opts out of read-flush dedup, so its `pwb` stream is
/// bit-identical across elision modes. Driven on bare words for a closed-form
/// expected count (map runs go through arena slots and `operation_completion`,
/// whose fence elision is exactly what the next test measures).
#[test]
fn plain_pwbs_per_op_are_unchanged_by_elision() {
    let run = |elision| {
        let nvram = backend_with(elision);
        let policy = presets::plain(nvram.clone());
        let words: Vec<_> = (0..8u64)
            .map(<flit::PlainPolicy<SimNvram> as Policy>::Word::<u64>::new)
            .collect();
        for round in 0..100u64 {
            for w in &words {
                // Repeated p-loads of the same unchanged word: exactly the pattern
                // the FliT schemes dedup — plain must keep flushing every time.
                let _ = w.load(&policy, PFlag::Persisted);
                let _ = w.load(&policy, PFlag::Persisted);
                if round % 10 == 0 {
                    w.store(&policy, round, PFlag::Persisted);
                }
                policy.operation_completion();
            }
        }
        nvram.stats().snapshot().pwbs
    };
    let pwbs_on = run(ElisionMode::Enabled);
    let pwbs_off = run(ElisionMode::Disabled);
    assert_eq!(
        pwbs_on, pwbs_off,
        "plain's pwb stream (the Figure 9 quantity) must not change under elision"
    );
    // 2 read flushes per word per round + 1 store flush per word every 10th round.
    assert_eq!(pwbs_on, 8 * (2 * 100 + 10));
}

/// And the counterpart: flit-HT's *fence* stream does change — that is the point.
#[test]
fn flit_ht_pfences_per_op_drop_under_elision() {
    let run = |elision| {
        let nvram = backend_with(elision);
        let policy = presets::flit_ht(nvram.clone());
        let map: HashTable<_, Automatic> = HashTable::with_capacity(policy, 256);
        // Read-mostly (95/5), the workload where elision shines.
        let cfg = WorkloadConfig::new(256, 5, 1, 4_000);
        prefill(&map, &cfg);
        let r = run_workload(&map, &cfg);
        r.pfences_per_op()
    };
    let on = run(ElisionMode::Enabled);
    let off = run(ElisionMode::Disabled);
    assert!(
        on < off / 2.0,
        "expected a large drop in pfences/op: elision {on:.3} vs literal {off:.3}"
    );
}

#[test]
fn epoch_state_is_keyed_per_backend_instance() {
    let a = backend_with(ElisionMode::Enabled);
    let b = backend_with(ElisionMode::Enabled);
    let pa = presets::flit_ht(a.clone());
    let pb = presets::flit_ht(b.clone());
    let wa = <HtPolicy as Policy>::Word::<u64>::new(0);

    // Dirty backend A on this thread (a tagged-read flush with no fence yet).
    a.pwb(&wa as *const _ as *const u8);
    // Backend B is clean: its completion fence must elide…
    pb.operation_completion();
    assert_eq!(b.stats().pfences(), 0, "B must not see A's pwb");
    // …while A's must fire.
    pa.operation_completion();
    assert_eq!(a.stats().pfences(), 1);
    // And B's fence must not have cleaned A's epoch before A fenced.
    assert_eq!(a.stats().elided_pfences(), 0);
}

/// The dedup ABA window is closed (ROADMAP, PR 3): every dedup entry carries the
/// backend's store version at flush time, and a hit requires the version to be
/// unchanged. Any store recorded in between — such as a remote thread's
/// overwrite-and-restore of the very word being deduped — invalidates the entry,
/// so the stale-snapshot elision can no longer happen. Unconditionally sound.
#[test]
fn dedup_entries_are_invalidated_by_any_intervening_store() {
    let nvram = backend_with(ElisionMode::Enabled);
    let x = 7u64;
    let addr = &x as *const u64 as *const u8;

    assert!(nvram.pwb_dedup(addr, 7), "first flush is real");
    assert!(
        !nvram.pwb_dedup(addr, 7),
        "same epoch, no intervening store: dedup hit"
    );

    // A "remote" overwrite-and-restore: two stores recorded through the backend
    // without any fence on this thread. The observed value is unchanged, but the
    // store version is not — the dedup entry must be dead.
    let y = 0u64;
    nvram.record_store(&y as *const u64 as *const u8, 1);
    nvram.record_store(&y as *const u64 as *const u8, 7);
    assert!(
        nvram.pwb_dedup(addr, 7),
        "a version bump must force a re-flush: the ABA window is closed"
    );
    assert_eq!(nvram.stats().elided_pwbs(), 1, "exactly one (sound) dedup");

    // Version stamping composes with tracking backends too: there the stamp is
    // the tracker's own store counter.
    let tracked = SimNvram::for_crash_testing();
    let z = 3u64;
    let zaddr = &z as *const u64 as *const u8;
    assert!(tracked.pwb_dedup(zaddr, 3));
    assert!(!tracked.pwb_dedup(zaddr, 3));
    tracked.record_store(&y as *const u64 as *const u8, 9);
    assert!(
        tracked.pwb_dedup(zaddr, 3),
        "tracker version bump re-flushes"
    );
}

#[test]
fn elision_adds_no_per_word_layout_cost() {
    assert_eq!(
        std::mem::size_of::<FlitAtomic<u64, HashedScheme, SimNvram>>(),
        8,
        "table-scheme FliT words must stay exactly one machine word"
    );
}
