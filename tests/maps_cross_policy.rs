//! End-to-end integration tests: every data structure, under every durability method
//! and persistence policy, behaves like a map — sequentially against a model, and
//! without losing keys under concurrency.

use flit::{FlitDb, Policy};
use flit_datastructs::{
    Automatic, ConcurrentMap, Durability, HarrisList, HashTable, Manual, NatarajanTree, NvTraverse,
    SequentialMap, SkipList,
};
use flit_pmem::{LatencyModel, SimNvram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn backend() -> SimNvram {
    SimNvram::builder().latency(LatencyModel::none()).build()
}

/// Random mixed workload against the sequential model.
fn model_check<P: Policy, M: ConcurrentMap<P>>(db: &FlitDb<P>, seed: u64) {
    let map = M::with_capacity(db, 128);
    let h = db.handle();
    let model = SequentialMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..3_000 {
        let key = rng.gen_range(0..96u64);
        match rng.gen_range(0..3u32) {
            0 => assert_eq!(map.insert(&h, key, key * 7), model.insert(key, key * 7)),
            1 => assert_eq!(map.remove(&h, key), model.remove(key)),
            _ => assert_eq!(map.get(&h, key), model.get(key)),
        }
    }
    assert_eq!(map.len(), model.len());
}

fn model_check_all_durabilities<P: Policy>(mk: impl Fn() -> FlitDb<P>) {
    fn for_dur<P: Policy, D: Durability>(db: FlitDb<P>) {
        model_check::<P, HarrisList<P, D>>(&db, 1);
        model_check::<P, HashTable<P, D>>(&db, 2);
        model_check::<P, NatarajanTree<P, D>>(&db, 3);
        model_check::<P, SkipList<P, D>>(&db, 4);
    }
    for_dur::<P, Automatic>(mk());
    for_dur::<P, NvTraverse>(mk());
    for_dur::<P, Manual>(mk());
}

#[test]
fn all_structures_match_the_model_with_flit_ht() {
    model_check_all_durabilities(|| FlitDb::flit_ht(backend()));
}

#[test]
fn all_structures_match_the_model_with_flit_adjacent() {
    model_check_all_durabilities(|| FlitDb::flit_adjacent(backend()));
}

#[test]
fn all_structures_match_the_model_with_plain() {
    model_check_all_durabilities(|| FlitDb::plain(backend()));
}

#[test]
fn all_structures_match_the_model_with_cacheline_counters() {
    model_check_all_durabilities(|| FlitDb::flit_cacheline(backend()));
}

#[test]
fn all_structures_match_the_model_with_no_persist() {
    model_check_all_durabilities(FlitDb::no_persist);
}

#[test]
fn list_skiplist_hashtable_match_the_model_with_link_and_persist() {
    // The BST is excluded, as in the paper: it needs both low pointer bits.
    let mk = || FlitDb::link_and_persist(backend());
    model_check::<_, HarrisList<_, Automatic>>(&mk(), 11);
    model_check::<_, SkipList<_, Automatic>>(&mk(), 12);
    model_check::<_, HashTable<_, Automatic>>(&mk(), 13);
    model_check::<_, HarrisList<_, Manual>>(&mk(), 14);
}

/// Concurrency: disjoint key ranges per thread must never lose or invent keys.
fn concurrent_check<P: Policy, M: ConcurrentMap<P> + 'static>(db: &FlitDb<P>) {
    let map = std::sync::Arc::new(M::with_capacity(db, 4096));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = std::sync::Arc::clone(&map);
            s.spawn(move || {
                let h = map.db().handle();
                let base = t * 1_000;
                for k in base..base + 250 {
                    assert!(map.insert(&h, k, k + 1));
                }
                for k in (base..base + 250).step_by(5) {
                    assert!(map.remove(&h, k));
                }
            });
        }
    });
    let h = db.handle();
    assert_eq!(map.len(), 4 * 200);
    for t in 0..4u64 {
        let base = t * 1_000;
        assert_eq!(map.get(&h, base), None);
        assert_eq!(map.get(&h, base + 1), Some(base + 2));
    }
}

#[test]
fn concurrent_consistency_across_structures() {
    concurrent_check::<_, HarrisList<_, Automatic>>(&FlitDb::flit_ht(backend()));
    concurrent_check::<_, HashTable<_, NvTraverse>>(&FlitDb::flit_ht(backend()));
    concurrent_check::<_, NatarajanTree<_, Manual>>(&FlitDb::flit_adjacent(backend()));
    concurrent_check::<_, SkipList<_, Automatic>>(&FlitDb::link_and_persist(backend()));
}
