//! Arena-recovery invariants (`flit-alloc` × `flit-crashtest`):
//!
//! 1. **Construction-window sweeps** — crash at *every* event during construction
//!    of each structure recovers to a consistent prefix (the empty structure),
//!    purely from the frozen image + the arena's recovery-root table;
//! 2. **Absolute-index stability** — two identical runs produce byte-identical
//!    event spans and repro strings, because arena slots make every flush's
//!    cache-line count layout-independent;
//! 3. **Image-only recovery** — recovery works from the arena + image alone, with
//!    the structure's root absent (mid-construction) yielding the empty state and
//!    the arena header reachable at every point.

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_crashtest::{run_case, HistorySpec, MethodKind, PolicyKind, StructureKind, SweepSettings};
use flit_datastructs::{Automatic, ConcurrentMap, HarrisList};
use flit_pmem::{CrashPlan, ElisionMode, SimNvram};

type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

/// A short seeded history: enough churn to cross every state transition, short
/// enough that an every-event sweep (construction included) stays fast.
const SPEC: HistorySpec = HistorySpec::Random {
    seed: 0xa110c,
    ops: 6,
    key_range: 4,
};

fn exhaustive() -> SweepSettings {
    SweepSettings {
        budget: 0,
        ..Default::default()
    }
}

/// Crash at every event — construction window included — for every structure:
/// zero violations, and the sweep demonstrably covered the construction window.
#[test]
fn construction_window_sweep_is_clean_for_every_structure() {
    for structure in StructureKind::ALL {
        let report = run_case(
            structure,
            MethodKind::Automatic,
            PolicyKind::FlitHt,
            SPEC,
            &exhaustive(),
        )
        .expect("supported combination");
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
        assert!(
            report.events_construction > 0,
            "{}: construction generates persistence events (arena header, roots, sentinels)",
            report.case.id()
        );
        // Every absolute index 0..=total was injected: the construction window
        // (0..events_construction) is part of the sweep, not skipped.
        assert_eq!(report.points_tested as u64, report.events_total + 1);
    }
}

/// Two identical runs of one seeded case must agree byte-for-byte: same event
/// span, same construction count, and identical repro strings for every tested
/// crash index. This is the property that makes repro strings portable across
/// runs and machines (ROADMAP "event-stream stability", closed by arena
/// allocation).
#[test]
fn identical_runs_produce_byte_identical_repro_strings() {
    let run = || {
        let report = run_case(
            StructureKind::List,
            MethodKind::Automatic,
            PolicyKind::FlitHt,
            SPEC,
            &exhaustive(),
        )
        .expect("supported combination");
        assert!(report.clean(), "first violation: {}", report.violations[0]);
        // Render the complete repro-string set of this sweep.
        let repros: Vec<String> = (0..=report.events_total)
            .map(|k| report.case.repro(k))
            .collect();
        (
            report.events_construction,
            report.events_total,
            report.points_tested,
            repros.join("\n"),
        )
    };
    let (constr_a, total_a, points_a, repros_a) = run();
    let (constr_b, total_b, points_b, repros_b) = run();
    assert_eq!(constr_a, constr_b, "construction event count drifted");
    assert_eq!(total_a, total_b, "total event count drifted");
    assert_eq!(points_a, points_b);
    assert_eq!(repros_a, repros_b, "repro strings are not byte-identical");
}

/// Stability across structures and the paper-literal stream too: the absolute
/// event span of every (structure, elision) combination is a pure function of the
/// case, not of allocator layout.
#[test]
fn event_spans_are_stable_for_every_structure_and_stream() {
    for structure in StructureKind::ALL {
        for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
            let settings = SweepSettings {
                budget: 1, // spans come from the counting pass; one point suffices
                elision,
                ..Default::default()
            };
            let spans = |_: ()| {
                let r = run_case(
                    structure,
                    MethodKind::Automatic,
                    PolicyKind::FlitHt,
                    SPEC,
                    &settings,
                )
                .expect("supported combination");
                (r.events_construction, r.events_total)
            };
            assert_eq!(
                spans(()),
                spans(()),
                "{}/elision-{} span drifted between runs",
                structure.name(),
                elision.name()
            );
        }
    }
}

/// Direct image-only recovery through a mid-construction crash: the frozen image
/// holds a valid arena header (reachable from offset 0) but no recovery root yet,
/// so recovery yields the empty structure — the exact contract the engine's
/// construction-window check relies on.
#[test]
fn mid_construction_image_recovers_to_the_empty_structure() {
    // Crash three events into construction: the arena header is being written.
    let plan = CrashPlan::armed_at(3);
    let nvram = SimNvram::for_crash_testing_with_plan(plan.clone());
    let db = FlitDb::flit_ht(nvram.clone());
    let list: HarrisList<HtPolicy, Automatic> = HarrisList::new(&db);
    assert!(plan.triggered(), "construction generates > 3 events");
    let image = plan.crash_image().expect("image frozen mid-construction");

    let rec = HarrisList::<HtPolicy, Automatic>::recover_in_image(list.arena(), &image);
    assert!(rec.pairs.is_empty(), "nothing durable yet: empty list");
    assert!(!rec.truncated, "an absent root is not a truncation");

    // After the run the full construction is durable: the header is initialised
    // and the root resolves in the final image.
    let final_image = nvram.tracker().unwrap().crash_image();
    assert!(list.arena().image_header(&final_image).initialised);
    let rec = HarrisList::<HtPolicy, Automatic>::recover_in_image(list.arena(), &final_image);
    assert!(rec.pairs.is_empty() && !rec.truncated);

    // And a populated list recovers image-only, no live reads.
    let h = db.handle();
    assert!(list.insert(&h, 9, 90));
    assert!(list.insert(&h, 2, 20));
    let image = nvram.tracker().unwrap().crash_image();
    let rec = HarrisList::<HtPolicy, Automatic>::recover_in_image(list.arena(), &image);
    assert_eq!(rec.sorted_pairs(), vec![(2, 20), (9, 90)]);
}
