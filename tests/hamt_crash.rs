//! HAMT crash-consistency (`flit-hamt` × `flit-crashtest`):
//!
//! 1. **Every-event sweeps** in both elision modes are clean — the MOD
//!    copy-on-write discipline (pwbs only along the new path, one pre-publish
//!    fence, one flushed CAS on the recovery root) is durably linearizable at
//!    every persistence event, construction window included;
//! 2. **Construction-window crashes recover to empty** — an image frozen
//!    before the root cell became durable must yield the empty trie;
//! 3. **Snapshot consistency** — a snapshot taken mid-history and held across
//!    the crash replays to *exactly* its frozen contents from the persisted
//!    retained-root table, at every crash point past its completion fence;
//! 4. **The broken control fails** — `BrokenHamt` skips the post-CAS root
//!    flush (and the read-side help-flush), so its sweeps must report lost
//!    operations with complete repro strings. A control that passes means the
//!    harness can no longer see the one flush MOD's correctness hinges on.

use flit::CommitMode;
use flit_crashtest::{
    run_case, run_hamt_snapshot_case, HistorySpec, MethodKind, PolicyKind, StructureKind,
    SweepSettings, SNAPSHOT_STRUCTURE,
};
use flit_pmem::ElisionMode;

/// The scripted history: ten inserts, interleaved removes, re-insertion over a
/// removed key, drain, then a fresh batch — it exercises split, contraction
/// and COW re-insertion, and (because inserts *accumulate*) leaves no crash
/// point where the empty trie is an admissible prefix state. That last
/// property is what gives the broken control teeth: a remove-heavy history can
/// let a structure that loses everything pass, because `state(n)` is empty for
/// some admissible `n` at every point.
const SPEC: HistorySpec = HistorySpec::Scripted;

/// A seeded random history (mixed inserts/removes/gets) for stream diversity.
const RANDOM_SPEC: HistorySpec = HistorySpec::Random {
    seed: 0x4a37,
    ops: 12,
    key_range: 6,
};

fn exhaustive(elision: ElisionMode) -> SweepSettings {
    SweepSettings {
        budget: 0,
        elision,
        ..Default::default()
    }
}

#[test]
fn every_event_sweep_is_clean_in_both_elision_modes() {
    for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
        for (policy, spec) in [
            (PolicyKind::Plain, SPEC),
            (PolicyKind::FlitHt, SPEC),
            (PolicyKind::FlitHt, RANDOM_SPEC),
        ] {
            let report = run_case(
                StructureKind::Hamt,
                MethodKind::Automatic,
                policy,
                spec,
                &exhaustive(elision),
            )
            .expect("the HAMT supports every policy");
            assert!(
                report.clean(),
                "{}: first violation: {}",
                report.case.id(),
                report.violations[0]
            );
            // The sweep covered every absolute event index, construction
            // window included — nothing was skipped.
            assert!(report.events_construction > 0);
            assert_eq!(report.points_tested as u64, report.events_total + 1);
        }
    }
}

/// The traversal-phase durability methods do not apply to the HAMT (it has its
/// own discipline); the matrix must skip them like an unsupported policy.
#[test]
fn traversal_methods_do_not_apply() {
    for method in [MethodKind::NvTraverse, MethodKind::Manual] {
        assert!(run_case(
            StructureKind::Hamt,
            method,
            PolicyKind::FlitHt,
            SPEC,
            &exhaustive(ElisionMode::Enabled),
        )
        .is_none());
    }
}

/// Pin single crash points inside the construction window: recovery must yield
/// the empty trie (the engine's construction-window check admits only that).
#[test]
fn construction_window_crashes_recover_to_empty() {
    let probe = run_case(
        StructureKind::Hamt,
        MethodKind::Automatic,
        PolicyKind::FlitHt,
        SPEC,
        &SweepSettings {
            budget: 1,
            ..Default::default()
        },
    )
    .expect("supported");
    assert!(probe.events_construction > 0);
    for k in [
        0,
        probe.events_construction / 2,
        probe.events_construction - 1,
    ] {
        let report = run_case(
            StructureKind::Hamt,
            MethodKind::Automatic,
            PolicyKind::FlitHt,
            SPEC,
            &SweepSettings {
                crash_at: Some(k),
                ..Default::default()
            },
        )
        .expect("supported");
        assert!(
            report.clean(),
            "construction-window crash at {k}: {}",
            report.violations[0]
        );
    }
}

/// The snapshot-consistency acceptance check: a snapshot taken before the crash point must
/// replay to exactly its frozen contents — under both elision modes, and under
/// a batched commit (where the weaker if-present-then-exact contract applies).
#[test]
fn snapshot_taken_before_the_crash_replays_to_its_frozen_contents() {
    for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
        let report = run_hamt_snapshot_case(PolicyKind::FlitHt, SPEC, &exhaustive(elision));
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
        assert_eq!(report.case.structure, SNAPSHOT_STRUCTURE);
        assert_eq!(report.points_tested as u64, report.events_total + 1);
    }
    let batched = run_hamt_snapshot_case(
        PolicyKind::Plain,
        SPEC,
        &SweepSettings {
            budget: 0,
            commit: CommitMode::Batched(4),
            ..Default::default()
        },
    );
    assert!(
        batched.clean(),
        "batched: first violation: {}",
        batched.violations[0]
    );
}

/// The in-process half of the snapshot kill harness: run the HAMT kill-child
/// workload to completion here (no fork) and verify the pool exactly as the
/// parent does after a SIGKILL — recovery walk, prefix scan, retained-root
/// table, GC idempotence. A clean run must leave the table empty; a pool
/// abandoned while a snapshot is still live must replay that snapshot to
/// exactly its frozen contents.
#[test]
fn killtest_harness_verifies_hamt_pools_in_process() {
    use flit_crashtest::kill::{
        child_main_hamt, kill_policy, verify_hamt_pool, KillHamt, KillViolation,
    };

    let dir = std::env::temp_dir();
    let pool = dir.join(format!("flit-hamt-kill-{}.pool", std::process::id()));
    let sidecar = dir.join(format!("flit-hamt-kill-{}.floor", std::process::id()));
    let _ = std::fs::remove_file(&pool);
    let _ = std::fs::remove_file(&sidecar);

    // Clean completion: the child drops its snapshot, so the reopened table
    // must be empty and the full 600-op prefix must match.
    for commit in [CommitMode::Immediate, CommitMode::Batched(8)] {
        child_main_hamt(&pool, &sidecar, 600, commit, 200).unwrap();
        let report = verify_hamt_pool(&pool, 600, 600, 200, true).unwrap();
        assert_eq!(report.matched_prefix, 600);
        assert_eq!(report.acked_floor, 600);
    }

    // Abandoned snapshot: replicate the child workload, take the snapshot at
    // op 200 and *leak* it (no release), keep mutating to op 600, then drop
    // the pool as-is. The reopened table must hold exactly one snapshot and
    // it must replay to the model state after 200 ops — the COW paths the
    // later 400 operations superseded stay pinned.
    {
        let db = flit::FlitDb::builder(kill_policy())
            .create_pool(&pool)
            .unwrap();
        let map = KillHamt::with_config(
            &db,
            600,
            flit_alloc::ArenaConfig::with_slots_per_chunk(2048),
        );
        let h = db.handle();
        for j in 1..=600u64 {
            if j % 7 == 0 {
                map.remove(&h, j - 3);
            } else {
                map.insert(&h, j, 3 * j + 1);
            }
            if j == 200 {
                std::mem::forget(map.snapshot(&h));
            }
        }
    }
    let report = verify_hamt_pool(&pool, 600, 0, 200, false).unwrap();
    assert_eq!(report.matched_prefix, 600);
    // The same pool fails verification when told the snapshot should have
    // been released — the check has teeth in both directions.
    assert!(matches!(
        verify_hamt_pool(&pool, 600, 0, 200, true),
        Err(KillViolation::SnapshotCheck(_))
    ));

    let _ = std::fs::remove_file(&pool);
    let _ = std::fs::remove_file(&sidecar);
}

/// The control that must fail: skipping the post-CAS root flush makes every
/// published update volatile, and the sweep must see completed operations
/// vanish — with a complete repro string naming the hamt case.
#[test]
fn skipping_the_root_flush_is_caught_with_a_repro_string() {
    for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
        let report = run_case(
            StructureKind::Hamt,
            MethodKind::VolatileBroken,
            PolicyKind::FlitHt,
            SPEC,
            &exhaustive(elision),
        )
        .expect("supported");
        assert!(
            !report.clean(),
            "HARNESS BUG: the missing-root-flush control swept clean ({})",
            report.case.id()
        );
        let v = &report.violations[0];
        assert!(
            v.repro.contains("--structures hamt") && v.repro.contains("--crash-at"),
            "repro string must replay the hamt case: {}",
            v.repro
        );
    }
}
