//! Criterion wrapper around a miniature version of the Figure 7 comparison, useful
//! for regression-tracking the end-to-end benefit of FliT (plain vs flit-HT vs
//! non-persistent) with the Optane-like latency model enabled.
//!
//! The full figures are produced by the `repro` binary; this bench intentionally uses
//! a tiny workload so `cargo bench --workspace` stays fast.

use criterion::{criterion_group, criterion_main, Criterion};
use flit_pmem::{CommitMode, ElisionMode, LatencyModel};
use flit_workload::{run_case, Case, DsKind, DurKind, PolicyKind, WorkloadConfig};

fn mini_case(ds: DsKind, policy: PolicyKind) -> Case {
    Case {
        ds,
        dur: DurKind::Automatic,
        policy,
        config: WorkloadConfig::new(512, 5, 2, 300),
        latency: LatencyModel::optane(),
        elision: ElisionMode::default(),
        commit: CommitMode::Immediate,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7-mini");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for ds in [DsKind::Bst, DsKind::List] {
        for policy in [
            PolicyKind::NoPersist,
            PolicyKind::Plain,
            PolicyKind::FlitHt(1 << 20),
        ] {
            let case = mini_case(ds, policy);
            let label = case.label();
            group.bench_function(&label, |b| b.iter(|| run_case(&case)));
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
