//! Criterion micro-benchmarks of the primitive flit-instructions and of single queue
//! operations.
//!
//! These measure the library's own overhead (tag check, counter update), so the
//! simulated-NVRAM latency is set to zero: what remains is exactly the cost a data
//! structure pays per instrumented instruction on top of the raw atomic. The
//! `queue-ops` group measures one enqueue+dequeue pair and the dequeue-of-empty
//! read-only path per policy preset.

use criterion::{criterion_group, criterion_main, Criterion};
use flit::{FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, PlainPolicy, Policy};
use flit_datastructs::Automatic;
use flit_pmem::{LatencyModel, SimNvram};
use flit_queues::{ConcurrentQueue, MsQueue};
use std::hint::black_box;

fn backend() -> SimNvram {
    SimNvram::builder()
        .latency(LatencyModel::none())
        .count_stats(false)
        .build()
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));

    // flit-HT
    let ht_db = FlitDb::flit_ht(backend());
    let ht = ht_db.handle();
    let w_ht = <FlitPolicy<HashedScheme, SimNvram> as Policy>::Word::<u64>::new(1);
    group.bench_function("flit-HT/p-load-untagged", |b| {
        b.iter(|| black_box(w_ht.load(&ht, PFlag::Persisted)))
    });
    group.bench_function("flit-HT/v-load", |b| {
        b.iter(|| black_box(w_ht.load(&ht, PFlag::Volatile)))
    });
    group.bench_function("flit-HT/p-store", |b| {
        b.iter(|| w_ht.store(&ht, black_box(7), PFlag::Persisted))
    });

    // flit-adjacent
    let adj_db = FlitDb::flit_adjacent(backend());
    let adj = adj_db.handle();
    let w_adj = <flit::FlitPolicy<flit::AdjacentScheme, SimNvram> as Policy>::Word::<u64>::new(1);
    group.bench_function("flit-adjacent/p-load-untagged", |b| {
        b.iter(|| black_box(w_adj.load(&adj, PFlag::Persisted)))
    });
    group.bench_function("flit-adjacent/p-store", |b| {
        b.iter(|| w_adj.store(&adj, black_box(7), PFlag::Persisted))
    });

    // plain
    let plain_db = FlitDb::plain(backend());
    let plain = plain_db.handle();
    let w_plain = <PlainPolicy<SimNvram> as Policy>::Word::<u64>::new(1);
    group.bench_function("plain/p-load", |b| {
        b.iter(|| black_box(w_plain.load(&plain, PFlag::Persisted)))
    });
    group.bench_function("plain/p-store", |b| {
        b.iter(|| w_plain.store(&plain, black_box(7), PFlag::Persisted))
    });

    // link-and-persist
    let lp_db = FlitDb::link_and_persist(backend());
    let lp = lp_db.handle();
    let w_lp = <flit::LinkAndPersistPolicy<SimNvram> as Policy>::Word::<u64>::new(1);
    group.bench_function("link-and-persist/p-load-clean", |b| {
        b.iter(|| black_box(w_lp.load(&lp, PFlag::Persisted)))
    });
    group.bench_function("link-and-persist/p-store", |b| {
        b.iter(|| w_lp.store(&lp, black_box(7), PFlag::Persisted))
    });

    // non-persistent baseline
    let np_db = FlitDb::no_persist();
    let np = np_db.handle();
    let w_np = <flit::NoPersistPolicy as Policy>::Word::<u64>::new(1);
    group.bench_function("non-persistent/load", |b| {
        b.iter(|| black_box(w_np.load(&np, PFlag::Persisted)))
    });
    group.bench_function("non-persistent/store", |b| {
        b.iter(|| w_np.store(&np, black_box(7), PFlag::Persisted))
    });

    group.finish();
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue-ops");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));

    // Enqueue+dequeue pair: the steady-state cost of one value through the queue.
    let ht_db = FlitDb::flit_ht(backend());
    let h_ht = ht_db.handle();
    let ht: MsQueue<FlitPolicy<HashedScheme, SimNvram>, Automatic> = MsQueue::in_db(&ht_db);
    group.bench_function("flit-HT/enqueue-dequeue", |b| {
        b.iter(|| {
            ht.enqueue(&h_ht, black_box(7));
            black_box(ht.dequeue(&h_ht))
        })
    });

    let plain_db = FlitDb::plain(backend());
    let h_plain = plain_db.handle();
    let plain: MsQueue<PlainPolicy<SimNvram>, Automatic> = MsQueue::in_db(&plain_db);
    group.bench_function("plain/enqueue-dequeue", |b| {
        b.iter(|| {
            plain.enqueue(&h_plain, black_box(7));
            black_box(plain.dequeue(&h_plain))
        })
    });

    let np_db = FlitDb::no_persist();
    let h_np = np_db.handle();
    let np: MsQueue<flit::NoPersistPolicy, Automatic> = MsQueue::in_db(&np_db);
    group.bench_function("non-persistent/enqueue-dequeue", |b| {
        b.iter(|| {
            np.enqueue(&h_np, black_box(7));
            black_box(np.dequeue(&h_np))
        })
    });

    // Dequeue-of-empty: pure read-side path, where FliT elides every flush and the
    // plain transformation pays a pwb per p-load.
    let ht_empty_db = FlitDb::flit_ht(backend());
    let h_ht_empty = ht_empty_db.handle();
    let ht_empty: MsQueue<FlitPolicy<HashedScheme, SimNvram>, Automatic> =
        MsQueue::in_db(&ht_empty_db);
    group.bench_function("flit-HT/dequeue-empty", |b| {
        b.iter(|| black_box(ht_empty.dequeue(&h_ht_empty)))
    });
    let plain_empty_db = FlitDb::plain(backend());
    let h_plain_empty = plain_empty_db.handle();
    let plain_empty: MsQueue<PlainPolicy<SimNvram>, Automatic> = MsQueue::in_db(&plain_empty_db);
    group.bench_function("plain/dequeue-empty", |b| {
        b.iter(|| black_box(plain_empty.dequeue(&h_plain_empty)))
    });

    group.finish();
}

criterion_group!(benches, bench_primitives, bench_queue_ops);
criterion_main!(benches);
