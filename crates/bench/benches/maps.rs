//! Criterion benchmarks of single-threaded map operations per structure and policy.
//!
//! Latency model set to zero so the numbers isolate the instrumentation overhead of
//! each persistence variant on real data-structure code paths.

use criterion::{criterion_group, criterion_main, Criterion};
use flit::{FlitDb, FlitPolicy, HashedScheme, PlainScheme};
use flit_datastructs::{Automatic, ConcurrentMap, HarrisList, HashTable, NatarajanTree, SkipList};
use flit_pmem::{LatencyModel, SimNvram};
use std::hint::black_box;

fn backend() -> SimNvram {
    SimNvram::builder()
        .latency(LatencyModel::none())
        .count_stats(false)
        .build()
}

const KEYS: u64 = 1024;

fn bench_map<M: ConcurrentMap<FlitPolicy<HashedScheme, SimNvram>>>(c: &mut Criterion, label: &str) {
    let db = FlitDb::flit_ht(backend());
    let h = db.handle();
    let map = M::with_capacity(&db, KEYS as usize);
    for k in (0..KEYS).step_by(2) {
        map.insert(&h, k, k);
    }
    let mut group = c.benchmark_group(format!("maps/{label}/flit-HT"));
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    let mut key = 0u64;
    group.bench_function("get", |b| {
        b.iter(|| {
            key = (key + 7) % KEYS;
            black_box(map.get(&h, key))
        })
    });
    group.bench_function("insert-remove", |b| {
        b.iter(|| {
            key = (key + 13) % KEYS;
            if !map.insert(&h, key, key) {
                map.remove(&h, key);
            }
        })
    });
    group.finish();
}

fn bench_plain_bst(c: &mut Criterion) {
    // The same BST under the plain policy, to show the read-path flush overhead on
    // real traversals even with a free latency model removed (counter accesses only).
    let db = FlitDb::plain(backend());
    let h = db.handle();
    let map: NatarajanTree<FlitPolicy<PlainScheme, SimNvram>, Automatic> =
        NatarajanTree::with_capacity(&db, KEYS as usize);
    for k in (0..KEYS).step_by(2) {
        map.insert(&h, k, k);
    }
    let mut group = c.benchmark_group("maps/bst/plain");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    let mut key = 0u64;
    group.bench_function("get", |b| {
        b.iter(|| {
            key = (key + 7) % KEYS;
            black_box(map.get(&h, key))
        })
    });
    group.finish();
}

fn bench_maps(c: &mut Criterion) {
    bench_map::<HarrisList<_, Automatic>>(c, "list");
    bench_map::<HashTable<_, Automatic>>(c, "hashtable");
    bench_map::<NatarajanTree<_, Automatic>>(c, "bst");
    bench_map::<SkipList<_, Automatic>>(c, "skiplist");
    bench_plain_bst(c);
}

criterion_group!(benches, bench_maps);
criterion_main!(benches);
