//! # `flit-bench` — benchmark harness for the FliT reproduction
//!
//! Two kinds of benchmarks live here:
//!
//! * the **`repro` binary** (`cargo run -p flit-bench --release --bin repro -- all`)
//!   regenerates every figure of the paper's evaluation (Figures 5–9) as printed
//!   tables, using the simulated-NVRAM latency model; the measured numbers are
//!   recorded in `EXPERIMENTS.md`;
//! * the **Criterion benches** (`cargo bench -p flit-bench`) measure the primitive
//!   flit-instruction costs and small end-to-end map workloads, for regression
//!   tracking rather than paper reproduction.
//!
//! This library crate holds the experiment definitions shared by both.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{Scale, SCALE_FULL, SCALE_QUICK};
