//! # `flit-bench` — benchmark harness for the FliT reproduction
//!
//! Two kinds of benchmarks live here:
//!
//! * the **`repro` binary** (`cargo run -p flit-bench --release --bin repro -- all`)
//!   regenerates every figure of the paper's evaluation (Figures 5–9) as printed
//!   tables, using the simulated-NVRAM latency model; the measured numbers are
//!   recorded in `EXPERIMENTS.md`;
//! * the **Criterion benches** (`cargo bench -p flit-bench`) measure the primitive
//!   flit-instruction costs and small end-to-end map workloads, for regression
//!   tracking rather than paper reproduction.
//!
//! The `repro -- server` subcommand additionally runs the [`server_experiments`]
//! family: the sharded `flit-server` request loop under closed- and open-loop
//! arrival, recorded to `BENCH_server.json` with latency percentiles from the
//! dependency-free [`hist::LatencyHistogram`] (now living in `flit-obs`,
//! re-exported here), plus the server's own `flit-obs-v1` metrics document to
//! `BENCH_obs.json`.
//!
//! This library crate holds the experiment definitions shared by both, and the
//! `flitctl` introspection binary (`inspect` a pool file read-only, `stats` an
//! in-process server over the wire protocol).

#![warn(missing_docs)]

pub mod experiments;
pub mod hist;
pub mod server_experiments;

pub use experiments::{Scale, SCALE_FULL, SCALE_QUICK};
pub use hist::LatencyHistogram;
pub use server_experiments::{
    server_baseline, server_crash_smoke, server_obs_document, ServerBenchRecord,
    ServerCrashSummary, ServerPolicy,
};
