//! `repro` — regenerate the figures of the FliT paper's evaluation (§6).
//!
//! ```text
//! cargo run -p flit-bench --release --bin repro -- [fig5|fig6|fig7|fig8|fig9|queues|summary|all] [--full]
//! ```
//!
//! `queues` runs the queue workload family (not part of the paper's evaluation):
//! enqueue/dequeue mixes, producer:consumer ratios and the dequeue-of-empty
//! read-elision experiment over the Michael–Scott queue of `flit-queues`.
//!
//! By default the quick scale is used (sized for the single-core reproduction
//! container); `--full` switches to settings close to the paper's. The output is a
//! set of plain-text tables, one series per line; `EXPERIMENTS.md` records a captured
//! run next to the paper's reported numbers.

use flit_bench::experiments::{
    figure5, figure6, figure7, figure8, figure9, queue_dequeue_empty, queue_mix,
    queue_producer_consumer, Row, Scale,
};
use flit_bench::{SCALE_FULL, SCALE_QUICK};
use flit_pmem::LatencyModel;
use flit_workload::{run_case, Case, DsKind, DurKind, PolicyKind, WorkloadConfig};

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:<22} {:>10} {:>12} {:>12}",
        "series", "x", "Mops/s", "pwbs/op", "pfences/op"
    );
    for r in rows {
        println!(
            "{:<28} {:<22} {:>10.3} {:>12.3} {:>12.3}",
            r.series, r.x, r.mops, r.pwbs_per_op, r.pfences_per_op
        );
    }
}

fn normalised(rows: &[Row]) {
    // Figure 8 is reported normalised to the non-persistent baseline of each
    // structure and update ratio.
    println!("\n--- normalised to the non-persistent baseline ---");
    println!("{:<28} {:<8} {:>12}", "series", "updates", "normalised");
    for r in rows {
        if r.series.ends_with("non-persistent") {
            continue;
        }
        let ds = r.series.split('/').next().unwrap_or_default();
        let base = rows
            .iter()
            .find(|b| b.series == format!("{ds}/non-persistent") && b.x == r.x)
            .map(|b| b.mops)
            .unwrap_or(f64::NAN);
        println!("{:<28} {:<8} {:>12.3}", r.series, r.x, r.mops / base);
    }
}

fn summary(scale: &Scale) {
    println!("\n=== Summary: headline claims of the paper ===");
    // Claim 1 (abstract): FliT improves throughput over the naive (plain, automatic)
    // implementation in update workloads.
    println!("\nFliT (flit-HT 1MB) speedup over plain, automatic durability, 5% updates:");
    for ds in DsKind::ALL {
        let keys = if ds == DsKind::List {
            scale.list_small_keys
        } else {
            scale.small_keys
        };
        let cfg = || WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
        let mk = |policy| Case {
            ds,
            dur: DurKind::Automatic,
            policy,
            config: cfg(),
            latency: LatencyModel::optane(),
        };
        let plain = run_case(&mk(PolicyKind::Plain));
        let flit = run_case(&mk(PolicyKind::FlitHt(1 << 20)));
        let nonp = run_case(&mk(PolicyKind::NoPersist));
        println!(
            "  {:<10} plain {:>7.3} Mops/s   flit-HT {:>7.3} Mops/s   speedup {:>5.2}x   (non-persistent {:>7.3})",
            ds.name(),
            plain.mops,
            flit.mops,
            flit.mops / plain.mops,
            nonp.mops,
        );
    }
    // Claim 2: even optimised durability methods still benefit from FliT.
    println!("\nFliT speedup over plain under the optimised durability methods (5% updates):");
    for ds in DsKind::ALL {
        let keys = if ds == DsKind::List {
            scale.list_small_keys
        } else {
            scale.small_keys
        };
        for dur in [DurKind::NvTraverse, DurKind::Manual] {
            let cfg = || WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
            let mk = |policy| Case {
                ds,
                dur,
                policy,
                config: cfg(),
                latency: LatencyModel::optane(),
            };
            let plain = run_case(&mk(PolicyKind::Plain));
            let flit = run_case(&mk(PolicyKind::FlitHt(1 << 20)));
            println!(
                "  {:<10} {:<11} speedup {:>5.2}x",
                ds.name(),
                dur.name(),
                flit.mops / plain.mops
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");
    let scale = if quick { SCALE_QUICK } else { SCALE_FULL };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    println!(
        "FliT reproduction — scale: {} ({} threads, {} ops/thread, simulated Optane latency)",
        if quick { "quick" } else { "full" },
        scale.threads,
        scale.ops_per_thread
    );

    let run_fig5 = || {
        print_rows(
            "Figure 5: flit-HT size tuning (automatic BST, 10K keys)",
            &figure5(&scale),
        )
    };
    let run_fig6 = || {
        print_rows(
            "Figure 6: scalability (automatic BST, 10K keys, 5% updates)",
            &figure6(&scale),
        )
    };
    let run_fig7 = || {
        print_rows(
            "Figure 7: durability methods x variants (5% updates, small sizes)",
            &figure7(&scale),
        )
    };
    let run_fig8 = || {
        let small = figure8(&scale, false);
        print_rows(
            "Figure 8 (top): update-ratio sweep, small sizes, automatic",
            &small,
        );
        normalised(&small);
        let large = figure8(&scale, true);
        print_rows(
            "Figure 8 (bottom): update-ratio sweep, large sizes, automatic",
            &large,
        );
        normalised(&large);
    };
    let run_fig9 = || {
        print_rows(
            "Figure 9: pwbs per operation (5% updates)",
            &figure9(&scale),
        )
    };
    let run_queues = || {
        print_rows(
            "Queues: 50/50 enqueue/dequeue mix (MS queue, per-policy pwb/pfence per op)",
            &queue_mix(&scale),
        );
        print_rows(
            "Queues: producer:consumer ratios (bursty producers, automatic durability)",
            &queue_producer_consumer(&scale),
        );
        print_rows(
            "Queues: dequeue-of-empty (read-side flush elision; plain pays pwbs, FliT none)",
            &queue_dequeue_empty(&scale),
        );
    };

    match what.as_str() {
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "queues" => run_queues(),
        "summary" => summary(&scale),
        "all" => {
            run_fig5();
            run_fig6();
            run_fig7();
            run_fig8();
            run_fig9();
            run_queues();
            summary(&scale);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}': expected fig5|fig6|fig7|fig8|fig9|queues|summary|all"
            );
            std::process::exit(2);
        }
    }
}
