//! `repro` — regenerate the figures of the FliT paper's evaluation (§6).
//!
//! ```text
//! cargo run -p flit-bench --release --bin repro -- [fig5|fig6|fig7|fig8|fig9|queues|bench|server|summary|all] [--full] [--out PATH]
//! ```
//!
//! `queues` runs the queue workload family (not part of the paper's evaluation):
//! enqueue/dequeue mixes, producer:consumer ratios and the dequeue-of-empty
//! read-elision experiment over the Michael–Scott queue of `flit-queues`.
//!
//! `bench` runs the machine-readable benchmark baseline — every map structure ×
//! policy on the read-mostly (95/5) workload, with persist-epoch elision on *and*
//! off — and writes it to `BENCH_flit.json` (or `--out PATH`). The committed
//! baseline at the repository root is regenerated this way, so the perf trajectory
//! (throughput, pwbs/op, pfences/op, p50/p99 latency) is tracked per change.
//!
//! `server` runs the sharded KV service benchmark — the {1, 2, 4} shards ×
//! {flit-HT, plain} × elision grid plus open-loop and skewed-key points, and the
//! one-shard crash/recover gate — and writes `BENCH_server.json` (or `--out PATH`).
//!
//! By default the quick scale is used (sized for the single-core reproduction
//! container); `--full` switches to settings close to the paper's. The output is a
//! set of plain-text tables, one series per line; `EXPERIMENTS.md` records a captured
//! run next to the paper's reported numbers.

use std::path::Path;

use flit_bench::experiments::{
    bench_baseline, bench_depth_sweep, figure5, figure6, figure7, figure8, figure9,
    queue_dequeue_empty, queue_mix, queue_producer_consumer, BenchRecord, Row, Scale,
    BENCH_DEPTH_KEYS, BENCH_UPDATE_PERCENT,
};
use flit_bench::server_experiments::{
    server_baseline, server_crash_smoke, server_obs_document, ServerBenchRecord,
    ServerCrashSummary, SERVER_UPDATE_PERCENT,
};
use flit_bench::{SCALE_FULL, SCALE_QUICK};
use flit_pmem::{CommitMode, ElisionMode, LatencyModel};
use flit_workload::{run_case, Case, DsKind, DurKind, PolicyKind, WorkloadConfig};

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:<22} {:>10} {:>12} {:>12}",
        "series", "x", "Mops/s", "pwbs/op", "pfences/op"
    );
    for r in rows {
        println!(
            "{:<28} {:<22} {:>10.3} {:>12.3} {:>12.3}",
            r.series, r.x, r.mops, r.pwbs_per_op, r.pfences_per_op
        );
    }
}

fn normalised(rows: &[Row]) {
    // Figure 8 is reported normalised to the non-persistent baseline of each
    // structure and update ratio.
    println!("\n--- normalised to the non-persistent baseline ---");
    println!("{:<28} {:<8} {:>12}", "series", "updates", "normalised");
    for r in rows {
        if r.series.ends_with("non-persistent") {
            continue;
        }
        let ds = r.series.split('/').next().unwrap_or_default();
        let base = rows
            .iter()
            .find(|b| b.series == format!("{ds}/non-persistent") && b.x == r.x)
            .map(|b| b.mops)
            .unwrap_or(f64::NAN);
        println!("{:<28} {:<8} {:>12.3}", r.series, r.x, r.mops / base);
    }
}

fn summary(scale: &Scale) {
    println!("\n=== Summary: headline claims of the paper ===");
    // Claim 1 (abstract): FliT improves throughput over the naive (plain, automatic)
    // implementation in update workloads.
    println!("\nFliT (flit-HT 1MB) speedup over plain, automatic durability, 5% updates:");
    for ds in DsKind::ALL {
        let keys = if ds == DsKind::List {
            scale.list_small_keys
        } else {
            scale.small_keys
        };
        let cfg = || WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
        let mk = |policy| Case {
            ds,
            dur: DurKind::Automatic,
            policy,
            config: cfg(),
            latency: LatencyModel::optane(),
            elision: ElisionMode::default(),
            commit: CommitMode::Immediate,
        };
        let plain = run_case(&mk(PolicyKind::Plain));
        let flit = run_case(&mk(PolicyKind::FlitHt(1 << 20)));
        let nonp = run_case(&mk(PolicyKind::NoPersist));
        println!(
            "  {:<10} plain {:>7.3} Mops/s   flit-HT {:>7.3} Mops/s   speedup {:>5.2}x   (non-persistent {:>7.3})",
            ds.name(),
            plain.mops,
            flit.mops,
            flit.mops / plain.mops,
            nonp.mops,
        );
    }
    // Claim 2: even optimised durability methods still benefit from FliT.
    println!("\nFliT speedup over plain under the optimised durability methods (5% updates):");
    for ds in DsKind::ALL {
        let keys = if ds == DsKind::List {
            scale.list_small_keys
        } else {
            scale.small_keys
        };
        for dur in [DurKind::NvTraverse, DurKind::Manual] {
            let cfg = || WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
            let mk = |policy| Case {
                ds,
                dur,
                policy,
                config: cfg(),
                latency: LatencyModel::optane(),
                elision: ElisionMode::default(),
                commit: CommitMode::Immediate,
            };
            let plain = run_case(&mk(PolicyKind::Plain));
            let flit = run_case(&mk(PolicyKind::FlitHt(1 << 20)));
            println!(
                "  {:<10} {:<11} speedup {:>5.2}x",
                ds.name(),
                dur.name(),
                flit.mops / plain.mops
            );
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Render the benchmark baseline as the `BENCH_flit.json` document. Hand-rolled
/// (no serde in the offline container); every field is a number or a plain label.
fn bench_json(scale: &Scale, quick: bool, records: &[BenchRecord]) -> String {
    let entries: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                r#"    {{"structure":"{}","keys":{},"policy":"{}","durability":"{}","elision":"{}","commit":"{}","update_percent":{},"mops":{},"pwbs_per_op":{},"pfences_per_op":{},"elided_pfences_per_op":{},"p50_ns":{},"p99_ns":{}}}"#,
                r.structure,
                r.keys,
                r.policy,
                r.durability,
                r.elision,
                r.commit,
                r.update_percent,
                json_f64(r.mops),
                json_f64(r.pwbs_per_op),
                json_f64(r.pfences_per_op),
                json_f64(r.elided_pfences_per_op),
                r.p50_ns,
                r.p99_ns,
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"flit-bench-v3\",\n  \"scale\": \"{}\",\n  \"workload\": {{\"update_percent\": {}, \"threads\": {}, \"ops_per_thread\": {}}},\n  \"records\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        BENCH_UPDATE_PERCENT,
        scale.threads,
        scale.ops_per_thread,
        entries.join(",\n")
    )
}

fn run_bench(scale: &Scale, quick: bool, out: &str) {
    let mut records = bench_baseline(scale);
    // The hamt case family: key-depth sweep demonstrating the flat fence cost
    // of the copy-on-write discipline (quick scale trims the 1M-key point to
    // the scale's large size so the container run stays bounded).
    let depth_keys: Vec<u64> = if quick {
        vec![BENCH_DEPTH_KEYS[0], scale.large_keys]
    } else {
        BENCH_DEPTH_KEYS.to_vec()
    };
    records.extend(bench_depth_sweep(scale, &depth_keys));
    println!(
        "\n=== Benchmark baseline: read-mostly ({}% updates) map workload, elision A/B ===",
        BENCH_UPDATE_PERCENT
    );
    println!(
        "{:<12} {:>9} {:<18} {:<8} {:<11} {:>4} {:>10} {:>10} {:>12} {:>14}",
        "structure",
        "keys",
        "policy",
        "elision",
        "commit",
        "upd%",
        "Mops/s",
        "pwbs/op",
        "pfences/op",
        "elided-pf/op"
    );
    for r in &records {
        println!(
            "{:<12} {:>9} {:<18} {:<8} {:<11} {:>4} {:>10.3} {:>10.3} {:>12.3} {:>14.3}",
            r.structure,
            r.keys,
            r.policy,
            r.elision,
            r.commit,
            r.update_percent,
            r.mops,
            r.pwbs_per_op,
            r.pfences_per_op,
            r.elided_pfences_per_op
        );
    }
    let doc = bench_json(scale, quick, &records);
    std::fs::write(out, doc).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });
    println!("\nwrote benchmark baseline to {out}");
}

/// Render the server baseline + crash gate as the `BENCH_server.json` document.
fn server_json(
    scale: &Scale,
    quick: bool,
    records: &[ServerBenchRecord],
    crash: &ServerCrashSummary,
) -> String {
    let entries: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                r#"    {{"shards":{},"workers":{},"structure":"{}","policy":"{}","elision":"{}","commit":"{}","arrival":"{}","skew":{},"requests":{},"mops":{},"p50_ns":{},"p99_ns":{},"p999_ns":{},"pwbs_per_op":{},"pfences_per_op":{}}}"#,
                r.shards,
                r.workers,
                r.structure,
                r.policy,
                r.elision,
                r.commit,
                r.arrival,
                json_f64(r.skew),
                r.requests,
                json_f64(r.mops),
                r.p50_ns,
                r.p99_ns,
                r.p999_ns,
                json_f64(r.pwbs_per_op),
                json_f64(r.pfences_per_op),
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"flit-server-bench-v2\",\n  \"scale\": \"{}\",\n  \"workload\": {{\"update_percent\": {}, \"requests_per_worker\": {}}},\n  \"crash_sweep\": {{\"shards\": {}, \"crash_shard\": {}, \"points_tested\": {}, \"events_total\": {}, \"violations\": {}, \"broken_control_caught\": {}}},\n  \"records\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        SERVER_UPDATE_PERCENT,
        scale.ops_per_thread,
        crash.shards,
        crash.crash_shard,
        crash.points_tested,
        crash.events_total,
        crash.violations,
        crash.broken_control_caught,
        entries.join(",\n")
    )
}

fn run_server_bench(scale: &Scale, quick: bool, out: &str) {
    let records = server_baseline(scale);
    println!(
        "\n=== Server baseline: sharded KV service, {}% updates, pump path (mailbox included) ===",
        SERVER_UPDATE_PERCENT
    );
    println!(
        "{:<7} {:<8} {:<16} {:<8} {:<11} {:<8} {:<6} {:>9} {:>10} {:>10} {:>10} {:>9} {:>11}",
        "shards",
        "workers",
        "policy",
        "elision",
        "commit",
        "arrival",
        "skew",
        "Mops/s",
        "p50(ns)",
        "p99(ns)",
        "p999(ns)",
        "pwbs/op",
        "pfences/op"
    );
    for r in &records {
        println!(
            "{:<7} {:<8} {:<16} {:<8} {:<11} {:<8} {:<6} {:>9.3} {:>10} {:>10} {:>10} {:>9.3} {:>11.3}",
            r.shards,
            r.workers,
            r.policy,
            r.elision,
            r.commit,
            r.arrival,
            r.skew,
            r.mops,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.pwbs_per_op,
            r.pfences_per_op
        );
    }
    println!("\nrunning the one-shard crash/recover gate…");
    let crash = server_crash_smoke();
    println!(
        "crash sweep: {} points over {} events on shard {} of {}: {} violations; broken control caught: {}",
        crash.points_tested,
        crash.events_total,
        crash.crash_shard,
        crash.shards,
        crash.violations,
        crash.broken_control_caught
    );
    if crash.violations > 0 || !crash.broken_control_caught {
        eprintln!("server crash gate FAILED");
        std::process::exit(1);
    }
    let doc = server_json(scale, quick, &records, &crash);
    std::fs::write(out, doc).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });
    println!("\nwrote server baseline to {out}");

    // The observability sidecar: one representative run's full `flit-obs-v1`
    // metrics document, written next to the baseline.
    let obs_out = Path::new(out)
        .with_file_name("BENCH_obs.json")
        .display()
        .to_string();
    let obs = server_obs_document(scale);
    std::fs::write(&obs_out, obs).unwrap_or_else(|e| {
        eprintln!("cannot write {obs_out}: {e}");
        std::process::exit(2);
    });
    println!("wrote server metrics document to {obs_out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");
    let scale = if quick { SCALE_QUICK } else { SCALE_FULL };
    let out_flag = args.iter().position(|a| a == "--out");
    let what = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || args[*i - 1] != "--out"))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    let out = match out_flag {
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a path");
            std::process::exit(2);
        }),
        None if what == "server" => "BENCH_server.json".to_string(),
        None => "BENCH_flit.json".to_string(),
    };
    if out_flag.is_some() && what != "bench" && what != "server" {
        eprintln!(
            "warning: --out only applies to the 'bench' and 'server' subcommands; nothing will be written"
        );
    }

    println!(
        "FliT reproduction — scale: {} ({} threads, {} ops/thread, simulated Optane latency)",
        if quick { "quick" } else { "full" },
        scale.threads,
        scale.ops_per_thread
    );

    let run_fig5 = || {
        print_rows(
            "Figure 5: flit-HT size tuning (automatic BST, 10K keys)",
            &figure5(&scale),
        )
    };
    let run_fig6 = || {
        print_rows(
            "Figure 6: scalability (automatic BST, 10K keys, 5% updates)",
            &figure6(&scale),
        )
    };
    let run_fig7 = || {
        print_rows(
            "Figure 7: durability methods x variants (5% updates, small sizes)",
            &figure7(&scale),
        )
    };
    let run_fig8 = || {
        let small = figure8(&scale, false);
        print_rows(
            "Figure 8 (top): update-ratio sweep, small sizes, automatic",
            &small,
        );
        normalised(&small);
        let large = figure8(&scale, true);
        print_rows(
            "Figure 8 (bottom): update-ratio sweep, large sizes, automatic",
            &large,
        );
        normalised(&large);
    };
    let run_fig9 = || {
        print_rows(
            "Figure 9: pwbs per operation (5% updates)",
            &figure9(&scale),
        )
    };
    let run_queues = || {
        print_rows(
            "Queues: 50/50 enqueue/dequeue mix (MS queue, per-policy pwb/pfence per op)",
            &queue_mix(&scale),
        );
        print_rows(
            "Queues: producer:consumer ratios (bursty producers, automatic durability)",
            &queue_producer_consumer(&scale),
        );
        print_rows(
            "Queues: dequeue-of-empty (read-side flush elision; plain pays pwbs, FliT none)",
            &queue_dequeue_empty(&scale),
        );
    };

    match what.as_str() {
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "queues" => run_queues(),
        "bench" => run_bench(&scale, quick, &out),
        "server" => run_server_bench(&scale, quick, &out),
        "summary" => summary(&scale),
        "all" => {
            run_fig5();
            run_fig6();
            run_fig7();
            run_fig8();
            run_fig9();
            run_queues();
            summary(&scale);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}': expected fig5|fig6|fig7|fig8|fig9|queues|bench|server|summary|all"
            );
            std::process::exit(2);
        }
    }
}
