//! `killtest` — process-kill crash rounds and corruption injection against
//! file-backed pools, from the command line and CI.
//!
//! ```text
//! cargo run -p flit-bench --release --bin killtest -- [flags]
//!
//!   --rounds N            seeded SIGKILL rounds per commit mode  (default: 10)
//!   --ops N               workload operations per round          (default: 150000)
//!   --hamt-rounds N       HAMT snapshot rounds per commit mode   (default: 5)
//!   --hamt-ops N          operations per HAMT snapshot round     (default: 20000;
//!                         the snapshot is taken after ops/3 operations and held
//!                         until the kill; copy-on-write churn makes these rounds
//!                         allocation-heavier than the hash-table rounds)
//!   --seed N              base seed for the kill-delay schedule  (default: 0x2a)
//!   --commit a,b,..       immediate|batched-<k>|both             (default: both,
//!                         where `both` = immediate,batched-8)
//!   --dir PATH            working directory for pool/sidecar files
//!                         (default: target/killtest under the current dir)
//!   --corruption-only     run only the corruption-injection suite
//!   --skip-corruption     run only the kill rounds
//!   --keep-pools          keep pool/sidecar files of passing rounds too
//!                         (for `flitctl inspect` / the CI obs-smoke job)
//! ```
//!
//! Each round spawns **this same binary** as a child (the hidden
//! `--kill-child` dispatch), which creates a fresh pool and runs the
//! deterministic hash-table workload while reporting its acknowledged floor
//! through a sidecar file; the parent SIGKILLs it mid-traffic at a
//! seed-derived point, re-opens the pool (validate → adopt → recover → GC)
//! and requires: the recovered map equals the model state after exactly `c`
//! operations for some `c` at or above the acknowledged floor; and a second
//! GC pass reclaims zero slots. The corruption suite then clobbers one
//! persisted field of a valid pool at a time and requires each case to
//! surface as its matching typed `OpenError`.
//!
//! Exit status is `0` only when every round and every corruption case passed.
//! Failing rounds leave their pool and sidecar files under `--dir` so CI can
//! upload them as artifacts.

use std::path::PathBuf;
use std::process::ExitCode;

use flit_crashtest::kill::{
    child_main, child_main_hamt, commit_word, corruption_suite, parse_commit, run_kill_round,
    KillRound, CHILD_FLAG,
};
use flit_pmem::CommitMode;

struct Args {
    rounds: u64,
    ops: u64,
    hamt_rounds: u64,
    hamt_ops: u64,
    seed: u64,
    commits: Vec<CommitMode>,
    dir: PathBuf,
    corruption_only: bool,
    skip_corruption: bool,
    keep_pools: bool,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_commits(s: &str) -> Option<Vec<CommitMode>> {
    let mut out = Vec::new();
    for word in s.split(',') {
        if word == "both" {
            out.push(CommitMode::Immediate);
            out.push(CommitMode::Batched(8));
        } else {
            out.push(parse_commit(word)?);
        }
    }
    Some(out)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rounds: 10,
        ops: 150_000,
        hamt_rounds: 5,
        hamt_ops: 20_000,
        seed: 0x2a,
        commits: vec![CommitMode::Immediate, CommitMode::Batched(8)],
        dir: PathBuf::from("target/killtest"),
        corruption_only: false,
        skip_corruption: false,
        keep_pools: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--rounds" => args.rounds = parse_u64(&val("--rounds")?).ok_or("bad --rounds")?,
            "--ops" => args.ops = parse_u64(&val("--ops")?).ok_or("bad --ops")?.max(1),
            "--hamt-rounds" => {
                args.hamt_rounds = parse_u64(&val("--hamt-rounds")?).ok_or("bad --hamt-rounds")?
            }
            "--hamt-ops" => {
                args.hamt_ops = parse_u64(&val("--hamt-ops")?)
                    .ok_or("bad --hamt-ops")?
                    .max(3)
            }
            "--seed" => args.seed = parse_u64(&val("--seed")?).ok_or("bad --seed")?,
            "--commit" => {
                args.commits = parse_commits(&val("--commit")?).ok_or("bad --commit")?;
            }
            "--dir" => args.dir = PathBuf::from(val("--dir")?),
            "--corruption-only" => args.corruption_only = true,
            "--skip-corruption" => args.skip_corruption = true,
            "--keep-pools" => args.keep_pools = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The hidden child dispatch: `killtest --kill-child <pool> <sidecar> <ops>
/// <commit>` runs the hash-table workload instead of the harness; the
/// `... hamt <snap_at>` suffix runs the HAMT snapshot workload.
fn child_dispatch() -> Option<ExitCode> {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) != Some(CHILD_FLAG) {
        return None;
    }
    let hamt_snap = match argv.len() {
        6 => None,
        8 if argv[6] == "hamt" => match parse_u64(&argv[7]) {
            Some(n) => Some(n),
            None => return Some(ExitCode::from(2)),
        },
        _ => {
            eprintln!(
                "usage: killtest {CHILD_FLAG} <pool> <sidecar> <ops> <commit> [hamt <snap_at>]"
            );
            return Some(ExitCode::from(2));
        }
    };
    let ops = match parse_u64(&argv[4]) {
        Some(n) => n,
        None => return Some(ExitCode::from(2)),
    };
    let commit = match parse_commit(&argv[5]) {
        Some(c) => c,
        None => return Some(ExitCode::from(2)),
    };
    let run = match hamt_snap {
        Some(snap_at) => child_main_hamt(argv[2].as_ref(), argv[3].as_ref(), ops, commit, snap_at),
        None => child_main(argv[2].as_ref(), argv[3].as_ref(), ops, commit),
    };
    match run {
        Ok(()) => Some(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("killtest child: {e}");
            Some(ExitCode::from(3))
        }
    }
}

fn main() -> ExitCode {
    if let Some(code) = child_dispatch() {
        return code;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("killtest: {e}");
            return ExitCode::from(2);
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("killtest: current_exe: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0u64;

    if !args.corruption_only {
        for &commit in &args.commits {
            // Hash-table rounds, then the allocation-heavier HAMT snapshot
            // rounds (a snapshot is taken at ops/3 and held until the kill;
            // the reopened pool must replay it to exactly its frozen
            // contents).
            let mut specs: Vec<(&str, KillRound)> = Vec::new();
            for round in 0..args.rounds {
                specs.push((
                    "ht",
                    KillRound {
                        exe: exe.clone(),
                        dir: args.dir.clone(),
                        round,
                        seed: args.seed,
                        ops: args.ops,
                        commit,
                        keep_files: args.keep_pools,
                        hamt_snap: None,
                    },
                ));
            }
            for round in 0..args.hamt_rounds {
                specs.push((
                    "hamt",
                    KillRound {
                        exe: exe.clone(),
                        dir: args.dir.clone(),
                        round,
                        seed: args.seed,
                        ops: args.hamt_ops,
                        commit,
                        keep_files: args.keep_pools,
                        hamt_snap: Some(args.hamt_ops / 3),
                    },
                ));
            }
            for (kind, spec) in specs {
                match run_kill_round(&spec) {
                    Ok(report) => println!(
                        "{kind} round {:>3} [{}]: ok — prefix {} (floor {}), {} leaked slot(s) \
                         reclaimed, open {}us (validate {}us, adopt {}us, recover {}us, gc {}us){}",
                        spec.round,
                        commit_word(commit),
                        report.matched_prefix,
                        report.acked_floor,
                        report.reclaimed_slots,
                        report.timings.total_ns() / 1_000,
                        report.timings.validate_ns / 1_000,
                        report.timings.adopt_ns / 1_000,
                        report.timings.recover_ns / 1_000,
                        report.timings.gc_ns / 1_000,
                        if report.child_finished {
                            ", child finished first"
                        } else {
                            ""
                        },
                    ),
                    Err(v) => {
                        failures += 1;
                        eprintln!(
                            "{kind} round {:>3} [{}]: FAIL — {v} (pool kept at {})",
                            spec.round,
                            commit_word(commit),
                            spec.pool_path().display(),
                        );
                    }
                }
            }
        }
    }

    if !args.skip_corruption {
        for outcome in corruption_suite(&args.dir) {
            match outcome.failure {
                None => println!("corruption {:<36}: ok", outcome.name),
                Some(why) => {
                    failures += 1;
                    eprintln!("corruption {:<36}: FAIL — {why}", outcome.name);
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("killtest: {failures} failure(s)");
        ExitCode::FAILURE
    } else {
        println!("killtest: all rounds and corruption cases passed");
        ExitCode::SUCCESS
    }
}
