//! `flitctl` — operator introspection for the FliT stack.
//!
//! ```text
//! cargo run -p flit-bench --release --bin flitctl -- inspect <pool-file>
//! cargo run -p flit-bench --release --bin flitctl -- stats [--shards N] [--ops N]
//! cargo run -p flit-bench --release --bin flitctl -- scan [--shards N] [--keys N] [--prefix P] [--mask M]
//! ```
//!
//! `inspect` reads a pool file **without mapping it** — every field comes from
//! plain `pread` calls against the published on-disk layout
//! ([`flit_pmem::pool`] + the arena header offsets in `flit_alloc`), so it
//! works on pools recorded at a base address this process could never map,
//! on pools left behind by a SIGKILLed process, and on corrupt pools (bad
//! fields are reported, not trusted). It prints one `flit-pool-inspect-v1`
//! JSON document: superblock, arena directory, per-arena header with a
//! bounded free-list walk, the named root table, and — for arenas holding a
//! `flit-hamt` retained-root table — the live snapshot entries. When any
//! arena's free-list walk trips a defensive guard (a cycle, a link beyond the
//! high-water mark, an unrecorded chunk, the length cap), the document is
//! still printed but the process exits with status 3: a tripped guard means
//! the durable free list is structurally damaged, which scripts must not
//! mistake for a healthy pool.
//!
//! `stats` stands up an in-process sharded [`KvServer`] on heap-backed
//! simulated NVRAM, drives a little traffic through the request pump, then
//! sends [`Op::Stats`] down the same wire path and prints the `flit-obs-v1`
//! metrics document the server answers with — an end-to-end check that the
//! stats control plane works over the byte protocol.
//!
//! `scan` does the same for the snapshot control plane: a HAMT-backed server,
//! a seeded prefill through the pump, then [`Op::Scan`] over the wire; the
//! [`Reply::Entries`] answer is printed as a `flit-scan-v1` JSON document.

use std::collections::HashSet;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::process::ExitCode;

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_datastructs::{Automatic, HashTable};
use flit_pmem::pool::{
    direntry, superblock, DIR_ENTRY_BYTES, DIR_OFFSET, MAX_ARENAS, MAX_BLOCKS_PER_ARENA,
    MAX_CHUNKS_PER_ARENA, POOL_MAGIC, POOL_VERSION,
};
use flit_pmem::{CommitMode, LatencyModel, SimNvram};
use flit_server::{KvServer, Op, Reply, ServerConfig};

/// Schema tag of the `inspect` document, for `jq`-side validation.
const INSPECT_SCHEMA: &str = "flit-pool-inspect-v1";

/// Upper bound on free-list links followed per arena; a list longer than this
/// is reported as truncated rather than walked forever.
const FREE_WALK_LIMIT: usize = 1 << 20;

fn usage() -> ExitCode {
    eprintln!(
        "usage: flitctl inspect <pool-file>\n       \
         flitctl stats [--shards N] [--ops N]\n       \
         flitctl scan [--shards N] [--keys N] [--prefix P] [--mask M]"
    );
    ExitCode::from(2)
}

/// Exit status when `inspect` finds a structurally damaged free list (cycle,
/// out-of-bounds link, unrecorded chunk, or capped walk).
const GUARD_TRIPPED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => match args.get(1) {
            Some(path) if args.len() == 2 => inspect(Path::new(path)),
            _ => return usage(),
        },
        Some("stats") => stats(&args[1..]).map(|doc| (doc, ExitCode::SUCCESS)),
        Some("scan") => scan(&args[1..]).map(|doc| (doc, ExitCode::SUCCESS)),
        _ => return usage(),
    };
    match result {
        Ok((doc, code)) => {
            println!("{doc}");
            code
        }
        Err(e) => {
            eprintln!("flitctl: {e}");
            ExitCode::FAILURE
        }
    }
}

// --- inspect ---------------------------------------------------------------

/// `pread` one little-endian u64 word at `offset`.
fn read_word(file: &File, offset: u64) -> Result<u64, String> {
    let mut buf = [0u8; 8];
    file.read_exact_at(&mut buf, offset)
        .map_err(|e| format!("read at {offset:#x}: {e}"))?;
    Ok(u64::from_le_bytes(buf))
}

/// Minimal JSON string escaping (paths are the only free-form strings here).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Human name for a registered root key, when it is one of the named roots in
/// [`flit_alloc::roots`].
fn root_name(key: u64) -> Option<&'static str> {
    use flit_alloc::roots;
    match key {
        roots::LIST_HEAD => Some("list_head"),
        roots::HASH_DIRECTORY => Some("hash_directory"),
        roots::BST_ROOT => Some("bst_root"),
        roots::SKIPLIST_HEAD => Some("skiplist_head"),
        roots::QUEUE_ROOTS => Some("queue_roots"),
        roots::HAMT_ROOT => Some("hamt_root"),
        roots::HAMT_RETAINED => Some("hamt_retained"),
        _ => None,
    }
}

/// Walk one arena's durable free list by `pread`, following the `offset + 1`
/// encoding: the head word and each freed slot's first word hold the next
/// free slot's offset plus one (zero terminates). The walk is defensive —
/// bounded by the high-water mark, cycle-guarded, and capped — because the
/// pool under inspection may be mid-crash or corrupt.
struct FreeWalk {
    depth: u64,
    head_slot: Option<u64>,
    truncated: bool,
    reason: Option<String>,
}

fn walk_free_list(
    file: &File,
    head_word: u64,
    high_water: u64,
    slot_size: u64,
    chunk_slots: u64,
    chunks: &[u64],
) -> FreeWalk {
    let mut walk = FreeWalk {
        depth: 0,
        head_slot: head_word.checked_sub(1),
        truncated: false,
        reason: None,
    };
    let mut seen = HashSet::new();
    let mut link = head_word;
    while link != 0 {
        let off = link - 1;
        if off >= high_water {
            walk.truncated = true;
            walk.reason = Some(format!("slot {off} beyond high-water {high_water}"));
            return walk;
        }
        if !seen.insert(off) {
            walk.truncated = true;
            walk.reason = Some(format!("cycle at slot {off}"));
            return walk;
        }
        if walk.depth as usize >= FREE_WALK_LIMIT {
            walk.truncated = true;
            walk.reason = Some(format!("walk capped at {FREE_WALK_LIMIT} links"));
            return walk;
        }
        let chunk = (off / chunk_slots) as usize;
        let Some(&chunk_base) = chunks.get(chunk) else {
            walk.truncated = true;
            walk.reason = Some(format!("slot {off} maps to unrecorded chunk {chunk}"));
            return walk;
        };
        let slot_off = chunk_base + (off % chunk_slots) * slot_size;
        walk.depth += 1;
        match read_word(file, slot_off) {
            Ok(next) => link = next,
            Err(e) => {
                walk.truncated = true;
                walk.reason = Some(e);
                return walk;
            }
        }
    }
    walk
}

/// Render one live arena directory entry (plus its on-file header) as JSON.
/// The `bool` reports whether the free-list walk tripped a guard.
fn inspect_arena(file: &File, index: usize) -> Result<(String, bool), String> {
    let entry = (DIR_OFFSET + index * DIR_ENTRY_BYTES) as u64;
    let word = |field: usize| read_word(file, entry + field as u64);

    let state = word(direntry::STATE)?;
    let mut out = format!("{{\"index\":{index},\"state\":{state}");
    if state != 1 {
        out.push('}');
        return Ok((out, false));
    }

    let slot_size = word(direntry::SLOT_SIZE)?;
    let chunk_slots = word(direntry::CHUNK_SLOTS)?;
    let header_off = word(direntry::HEADER_OFF)?;
    let nchunks = word(direntry::NCHUNKS)?;
    let nblocks = word(direntry::NBLOCKS)?;
    out.push_str(&format!(
        ",\"slot_size\":{slot_size},\"chunk_slots\":{chunk_slots},\
         \"header_off\":{header_off},\"nchunks\":{nchunks},\"nblocks\":{nblocks}"
    ));

    let mut chunks = Vec::new();
    for c in 0..(nchunks as usize).min(MAX_CHUNKS_PER_ARENA) {
        chunks.push(word(direntry::CHUNKS + c * 8)?);
    }
    out.push_str(&format!(
        ",\"chunks\":[{}]",
        chunks
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    ));

    let mut blocks = Vec::new();
    for b in 0..(nblocks as usize).min(MAX_BLOCKS_PER_ARENA) {
        let first = word(direntry::BLOCKS + b * 16)?;
        let nslots = word(direntry::BLOCKS + b * 16 + 8)?;
        blocks.push(format!("{{\"first_slot\":{first},\"nslots\":{nslots}}}"));
    }
    out.push_str(&format!(",\"blocks\":[{}]", blocks.join(",")));

    // The arena header, at the file offset the directory records for it.
    let hword = |field: usize| read_word(file, header_off + field as u64);
    let magic = hword(flit_alloc::MAGIC_OFFSET)?;
    let header_slot_size = hword(flit_alloc::SLOT_SIZE_OFFSET)?;
    let high_water = hword(flit_alloc::HIGH_WATER_OFFSET)?;
    let free_head = hword(flit_alloc::FREE_HEAD_OFFSET)?;
    out.push_str(&format!(
        ",\"header\":{{\"magic\":\"{magic:#x}\",\"magic_valid\":{},\
         \"slot_size\":{header_slot_size},\"high_water\":{high_water}",
        magic == flit_alloc::ARENA_MAGIC,
    ));

    let walk = if chunk_slots == 0 || slot_size == 0 {
        FreeWalk {
            depth: 0,
            head_slot: free_head.checked_sub(1),
            truncated: free_head != 0,
            reason: (free_head != 0).then(|| "zero slot size or chunk slot-count".to_string()),
        }
    } else {
        walk_free_list(file, free_head, high_water, slot_size, chunk_slots, &chunks)
    };
    out.push_str(&format!(
        ",\"free_list\":{{\"head_slot\":{},\"depth\":{},\"truncated\":{}",
        walk.head_slot.map_or("null".to_string(), |s| s.to_string()),
        walk.depth,
        walk.truncated,
    ));
    if let Some(reason) = walk.reason {
        out.push_str(&format!(",\"reason\":{}", json_str(&reason)));
    }
    out.push('}');

    let mut roots = Vec::new();
    let mut retained_table_slot = None;
    for r in 0..flit_alloc::ROOT_CAPACITY {
        let base =
            header_off + (flit_alloc::ROOT_TABLE_OFFSET + r * flit_alloc::ROOT_ENTRY_BYTES) as u64;
        let key = read_word(file, base)?;
        if key == 0 {
            continue;
        }
        let slot = read_word(file, base + 8)?;
        if key == flit_alloc::roots::HAMT_RETAINED {
            retained_table_slot = slot.checked_sub(1);
        }
        roots.push(format!(
            "{{\"key\":\"{key:#x}\",\"name\":{},\"slot\":{}}}",
            root_name(key).map_or("null".to_string(), json_str),
            slot.checked_sub(1)
                .map_or("null".to_string(), |s| s.to_string()),
        ));
    }
    out.push_str(&format!(",\"roots\":[{}]", roots.join(",")));

    // A `flit-hamt` retained-root (snapshot) table: read its entries off the
    // file and report the live ones — the snapshots that would survive a
    // crash of the process that wrote this pool.
    if let Some(table_slot) = retained_table_slot {
        let mut entries = Vec::new();
        if let Some(chunk) = table_slot.checked_div(chunk_slots) {
            let chunk = chunk as usize;
            if let Some(&chunk_base) = chunks.get(chunk) {
                let table_off = chunk_base + (table_slot % chunk_slots) * slot_size;
                for s in 0..flit_hamt::RETAINED_CAPACITY {
                    let entry = table_off + (s * flit_hamt::RETAINED_ENTRY_WORDS * 8) as u64;
                    let root = read_word(file, entry)?;
                    let refcount = read_word(file, entry + 8)?;
                    let version = read_word(file, entry + 16)?;
                    if refcount != 0 {
                        entries.push(format!(
                            "{{\"slot\":{s},\"root\":\"{root:#x}\",\
                             \"refcount\":{refcount},\"version\":{version}}}"
                        ));
                    }
                }
            }
        }
        out.push_str(&format!(",\"retained_roots\":[{}]", entries.join(",")));
    }

    out.push_str("}}");
    Ok((out, walk.truncated))
}

fn inspect(path: &Path) -> Result<(String, ExitCode), String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let file_bytes = file
        .metadata()
        .map_err(|e| format!("{}: {e}", path.display()))?
        .len();

    let magic = read_word(&file, superblock::MAGIC as u64)?;
    let version = read_word(&file, superblock::VERSION as u64)?;
    let commit_word = read_word(&file, superblock::COMMIT as u64)?;
    let base = read_word(&file, superblock::BASE as u64)?;
    let next_free = read_word(&file, superblock::NEXT_FREE as u64)?;
    let arena_count = read_word(&file, superblock::ARENA_COUNT as u64)?;

    let commit_mode = CommitMode::from_compat_word(commit_word)
        .map_or("null".to_string(), |m| json_str(&m.name()));

    let mut doc = format!(
        "{{\"schema\":{},\"path\":{},\"file_bytes\":{file_bytes},\
         \"superblock\":{{\"magic\":\"{magic:#x}\",\"magic_valid\":{},\
         \"version\":{version},\"version_valid\":{},\
         \"commit_word\":{commit_word},\"commit_mode\":{commit_mode},\
         \"recorded_base\":\"{base:#x}\",\"next_free\":{next_free},\
         \"arena_count\":{arena_count}}}",
        json_str(INSPECT_SCHEMA),
        json_str(&path.display().to_string()),
        magic == POOL_MAGIC,
        version == POOL_VERSION,
    );

    let mut arenas = Vec::new();
    let mut tripped = false;
    for i in 0..(arena_count as usize).min(MAX_ARENAS) {
        let (arena_doc, guard) = inspect_arena(&file, i)?;
        arenas.push(arena_doc);
        tripped |= guard;
    }
    doc.push_str(&format!(",\"arenas\":[{}]}}", arenas.join(",")));
    if tripped {
        eprintln!(
            "flitctl: free-list guard tripped (see free_list.reason); exiting {GUARD_TRIPPED}"
        );
    }
    let code = if tripped {
        ExitCode::from(GUARD_TRIPPED)
    } else {
        ExitCode::SUCCESS
    };
    Ok((doc, code))
}

// --- stats -----------------------------------------------------------------

type StatsPolicy = FlitPolicy<HashedScheme, SimNvram>;
type StatsMap = HashTable<StatsPolicy, Automatic>;

fn stats(args: &[String]) -> Result<String, String> {
    let mut shards = 2usize;
    let mut ops = 256u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--shards" => shards = val()?.parse().map_err(|_| "bad --shards")?,
            "--ops" => ops = val()?.parse().map_err(|_| "bad --ops")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }

    let server: KvServer<StatsPolicy, StatsMap> =
        KvServer::new_with(ServerConfig::new(shards, 512), |_| {
            FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build())
        });
    let handles = server.handles();

    // A deterministic warm-up mix so every counter family has samples: puts,
    // gets (hit and miss), deletes — then the Stats request itself, through
    // the same pump as everything else.
    let mut slab = Vec::new();
    for k in 0..ops {
        slab.push(match k % 4 {
            0 => Op::Put(k + 1, (k + 1) * 10).encode(),
            1 => Op::Get(k).encode(),
            2 => Op::Get(u64::MAX - 1 - k).encode(),
            _ => Op::Del(k.saturating_sub(2)).encode(),
        });
    }
    slab.push(Op::Stats.encode());

    let mut doc = None;
    for token in 0..slab.len() as u64 {
        let (_served, reply_bytes) = server
            .pump(&handles, &slab, token)
            .map_err(|e| format!("pump: {e:?}"))?;
        if token == slab.len() as u64 - 1 {
            match Reply::decode(&reply_bytes) {
                Ok(Reply::Stats(body)) => {
                    doc = Some(String::from_utf8(body).map_err(|_| "stats body is not UTF-8")?);
                }
                Ok(other) => return Err(format!("expected Stats reply, got {other:?}")),
                Err(e) => return Err(format!("decode stats reply: {e:?}")),
            }
        }
    }
    doc.ok_or_else(|| "no stats reply".to_string())
}

// --- scan ------------------------------------------------------------------

/// Schema tag of the `scan` document.
const SCAN_SCHEMA: &str = "flit-scan-v1";

type ScanMap = flit_hamt::Hamt<StatsPolicy>;

fn scan(args: &[String]) -> Result<String, String> {
    let mut shards = 2usize;
    let mut keys = 64u64;
    let mut prefix = 0u64;
    let mut mask = 0u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--shards" => shards = val()?.parse().map_err(|_| "bad --shards")?,
            "--keys" => keys = val()?.parse().map_err(|_| "bad --keys")?,
            "--prefix" => prefix = val()?.parse().map_err(|_| "bad --prefix")?,
            "--mask" => mask = val()?.parse().map_err(|_| "bad --mask")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }

    let server: KvServer<StatsPolicy, ScanMap> =
        KvServer::new_with(ServerConfig::new(shards, keys.max(1) as usize), |_| {
            FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build())
        });
    let handles = server.handles();

    // Deterministic prefill through the pump, then the Scan itself over the
    // same wire path — value is 10*key so jq can cross-check pairs.
    let mut slab: Vec<Vec<u8>> = (1..=keys).map(|k| Op::Put(k, 10 * k).encode()).collect();
    slab.push(Op::Scan { prefix, mask }.encode());
    let mut pairs = None;
    for token in 0..slab.len() as u64 {
        let (_served, reply_bytes) = server
            .pump(&handles, &slab, token)
            .map_err(|e| format!("pump: {e:?}"))?;
        if token == slab.len() as u64 - 1 {
            match Reply::decode(&reply_bytes) {
                Ok(Reply::Entries(p)) => pairs = Some(p),
                Ok(other) => return Err(format!("expected Entries reply, got {other:?}")),
                Err(e) => return Err(format!("decode scan reply: {e:?}")),
            }
        }
    }
    let pairs = pairs.ok_or_else(|| "no scan reply".to_string())?;
    let entries = pairs
        .iter()
        .map(|(k, v)| format!("{{\"key\":{k},\"value\":{v}}}"))
        .collect::<Vec<_>>()
        .join(",");
    Ok(format!(
        "{{\"schema\":{},\"shards\":{shards},\"keys\":{keys},\
         \"prefix\":{prefix},\"mask\":{mask},\"count\":{},\"entries\":[{entries}]}}",
        json_str(SCAN_SCHEMA),
        pairs.len(),
    ))
}
