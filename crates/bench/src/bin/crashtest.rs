//! `crashtest` — bounded crash-injection sweeps from the command line and CI.
//!
//! ```text
//! cargo run -p flit-bench --release --bin crashtest -- [flags]
//!
//!   --structures a,b,..   list|hashtable|bst|skiplist|msqueue|hamt (default: all)
//!                         plus the pseudo-structure hamt-snapshot: the HAMT
//!                         snapshot-consistency sweep (runs by default; when an
//!                         explicit list is given it runs only if listed)
//!   --methods a,b,..      automatic|nvtraverse|manual|volatile-broken
//!                         (default: the three correct methods)
//!   --policies a,b,..     plain|flit-ht|flit-adjacent|flit-cacheline|link-persist
//!                         (default: plain,flit-ht,flit-adjacent,link-persist)
//!   --history KIND        scripted|random                       (default: scripted)
//!   --seed N              random-history seed (0x.. accepted)   (default: 0x2a)
//!   --ops N               random-history length                 (default: 48)
//!   --key-range N         random-history key universe           (default: 12)
//!   --budget N            max crash points per case, 0 = every event (default: 64)
//!   --elision MODE        on|off|both: persist-epoch elision of the replayed
//!                         backend (default: both — sweep the elided stream AND
//!                         the paper-literal one; with --crash-at the default is
//!                         `on` only, because crash indices are stream-specific)
//!   --crash-at K          inject exactly one crash point (repro mode). K is a
//!                         stable ABSOLUTE event index — construction events
//!                         included — portable across runs and machines thanks
//!                         to arena allocation (flit-alloc)
//!   --commit a,b,..       immediate|batched-<k>: commit modes the replayed
//!                         databases run with (default: immediate). Batched
//!                         sweeps check the group-commit contract: acknowledged
//!                         tickets survive, the unacknowledged tail recovers to
//!                         a consistent prefix
//!   --broken-acks         acknowledge obligations WITHOUT fencing in the main
//!                         matrix (repro mode for acknowledge-before-fence
//!                         violations; such cases are expected to fail)
//!   --json PATH           write a machine-readable report (CI artifact)
//!   --skip-control        do not run the deliberately broken controls
//!                         (volatile-broken, and acknowledge-before-fence when
//!                         a batched commit mode is requested)
//! ```
//!
//! Sweeps cover the full absolute event span `0..=events_total`, *including the
//! construction window*: a crash before the structure's recovery root became
//! durable must recover to the empty structure, purely from the frozen image and
//! the arena's root table.
//!
//! Exit status is `0` only when every correct-method sweep found zero violations
//! **and** the broken control (unless skipped) found at least one — a control that
//! fails to fail means the harness itself is broken. Violations print complete
//! repro strings: paste the flags after `crashtest` to replay one crash point.

use flit_crashtest::{
    run_case, run_hamt_snapshot_case, run_matrix, HistorySpec, MethodKind, PolicyKind,
    StructureKind, SweepReport, SweepSettings, SNAPSHOT_STRUCTURE,
};
use flit_pmem::{CommitMode, ElisionMode};

struct Args {
    structures: Vec<StructureKind>,
    /// Run the HAMT snapshot-consistency sweep ([`run_hamt_snapshot_case`]).
    snapshot_sweep: bool,
    methods: Vec<MethodKind>,
    policies: Vec<PolicyKind>,
    history: HistorySpec,
    settings: SweepSettings,
    elisions: Vec<ElisionMode>,
    commits: Vec<CommitMode>,
    json: Option<String>,
    skip_control: bool,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_list<T>(value: &str, parse: impl Fn(&str) -> Option<T>, what: &str) -> Vec<T> {
    value
        .split(',')
        .map(|item| {
            parse(item.trim()).unwrap_or_else(|| {
                eprintln!("unknown {what} {item:?}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_args() -> Args {
    let mut structures = StructureKind::ALL.to_vec();
    let mut snapshot_sweep = None;
    let mut methods = MethodKind::CORRECT.to_vec();
    let mut policies = vec![
        PolicyKind::Plain,
        PolicyKind::FlitHt,
        PolicyKind::FlitAdjacent,
        PolicyKind::LinkPersist,
    ];
    let mut history_kind = "scripted".to_string();
    let mut seed = 0x2au64;
    let mut ops = 48usize;
    let mut key_range = 12u64;
    let mut budget = 64usize;
    let mut crash_at = None;
    let mut elisions = None;
    let mut commits = vec![CommitMode::Immediate];
    let mut broken_acks = false;
    let mut json = None;
    let mut skip_control = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("flag {} needs a value", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--structures" => {
                let v = value(&mut i);
                // `hamt-snapshot` is a pseudo-structure: it selects the snapshot
                // sweep, not a StructureKind, so repro strings for snapshot
                // violations replay through the same flag.
                snapshot_sweep = Some(v.split(',').any(|s| s.trim() == SNAPSHOT_STRUCTURE));
                let rest: Vec<&str> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| *s != SNAPSHOT_STRUCTURE)
                    .collect();
                structures = if rest.is_empty() {
                    Vec::new()
                } else {
                    parse_list(&rest.join(","), StructureKind::parse, "structure")
                };
            }
            "--methods" => methods = parse_list(&value(&mut i), MethodKind::parse, "method"),
            "--policies" => policies = parse_list(&value(&mut i), PolicyKind::parse, "policy"),
            "--history" => history_kind = value(&mut i),
            "--seed" => seed = parse_u64(&value(&mut i)).expect("numeric --seed"),
            "--ops" => ops = value(&mut i).parse().expect("numeric --ops"),
            "--key-range" => key_range = parse_u64(&value(&mut i)).expect("numeric --key-range"),
            "--budget" => budget = value(&mut i).parse().expect("numeric --budget"),
            "--crash-at" => crash_at = Some(parse_u64(&value(&mut i)).expect("numeric --crash-at")),
            "--elision" => {
                let v = value(&mut i);
                elisions = Some(match v.as_str() {
                    "both" => vec![ElisionMode::Enabled, ElisionMode::Disabled],
                    other => vec![ElisionMode::parse(other).unwrap_or_else(|| {
                        eprintln!("unknown --elision {other:?}: expected on|off|both");
                        std::process::exit(2);
                    })],
                });
            }
            "--commit" => commits = parse_list(&value(&mut i), CommitMode::parse, "commit mode"),
            "--broken-acks" => broken_acks = true,
            "--json" => json = Some(value(&mut i)),
            "--skip-control" => skip_control = true,
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let history = match history_kind.as_str() {
        "scripted" => HistorySpec::Scripted,
        "random" => HistorySpec::Random {
            seed,
            ops,
            key_range,
        },
        other => {
            eprintln!("unknown --history {other:?}: expected scripted|random");
            std::process::exit(2);
        }
    };
    // Crash indices are stream-specific (elision removes fence events), so repro
    // mode must not silently replay the index under both streams: default to the
    // elided stream and let the repro string's explicit --elision pin the right one.
    let elisions = elisions.unwrap_or_else(|| {
        if crash_at.is_some() {
            eprintln!("note: --crash-at without --elision replays the elision-on stream only");
            vec![ElisionMode::Enabled]
        } else {
            vec![ElisionMode::Enabled, ElisionMode::Disabled]
        }
    });
    Args {
        structures,
        // Default matrix: the snapshot sweep rides along. Explicit --structures
        // lists opt in by naming `hamt-snapshot`.
        snapshot_sweep: snapshot_sweep.unwrap_or(true),
        methods,
        policies,
        history,
        settings: SweepSettings {
            budget,
            crash_at,
            elision: ElisionMode::Enabled,
            commit: CommitMode::Immediate,
            broken_acks,
        },
        elisions,
        commits,
        json,
        skip_control,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(report: &SweepReport, expected_violations: bool) -> String {
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                r#"{{"crash_event":{},"on":"{}","completed_ops":{},"detail":"{}","repro":"{}"}}"#,
                v.crash_event,
                v.triggered_on,
                v.completed_ops,
                json_escape(&v.detail),
                json_escape(&v.repro)
            )
        })
        .collect();
    let ok = if expected_violations {
        !report.clean()
    } else {
        report.clean()
    };
    format!(
        r#"{{"case":"{}","structure":"{}","method":"{}","policy":"{}","elision":"{}","commit":"{}","broken_acks":{},"events_construction":{},"events_total":{},"points_tested":{},"expected_violations":{},"ok":{},"violations":[{}]}}"#,
        json_escape(&report.case.id()),
        report.case.structure,
        report.case.method,
        report.case.policy,
        report.case.elision.name(),
        report.case.commit.name(),
        report.case.broken_acks,
        report.events_construction,
        report.events_total,
        report.points_tested,
        expected_violations,
        ok,
        violations.join(",")
    )
}

fn main() {
    let args = parse_args();
    let started = std::time::Instant::now();

    println!(
        "flit-crashtest sweep — history {}, budget {} point(s){}",
        args.history.label(),
        if args.settings.budget == 0 {
            "every-event".to_string()
        } else {
            args.settings.budget.to_string()
        },
        match args.settings.crash_at {
            Some(k) => format!(", single crash index {k}"),
            None => String::new(),
        }
    );

    // The main matrix: correct methods must sweep clean, under every requested
    // elision mode (the two modes replay different instruction streams) and
    // every requested commit mode (immediate checks the strict per-operation
    // contract, batched the group-commit watermark/ticket contract).
    let mut reports = Vec::new();
    for &elision in &args.elisions {
        for &commit in &args.commits {
            let settings = SweepSettings {
                elision,
                commit,
                ..args.settings
            };
            reports.extend(run_matrix(
                &args.structures,
                &args.methods,
                &args.policies,
                args.history,
                &settings,
            ));
            if args.snapshot_sweep {
                // The snapshot-consistency sweep: a snapshot taken mid-history
                // and held across the crash must replay to exactly its frozen
                // contents from the retained-root table.
                let policy = args.policies.first().copied().unwrap_or(PolicyKind::FlitHt);
                reports.push(run_hamt_snapshot_case(policy, args.history, &settings));
            }
        }
    }
    let mut failed = false;
    println!("\n=== sweep matrix ===");
    for report in &reports {
        // --broken-acks turns every case into an expected-to-fail control
        // (repro mode for acknowledge-before-fence violations).
        let expected = report.case.broken_acks
            || MethodKind::parse(report.case.method)
                .map(|m| m.expects_violations())
                .unwrap_or(false);
        println!("{}", report.summary_line());
        if expected {
            // Explicitly requested broken method: it must fail, like the control.
            if report.clean() {
                failed = true;
                println!(
                    "  HARNESS BUG: {} swept clean although its durability method is \
                     deliberately broken",
                    report.case.id()
                );
            } else {
                println!("  failed as expected, e.g.: {}", report.violations[0]);
            }
            continue;
        }
        if !report.clean() {
            failed = true;
            for v in &report.violations {
                println!("  VIOLATION: {v}");
            }
        }
    }

    // The broken control: it must FAIL, proving the harness can catch bugs.
    let mut control_reports = Vec::new();
    if !args.skip_control {
        println!("\n=== broken control (volatile-broken: violations are EXPECTED) ===");
        for &structure in &args.structures {
            for &elision in &args.elisions {
                // Pick a control policy the structure supports; flit-HT supports every
                // structure, so the control is never silently skipped.
                let policy = args
                    .policies
                    .iter()
                    .copied()
                    .find(|p| p.supports(structure))
                    .unwrap_or(PolicyKind::FlitHt);
                let settings = SweepSettings {
                    elision,
                    commit: CommitMode::Immediate,
                    broken_acks: false,
                    ..args.settings
                };
                let report = run_case(
                    structure,
                    MethodKind::VolatileBroken,
                    policy,
                    args.history,
                    &settings,
                )
                .expect("a supported control policy was selected");
                println!("{}", report.summary_line());
                if report.clean() {
                    failed = true;
                    println!(
                        "  HARNESS BUG: the broken control swept clean on {} — crash injection is \
                     not detecting lost operations",
                        report.case.id()
                    );
                } else {
                    println!(
                        "  control failed as expected, e.g.: {}",
                        report.violations[0]
                    );
                }
                control_reports.push(report);
            }
        }
        // The batched contract's own control: acknowledging obligations without
        // fencing claims durability for operations whose write-backs are still
        // pending — the sweep must catch the lie, proving the acked-floor check
        // has teeth. Runs once per requested batched commit mode.
        let batched: Vec<CommitMode> = args
            .commits
            .iter()
            .copied()
            .filter(|c| c.is_batched())
            .collect();
        if !batched.is_empty() {
            println!(
                "\n=== broken control (acknowledge-before-fence: violations are EXPECTED) ==="
            );
        }
        for &commit in &batched {
            for &structure in &args.structures {
                let settings = SweepSettings {
                    elision: ElisionMode::Enabled,
                    commit,
                    broken_acks: true,
                    ..args.settings
                };
                let report = run_case(
                    structure,
                    MethodKind::Automatic,
                    PolicyKind::FlitHt,
                    args.history,
                    &settings,
                )
                .expect("flit-ht supports every structure");
                println!("{}", report.summary_line());
                if report.clean() {
                    failed = true;
                    println!(
                        "  HARNESS BUG: acknowledge-before-fence swept clean on {} — the \
                         acked-floor check is not detecting lost acknowledged operations",
                        report.case.id()
                    );
                } else {
                    println!(
                        "  control failed as expected, e.g.: {}",
                        report.violations[0]
                    );
                }
                control_reports.push(report);
            }
        }
        if control_reports.is_empty() && !(args.structures.is_empty() && args.snapshot_sweep) {
            // The control is the harness's self-check: running zero control cases
            // (e.g. an empty --structures list) must not be mistaken for success.
            failed = true;
            println!("HARNESS BUG: no broken-control case ran — the self-check was skipped");
        }
    }

    if let Some(path) = &args.json {
        let mut entries: Vec<String> = reports
            .iter()
            .map(|r| {
                let expected = MethodKind::parse(r.case.method)
                    .map(|m| m.expects_violations())
                    .unwrap_or(false);
                report_json(r, expected)
            })
            .collect();
        entries.extend(control_reports.iter().map(|r| report_json(r, true)));
        let doc = format!(
            r#"{{"history":"{}","budget":{},"ok":{},"elapsed_ms":{},"reports":[{}]}}"#,
            json_escape(&args.history.label()),
            args.settings.budget,
            !failed,
            started.elapsed().as_millis(),
            entries.join(",")
        );
        std::fs::write(path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("\nwrote JSON report to {path}");
    }

    println!(
        "\n{} case(s) swept in {:.1}s — {}",
        reports.len() + control_reports.len(),
        started.elapsed().as_secs_f64(),
        if failed { "FAILED" } else { "OK" }
    );
    std::process::exit(i32::from(failed));
}
