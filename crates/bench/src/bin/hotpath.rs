//! Single-threaded hot-path probe: one flit-HT hashtable, 50% updates, long
//! run — measures the per-operation persistence path without scheduler noise.

use flit::{FlitDb, FlitPolicy, HashedScheme};
use flit_datastructs::{Automatic, ConcurrentMap, HashTable};
use flit_pmem::{LatencyModel, SimNvram};

type Policy_ = FlitPolicy<HashedScheme, SimNvram>;
type Map_ = HashTable<Policy_, Automatic>;

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let keys: u64 = 10_000;
    let db = FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build());
    let map = Map_::with_capacity(&db, 1 << 14);
    let h = db.handle();
    // Warm: load half the key range.
    for k in 0..keys / 2 {
        map.insert(&h, k, k);
    }
    let mut x: u64 = 0x2545F4914F6CDD1D;
    let mut sink: u64 = 0;
    let start = std::time::Instant::now();
    for _ in 0..ops {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % keys;
        match x >> 62 {
            0 => {
                sink += map.insert(&h, k, x) as u64;
            }
            1 => {
                sink += map.remove(&h, k) as u64;
            }
            _ => {
                sink += map.get(&h, k).is_some() as u64;
            }
        }
    }
    let el = start.elapsed();
    println!(
        "{{\"ops\":{},\"secs\":{:.4},\"mops\":{:.4},\"sink\":{}}}",
        ops,
        el.as_secs_f64(),
        ops as f64 / el.as_secs_f64() / 1e6,
        sink
    );
}
