//! Experiment definitions for Figures 5–9 of the paper, shared by the `repro` binary
//! and the Criterion benches.
//!
//! Every function returns plain data (`Row`s) so callers can print, assert on, or
//! serialise the results. The hardware of the reproduction environment differs wildly
//! from the paper's 48-core Optane machine (see `DESIGN.md`), so the *absolute*
//! numbers are not comparable; the functions exist to reproduce the *relationships*
//! the paper reports: who wins, by roughly what factor, and where the crossovers are.

use flit_pmem::{CommitMode, ElisionMode, LatencyModel};
use flit_workload::{
    run_case, run_case_observed, run_hamt_case_observed, run_queue_case, Case, DsKind, DurKind,
    HamtCase, PolicyKind, QueueCase, QueueWorkloadConfig, WorkloadConfig, QUEUE_DURS,
};

use crate::hist::LatencyHistogram;

/// How big to make each experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Threads used for the "44 thread" experiments of the paper.
    pub threads: usize,
    /// Operations per thread per measured case.
    pub ops_per_thread: u64,
    /// Key range for the "10K keys" structures.
    pub small_keys: u64,
    /// Key range for the "10M keys" structures (scaled down).
    pub large_keys: u64,
    /// Key range for the small linked list (128 in the paper).
    pub list_small_keys: u64,
    /// Key range for the large linked list (4K in the paper).
    pub list_large_keys: u64,
    /// Thread counts swept in the scalability experiment (Figure 6).
    pub thread_sweep: &'static [usize],
    /// Hash-table sizes swept in Figure 5 (bytes).
    pub ht_sizes: &'static [usize],
}

/// Fast settings for the single-core container this reproduction runs in.
pub const SCALE_QUICK: Scale = Scale {
    threads: 4,
    ops_per_thread: 4_000,
    small_keys: 10_000,
    large_keys: 100_000,
    list_small_keys: 128,
    list_large_keys: 4_096,
    thread_sweep: &[1, 2, 4, 8],
    ht_sizes: &[4 << 10, 64 << 10, 1 << 20, 16 << 20],
};

/// Settings closer to the paper's (use on a large multi-core machine).
pub const SCALE_FULL: Scale = Scale {
    threads: 44,
    ops_per_thread: 100_000,
    small_keys: 10_000,
    large_keys: 10_000_000,
    list_small_keys: 128,
    list_large_keys: 4_096,
    thread_sweep: &[1, 2, 4, 8, 16, 32, 44],
    ht_sizes: &[4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20],
};

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label of the series (e.g. the policy variant).
    pub series: String,
    /// Label of the x-axis point (e.g. thread count, update ratio).
    pub x: String,
    /// Throughput in Mops/s.
    pub mops: f64,
    /// pwb instructions per operation.
    pub pwbs_per_op: f64,
    /// pfence instructions per operation.
    pub pfences_per_op: f64,
}

fn case(ds: DsKind, dur: DurKind, policy: PolicyKind, cfg: WorkloadConfig) -> Case {
    Case {
        ds,
        dur,
        policy,
        config: cfg,
        latency: LatencyModel::optane(),
        elision: ElisionMode::default(),
        commit: CommitMode::Immediate,
    }
}

fn measure(c: &Case, series: String, x: String) -> Row {
    let r = run_case(c);
    Row {
        series,
        x,
        mops: r.mops,
        pwbs_per_op: r.pwbs_per_op(),
        pfences_per_op: r.pfences_per_op(),
    }
}

/// Figure 5: flit-HT size tuning on the automatic BST (10K keys) at 0/5/50% updates.
pub fn figure5(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for &updates in &[0u32, 5, 50] {
        for &bytes in scale.ht_sizes {
            let cfg = WorkloadConfig::new(
                scale.small_keys,
                updates,
                scale.threads,
                scale.ops_per_thread,
            );
            let c = case(
                DsKind::Bst,
                DurKind::Automatic,
                PolicyKind::FlitHt(bytes),
                cfg,
            );
            rows.push(measure(
                &c,
                format!("{}% updates", updates),
                flit::human_bytes(bytes),
            ));
        }
    }
    rows
}

/// Figure 6: thread scalability of the automatic BST (10K keys, 5% updates) for
/// non-persistent, plain, flit-HT (1MB) and flit-adjacent.
pub fn figure6(scale: &Scale) -> Vec<Row> {
    let variants = [
        PolicyKind::NoPersist,
        PolicyKind::Plain,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::FlitAdjacent,
    ];
    let mut rows = Vec::new();
    for &threads in scale.thread_sweep {
        for policy in variants {
            let cfg = WorkloadConfig::new(scale.small_keys, 5, threads, scale.ops_per_thread);
            let c = case(DsKind::Bst, DurKind::Automatic, policy, cfg);
            rows.push(measure(&c, policy.name(), threads.to_string()));
        }
    }
    rows
}

fn small_key_range(scale: &Scale, ds: DsKind) -> u64 {
    if ds == DsKind::List {
        scale.list_small_keys
    } else {
        scale.small_keys
    }
}

fn large_key_range(scale: &Scale, ds: DsKind) -> u64 {
    if ds == DsKind::List {
        scale.list_large_keys
    } else {
        scale.large_keys
    }
}

/// Figure 7: all four structures × three durability methods × the applicable
/// variants, 5% updates, small sizes. The non-persistent baseline is included as its
/// own series (the dotted line of the paper's bar charts).
pub fn figure7(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for ds in DsKind::ALL {
        let keys = small_key_range(scale, ds);
        let cfg = || WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
        let baseline = case(ds, DurKind::Automatic, PolicyKind::NoPersist, cfg());
        rows.push(measure(
            &baseline,
            ds.name().to_string(),
            "non-persistent".into(),
        ));
        for dur in DurKind::ALL {
            for policy in PolicyKind::figure7_set(ds) {
                let c = case(ds, dur, policy, cfg());
                rows.push(measure(
                    &c,
                    ds.name().to_string(),
                    format!("{}/{}", dur.name(), policy.name()),
                ));
            }
        }
    }
    rows
}

/// Figure 8: update-ratio sweep (0/5/50%) for every structure at two sizes, automatic
/// durability, normalised to the non-persistent baseline by the caller (the raw Mops
/// are returned; the baseline series is included).
pub fn figure8(scale: &Scale, large: bool) -> Vec<Row> {
    let variants = [
        PolicyKind::NoPersist,
        PolicyKind::Plain,
        PolicyKind::FlitAdjacent,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::LinkAndPersist,
    ];
    let mut rows = Vec::new();
    for ds in DsKind::ALL {
        let keys = if large {
            large_key_range(scale, ds)
        } else {
            small_key_range(scale, ds)
        };
        for &updates in &[0u32, 5, 50] {
            for policy in variants {
                if !policy.applicable_to(ds) {
                    continue;
                }
                let cfg = WorkloadConfig::new(keys, updates, scale.threads, scale.ops_per_thread);
                let c = case(ds, DurKind::Automatic, policy, cfg);
                rows.push(measure(
                    &c,
                    format!("{}/{}", ds.name(), policy.name()),
                    format!("{}%", updates),
                ));
            }
        }
    }
    rows
}

/// Figure 9: pwb instructions per operation for the hash table (10K keys) and the
/// linked list (128 keys) at 5% updates, across the persistence variants.
pub fn figure9(scale: &Scale) -> Vec<Row> {
    let variants = [
        PolicyKind::Plain,
        PolicyKind::FlitAdjacent,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::LinkAndPersist,
    ];
    let mut rows = Vec::new();
    for (ds, dur) in [
        (DsKind::HashTable, DurKind::Automatic),
        (DsKind::List, DurKind::Automatic),
        (DsKind::HashTable, DurKind::NvTraverse),
        (DsKind::List, DurKind::NvTraverse),
    ] {
        let keys = small_key_range(scale, ds);
        for policy in variants {
            let cfg = WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
            let c = case(ds, dur, policy, cfg);
            rows.push(measure(
                &c,
                format!("{}/{}", ds.name(), dur.name()),
                policy.name(),
            ));
        }
    }
    rows
}

/// One record of the machine-readable benchmark baseline (`BENCH_flit.json`).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Structure key (`bst`, `hashtable`, `list`, `skiplist`, `hamt`).
    pub structure: String,
    /// Key range of the workload the record was measured on (the depth-sweep
    /// rows vary this; the baseline rows use the structure's small size).
    pub keys: u64,
    /// Policy label (e.g. `flit-HT (1MB)`).
    pub policy: String,
    /// Durability method key.
    pub durability: String,
    /// Persist-epoch elision mode of the run (`on` / `off`).
    pub elision: &'static str,
    /// Durability commit mode of the run (`immediate` / `batched-<k>`).
    pub commit: String,
    /// Update percentage of the workload the record was measured on (the
    /// read-mostly baseline and the write-heavy group-commit rows differ).
    pub update_percent: u32,
    /// Throughput in Mops/s (machine-dependent; tracked for trend, not truth).
    pub mops: f64,
    /// `pwb` instructions per operation (deterministic up to scheduling).
    pub pwbs_per_op: f64,
    /// `pfence` instructions per operation.
    pub pfences_per_op: f64,
    /// Fences skipped by elision, per operation.
    pub elided_pfences_per_op: f64,
    /// Median per-operation latency in nanoseconds (log₂-bucketed; see
    /// [`LatencyHistogram`]).
    pub p50_ns: u64,
    /// 99th-percentile per-operation latency in nanoseconds.
    pub p99_ns: u64,
}

/// The update percentage of the benchmark baseline: the read-mostly (95% lookup)
/// map workload where fence elision matters most.
pub const BENCH_UPDATE_PERCENT: u32 = 5;

/// The update percentage of the group-commit A/B rows: write-heavy, where the
/// trailing-fence amortisation of [`CommitMode::Batched`] is visible.
pub const BENCH_GROUP_COMMIT_UPDATE_PERCENT: u32 = 50;

/// The batch size `k` the baseline's batched rows run with.
pub const BENCH_GROUP_COMMIT_BATCH: usize = 8;

/// Measure one fully specified case and capture it as a baseline record.
fn bench_record(c: &Case) -> BenchRecord {
    let hist = LatencyHistogram::new();
    let observe = |ns: u64| hist.record(ns);
    let r = run_case_observed(c, Some(&observe));
    BenchRecord {
        structure: c.ds.name().to_string(),
        keys: c.config.key_range,
        policy: c.policy.name(),
        durability: c.dur.name().to_string(),
        elision: c.elision.name(),
        commit: c.commit.name(),
        update_percent: c.config.update_percent,
        mops: r.mops,
        pwbs_per_op: r.pwbs_per_op(),
        pfences_per_op: r.pfences_per_op(),
        elided_pfences_per_op: r.pmem.elided_pfences as f64 / r.total_ops as f64,
        p50_ns: hist.p50(),
        p99_ns: hist.p99(),
    }
}

/// [`bench_record`] for the copy-on-write HAMT, whose case has no
/// durability-method axis (the `durability` column reads `cow`).
fn bench_hamt_record(c: &HamtCase) -> BenchRecord {
    let hist = LatencyHistogram::new();
    let observe = |ns: u64| hist.record(ns);
    let r = run_hamt_case_observed(c, Some(&observe));
    BenchRecord {
        structure: "hamt".to_string(),
        keys: c.config.key_range,
        policy: c.policy.name(),
        durability: "cow".to_string(),
        elision: c.elision.name(),
        commit: c.commit.name(),
        update_percent: c.config.update_percent,
        mops: r.mops,
        pwbs_per_op: r.pwbs_per_op(),
        pfences_per_op: r.pfences_per_op(),
        elided_pfences_per_op: r.pmem.elided_pfences as f64 / r.total_ops as f64,
        p50_ns: hist.p50(),
        p99_ns: hist.p99(),
    }
}

/// The benchmark baseline behind `BENCH_flit.json`: every map structure × the four
/// persistent policy variants × both elision modes on the read-mostly (95/5)
/// workload with automatic durability, plus a group-commit A/B pair per structure
/// on the write-heavy (50/50) workload. The elision A/B pair per (structure,
/// policy) makes the per-op instruction savings of persist-epoch elision
/// machine-readable; the immediate/batched pair does the same for the trailing
/// fences amortised by [`CommitMode::Batched`].
pub fn bench_baseline(scale: &Scale) -> Vec<BenchRecord> {
    let variants = [
        PolicyKind::Plain,
        PolicyKind::FlitAdjacent,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::LinkAndPersist,
    ];
    let mut records = Vec::new();
    for ds in DsKind::ALL {
        let keys = small_key_range(scale, ds);
        for policy in variants {
            if !policy.applicable_to(ds) {
                continue;
            }
            for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
                let c = Case {
                    ds,
                    dur: DurKind::Automatic,
                    policy,
                    config: WorkloadConfig::new(
                        keys,
                        BENCH_UPDATE_PERCENT,
                        scale.threads,
                        scale.ops_per_thread,
                    ),
                    latency: LatencyModel::optane(),
                    elision,
                    commit: CommitMode::Immediate,
                };
                records.push(bench_record(&c));
            }
        }
    }
    // The copy-on-write HAMT rides the same policy × elision grid — its `cow`
    // durability column marks that the discipline is the structure's own, not
    // a method axis.
    for policy in variants {
        for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
            let c = HamtCase {
                policy,
                config: WorkloadConfig::new(
                    scale.small_keys,
                    BENCH_UPDATE_PERCENT,
                    scale.threads,
                    scale.ops_per_thread,
                ),
                latency: LatencyModel::optane(),
                elision,
                commit: CommitMode::Immediate,
            };
            records.push(bench_hamt_record(&c));
        }
    }
    // Group-commit A/B: per-operation durability vs `Batched(k)` on the
    // write-heavy mix, where the deferred trailing fences dominate. flit-HT is
    // the policy whose tag scheme supports deferred store closes, so it is the
    // pair where the amortisation shows.
    for ds in DsKind::ALL {
        let keys = small_key_range(scale, ds);
        for commit in [
            CommitMode::Immediate,
            CommitMode::Batched(BENCH_GROUP_COMMIT_BATCH),
        ] {
            let c = Case {
                ds,
                dur: DurKind::Automatic,
                policy: PolicyKind::FlitHt(1 << 20),
                config: WorkloadConfig::new(
                    keys,
                    BENCH_GROUP_COMMIT_UPDATE_PERCENT,
                    scale.threads,
                    scale.ops_per_thread,
                ),
                latency: LatencyModel::optane(),
                elision: ElisionMode::Enabled,
                commit,
            };
            records.push(bench_record(&c));
        }
    }
    for commit in [
        CommitMode::Immediate,
        CommitMode::Batched(BENCH_GROUP_COMMIT_BATCH),
    ] {
        let c = HamtCase {
            policy: PolicyKind::FlitHt(1 << 20),
            config: WorkloadConfig::new(
                scale.small_keys,
                BENCH_GROUP_COMMIT_UPDATE_PERCENT,
                scale.threads,
                scale.ops_per_thread,
            ),
            latency: LatencyModel::optane(),
            elision: ElisionMode::Enabled,
            commit,
        };
        records.push(bench_hamt_record(&c));
    }
    records
}

/// The key counts of the depth sweep behind the HAMT's flat-fence-cost claim:
/// three decades of trie depth (1k keys ≈ 3 levels, 1M keys ≈ 5).
pub const BENCH_DEPTH_KEYS: [u64; 2] = [1_000, 1_000_000];

/// The key-depth sweep (`BENCH_flit.json`'s varying-`keys` rows): the HAMT,
/// the flit-HT hash table and the BST on the same update-heavy workload at
/// each key count in `keys`. The claim the rows make machine-readable is the
/// MOD discipline's fence decoupling: the HAMT's **pwbs/op grows** with the
/// key count (a deeper trie means a longer copied path, every node of which
/// is written back) while its **pfences/op stays flat** — the whole path
/// rides under one pre-publish fence no matter how long it gets. The in-place
/// structures fence roughly once per write-back (their pfences-per-pwb ratio
/// stays near one at every size), so the HAMT's fences-per-pwb ratio sits
/// strictly below theirs and keeps falling as the trie deepens.
pub fn bench_depth_sweep(scale: &Scale, keys: &[u64]) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for &key_range in keys {
        let cfg = WorkloadConfig::new(
            key_range,
            BENCH_GROUP_COMMIT_UPDATE_PERCENT,
            scale.threads,
            scale.ops_per_thread,
        );
        records.push(bench_hamt_record(&HamtCase {
            policy: PolicyKind::FlitHt(1 << 20),
            config: cfg.clone(),
            latency: LatencyModel::optane(),
            elision: ElisionMode::Enabled,
            commit: CommitMode::Immediate,
        }));
        for ds in [DsKind::HashTable, DsKind::Bst] {
            records.push(bench_record(&Case {
                ds,
                dur: DurKind::Automatic,
                policy: PolicyKind::FlitHt(1 << 20),
                config: cfg.clone(),
                latency: LatencyModel::optane(),
                elision: ElisionMode::Enabled,
                commit: CommitMode::Immediate,
            }));
        }
    }
    records
}

/// The policy variants swept by the queue experiments (every one applies to the
/// queue; the non-persistent baseline is reported as its own series).
const QUEUE_POLICIES: [PolicyKind; 5] = [
    PolicyKind::NoPersist,
    PolicyKind::Plain,
    PolicyKind::FlitAdjacent,
    PolicyKind::FlitHt(1 << 20),
    PolicyKind::LinkAndPersist,
];

fn queue_case(dur: DurKind, policy: PolicyKind, config: QueueWorkloadConfig) -> QueueCase {
    QueueCase {
        dur,
        policy,
        config,
        latency: LatencyModel::optane(),
        elision: ElisionMode::default(),
        commit: CommitMode::Immediate,
    }
}

fn measure_queue(c: &QueueCase, series: String, x: String) -> Row {
    let r = run_queue_case(c);
    Row {
        series,
        x,
        mops: r.mops,
        pwbs_per_op: r.pwbs_per_op(),
        pfences_per_op: r.pfences_per_op(),
    }
}

/// Queue experiment A: balanced 50/50 enqueue/dequeue mix across every policy
/// variant and both exercised durability methods, with the pwb/pfence cost per queue
/// operation as the headline columns.
pub fn queue_mix(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for dur in QUEUE_DURS {
        for policy in QUEUE_POLICIES {
            let cfg = QueueWorkloadConfig::mixed(scale.threads, 50, scale.ops_per_thread)
                .with_prefill(scale.small_keys / 2);
            let c = queue_case(dur, policy, cfg);
            let series = format!("{}/{}", c.config.shape_label(), dur.name());
            rows.push(measure_queue(&c, series, policy.name()));
        }
    }
    rows
}

/// Queue experiment B: producer:consumer thread ratios (1:1 balanced, 3:1
/// producer-heavy, 1:3 consumer-heavy) with bursty producers, automatic durability.
pub fn queue_producer_consumer(scale: &Scale) -> Vec<Row> {
    // All three ratios run at (close to) the configured thread count so their
    // throughput is comparable; `.max(1)` keeps tiny scales valid.
    let half = (scale.threads / 2).max(1);
    let quarter = (scale.threads / 4).max(1);
    let ratios = [(half, half), (3 * quarter, quarter), (quarter, 3 * quarter)];
    let mut rows = Vec::new();
    for (producers, consumers) in ratios {
        for policy in QUEUE_POLICIES {
            let cfg =
                QueueWorkloadConfig::producer_consumer(producers, consumers, scale.ops_per_thread)
                    .with_burst(16)
                    .with_prefill(scale.small_keys / 2);
            let c = queue_case(DurKind::Automatic, policy, cfg);
            let label = c.config.shape_label();
            rows.push(measure_queue(&c, label, policy.name()));
        }
    }
    rows
}

/// Queue experiment C: dequeue-of-empty — a pure read-side workload where FliT's
/// elision is total. Plain pays a pwb per p-load (three per empty dequeue under
/// automatic durability); the FliT variants pay none because nothing is ever tagged.
pub fn queue_dequeue_empty(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for policy in QUEUE_POLICIES {
        // enqueue_percent 0 + no prefill: every operation observes an empty queue.
        let cfg = QueueWorkloadConfig::mixed(scale.threads, 0, scale.ops_per_thread);
        let c = queue_case(DurKind::Automatic, policy, cfg);
        rows.push(measure_queue(
            &c,
            "dequeue-empty/automatic".into(),
            policy.name(),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature scale so the experiment plumbing can be exercised in unit tests.
    const SCALE_TEST: Scale = Scale {
        threads: 2,
        ops_per_thread: 200,
        small_keys: 256,
        large_keys: 512,
        list_small_keys: 64,
        list_large_keys: 128,
        thread_sweep: &[1, 2],
        ht_sizes: &[4 << 10, 64 << 10],
    };

    #[test]
    fn figure5_produces_the_expected_grid() {
        let rows = figure5(&SCALE_TEST);
        assert_eq!(rows.len(), 3 * SCALE_TEST.ht_sizes.len());
        assert!(rows.iter().all(|r| r.mops > 0.0));
    }

    #[test]
    fn figure6_covers_every_thread_count_and_variant() {
        let rows = figure6(&SCALE_TEST);
        assert_eq!(rows.len(), SCALE_TEST.thread_sweep.len() * 4);
    }

    #[test]
    fn queue_mix_covers_every_policy_and_method() {
        let rows = queue_mix(&SCALE_TEST);
        assert_eq!(rows.len(), QUEUE_DURS.len() * QUEUE_POLICIES.len());
        assert!(rows.iter().all(|r| r.mops > 0.0));
    }

    #[test]
    fn queue_dequeue_empty_shows_the_elision() {
        let rows = queue_dequeue_empty(&SCALE_TEST);
        let pwbs = |name: &str| {
            rows.iter()
                .find(|r| r.x == name)
                .map(|r| r.pwbs_per_op)
                .unwrap()
        };
        // The acceptance claim of this workload family: FliT elides every read-side
        // flush on dequeue-of-empty, plain pays one per p-load.
        assert_eq!(pwbs("flit-HT (1MB)"), 0.0);
        assert_eq!(pwbs("flit-adjacent"), 0.0);
        assert!(pwbs("plain") >= 2.0, "plain={}", pwbs("plain"));
    }

    #[test]
    fn queue_producer_consumer_sweeps_three_ratios() {
        let rows = queue_producer_consumer(&SCALE_TEST);
        assert_eq!(rows.len(), 3 * QUEUE_POLICIES.len());
        let series: std::collections::HashSet<_> = rows.iter().map(|r| &r.series).collect();
        assert_eq!(series.len(), 3, "three distinct thread ratios: {series:?}");
    }

    #[test]
    fn bench_baseline_shows_the_fence_savings() {
        let records = bench_baseline(&SCALE_TEST);
        // 4 in-place structures × 4 policies (minus lp/bst) × 2 elision modes,
        // plus the HAMT on the same 4-policy × 2-elision grid, plus the
        // write-heavy group-commit A/B pair per structure (HAMT included).
        assert_eq!(records.len(), (4 * 4 - 1) * 2 + 4 * 2 + (4 + 1) * 2);
        let get = |structure: &str, policy: &str, elision: &str| {
            records
                .iter()
                .find(|r| {
                    r.structure == structure
                        && r.policy == policy
                        && r.elision == elision
                        && r.update_percent == BENCH_UPDATE_PERCENT
                })
                .unwrap()
        };
        // The group-commit acceptance claim: on the write-heavy mix, batched
        // commit spends strictly fewer fences per operation than per-op
        // durability for every structure.
        let commit_row = |structure: &str, commit: &str| {
            records
                .iter()
                .find(|r| {
                    r.structure == structure
                        && r.commit == commit
                        && r.update_percent == BENCH_GROUP_COMMIT_UPDATE_PERCENT
                })
                .unwrap()
        };
        for structure in ["bst", "hashtable", "list", "skiplist"] {
            let immediate = commit_row(structure, "immediate");
            let batched = commit_row(structure, &format!("batched-{BENCH_GROUP_COMMIT_BATCH}"));
            assert!(
                batched.pfences_per_op < immediate.pfences_per_op,
                "{structure}: batched commit must drop pfences/op ({} vs {})",
                batched.pfences_per_op,
                immediate.pfences_per_op
            );
        }
        for structure in ["bst", "hashtable", "list", "skiplist"] {
            let on = get(structure, "flit-HT (1MB)", "on");
            let off = get(structure, "flit-HT (1MB)", "off");
            assert!(
                on.pfences_per_op < off.pfences_per_op,
                "{structure}: elision must drop pfences/op ({} vs {})",
                on.pfences_per_op,
                off.pfences_per_op
            );
            assert!(on.elided_pfences_per_op > 0.0);
            assert!(
                on.p50_ns > 0 && on.p99_ns >= on.p50_ns,
                "latency percentiles populated"
            );
            // Figure 9 invariance: the plain baseline's pwb stream is identical in
            // both modes (it opts out of read-flush dedup). Concurrent CAS retries
            // add scheduling noise, so compare with a small tolerance here; the
            // exact single-threaded identity is asserted in `tests/elision.rs`.
            let plain_on = get(structure, "plain", "on");
            let plain_off = get(structure, "plain", "off");
            let rel = (plain_on.pwbs_per_op - plain_off.pwbs_per_op).abs()
                / plain_off.pwbs_per_op.max(1e-12);
            assert!(
                rel < 0.05,
                "{structure}: plain pwbs/op changed under elision ({} vs {})",
                plain_on.pwbs_per_op,
                plain_off.pwbs_per_op
            );
        }
    }

    #[test]
    fn bench_baseline_covers_the_hamt() {
        let records = bench_baseline(&SCALE_TEST);
        let hamt: Vec<_> = records.iter().filter(|r| r.structure == "hamt").collect();
        assert_eq!(hamt.len(), 4 * 2 + 2);
        assert!(hamt.iter().all(|r| r.durability == "cow"));
        assert!(hamt.iter().all(|r| r.keys == SCALE_TEST.small_keys));
    }

    #[test]
    fn depth_sweep_shows_the_hamt_fence_cost_flat() {
        // Miniature depth sweep: two decades of key-count growth. The MOD
        // fence decoupling in miniature: the HAMT's write-backs grow with the
        // copied path but its fences do not, while the in-place structures
        // fence about once per write-back at every size.
        let records = bench_depth_sweep(&SCALE_TEST, &[64, 4096]);
        assert_eq!(records.len(), 3 * 2);
        let get = |structure: &str, keys: u64| {
            records
                .iter()
                .find(|r| r.structure == structure && r.keys == keys)
                .unwrap()
        };
        let (small, large) = (get("hamt", 64), get("hamt", 4096));
        let rel =
            (large.pfences_per_op - small.pfences_per_op).abs() / small.pfences_per_op.max(1e-12);
        assert!(
            rel < 0.25,
            "hamt pfences/op must be flat in key depth ({} vs {})",
            small.pfences_per_op,
            large.pfences_per_op
        );
        assert!(
            large.pwbs_per_op > small.pwbs_per_op,
            "a deeper trie copies a longer path ({} vs {} pwbs/op)",
            small.pwbs_per_op,
            large.pwbs_per_op
        );
        // One fence covers the whole copied path: the HAMT's fences-per-pwb
        // ratio must sit below the in-place structures' (which flush-and-fence
        // roughly one-for-one) at the deep end.
        let hamt_ratio = large.pfences_per_op / large.pwbs_per_op;
        for structure in ["hashtable", "bst"] {
            let inplace = get(structure, 4096);
            let ratio = inplace.pfences_per_op / inplace.pwbs_per_op.max(1e-12);
            assert!(
                ratio > hamt_ratio,
                "{structure}: fences-per-pwb {} must exceed the hamt's {}",
                ratio,
                hamt_ratio
            );
        }
    }

    #[test]
    fn figure9_reports_pwb_rates() {
        let rows = figure9(&SCALE_TEST);
        assert_eq!(rows.len(), 4 * 4);
        // plain must flush more than flit-HT on the same workload.
        let plain: f64 = rows
            .iter()
            .filter(|r| r.x == "plain" && r.series == "hashtable/automatic")
            .map(|r| r.pwbs_per_op)
            .sum();
        let flit: f64 = rows
            .iter()
            .filter(|r| r.x == "flit-HT (1MB)" && r.series == "hashtable/automatic")
            .map(|r| r.pwbs_per_op)
            .sum();
        assert!(plain > flit, "plain={plain} flit={flit}");
    }
}
