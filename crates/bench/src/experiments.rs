//! Experiment definitions for Figures 5–9 of the paper, shared by the `repro` binary
//! and the Criterion benches.
//!
//! Every function returns plain data (`Row`s) so callers can print, assert on, or
//! serialise the results. The hardware of the reproduction environment differs wildly
//! from the paper's 48-core Optane machine (see `DESIGN.md`), so the *absolute*
//! numbers are not comparable; the functions exist to reproduce the *relationships*
//! the paper reports: who wins, by roughly what factor, and where the crossovers are.

use flit_pmem::LatencyModel;
use flit_workload::{run_case, Case, DsKind, DurKind, PolicyKind, WorkloadConfig};

/// How big to make each experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Threads used for the "44 thread" experiments of the paper.
    pub threads: usize,
    /// Operations per thread per measured case.
    pub ops_per_thread: u64,
    /// Key range for the "10K keys" structures.
    pub small_keys: u64,
    /// Key range for the "10M keys" structures (scaled down).
    pub large_keys: u64,
    /// Key range for the small linked list (128 in the paper).
    pub list_small_keys: u64,
    /// Key range for the large linked list (4K in the paper).
    pub list_large_keys: u64,
    /// Thread counts swept in the scalability experiment (Figure 6).
    pub thread_sweep: &'static [usize],
    /// Hash-table sizes swept in Figure 5 (bytes).
    pub ht_sizes: &'static [usize],
}

/// Fast settings for the single-core container this reproduction runs in.
pub const SCALE_QUICK: Scale = Scale {
    threads: 4,
    ops_per_thread: 4_000,
    small_keys: 10_000,
    large_keys: 100_000,
    list_small_keys: 128,
    list_large_keys: 4_096,
    thread_sweep: &[1, 2, 4, 8],
    ht_sizes: &[4 << 10, 64 << 10, 1 << 20, 16 << 20],
};

/// Settings closer to the paper's (use on a large multi-core machine).
pub const SCALE_FULL: Scale = Scale {
    threads: 44,
    ops_per_thread: 100_000,
    small_keys: 10_000,
    large_keys: 10_000_000,
    list_small_keys: 128,
    list_large_keys: 4_096,
    thread_sweep: &[1, 2, 4, 8, 16, 32, 44],
    ht_sizes: &[4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20],
};

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label of the series (e.g. the policy variant).
    pub series: String,
    /// Label of the x-axis point (e.g. thread count, update ratio).
    pub x: String,
    /// Throughput in Mops/s.
    pub mops: f64,
    /// pwb instructions per operation.
    pub pwbs_per_op: f64,
    /// pfence instructions per operation.
    pub pfences_per_op: f64,
}

fn case(ds: DsKind, dur: DurKind, policy: PolicyKind, cfg: WorkloadConfig) -> Case {
    Case {
        ds,
        dur,
        policy,
        config: cfg,
        latency: LatencyModel::optane(),
    }
}

fn measure(c: &Case, series: String, x: String) -> Row {
    let r = run_case(c);
    Row {
        series,
        x,
        mops: r.mops,
        pwbs_per_op: r.pwbs_per_op(),
        pfences_per_op: r.pfences_per_op(),
    }
}

/// Figure 5: flit-HT size tuning on the automatic BST (10K keys) at 0/5/50% updates.
pub fn figure5(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for &updates in &[0u32, 5, 50] {
        for &bytes in scale.ht_sizes {
            let cfg = WorkloadConfig::new(scale.small_keys, updates, scale.threads, scale.ops_per_thread);
            let c = case(DsKind::Bst, DurKind::Automatic, PolicyKind::FlitHt(bytes), cfg);
            rows.push(measure(
                &c,
                format!("{}% updates", updates),
                flit::human_bytes(bytes),
            ));
        }
    }
    rows
}

/// Figure 6: thread scalability of the automatic BST (10K keys, 5% updates) for
/// non-persistent, plain, flit-HT (1MB) and flit-adjacent.
pub fn figure6(scale: &Scale) -> Vec<Row> {
    let variants = [
        PolicyKind::NoPersist,
        PolicyKind::Plain,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::FlitAdjacent,
    ];
    let mut rows = Vec::new();
    for &threads in scale.thread_sweep {
        for policy in variants {
            let cfg = WorkloadConfig::new(scale.small_keys, 5, threads, scale.ops_per_thread);
            let c = case(DsKind::Bst, DurKind::Automatic, policy, cfg);
            rows.push(measure(&c, policy.name(), threads.to_string()));
        }
    }
    rows
}

fn small_key_range(scale: &Scale, ds: DsKind) -> u64 {
    if ds == DsKind::List {
        scale.list_small_keys
    } else {
        scale.small_keys
    }
}

fn large_key_range(scale: &Scale, ds: DsKind) -> u64 {
    if ds == DsKind::List {
        scale.list_large_keys
    } else {
        scale.large_keys
    }
}

/// Figure 7: all four structures × three durability methods × the applicable
/// variants, 5% updates, small sizes. The non-persistent baseline is included as its
/// own series (the dotted line of the paper's bar charts).
pub fn figure7(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for ds in DsKind::ALL {
        let keys = small_key_range(scale, ds);
        let cfg = || WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
        let baseline = case(ds, DurKind::Automatic, PolicyKind::NoPersist, cfg());
        rows.push(measure(&baseline, ds.name().to_string(), "non-persistent".into()));
        for dur in DurKind::ALL {
            for policy in PolicyKind::figure7_set(ds) {
                let c = case(ds, dur, policy, cfg());
                rows.push(measure(
                    &c,
                    ds.name().to_string(),
                    format!("{}/{}", dur.name(), policy.name()),
                ));
            }
        }
    }
    rows
}

/// Figure 8: update-ratio sweep (0/5/50%) for every structure at two sizes, automatic
/// durability, normalised to the non-persistent baseline by the caller (the raw Mops
/// are returned; the baseline series is included).
pub fn figure8(scale: &Scale, large: bool) -> Vec<Row> {
    let variants = [
        PolicyKind::NoPersist,
        PolicyKind::Plain,
        PolicyKind::FlitAdjacent,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::LinkAndPersist,
    ];
    let mut rows = Vec::new();
    for ds in DsKind::ALL {
        let keys = if large {
            large_key_range(scale, ds)
        } else {
            small_key_range(scale, ds)
        };
        for &updates in &[0u32, 5, 50] {
            for policy in variants {
                if !policy.applicable_to(ds) {
                    continue;
                }
                let cfg = WorkloadConfig::new(keys, updates, scale.threads, scale.ops_per_thread);
                let c = case(ds, DurKind::Automatic, policy, cfg);
                rows.push(measure(
                    &c,
                    format!("{}/{}", ds.name(), policy.name()),
                    format!("{}%", updates),
                ));
            }
        }
    }
    rows
}

/// Figure 9: pwb instructions per operation for the hash table (10K keys) and the
/// linked list (128 keys) at 5% updates, across the persistence variants.
pub fn figure9(scale: &Scale) -> Vec<Row> {
    let variants = [
        PolicyKind::Plain,
        PolicyKind::FlitAdjacent,
        PolicyKind::FlitHt(1 << 20),
        PolicyKind::LinkAndPersist,
    ];
    let mut rows = Vec::new();
    for (ds, dur) in [
        (DsKind::HashTable, DurKind::Automatic),
        (DsKind::List, DurKind::Automatic),
        (DsKind::HashTable, DurKind::NvTraverse),
        (DsKind::List, DurKind::NvTraverse),
    ] {
        let keys = small_key_range(scale, ds);
        for policy in variants {
            let cfg = WorkloadConfig::new(keys, 5, scale.threads, scale.ops_per_thread);
            let c = case(ds, dur, policy, cfg);
            rows.push(measure(
                &c,
                format!("{}/{}", ds.name(), dur.name()),
                policy.name(),
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature scale so the experiment plumbing can be exercised in unit tests.
    const SCALE_TEST: Scale = Scale {
        threads: 2,
        ops_per_thread: 200,
        small_keys: 256,
        large_keys: 512,
        list_small_keys: 64,
        list_large_keys: 128,
        thread_sweep: &[1, 2],
        ht_sizes: &[4 << 10, 64 << 10],
    };

    #[test]
    fn figure5_produces_the_expected_grid() {
        let rows = figure5(&SCALE_TEST);
        assert_eq!(rows.len(), 3 * SCALE_TEST.ht_sizes.len());
        assert!(rows.iter().all(|r| r.mops > 0.0));
    }

    #[test]
    fn figure6_covers_every_thread_count_and_variant() {
        let rows = figure6(&SCALE_TEST);
        assert_eq!(rows.len(), SCALE_TEST.thread_sweep.len() * 4);
    }

    #[test]
    fn figure9_reports_pwb_rates() {
        let rows = figure9(&SCALE_TEST);
        assert_eq!(rows.len(), 4 * 4);
        // plain must flush more than flit-HT on the same workload.
        let plain: f64 = rows
            .iter()
            .filter(|r| r.x == "plain" && r.series == "hashtable/automatic")
            .map(|r| r.pwbs_per_op)
            .sum();
        let flit: f64 = rows
            .iter()
            .filter(|r| r.x == "flit-HT (1MB)" && r.series == "hashtable/automatic")
            .map(|r| r.pwbs_per_op)
            .sum();
        assert!(plain > flit, "plain={plain} flit={flit}");
    }
}
