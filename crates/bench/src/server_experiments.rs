//! The `flit-server` request-loop benchmark: drive generated service request
//! streams through a sharded [`KvServer`], measuring throughput and the
//! per-request latency distribution per (shards × workers × policy × elision)
//! configuration — plus the one-shard crash/recover smoke that gates the
//! numbers (`BENCH_server.json` records both).
//!
//! The measured path is [`KvServer::pump`]: decode → route → mailbox post →
//! mailbox take → apply → encode, so a request's cost includes its shard's
//! durable queueing traffic, not just the map operation. Closed-loop runs
//! measure service capacity; open-loop runs issue at a fixed offered rate and
//! measure latency from the *scheduled* arrival, so queueing delay shows up in
//! the tail (the honest way; see [`Arrival`]).

use std::time::Instant;

use flit::{presets, FlitDb, Policy};
use flit_crashtest::{op_of, sweep_server_crash, SweepSettings, VolatileStores};
use flit_datastructs::{Automatic, HashTable};
use flit_pmem::{CommitMode, ElisionMode, LatencyModel, SimNvram};
use flit_server::{KvServer, ServerConfig};
use flit_workload::{prefill_history, random_map_history, Arrival, ServiceConfig};

use crate::experiments::Scale;
use crate::hist::LatencyHistogram;

/// The update percentage of the server baseline: a write-heavier mix than the
/// map baseline's 5%, because the service path adds per-request mailbox writes
/// whose cost should be visible next to real update traffic.
pub const SERVER_UPDATE_PERCENT: u32 = 20;

/// The flit-HT table size used by the server baseline's FliT policy.
pub const SERVER_FLIT_HT_BYTES: usize = 64 << 10;

/// The batch size `k` of the baseline's group-commit rows.
pub const SERVER_GROUP_COMMIT_BATCH: usize = 8;

/// The persistence policies the server baseline sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerPolicy {
    /// FliT with the hashed external counter table ([`SERVER_FLIT_HT_BYTES`]).
    FlitHt,
    /// The plain durable transformation (every p-load flushes).
    Plain,
}

impl ServerPolicy {
    /// Label used in tables and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            ServerPolicy::FlitHt => "flit-HT (64KB)",
            ServerPolicy::Plain => "plain",
        }
    }
}

/// One measured server configuration (one line of `BENCH_server.json`).
#[derive(Debug, Clone)]
pub struct ServerBenchRecord {
    /// Shard count.
    pub shards: usize,
    /// Client worker threads.
    pub workers: usize,
    /// Map structure key (the baseline uses the hash table).
    pub structure: &'static str,
    /// Persistence policy label.
    pub policy: &'static str,
    /// Persist-epoch elision mode (`on` / `off`).
    pub elision: &'static str,
    /// Durability commit mode (`immediate` / `batched-<k>`).
    pub commit: String,
    /// Arrival process (`closed` / `open`).
    pub arrival: &'static str,
    /// Zipf skew exponent of the key distribution (0 = uniform).
    pub skew: f64,
    /// Requests served (across all workers).
    pub requests: u64,
    /// Throughput in million requests per second.
    pub mops: f64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency, nanoseconds.
    pub p999_ns: u64,
    /// `pwb` instructions per request, summed over every shard's backend.
    pub pwbs_per_op: f64,
    /// `pfence` instructions per request, summed over every shard's backend.
    pub pfences_per_op: f64,
}

/// Throughput + latency distribution + persistence-instruction totals of one run.
struct ServerRun {
    mops: f64,
    hist: LatencyHistogram,
    pwbs: u64,
    pfences: u64,
    /// The server's own `flit-obs-v1` metrics document, snapshotted after the
    /// workers drained — the payload `BENCH_obs.json` records.
    obs: String,
}

/// Sum a counter over every shard's backend statistics.
fn shard_stat<P: Policy, M, G>(server: &KvServer<P, M>, get: G) -> u64
where
    M: flit_datastructs::ConcurrentMap<P>,
    G: Fn(&flit_pmem::StatsSnapshot) -> u64,
{
    server
        .shards()
        .iter()
        .map(|s| get(&s.db().stats_snapshot().unwrap_or_default()))
        .sum()
}

/// Build a server, prefill it through the direct path, then drive every
/// worker's request stream through [`KvServer::pump`] on its own thread,
/// recording per-request latency. Generic over the policy so each preset
/// monomorphises its own hot loop (same shape as the workload harness).
fn run_server<P, F>(
    factory: F,
    shards: usize,
    cfg: &ServiceConfig,
    elision: ElisionMode,
    commit: CommitMode,
) -> ServerRun
where
    P: Policy<Backend = SimNvram>,
    F: Fn(SimNvram) -> P,
{
    let server: KvServer<P, HashTable<P, Automatic>> =
        KvServer::new_with(ServerConfig::new(shards, cfg.key_range as usize), |_| {
            FlitDb::builder(factory(
                SimNvram::builder()
                    .latency(LatencyModel::optane())
                    .elision(elision)
                    .build(),
            ))
            .commit_mode(commit)
            .build()
        });
    // Prefill through the direct per-shard path (routed, but unmeasured and
    // mailbox-free — population, not traffic).
    {
        let handles = server.handles();
        for op in prefill_history(cfg) {
            let op = op_of(&op);
            let key = op.key().expect("prefill histories contain only data ops");
            let sid = server.route(key);
            server.shard(sid).apply(&handles[sid], &op);
        }
    }
    // One global slab of pre-encoded requests: worker `w`'s `i`-th request is
    // token `w * per + i`, so a token names its request bytes service-wide.
    let per = cfg.requests_per_worker;
    let slab: Vec<Vec<u8>> = (0..cfg.workers)
        .flat_map(|w| {
            flit_workload::service_history(cfg, w)
                .iter()
                .map(|op| op_of(op).encode())
                .collect::<Vec<_>>()
        })
        .collect();
    let hist = LatencyHistogram::new();
    let pwbs_before = shard_stat(&server, |s| s.pwbs);
    let pfences_before = shard_stat(&server, |s| s.pfences);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..cfg.workers {
            let server = &server;
            let slab = &slab;
            let hist = &hist;
            let cfg = &cfg;
            scope.spawn(move || {
                // One session per shard per worker — the explicit-handle set
                // this worker drives its requests through.
                let handles = server.handles();
                for i in 0..per {
                    let token = w as u64 * per + i;
                    // Closed loop: latency from just before the pump. Open
                    // loop: from the scheduled arrival, after spinning until
                    // it — so a late start (queueing) counts against us.
                    let t0 = match cfg.deadline_ns(w, i) {
                        Some(d) => {
                            while (start.elapsed().as_nanos() as u64) < d {
                                std::hint::spin_loop();
                            }
                            d
                        }
                        None => start.elapsed().as_nanos() as u64,
                    };
                    server
                        .pump(&handles, slab, token)
                        .expect("slab holds well-formed requests");
                    let done = start.elapsed().as_nanos() as u64;
                    hist.record(done.saturating_sub(t0));
                }
            });
        }
    });
    let elapsed = start.elapsed();

    ServerRun {
        mops: cfg.total_requests() as f64 / elapsed.as_secs_f64() / 1e6,
        hist,
        pwbs: shard_stat(&server, |s| s.pwbs) - pwbs_before,
        pfences: shard_stat(&server, |s| s.pfences) - pfences_before,
        obs: server.stats_json(),
    }
}

/// Run one configuration under the named policy and render the record.
fn measure(
    shards: usize,
    policy: ServerPolicy,
    elision: ElisionMode,
    cfg: &ServiceConfig,
) -> ServerBenchRecord {
    measure_commit(shards, policy, elision, cfg, CommitMode::Immediate)
}

/// [`measure`] under an explicit durability commit mode.
fn measure_commit(
    shards: usize,
    policy: ServerPolicy,
    elision: ElisionMode,
    cfg: &ServiceConfig,
    commit: CommitMode,
) -> ServerBenchRecord {
    let run = match policy {
        ServerPolicy::FlitHt => run_server(
            |b| presets::flit_ht_sized(b, SERVER_FLIT_HT_BYTES),
            shards,
            cfg,
            elision,
            commit,
        ),
        ServerPolicy::Plain => run_server(presets::plain, shards, cfg, elision, commit),
    };
    let requests = cfg.total_requests();
    ServerBenchRecord {
        shards,
        workers: cfg.workers,
        structure: "hashtable",
        policy: policy.name(),
        elision: elision.name(),
        commit: commit.name(),
        arrival: cfg.arrival.name(),
        skew: cfg.skew,
        requests,
        mops: run.mops,
        p50_ns: run.hist.p50(),
        p99_ns: run.hist.p99(),
        p999_ns: run.hist.p999(),
        pwbs_per_op: run.pwbs as f64 / requests as f64,
        pfences_per_op: run.pfences as f64 / requests as f64,
    }
}

/// The service workload behind the baseline grid: mixed 80/20 read/write
/// traffic over the scale's small key range.
fn base_config(scale: &Scale, workers: usize) -> ServiceConfig {
    ServiceConfig::new(
        scale.small_keys,
        SERVER_UPDATE_PERCENT,
        workers,
        scale.ops_per_thread,
    )
}

/// The server benchmark baseline (`BENCH_server.json`): the closed-loop
/// {1, 2, 4} shards × {flit-HT, plain} × {elision on, off} grid, a worker-count
/// point, a skewed-key point, and two open-loop points at a fixed offered rate.
pub fn server_baseline(scale: &Scale) -> Vec<ServerBenchRecord> {
    let workers = (scale.threads / 2).max(2);
    let mut records = Vec::new();
    for shards in [1usize, 2, 4] {
        for policy in [ServerPolicy::FlitHt, ServerPolicy::Plain] {
            for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
                records.push(measure(
                    shards,
                    policy,
                    elision,
                    &base_config(scale, workers),
                ));
            }
        }
    }
    // More workers than shards: mailbox contention becomes visible.
    records.push(measure(
        2,
        ServerPolicy::FlitHt,
        ElisionMode::Enabled,
        &base_config(scale, workers * 2),
    ));
    // Zipf-skewed keys: hot keys concentrate on few shards.
    records.push(measure(
        2,
        ServerPolicy::FlitHt,
        ElisionMode::Enabled,
        &base_config(scale, workers).with_skew(0.99),
    ));
    // Open loop at a deliberately modest offered rate: latency now includes
    // queueing delay relative to the arrival schedule.
    for policy in [ServerPolicy::FlitHt, ServerPolicy::Plain] {
        records.push(measure(
            2,
            policy,
            ElisionMode::Enabled,
            &base_config(scale, workers).with_arrival(Arrival::Open { mops: 0.05 }),
        ));
    }
    // Group commit: the two-shard closed-loop points again under `Batched(k)`.
    // Their immediate twins are already in the grid above, so the pair makes
    // the per-request fence amortisation of group commit machine-readable.
    for policy in [ServerPolicy::FlitHt, ServerPolicy::Plain] {
        records.push(measure_commit(
            2,
            policy,
            ElisionMode::Enabled,
            &base_config(scale, workers),
            CommitMode::Batched(SERVER_GROUP_COMMIT_BATCH),
        ));
    }
    records
}

/// The `flit-obs-v1` metrics document of one representative baseline run
/// (two-shard flit-HT, elision on, immediate commit, closed loop) — what
/// `repro -- server` records to `BENCH_obs.json`. Snapshotted after the
/// request streams drain, so every layer's series carries real samples:
/// `server_ops_total`/`server_reply_ns` from the pump, the databases'
/// persistence counters and arena gauges underneath.
pub fn server_obs_document(scale: &Scale) -> String {
    run_server(
        |b| presets::flit_ht_sized(b, SERVER_FLIT_HT_BYTES),
        2,
        &base_config(scale, 2),
        ElisionMode::Enabled,
        CommitMode::Immediate,
    )
    .obs
}

/// The crash-correctness gate recorded alongside the numbers: a one-shard
/// crash/recover sweep over a two-shard flit-HT server (which must be clean)
/// and over the deliberately broken [`VolatileStores`] control (which must
/// not be — otherwise the harness, not the server, is broken).
#[derive(Debug, Clone)]
pub struct ServerCrashSummary {
    /// Shard count of the swept server.
    pub shards: usize,
    /// The shard that was crashed.
    pub crash_shard: usize,
    /// Crash points injected on the correct configuration.
    pub points_tested: usize,
    /// Total events on the crashed shard's stream.
    pub events_total: u64,
    /// Violations found on the correct configuration (must be 0).
    pub violations: usize,
    /// Whether the broken control produced violations (must be true).
    pub broken_control_caught: bool,
}

/// Run the crash-correctness gate. See [`ServerCrashSummary`].
pub fn server_crash_smoke() -> ServerCrashSummary {
    type P = flit::FlitPolicy<flit::HashedScheme, SimNvram>;
    let history = random_map_history(11, 60, 24);
    let factory = |b: SimNvram| presets::flit_ht_sized(b, SERVER_FLIT_HT_BYTES);
    let good = sweep_server_crash::<P, HashTable<P, Automatic>, _>(
        "flit-ht",
        factory,
        2,
        0,
        &history,
        &SweepSettings {
            budget: 48,
            ..Default::default()
        },
    );
    let broken = sweep_server_crash::<P, HashTable<P, VolatileStores>, _>(
        "volatile-broken",
        factory,
        2,
        0,
        &history,
        &SweepSettings {
            budget: 24,
            ..Default::default()
        },
    );
    ServerCrashSummary {
        shards: good.shards,
        crash_shard: good.crash_shard,
        points_tested: good.points_tested,
        events_total: good.events_total,
        violations: good.violations.len(),
        broken_control_caught: !broken.clean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(workers: usize) -> ServiceConfig {
        ServiceConfig::new(256, SERVER_UPDATE_PERCENT, workers, 400)
    }

    #[test]
    fn closed_loop_run_measures_latency_and_instructions() {
        let r = measure(
            2,
            ServerPolicy::FlitHt,
            ElisionMode::Enabled,
            &test_config(2),
        );
        assert_eq!(r.requests, 800);
        assert!(r.mops > 0.0);
        assert!(r.p50_ns > 0, "pumping a request takes time");
        assert!(r.p99_ns >= r.p50_ns);
        assert!(r.p999_ns >= r.p99_ns);
        assert!(r.pwbs_per_op > 0.0, "the mailbox alone guarantees pwbs");
        assert_eq!((r.arrival, r.elision), ("closed", "on"));
    }

    #[test]
    fn plain_pays_more_flushes_than_flit_on_the_service_path() {
        let flit = measure(
            1,
            ServerPolicy::FlitHt,
            ElisionMode::Enabled,
            &test_config(1),
        );
        let plain = measure(
            1,
            ServerPolicy::Plain,
            ElisionMode::Enabled,
            &test_config(1),
        );
        assert!(
            plain.pwbs_per_op > flit.pwbs_per_op,
            "plain={} flit={}",
            plain.pwbs_per_op,
            flit.pwbs_per_op
        );
    }

    #[test]
    fn batched_commit_amortises_fences_on_the_service_path() {
        let immediate = measure(
            1,
            ServerPolicy::FlitHt,
            ElisionMode::Enabled,
            &test_config(1),
        );
        let batched = measure_commit(
            1,
            ServerPolicy::FlitHt,
            ElisionMode::Enabled,
            &test_config(1),
            CommitMode::Batched(SERVER_GROUP_COMMIT_BATCH),
        );
        assert_eq!(batched.commit, "batched-8");
        assert!(
            batched.pfences_per_op < immediate.pfences_per_op,
            "batched={} immediate={}",
            batched.pfences_per_op,
            immediate.pfences_per_op
        );
    }

    #[test]
    fn open_loop_runs_at_the_offered_rate() {
        let cfg = test_config(2).with_arrival(Arrival::Open { mops: 0.05 });
        let r = measure(2, ServerPolicy::FlitHt, ElisionMode::Enabled, &cfg);
        assert_eq!(r.arrival, "open");
        // 800 requests at 0.05 Mops take ≥ 16ms of schedule; capacity is far
        // higher, so throughput lands close to (and never above 2x) the rate.
        assert!(r.mops < 0.1, "open loop must pace, measured {}", r.mops);
    }

    #[test]
    fn crash_smoke_is_clean_and_catches_the_control() {
        let s = server_crash_smoke();
        assert_eq!(s.violations, 0, "the flit-HT server must sweep clean");
        assert!(s.broken_control_caught, "the broken control must be caught");
        assert!(s.points_tested > 0 && s.events_total > 0);
    }
}
