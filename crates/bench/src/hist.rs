//! Latency histogram — re-exported from `flit-obs`, its home since the
//! observability layer landed.
//!
//! The histogram began life in this crate as the bench harness's percentile
//! machinery; the metrics registry ([`flit_obs::Registry`]) needed the same
//! log₂×linear bucketing for its histograms, so the implementation moved down
//! to `flit-obs` and this module keeps the old paths
//! (`flit_bench::hist::LatencyHistogram` / `flit_bench::LatencyHistogram`)
//! working unchanged. Bench JSON schemas are unaffected.

pub use flit_obs::LatencyHistogram;
