//! # `flit-ebr` — epoch-based memory reclamation
//!
//! The lock-free data structures used in the FliT paper's evaluation (Harris linked
//! list, Natarajan–Mittal BST, skiplist, hash table) physically unlink nodes that other
//! threads may still be traversing. Freeing such a node immediately would be a
//! use-after-free; this crate provides the standard solution, *epoch-based
//! reclamation* (EBR), as an independent substrate so the data-structure crate does not
//! depend on any external reclamation library.
//!
//! ## How it works
//!
//! A [`Collector`] maintains a global epoch counter and a fixed table of participant
//! slots. Before touching shared nodes, a thread [`pin`](Collector::pin)s itself: it
//! claims a slot (once per thread per collector) and publishes the epoch it observed.
//! Nodes removed from the structure are not freed; they are handed to
//! [`Guard::defer_destroy`], which records them together with the epoch at retirement.
//! The global epoch only advances when every pinned thread has caught up with it, so a
//! node retired in epoch *e* can be reclaimed safely once the global epoch reaches
//! *e + 2*: every thread that could possibly hold a reference has unpinned since.
//!
//! ## Guarantees and limits
//!
//! * Memory is reclaimed only when provably unreachable (two-epoch rule).
//! * A thread that stays pinned forever blocks reclamation but never correctness.
//! * At most [`MAX_PARTICIPANTS`] distinct threads may ever pin a given collector
//!   (slots are claimed per thread and never recycled); exceeding it panics. This is a
//!   deliberate simplification — the evaluation harness never spawns more than a few
//!   dozen threads per structure.
//! * Dropping the collector runs every remaining deferred destructor.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_utils::CachePadded;

/// Maximum number of distinct threads that may pin a single collector over its
/// lifetime.
pub const MAX_PARTICIPANTS: usize = 256;

/// Slot state meaning "not currently pinned".
const INACTIVE: u64 = u64::MAX;

/// How many unpins a slot performs between attempts to advance the global epoch and
/// collect its local garbage.
const COLLECT_INTERVAL: u64 = 32;

/// A deferred reclamation action: runs exactly once, by whichever thread happens
/// to run collection, after the two-epoch rule proves the retired object
/// unreachable.
struct Deferred(Box<dyn FnOnce() + Send>);

impl Deferred {
    /// Build a deferred action that reclaims `ptr` as a `Box<T>`.
    ///
    /// # Safety
    /// `ptr` must have been produced by `Box::into_raw` and must not be freed by any
    /// other path.
    unsafe fn destroy_box<T: 'static>(ptr: *mut T) -> Self {
        let ptr = SendPtr(ptr);
        Deferred(Box::new(move || {
            // Rebind the whole wrapper so the closure captures the `Send` wrapper
            // itself (edition-2021 disjoint capture would otherwise capture the
            // raw-pointer field directly).
            let wrapper = ptr;
            let raw = wrapper.0;
            // SAFETY: guaranteed by the contract of `destroy_box`; the two-epoch
            // rule makes the object unreachable by the time this runs.
            drop(unsafe { Box::from_raw(raw) });
        }))
    }

    fn run(self) {
        (self.0)()
    }
}

/// Raw-pointer wrapper so reclamation closures can capture node pointers.
/// The EBR epoch discipline is what makes moving the pointer across threads sound.
struct SendPtr<T>(*mut T);
// SAFETY: see the type docs — the wrapped pointer is only dereferenced by the one
// thread that runs the deferred action, after quiescence.
unsafe impl<T> Send for SendPtr<T> {}

struct Slot {
    /// Either `INACTIVE` or the epoch the owning thread pinned at.
    state: CachePadded<AtomicU64>,
    /// Garbage retired through this slot: `(retirement epoch, destructor)`.
    garbage: Mutex<Vec<(u64, Deferred)>>,
    /// Unpin counter used to pace collection attempts.
    unpins: AtomicU64,
}

impl Default for Slot {
    fn default() -> Self {
        Self {
            state: CachePadded::new(AtomicU64::new(INACTIVE)),
            garbage: Mutex::new(Vec::new()),
            unpins: AtomicU64::new(0),
        }
    }
}

struct Global {
    id: u64,
    epoch: CachePadded<AtomicU64>,
    slots: Vec<Slot>,
    claimed: AtomicUsize,
}

impl Drop for Global {
    fn drop(&mut self) {
        // No guards can exist at this point (they borrow the collector), so all
        // remaining garbage is unreachable and safe to destroy.
        for slot in &self.slots {
            let mut garbage = slot.garbage.lock().unwrap();
            for (_, deferred) in garbage.drain(..) {
                deferred.run();
            }
        }
    }
}

/// An epoch-based garbage collector shared by all threads operating on one data
/// structure. Cloning is cheap (reference-counted) and clones share all state.
#[derive(Clone)]
pub struct Collector {
    global: Arc<Global>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.global.epoch.load(Ordering::Relaxed))
            .field("participants", &self.global.claimed.load(Ordering::Relaxed))
            .finish()
    }
}

thread_local! {
    /// Per-thread cache of "which slot do I own in collector N".
    static SLOT_CACHE: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

impl Collector {
    /// Create a new collector.
    pub fn new() -> Self {
        Self {
            global: Arc::new(Global {
                id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
                epoch: CachePadded::new(AtomicU64::new(0)),
                slots: (0..MAX_PARTICIPANTS).map(|_| Slot::default()).collect(),
                claimed: AtomicUsize::new(0),
            }),
        }
    }

    /// The current global epoch (diagnostic; monotonically non-decreasing).
    pub fn epoch(&self) -> u64 {
        self.global.epoch.load(Ordering::SeqCst)
    }

    /// Number of threads that have registered with this collector so far.
    pub fn participants(&self) -> usize {
        self.global.claimed.load(Ordering::Relaxed)
    }

    /// Total retired-but-not-yet-freed objects (diagnostic; approximate under
    /// concurrency).
    pub fn garbage_len(&self) -> usize {
        self.global
            .slots
            .iter()
            .map(|s| s.garbage.lock().unwrap().len())
            .sum()
    }

    fn slot_index(&self) -> usize {
        SLOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&idx) = cache.get(&self.global.id) {
                return idx;
            }
            let idx = self.global.claimed.fetch_add(1, Ordering::Relaxed);
            assert!(
                idx < MAX_PARTICIPANTS,
                "flit-ebr: more than {MAX_PARTICIPANTS} threads pinned one collector"
            );
            cache.insert(self.global.id, idx);
            idx
        })
    }

    /// Pin the current thread: while the returned [`Guard`] is alive, no node retired
    /// after this call will be reclaimed, so shared pointers read under the guard stay
    /// valid.
    pub fn pin(&self) -> Guard<'_> {
        let idx = self.slot_index();
        let slot = &self.global.slots[idx];
        let epoch = self.global.epoch.load(Ordering::SeqCst);
        slot.state.store(epoch, Ordering::SeqCst);
        // On x86 the SeqCst store above already provides the required
        // store-load ordering against subsequent reads of shared pointers.
        Guard {
            collector: self,
            slot_idx: idx,
        }
    }

    /// Try to advance the global epoch. Succeeds only if every currently pinned thread
    /// has observed the current epoch.
    fn try_advance(&self) -> u64 {
        let epoch = self.global.epoch.load(Ordering::SeqCst);
        for slot in &self.global.slots {
            let state = slot.state.load(Ordering::SeqCst);
            if state != INACTIVE && state != epoch {
                return epoch;
            }
        }
        let _ = self.global.epoch.compare_exchange(
            epoch,
            epoch + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.global.epoch.load(Ordering::SeqCst)
    }

    /// Free everything in `slot_idx`'s garbage bag that was retired at least two
    /// epochs ago.
    fn collect(&self, slot_idx: usize) {
        let global_epoch = self.try_advance();
        let slot = &self.global.slots[slot_idx];
        let ready: Vec<Deferred> = {
            let mut garbage = match slot.garbage.try_lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            let mut ready = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].0 + 2 <= global_epoch {
                    ready.push(garbage.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            ready
        };
        for deferred in ready {
            deferred.run();
        }
    }

    /// Eagerly attempt to reclaim garbage from every slot. Useful in tests and when a
    /// data structure is about to be dropped.
    pub fn flush(&self) {
        for idx in 0..MAX_PARTICIPANTS {
            self.collect(idx);
        }
    }
}

/// A pinned-thread token. Shared nodes may be dereferenced and retired only while a
/// guard is alive.
pub struct Guard<'c> {
    collector: &'c Collector,
    slot_idx: usize,
}

impl Guard<'_> {
    /// Defer destruction of `ptr` (obtained from `Box::into_raw`) until no pinned
    /// thread can still hold a reference to it.
    ///
    /// # Safety
    /// * `ptr` must have been created by `Box::into_raw::<T>`.
    /// * `ptr` must be unreachable for threads that pin *after* this call (i.e. it has
    ///   been unlinked from the shared structure).
    /// * No other code may free `ptr`.
    pub unsafe fn defer_destroy<T: 'static>(&self, ptr: *mut T) {
        let epoch = self.collector.global.epoch.load(Ordering::SeqCst);
        let deferred = unsafe { Deferred::destroy_box(ptr) };
        let slot = &self.collector.global.slots[self.slot_idx];
        slot.garbage.lock().unwrap().push((epoch, deferred));
    }

    /// Defer an arbitrary reclamation action until no pinned thread can still hold
    /// a reference to whatever it frees. This is the hook arena-allocated
    /// structures use: instead of dropping a `Box`, the action returns the node's
    /// slot to its arena's recycle list.
    ///
    /// The closure itself runs exactly once, on an arbitrary thread, after the
    /// two-epoch rule proves quiescence; any unsafety (freeing a slot, recycling
    /// memory) lives inside the closure under the caller's unlinked-and-unique
    /// guarantee.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        let epoch = self.collector.global.epoch.load(Ordering::SeqCst);
        let slot = &self.collector.global.slots[self.slot_idx];
        slot.garbage
            .lock()
            .unwrap()
            .push((epoch, Deferred(Box::new(f))));
    }

    /// The collector this guard belongs to.
    pub fn collector(&self) -> &Collector {
        self.collector
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let slot = &self.collector.global.slots[self.slot_idx];
        slot.state.store(INACTIVE, Ordering::SeqCst);
        let unpins = slot.unpins.fetch_add(1, Ordering::Relaxed) + 1;
        if unpins % COLLECT_INTERVAL == 0 {
            self.collector.collect(self.slot_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A payload that counts how many times it is dropped.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_unpin_advances_epoch_eventually() {
        let c = Collector::new();
        let start = c.epoch();
        for _ in 0..(COLLECT_INTERVAL * 4) {
            drop(c.pin());
        }
        assert!(c.epoch() >= start, "epoch must never go backwards");
    }

    #[test]
    fn deferred_destruction_runs_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        {
            let guard = c.pin();
            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { guard.defer_destroy(node) };
        }
        // Unpin repeatedly so the epoch can advance and garbage gets collected.
        for _ in 0..(COLLECT_INTERVAL * 6) {
            drop(c.pin());
        }
        c.flush();
        c.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nothing_is_freed_while_a_guard_is_pinned() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let other = c.clone();

        // A long-lived guard pins the current epoch.
        let long_lived = c.pin();

        std::thread::scope(|s| {
            s.spawn(|| {
                let guard = other.pin();
                let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                unsafe { guard.defer_destroy(node) };
                drop(guard);
                for _ in 0..(COLLECT_INTERVAL * 6) {
                    drop(other.pin());
                }
                other.flush();
            });
        });

        // The long-lived guard observed the retirement epoch, so the node must not
        // have been reclaimed yet.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(long_lived);
        for _ in 0..(COLLECT_INTERVAL * 6) {
            drop(c.pin());
        }
        c.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn collector_drop_reclaims_leftovers() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            let guard = c.pin();
            for _ in 0..10 {
                let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                unsafe { guard.defer_destroy(node) };
            }
            drop(guard);
            // No flushing: dropping the collector must clean everything up.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_retirement_stress() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let c = c.clone();
                    let drops = Arc::clone(&drops);
                    s.spawn(move || {
                        for _ in 0..PER_THREAD {
                            let guard = c.pin();
                            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                            unsafe { guard.defer_destroy(node) };
                            drop(guard);
                        }
                    });
                }
            });
        }
        assert_eq!(drops.load(Ordering::SeqCst), THREADS * PER_THREAD);
    }

    #[test]
    fn participants_are_counted_once_per_thread() {
        let c = Collector::new();
        drop(c.pin());
        drop(c.pin());
        assert_eq!(c.participants(), 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                drop(c.pin());
                drop(c.pin());
            });
        });
        assert_eq!(c.participants(), 2);
    }

    #[test]
    fn garbage_len_reports_pending_items() {
        let c = Collector::new();
        let guard = c.pin();
        let node = Box::into_raw(Box::new(17u64));
        unsafe { guard.defer_destroy(node) };
        assert_eq!(c.garbage_len(), 1);
        drop(guard);
    }
}
