//! # `flit-ebr` — epoch-based memory reclamation with explicit participants
//!
//! The lock-free data structures used in the FliT paper's evaluation (Harris linked
//! list, Natarajan–Mittal BST, skiplist, hash table) physically unlink nodes that other
//! threads may still be traversing. Freeing such a node immediately would be a
//! use-after-free; this crate provides the standard solution, *epoch-based
//! reclamation* (EBR), as an independent substrate so the data-structure crate does not
//! depend on any external reclamation library.
//!
//! ## How it works
//!
//! A [`Collector`] maintains a global epoch counter and a fixed table of participant
//! slots. A logical thread of execution **registers** once
//! ([`Collector::register`]), receiving a [`LocalHandle`] that owns one slot.
//! Before touching shared nodes, the handle [`pin`](LocalHandle::pin)s itself: it
//! publishes the epoch it observed in its slot. Nodes removed from the structure
//! are not freed; they are handed to [`Guard::defer_destroy`] (or [`Guard::defer`]),
//! which records them together with the epoch at retirement. The global epoch only
//! advances when every pinned participant has caught up with it, so a node retired
//! in epoch *e* can be reclaimed safely once the global epoch reaches *e + 2*:
//! every participant that could possibly hold a reference has unpinned since.
//!
//! ## Explicit handles (no thread-locals)
//!
//! Earlier revisions cached "which slot does this OS thread own" in a
//! `thread_local!` map, which made participation ambient: slots could never be
//! recycled (a dead thread's slot stayed claimed forever), and a controlled
//! scheduler could not represent two logical threads on one OS thread. A
//! [`LocalHandle`] makes participation a plain value: it is `Send` (a handle may
//! migrate between OS threads — at most one uses it at a time, which `!Sync`
//! enforces), two handles on one OS thread are two independent participants, and
//! **dropping a handle returns its slot to a free list** for the next
//! registration — short-lived workers no longer leak participant slots.
//!
//! ## Guarantees and limits
//!
//! * Memory is reclaimed only when provably unreachable (two-epoch rule).
//! * A handle that stays pinned forever blocks reclamation but never correctness.
//! * At most [`MAX_PARTICIPANTS`] handles may be live *simultaneously* on one
//!   collector (slots are recycled on handle drop); exceeding it panics.
//! * Pinning is re-entrant per handle: nested [`pin`](LocalHandle::pin)s share the
//!   outermost pin's epoch, and only the outermost unpin deactivates the slot.
//! * Dropping the collector runs every remaining deferred destructor.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_utils::CachePadded;

/// Maximum number of simultaneously live participant handles per collector.
pub const MAX_PARTICIPANTS: usize = 256;

/// Slot state meaning "not currently pinned".
const INACTIVE: u64 = u64::MAX;

/// How many unpins a slot performs between attempts to advance the global epoch and
/// collect its local garbage.
const COLLECT_INTERVAL: u64 = 32;

/// A deferred reclamation action: runs exactly once, by whichever participant happens
/// to run collection, after the two-epoch rule proves the retired object
/// unreachable.
struct Deferred(Box<dyn FnOnce() + Send>);

impl Deferred {
    /// Build a deferred action that reclaims `ptr` as a `Box<T>`.
    ///
    /// # Safety
    /// `ptr` must have been produced by `Box::into_raw` and must not be freed by any
    /// other path.
    unsafe fn destroy_box<T: 'static>(ptr: *mut T) -> Self {
        let ptr = SendPtr(ptr);
        Deferred(Box::new(move || {
            // Rebind the whole wrapper so the closure captures the `Send` wrapper
            // itself (edition-2021 disjoint capture would otherwise capture the
            // raw-pointer field directly).
            let wrapper = ptr;
            let raw = wrapper.0;
            // SAFETY: guaranteed by the contract of `destroy_box`; the two-epoch
            // rule makes the object unreachable by the time this runs.
            drop(unsafe { Box::from_raw(raw) });
        }))
    }

    fn run(self) {
        (self.0)()
    }
}

/// Raw-pointer wrapper so reclamation closures can capture node pointers.
/// The EBR epoch discipline is what makes moving the pointer across threads sound.
struct SendPtr<T>(*mut T);
// SAFETY: see the type docs — the wrapped pointer is only dereferenced by the one
// thread that runs the deferred action, after quiescence.
unsafe impl<T> Send for SendPtr<T> {}

struct Slot {
    /// Either `INACTIVE` or the epoch the owning handle pinned at.
    state: CachePadded<AtomicU64>,
    /// Garbage retired through this slot: `(retirement epoch, destructor)`.
    /// Survives slot recycling — the next owner inherits (and eventually
    /// collects) whatever the previous owner left behind.
    garbage: Mutex<Vec<(u64, Deferred)>>,
    /// Unpin counter used to pace collection attempts.
    unpins: AtomicU64,
}

impl Default for Slot {
    fn default() -> Self {
        Self {
            state: CachePadded::new(AtomicU64::new(INACTIVE)),
            garbage: Mutex::new(Vec::new()),
            unpins: AtomicU64::new(0),
        }
    }
}

struct Global {
    epoch: CachePadded<AtomicU64>,
    slots: Vec<Slot>,
    /// High-water mark of slots ever claimed.
    claimed: AtomicUsize,
    /// Slots returned by dropped handles, ready for re-registration.
    free_slots: Mutex<Vec<usize>>,
}

impl Drop for Global {
    fn drop(&mut self) {
        // No guards can exist at this point (they borrow handles, which borrow the
        // collector's Arc), so all remaining garbage is unreachable and safe to
        // destroy.
        for slot in &self.slots {
            let mut garbage = slot.garbage.lock().unwrap();
            for (_, deferred) in garbage.drain(..) {
                deferred.run();
            }
        }
    }
}

/// An epoch-based garbage collector shared by all participants operating on one
/// database's structures. Cloning is cheap (reference-counted) and clones share
/// all state.
#[derive(Clone)]
pub struct Collector {
    global: Arc<Global>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.global.epoch.load(Ordering::Relaxed))
            .field("participants", &self.participants())
            .finish()
    }
}

impl Collector {
    /// Create a new collector.
    pub fn new() -> Self {
        Self {
            global: Arc::new(Global {
                epoch: CachePadded::new(AtomicU64::new(0)),
                slots: (0..MAX_PARTICIPANTS).map(|_| Slot::default()).collect(),
                claimed: AtomicUsize::new(0),
                free_slots: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The current global epoch (diagnostic; monotonically non-decreasing).
    pub fn epoch(&self) -> u64 {
        self.global.epoch.load(Ordering::SeqCst)
    }

    /// Number of currently live participant handles.
    pub fn participants(&self) -> usize {
        self.global.claimed.load(Ordering::Relaxed) - self.global.free_slots.lock().unwrap().len()
    }

    /// Total retired-but-not-yet-freed objects (diagnostic; approximate under
    /// concurrency).
    pub fn garbage_len(&self) -> usize {
        self.global
            .slots
            .iter()
            .map(|s| s.garbage.lock().unwrap().len())
            .sum()
    }

    /// Register a new participant: claim a slot (reusing one returned by a
    /// dropped handle when available) and hand out the [`LocalHandle`] that owns
    /// it. The handle unregisters — and the slot becomes reusable — on drop.
    ///
    /// # Panics
    /// Panics when more than [`MAX_PARTICIPANTS`] handles are live at once.
    pub fn register(&self) -> LocalHandle {
        let slot = self.global.free_slots.lock().unwrap().pop();
        let slot = slot.unwrap_or_else(|| {
            let idx = self.global.claimed.fetch_add(1, Ordering::Relaxed);
            assert!(
                idx < MAX_PARTICIPANTS,
                "flit-ebr: more than {MAX_PARTICIPANTS} live handles on one collector"
            );
            idx
        });
        debug_assert_eq!(
            self.global.slots[slot].state.load(Ordering::SeqCst),
            INACTIVE,
            "a freed slot must be inactive"
        );
        LocalHandle {
            collector: self.clone(),
            slot,
            pin_depth: Cell::new(0),
        }
    }

    /// Try to advance the global epoch. Succeeds only if every currently pinned
    /// participant has observed the current epoch.
    fn try_advance(&self) -> u64 {
        let epoch = self.global.epoch.load(Ordering::SeqCst);
        for slot in &self.global.slots {
            let state = slot.state.load(Ordering::SeqCst);
            if state != INACTIVE && state != epoch {
                return epoch;
            }
        }
        let _ = self.global.epoch.compare_exchange(
            epoch,
            epoch + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.global.epoch.load(Ordering::SeqCst)
    }

    /// Free everything in `slot_idx`'s garbage bag that was retired at least two
    /// epochs ago.
    fn collect(&self, slot_idx: usize) {
        let global_epoch = self.try_advance();
        let slot = &self.global.slots[slot_idx];
        let ready: Vec<Deferred> = {
            let mut garbage = match slot.garbage.try_lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            let mut ready = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].0 + 2 <= global_epoch {
                    ready.push(garbage.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            ready
        };
        for deferred in ready {
            deferred.run();
        }
    }

    /// Eagerly attempt to reclaim garbage from every slot. Useful in tests and when a
    /// data structure is about to be dropped.
    pub fn flush(&self) {
        for idx in 0..MAX_PARTICIPANTS {
            self.collect(idx);
        }
    }
}

/// An explicit participant in a [`Collector`]: owns one slot for as long as it
/// lives, and returns it on drop. This is the EBR half of a `FlitHandle`; see the
/// crate docs for why participation is a value rather than a thread-local.
///
/// `Send` but `!Sync`: a handle may migrate between OS threads, but only one may
/// use it at a time (the `Cell`-based pin depth enforces this at the type level).
pub struct LocalHandle {
    collector: Collector,
    slot: usize,
    /// Re-entrancy depth: how many live [`Guard`]s this handle has handed out.
    pin_depth: Cell<u64>,
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("slot", &self.slot)
            .field("pin_depth", &self.pin_depth.get())
            .finish()
    }
}

impl LocalHandle {
    /// Pin this participant: while the returned [`Guard`] is alive, no node
    /// retired after this call will be reclaimed, so shared pointers read under
    /// the guard stay valid. Nested pins are cheap (only the outermost publishes
    /// an epoch).
    pub fn pin(&self) -> Guard<'_> {
        let depth = self.pin_depth.get();
        if depth == 0 {
            let slot = &self.collector.global.slots[self.slot];
            let epoch = self.collector.global.epoch.load(Ordering::SeqCst);
            slot.state.store(epoch, Ordering::SeqCst);
            // On x86 the SeqCst store above already provides the required
            // store-load ordering against subsequent reads of shared pointers.
        }
        self.pin_depth.set(depth + 1);
        Guard { handle: self }
    }

    /// The collector this handle participates in.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The slot index this handle owns (diagnostics).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        debug_assert_eq!(self.pin_depth.get(), 0, "handle dropped while pinned");
        let slot = &self.collector.global.slots[self.slot];
        slot.state.store(INACTIVE, Ordering::SeqCst);
        // Give this slot's garbage a collection chance before the slot is handed
        // to the next registrant (best effort — anything left is inherited).
        self.collector.collect(self.slot);
        self.collector
            .global
            .free_slots
            .lock()
            .unwrap()
            .push(self.slot);
    }
}

/// A pinned-participant token. Shared nodes may be dereferenced and retired only
/// while a guard is alive.
pub struct Guard<'h> {
    handle: &'h LocalHandle,
}

impl Guard<'_> {
    /// Defer destruction of `ptr` (obtained from `Box::into_raw`) until no pinned
    /// participant can still hold a reference to it.
    ///
    /// # Safety
    /// * `ptr` must have been created by `Box::into_raw::<T>`.
    /// * `ptr` must be unreachable for participants that pin *after* this call
    ///   (i.e. it has been unlinked from the shared structure).
    /// * No other code may free `ptr`.
    pub unsafe fn defer_destroy<T: 'static>(&self, ptr: *mut T) {
        let epoch = self.collector().global.epoch.load(Ordering::SeqCst);
        let deferred = unsafe { Deferred::destroy_box(ptr) };
        let slot = &self.collector().global.slots[self.handle.slot];
        slot.garbage.lock().unwrap().push((epoch, deferred));
    }

    /// Defer an arbitrary reclamation action until no pinned participant can still
    /// hold a reference to whatever it frees. This is the hook arena-allocated
    /// structures use: instead of dropping a `Box`, the action returns the node's
    /// slot to its arena's recycle list.
    ///
    /// The closure itself runs exactly once, on an arbitrary thread, after the
    /// two-epoch rule proves quiescence; any unsafety (freeing a slot, recycling
    /// memory) lives inside the closure under the caller's unlinked-and-unique
    /// guarantee.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        let epoch = self.collector().global.epoch.load(Ordering::SeqCst);
        let slot = &self.collector().global.slots[self.handle.slot];
        slot.garbage
            .lock()
            .unwrap()
            .push((epoch, Deferred(Box::new(f))));
    }

    /// The collector this guard belongs to.
    pub fn collector(&self) -> &Collector {
        &self.handle.collector
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let depth = self.handle.pin_depth.get() - 1;
        self.handle.pin_depth.set(depth);
        if depth > 0 {
            return; // a nested pin: the outermost guard deactivates the slot
        }
        let slot = &self.handle.collector.global.slots[self.handle.slot];
        slot.state.store(INACTIVE, Ordering::SeqCst);
        let unpins = slot.unpins.fetch_add(1, Ordering::Relaxed) + 1;
        if unpins % COLLECT_INTERVAL == 0 {
            self.handle.collector.collect(self.handle.slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A payload that counts how many times it is dropped.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_unpin_advances_epoch_eventually() {
        let c = Collector::new();
        let h = c.register();
        let start = c.epoch();
        for _ in 0..(COLLECT_INTERVAL * 4) {
            drop(h.pin());
        }
        assert!(c.epoch() >= start, "epoch must never go backwards");
    }

    #[test]
    fn deferred_destruction_runs_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        {
            let guard = h.pin();
            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { guard.defer_destroy(node) };
        }
        // Unpin repeatedly so the epoch can advance and garbage gets collected.
        for _ in 0..(COLLECT_INTERVAL * 6) {
            drop(h.pin());
        }
        c.flush();
        c.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_share_the_outermost_epoch() {
        let c = Collector::new();
        let h = c.register();
        let outer = h.pin();
        let inner = h.pin();
        assert_eq!(h.pin_depth.get(), 2);
        drop(inner);
        // Still pinned: the slot must not be INACTIVE yet.
        let state = c.global.slots[h.slot()].state.load(Ordering::SeqCst);
        assert_ne!(state, INACTIVE, "outer guard still pins the slot");
        drop(outer);
        let state = c.global.slots[h.slot()].state.load(Ordering::SeqCst);
        assert_eq!(state, INACTIVE);
    }

    #[test]
    fn nothing_is_freed_while_a_guard_is_pinned() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let other = c.clone();

        // A long-lived guard pins the current epoch.
        let long_handle = c.register();
        let long_lived = long_handle.pin();

        std::thread::scope(|s| {
            s.spawn(|| {
                let h = other.register();
                let guard = h.pin();
                let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                unsafe { guard.defer_destroy(node) };
                drop(guard);
                for _ in 0..(COLLECT_INTERVAL * 6) {
                    drop(h.pin());
                }
                other.flush();
            });
        });

        // The long-lived guard observed the retirement epoch, so the node must not
        // have been reclaimed yet.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(long_lived);
        for _ in 0..(COLLECT_INTERVAL * 6) {
            drop(long_handle.pin());
        }
        c.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn collector_drop_reclaims_leftovers() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            let h = c.register();
            let guard = h.pin();
            for _ in 0..10 {
                let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                unsafe { guard.defer_destroy(node) };
            }
            drop(guard);
            // No flushing: dropping the collector must clean everything up.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_retirement_stress() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let c = c.clone();
                    let drops = Arc::clone(&drops);
                    s.spawn(move || {
                        let h = c.register();
                        for _ in 0..PER_THREAD {
                            let guard = h.pin();
                            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                            unsafe { guard.defer_destroy(node) };
                            drop(guard);
                        }
                    });
                }
            });
        }
        assert_eq!(drops.load(Ordering::SeqCst), THREADS * PER_THREAD);
    }

    #[test]
    fn dropped_handles_return_their_slots() {
        // The handle-retirement fix: slots are keyed by handle, not thread, and a
        // dropped handle's slot is reused by the next registration — short-lived
        // workers no longer consume the participant table.
        let c = Collector::new();
        let first = c.register();
        let first_slot = first.slot();
        drop(first);
        assert_eq!(c.participants(), 0);
        let second = c.register();
        assert_eq!(second.slot(), first_slot, "slot recycled LIFO");
        assert_eq!(c.participants(), 1);
        // Far more handles than MAX_PARTICIPANTS, sequentially: must not panic.
        for _ in 0..4 * MAX_PARTICIPANTS {
            let h = c.register();
            drop(h.pin());
        }
        assert_eq!(c.participants(), 1, "only `second` is still live");
    }

    #[test]
    fn two_handles_on_one_thread_are_independent_participants() {
        let c = Collector::new();
        let a = c.register();
        let b = c.register();
        assert_ne!(a.slot(), b.slot());
        assert_eq!(c.participants(), 2);
        // Pinning A must not pin (or unpin) B.
        let ga = a.pin();
        let sb = c.global.slots[b.slot()].state.load(Ordering::SeqCst);
        assert_eq!(sb, INACTIVE);
        drop(ga);
    }

    #[test]
    fn a_handle_can_outlive_its_spawning_thread() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let c2 = c.clone();
        // Register on a worker thread, then move the handle back to this thread.
        let h = std::thread::spawn(move || c2.register()).join().unwrap();
        {
            let guard = h.pin();
            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { guard.defer_destroy(node) };
        }
        for _ in 0..(COLLECT_INTERVAL * 6) {
            drop(h.pin());
        }
        c.flush();
        c.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn garbage_len_reports_pending_items() {
        let c = Collector::new();
        let h = c.register();
        let guard = h.pin();
        let node = Box::into_raw(Box::new(17u64));
        unsafe { guard.defer_destroy(node) };
        assert_eq!(c.garbage_len(), 1);
        drop(guard);
    }
}
