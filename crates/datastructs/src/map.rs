//! The [`ConcurrentMap`] interface shared by all four evaluated data structures, plus
//! a sequential reference model used by correctness tests.
//!
//! The paper benchmarks set-like maps with 64-bit keys; `insert` does not overwrite an
//! existing key (it returns `false`), matching the behaviour of the original
//! implementations used in the evaluation.

use flit::{FlitDb, FlitHandle, Policy};
use flit_alloc::ArenaConfig;

/// A concurrent ordered or unordered map from `u64` keys to `u64` values, generic
/// over the persistence [`Policy`].
///
/// Construction takes the owning [`FlitDb`] (the facade holding the policy, the
/// EBR collector and the arena registry); **every operation takes the calling
/// thread's [`FlitHandle`]** — the explicit session whose persist epoch the
/// operation's fences and flushes are attributed to (`map.insert(&h, k, v)`).
/// The handle must come from the same database the map was built in
/// (debug-asserted by the implementations).
///
/// Keys must be strictly smaller than `u64::MAX - 16`: the top few key values are
/// reserved for the sentinel nodes of the tree and list structures.
pub trait ConcurrentMap<P: Policy>: Send + Sync {
    /// Short name used in benchmark output (`"list"`, `"bst"`, ...).
    const NAME: &'static str;

    /// Build an empty map in `db`, expected to hold roughly `capacity_hint` keys
    /// (used by the hash table to size its bucket array; ignored by the others).
    fn with_capacity(db: &FlitDb<P>, capacity_hint: usize) -> Self;

    /// [`ConcurrentMap::with_capacity`] with an explicit arena sizing config, so
    /// multi-instance systems (one map per shard) can grow each map's arena in
    /// instance-sized steps. The default implementation ignores the config —
    /// structures whose node arenas are sized by their own internal rules keep
    /// those rules; the hash table honours it.
    fn with_capacity_cfg(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig) -> Self
    where
        Self: Sized,
    {
        let _ = config;
        Self::with_capacity(db, capacity_hint)
    }

    /// Look up `key`, returning its value if present.
    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64>;

    /// Insert `(key, value)`; returns `false` (without modifying the map) when the key
    /// is already present.
    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool;

    /// Remove `key`; returns `false` when it was not present.
    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool;

    /// `true` if `key` is present.
    fn contains(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        self.get(h, key).is_some()
    }

    /// Enumerate the `(key, value)` pairs whose key matches `prefix` under
    /// `mask` (`key & mask == prefix & mask`; a zero mask selects everything),
    /// read from a **frozen snapshot** taken at call time — concurrent updates
    /// during the walk do not appear in the result. Pairs are sorted by key.
    ///
    /// Returns `None` when the structure cannot take snapshots — the in-place
    /// structures mutate nodes under the reader's feet, so any walk they could
    /// offer would be a non-atomic view. Structures with copy-on-write roots
    /// (the HAMT) override this with a real retained-root snapshot.
    fn snapshot_scan(
        &self,
        h: &FlitHandle<'_, P>,
        prefix: u64,
        mask: u64,
    ) -> Option<Vec<(u64, u64)>> {
        let _ = (h, prefix, mask);
        None
    }

    /// Number of keys currently present. Only meaningful in quiescent states; intended
    /// for tests and for validating pre-fill (raw loads: no handle required).
    fn len(&self) -> usize;

    /// `true` when the map holds no keys (quiescent states only).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The database this map lives in (handles are created from it; its policy
    /// carries the statistics).
    fn db(&self) -> &FlitDb<P>;

    /// Access the persistence policy (e.g. to read its statistics).
    fn policy(&self) -> &P {
        self.db().policy()
    }
}

/// Largest key value usable by callers (larger values are reserved for sentinels).
pub const MAX_USER_KEY: u64 = u64::MAX - 16;

/// A trivially correct sequential map used as the model in property-based tests: a
/// `BTreeMap` behind a mutex, exposing the same insert-does-not-overwrite semantics.
#[derive(Debug, Default)]
pub struct SequentialMap {
    inner: std::sync::Mutex<std::collections::BTreeMap<u64, u64>>,
}

impl SequentialMap {
    /// Create an empty model map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.inner.lock().unwrap().get(&key).copied()
    }

    /// Model insert (no overwrite).
    pub fn insert(&self, key: u64, value: u64) -> bool {
        let mut m = self.inner.lock().unwrap();
        if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
            e.insert(value);
            true
        } else {
            false
        }
    }

    /// Model remove.
    pub fn remove(&self, key: u64) -> bool {
        self.inner.lock().unwrap().remove(&key).is_some()
    }

    /// Model size.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Model emptiness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_model_semantics() {
        let m = SequentialMap::new();
        assert!(m.is_empty());
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 20), "insert must not overwrite");
        assert_eq!(m.get(1), Some(10));
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert_eq!(m.len(), 0);
    }
}
