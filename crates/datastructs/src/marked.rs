//! Marked-pointer helpers.
//!
//! The lock-free list, skiplist and BST store their child/next pointers as `usize`
//! words whose low-order bits (always zero for heap pointers) carry logical-deletion
//! marks: one bit for the Harris list and skiplist, two bits (flag + tag) for the
//! Natarajan–Mittal BST. These helpers pack and unpack those words.
//!
//! Link-and-persist additionally uses bit 63 of the same words; the two never collide
//! because heap addresses on x86-64 use at most 48 bits.

/// Logical-deletion mark (Harris list, skiplist) and the BST's "flag" bit.
pub const MARK_BIT: usize = 0b01;

/// The BST's "tag" bit (edge about to be spliced out).
pub const TAG_BIT: usize = 0b10;

/// Mask selecting the pointer part of a marked word.
pub const PTR_MASK: usize = !(MARK_BIT | TAG_BIT);

/// Extract the raw pointer from a marked word.
#[inline]
pub fn address<T>(word: usize) -> *mut T {
    (word & PTR_MASK) as *mut T
}

/// Pack a raw pointer into an unmarked word.
#[inline]
pub fn pack<T>(ptr: *mut T) -> usize {
    let word = ptr as usize;
    debug_assert_eq!(word & !PTR_MASK, 0, "pointer uses the mark bits");
    word
}

/// Pack a raw pointer with explicit mark/flag and tag bits.
#[inline]
pub fn pack_with<T>(ptr: *mut T, marked: bool, tagged: bool) -> usize {
    pack(ptr) | if marked { MARK_BIT } else { 0 } | if tagged { TAG_BIT } else { 0 }
}

/// Is the mark (or flag) bit set?
#[inline]
pub fn is_marked(word: usize) -> bool {
    word & MARK_BIT != 0
}

/// Is the tag bit set?
#[inline]
pub fn is_tagged(word: usize) -> bool {
    word & TAG_BIT != 0
}

/// Clear all mark bits.
#[inline]
pub fn unmark(word: usize) -> usize {
    word & PTR_MASK
}

/// Set the mark (or flag) bit.
#[inline]
pub fn with_mark(word: usize) -> usize {
    word | MARK_BIT
}

/// Set the tag bit.
#[inline]
pub fn with_tag(word: usize) -> usize {
    word | TAG_BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_pointer() {
        let b = Box::into_raw(Box::new(5u64));
        let w = pack(b);
        assert_eq!(address::<u64>(w), b);
        assert!(!is_marked(w));
        assert!(!is_tagged(w));
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn mark_and_tag_bits_are_independent() {
        let b = Box::into_raw(Box::new(5u64));
        let w = pack_with(b, true, false);
        assert!(is_marked(w) && !is_tagged(w));
        let w = pack_with(b, false, true);
        assert!(!is_marked(w) && is_tagged(w));
        let w = pack_with(b, true, true);
        assert!(is_marked(w) && is_tagged(w));
        assert_eq!(address::<u64>(w), b);
        assert_eq!(unmark(w), b as usize);
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn null_is_representable() {
        let w = pack(std::ptr::null_mut::<u64>());
        assert_eq!(w, 0);
        assert!(address::<u64>(with_mark(w)).is_null());
    }
}
