//! Harris's lock-free linked list (DISC 2001), made durable through FliT.
//!
//! This is the sorted-set linked list used directly in the paper's evaluation
//! (the "Linked List, 128 / 4K keys" plots) and as the bucket implementation of the
//! hash table. Deletion is two-phase: a node is first *logically* deleted by setting
//! the mark bit of its `next` pointer, then *physically* unlinked (by the deleter or by
//! any later traversal that encounters it).
//!
//! Persistence is injected entirely through the [`Policy`] / [`Durability`] type
//! parameters; the algorithm itself is textbook Harris. Every operation takes the
//! calling thread's [`FlitHandle`]: loads/stores are issued through the handle (so
//! fence/flush elision is per handle), EBR pinning goes through the handle's
//! participant, and the completion fence is [`FlitHandle::operation_completion`].
//! In the `Automatic` method every load and store below is a p-instruction; in
//! `NvTraverse`/`Manual` the search loop issues v-loads and the links touched by
//! the critical phase are persisted via the transition (see
//! [`Durability::TRANSITION_DEPTH`]).
//!
//! ## Arena allocation and image-only recovery
//!
//! Nodes live in cache-line-aligned slots of a [`Arena`] — one arena per
//! standalone list (created through the owning [`FlitDb`]), or the owning hash
//! table's shared arena when the list serves as a bucket. Every node word
//! (including the immutable `key`/`value`) is recorded with the backend before
//! the node is persisted and published, and a standalone list registers its head
//! sentinel in the arena's recovery-root table under [`roots::LIST_HEAD`].
//! Recovery ([`HarrisList::recover_in_image`]) therefore walks **purely from the
//! `CrashImage` plus the root table**: it never reads live memory, needs no
//! pointer into the live structure, and yields the empty list for a crash that
//! predates durable construction.

use std::marker::PhantomData;
use std::sync::Arc;

use flit::{FlitDb, FlitHandle, PFlag, PersistWord, Policy};
use flit_alloc::{roots, Arena};
use flit_ebr::Guard;
use flit_pmem::{CrashImage, PmemBackend};

use crate::durability::Durability;
use crate::map::ConcurrentMap;
use crate::marked::{address, is_marked, pack, unmark, with_mark};
use crate::recovery::RecoveredMap;

/// A node of the list. `key` and `value` are immutable after construction (the node is
/// persisted wholesale before being published), so only the `next` link is a
/// persist-word.
pub(crate) struct Node<P: Policy> {
    pub(crate) key: u64,
    pub(crate) value: u64,
    pub(crate) next: P::Word<usize>,
}

/// Byte offsets of a node's recovery-relevant words within its arena slot, obtained
/// by probing a stack dummy (field layout depends on the policy's word type, and the
/// MSRV predates `offset_of!`).
pub(crate) struct NodeLayout {
    pub(crate) key: usize,
    pub(crate) value: usize,
    pub(crate) next: usize,
}

impl<P: Policy> Node<P> {
    pub(crate) fn layout() -> NodeLayout {
        let probe = Node::<P> {
            key: 0,
            value: 0,
            next: P::Word::<usize>::new(0),
        };
        let base = &probe as *const Node<P> as usize;
        NodeLayout {
            key: &probe.key as *const u64 as usize - base,
            value: &probe.value as *const u64 as usize - base,
            next: probe.next.addr() - base,
        }
    }
}

/// Harris's lock-free sorted linked list over persistence policy `P` and durability
/// method `D`.
pub struct HarrisList<P: Policy, D: Durability> {
    head: *mut Node<P>,
    tail: *mut Node<P>,
    arena: Arc<Arena>,
    db: FlitDb<P>,
    _durability: PhantomData<D>,
}

// SAFETY: the list is a standard lock-free structure — all shared mutable state is
// accessed through atomic persist-words, and node lifetime is managed by the db's
// EBR collector + the shared arena. The raw sentinel pointers are only written
// during construction.
unsafe impl<P: Policy, D: Durability> Send for HarrisList<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for HarrisList<P, D> {}

impl<P: Policy, D: Durability> HarrisList<P, D> {
    /// Create an empty list in `db` with its own arena, registered under
    /// [`roots::LIST_HEAD`].
    pub fn new(db: &FlitDb<P>) -> Self {
        let arena = db.new_arena_for::<Node<P>>(db.arena_defaults());
        Self::with_arena(db, arena, Some(roots::LIST_HEAD))
    }

    /// Create an empty list inside `arena` (shared by the hash table's buckets).
    /// When `root_key` is set, the head sentinel is registered in the arena's
    /// recovery-root table once construction is durable. Construction runs under
    /// a temporary handle of `db` (no caller handle needed — the constructor's
    /// instruction stream ends fully fenced).
    pub(crate) fn with_arena(db: &FlitDb<P>, arena: Arc<Arena>, root_key: Option<u64>) -> Self {
        // Persist-before-publish at construction: both sentinels become durable
        // (including their key/value words) before the root that makes the list
        // recoverable is registered, so a crash at *any* construction event
        // recovers to either "no list yet" or the empty list — never garbage.
        let h = db.handle();
        let tail = Self::alloc_node(&h, &arena, u64::MAX, 0, 0);
        let head = Self::alloc_node(&h, &arena, 0, 0, pack(tail));
        for node in [tail, head] {
            h.persist_object(unsafe { &*node }, PFlag::Persisted);
        }
        if let Some(key) = root_key {
            arena.register_root(&h.pmem(), key, head as usize);
        }
        drop(h);
        Self {
            head,
            tail,
            arena,
            db: db.clone(),
            _durability: PhantomData,
        }
    }

    /// Allocate a node from the arena and record **all** of its words (key, value,
    /// link) with the backend through `h`, so the node is fully reconstructible
    /// from a crash image. The caller persists and publishes it.
    fn alloc_node(
        h: &FlitHandle<'_, P>,
        arena: &Arena,
        key: u64,
        value: u64,
        next: usize,
    ) -> *mut Node<P> {
        let pm = h.pmem();
        let node: *mut Node<P> = arena.alloc_init(
            &pm,
            Node {
                key,
                value,
                next: P::Word::<usize>::new(next),
            },
        );
        let node_ref = unsafe { &*node };
        pm.record_store(&node_ref.key as *const u64 as *const u8, key);
        pm.record_store(&node_ref.value as *const u64 as *const u8, value);
        node_ref.next.store_private(h, next, PFlag::Volatile);
        node
    }

    /// The database this list lives in.
    pub fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// The arena this list allocates nodes from.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The address of the head sentinel's slot (buckets publish it in the hash
    /// table's directory block).
    pub(crate) fn head_addr(&self) -> usize {
        self.head as usize
    }

    /// Retire `node` through the guard's collector: its slot returns to the
    /// arena's recycle list once no pinned participant can still reach it.
    fn retire(&self, guard: &Guard<'_>, node: *mut Node<P>) {
        // SAFETY: the node was unlinked before retirement and is retired once.
        unsafe { self.arena.defer_recycle(guard, node as usize) };
    }

    /// NVTraverse-style transition: re-read the links the critical phase depends on
    /// as p-loads, so they are flushed (if tagged) before the update CAS.
    #[inline]
    fn transition(&self, h: &FlitHandle<'_, P>, left: *mut Node<P>, right: *mut Node<P>) {
        if D::TRANSITION_DEPTH >= 1 {
            let _ = unsafe { &*left }.next.load(h, PFlag::Persisted);
        }
        if D::TRANSITION_DEPTH >= 2 && right != self.tail {
            let _ = unsafe { &*right }.next.load(h, PFlag::Persisted);
        }
    }

    /// Harris's `search`: returns `(left, right)` such that `left.key < key <=
    /// right.key`, `left` and `right` are adjacent and unmarked at some point during
    /// the call, physically unlinking any marked nodes it encounters between them.
    fn search(
        &self,
        h: &FlitHandle<'_, P>,
        key: u64,
        guard: &Guard<'_>,
    ) -> (*mut Node<P>, *mut Node<P>) {
        'retry: loop {
            let mut t = self.head;
            let mut t_next = unsafe { &*t }.next.load(h, D::TRAVERSAL_LOAD);
            let mut left = t;
            let mut left_next = t_next;

            // Phase 1: find left (last unmarked node with key < `key`) and right
            // (first unmarked node with key >= `key`).
            loop {
                if !is_marked(t_next) {
                    left = t;
                    left_next = t_next;
                }
                t = address::<Node<P>>(t_next);
                if t == self.tail {
                    break;
                }
                let t_ref = unsafe { &*t };
                t_next = t_ref.next.load(h, D::TRAVERSAL_LOAD);
                if !is_marked(t_next) && t_ref.key >= key {
                    break;
                }
            }
            let right = t;

            // Phase 2: if left and right are adjacent we are done (unless right got
            // marked in the meantime, in which case start over).
            if address::<Node<P>>(left_next) == right {
                if right != self.tail
                    && is_marked(unsafe { &*right }.next.load(h, D::TRAVERSAL_LOAD))
                {
                    continue 'retry;
                }
                return (left, right);
            }

            // Phase 3: unlink the chain of marked nodes between left and right.
            if unsafe { &*left }
                .next
                .compare_exchange(h, left_next, pack(right), D::STORE)
                .is_ok()
            {
                // The unlinked nodes are no longer reachable; retire them.
                let mut cur = address::<Node<P>>(left_next);
                while cur != right {
                    let next = unmark(unsafe { &*cur }.next.load_direct());
                    self.retire(guard, cur);
                    cur = address::<Node<P>>(next);
                }
                if right != self.tail
                    && is_marked(unsafe { &*right }.next.load(h, D::TRAVERSAL_LOAD))
                {
                    continue 'retry;
                }
                return (left, right);
            }
        }
    }

    fn get_impl(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        let (_left, right) = self.search(h, key, &guard);
        let result = if right != self.tail {
            let right_ref = unsafe { &*right };
            if right_ref.key == key {
                // NVTraverse: a read-only operation persists the node that determines
                // its result before returning.
                if D::TRANSITION_DEPTH > 0 {
                    let _ = right_ref.next.load(h, PFlag::Persisted);
                }
                Some(right_ref.value)
            } else {
                None
            }
        } else {
            None
        };
        h.operation_completion();
        result
    }

    fn insert_impl(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        assert!(key < u64::MAX, "key space reserved for the tail sentinel");
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        loop {
            let (left, right) = self.search(h, key, &guard);
            if right != self.tail && unsafe { &*right }.key == key {
                h.operation_completion();
                return false;
            }
            self.transition(h, left, right);
            // Allocate, record and persist the new node's contents before it
            // becomes reachable: the publishing CAS below depends on them, and
            // recovery walks the persisted words.
            let node = Self::alloc_node(h, &self.arena, key, value, pack(right));
            h.persist_object(unsafe { &*node }, D::STORE);
            match unsafe { &*left }
                .next
                .compare_exchange(h, pack(right), pack(node), D::STORE)
            {
                Ok(_) => {
                    h.operation_completion();
                    return true;
                }
                Err(_) => {
                    // Never published: return the slot to the durable free list.
                    // SAFETY: `node` was allocated above and never became reachable.
                    unsafe { self.arena.free(&h.pmem(), node as *mut u8) };
                }
            }
        }
    }

    fn remove_impl(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        loop {
            let (left, right) = self.search(h, key, &guard);
            if right == self.tail || unsafe { &*right }.key != key {
                h.operation_completion();
                return false;
            }
            let right_ref = unsafe { &*right };
            let right_next = right_ref.next.load(h, D::CRITICAL_LOAD);
            if is_marked(right_next) {
                // Another deleter is ahead of us; re-run the search (which will help
                // unlink) and re-evaluate.
                continue;
            }
            self.transition(h, left, right);
            if right_ref
                .next
                .compare_exchange(h, right_next, with_mark(right_next), D::STORE)
                .is_ok()
            {
                // Logical deletion succeeded (linearization point). Try to unlink
                // physically; if that fails, a later search will do it.
                if unsafe { &*left }
                    .next
                    .compare_exchange(h, pack(right), unmark(right_next), D::STORE)
                    .is_ok()
                {
                    self.retire(&guard, right);
                } else {
                    let _ = self.search(h, key, &guard);
                }
                h.operation_completion();
                return true;
            }
        }
    }

    /// Reconstruct the durable set **purely from the crash image and the arena's
    /// root table**: read the head sentinel's slot from the root table, then walk
    /// the persisted `next` chain, reading every key/value out of the image. No
    /// live memory is touched. An absent root means the list was not durably
    /// constructed at the crash point: the result is the empty list.
    pub fn recover_in_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        match arena.root_in_image(image, roots::LIST_HEAD) {
            Some(head) => Self::walk_chain_in_image(arena, image, head),
            None => RecoveredMap::default(),
        }
    }

    /// Image-only walk of one persisted chain starting at the head-sentinel slot
    /// `head` (shared with the hash table, whose directory stores one head per
    /// bucket). A node whose own persisted `next` carries the deletion mark is
    /// skipped; a reachable node with any recovery word absent from the image
    /// flags [`truncated`](RecoveredMap::truncated) — the persist-before-publish
    /// invariant was violated.
    pub(crate) fn walk_chain_in_image(
        arena: &Arena,
        image: &CrashImage,
        head: usize,
    ) -> RecoveredMap {
        let layout = Node::<P>::layout();
        let mut rec = RecoveredMap::default();
        // Corrupt images (the broken control's) can contain pointer loops; bound
        // the walk by the image size so recovery always terminates.
        let mut budget = image.len() + 2;
        let mut cur = head;
        let mut at_head = true;
        loop {
            if budget == 0 {
                rec.truncated = true;
                break;
            }
            budget -= 1;
            let Some(next_word) = image.read(cur + layout.next) else {
                rec.truncated = true;
                break;
            };
            let next_word = next_word as usize;
            if !at_head {
                let Some(key) = image.read(cur + layout.key) else {
                    rec.truncated = true;
                    break;
                };
                if key == u64::MAX {
                    // The tail sentinel: the end of the chain.
                    break;
                }
                if !is_marked(next_word) {
                    let Some(value) = image.read(cur + layout.value) else {
                        rec.truncated = true;
                        break;
                    };
                    rec.pairs.push((key, value));
                }
            }
            at_head = false;
            let next = unmark(next_word);
            if next == 0 || !arena.contains(next) {
                // Only the tail (detected by key above) legitimately ends a chain;
                // a null or out-of-arena link is an inconsistent image.
                rec.truncated = true;
                break;
            }
            cur = next;
        }
        rec
    }

    /// Image-only recovery through this list's own arena; see
    /// [`recover_in_image`](Self::recover_in_image).
    pub fn recover(&self, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(&self.arena, image)
    }

    fn len_impl(&self) -> usize {
        // Quiescent-state traversal: counts unmarked nodes between the sentinels.
        let mut count = 0;
        let mut cur = address::<Node<P>>(unsafe { &*self.head }.next.load_direct());
        while cur != self.tail {
            let next = unsafe { &*cur }.next.load_direct();
            if !is_marked(next) {
                count += 1;
            }
            cur = address::<Node<P>>(next);
        }
        count
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for HarrisList<P, D> {
    const NAME: &'static str = "list";

    fn with_capacity(db: &FlitDb<P>, _capacity_hint: usize) -> Self {
        Self::new(db)
    }

    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        self.get_impl(h, key)
    }

    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        self.insert_impl(h, key, value)
    }

    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        self.remove_impl(h, key)
    }

    fn len(&self) -> usize {
        self.len_impl()
    }

    fn db(&self) -> &FlitDb<P> {
        &self.db
    }
}

// No `Drop` impl: nodes are plain data in arena slots, reclaimed wholesale when the
// last `Arc<Arena>` (and the collector, whose deferred recycles hold clones of it)
// goes away.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn ht_db() -> FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
        FlitDb::flit_ht(backend())
    }

    type HtList<D> = HarrisList<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_list_behaviour() {
        let db = ht_db();
        let h = db.handle();
        let list: HtList<Automatic> = HarrisList::new(&db);
        assert!(list.is_empty());
        assert_eq!(list.get(&h, 5), None);
        assert!(!list.remove(&h, 5));
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let db = ht_db();
        let h = db.handle();
        let list: HtList<Automatic> = HarrisList::new(&db);
        assert!(list.insert(&h, 10, 100));
        assert!(list.insert(&h, 5, 50));
        assert!(list.insert(&h, 20, 200));
        assert!(!list.insert(&h, 10, 999), "duplicate insert must fail");
        assert_eq!(list.len(), 3);
        assert_eq!(list.get(&h, 10), Some(100));
        assert_eq!(list.get(&h, 5), Some(50));
        assert_eq!(list.get(&h, 20), Some(200));
        assert_eq!(list.get(&h, 15), None);
        assert!(list.remove(&h, 10));
        assert!(!list.remove(&h, 10));
        assert_eq!(list.get(&h, 10), None);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn keys_stay_sorted_and_unique() {
        let db = ht_db();
        let h = db.handle();
        let list: HtList<Automatic> = HarrisList::new(&db);
        for k in [5u64, 3, 9, 1, 7, 3, 9] {
            list.insert(&h, k, k * 10);
        }
        assert_eq!(list.len(), 5);
        // Walk the physical list and check ordering.
        let mut prev = 0u64;
        let mut cur = address::<Node<_>>(unsafe { &*list.head }.next.load_direct());
        while cur != list.tail {
            let node = unsafe { &*cur };
            assert!(node.key > prev || prev == 0);
            prev = node.key;
            cur = address::<Node<_>>(unmark(node.next.load_direct()));
        }
    }

    #[test]
    fn nodes_live_in_cache_line_aligned_arena_slots() {
        let db = ht_db();
        let h = db.handle();
        let list: HtList<Automatic> = HarrisList::new(&db);
        list.insert(&h, 1, 10);
        let head_next = unsafe { &*list.head }.next.load_direct();
        let node = address::<Node<FlitPolicy<HashedScheme, SimNvram>>>(head_next) as usize;
        assert_eq!(node % flit_pmem::CACHE_LINE_SIZE, 0, "slot misaligned");
        assert!(list.arena().contains(node));
        assert!(list.arena().contains(list.head as usize));
        assert_eq!(db.arenas().len(), 1, "the list registered its arena");
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let db = FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build());
            let h = db.handle();
            let list: HtList<D> = HarrisList::new(&db);
            for k in 0..50u64 {
                assert!(list.insert(&h, k, k));
            }
            for k in 0..50u64 {
                assert_eq!(list.get(&h, k), Some(k));
            }
            for k in (0..50u64).step_by(2) {
                assert!(list.remove(&h, k));
            }
            assert_eq!(list.len(), 25);
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_every_policy() {
        fn exercise<P: Policy>(db: FlitDb<P>) {
            let h = db.handle();
            let list: HarrisList<P, Automatic> = HarrisList::new(&db);
            assert!(list.insert(&h, 1, 11));
            assert!(list.insert(&h, 2, 22));
            assert!(list.remove(&h, 1));
            assert_eq!(list.get(&h, 2), Some(22));
            assert_eq!(list.len(), 1);
        }
        exercise(FlitDb::plain(backend()));
        exercise(FlitDb::flit_adjacent(backend()));
        exercise(FlitDb::flit_ht(backend()));
        exercise(FlitDb::flit_cacheline(backend()));
        exercise(FlitDb::link_and_persist(backend()));
        exercise(FlitDb::no_persist());
    }

    #[test]
    fn read_only_workload_performs_no_flushes_with_flit() {
        // Paper §6.5: with 0% updates FliT executes no pwbs at all, because nothing
        // is ever tagged — and with persist-epoch elision (the default) the clean
        // reader's completion fences are elided too, so a lookup costs *zero*
        // persistence instructions.
        let sim = backend();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let list: HtList<Automatic> = HarrisList::new(&db);
        for k in 0..100u64 {
            list.insert(&h, k, k);
        }
        let before = sim.stats().snapshot();
        for k in 0..100u64 {
            let _ = list.get(&h, k);
        }
        let delta = sim.stats().snapshot().delta_since(&before);
        assert_eq!(delta.pwbs, 0);
        assert_eq!(delta.pfences, 0, "clean completion fences are elided");
        assert_eq!(delta.elided_pfences, 100, "one elided fence per operation");
    }

    #[test]
    fn image_only_recovery_matches_the_quiescent_list() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let list: HtList<Automatic> = HarrisList::new(&db);
        for k in [4u64, 1, 9, 6] {
            assert!(list.insert(&h, k, k * 10));
        }
        assert!(list.remove(&h, 9));
        let image = sim.tracker().unwrap().crash_image();
        let rec = list.recover(&image);
        assert!(!rec.truncated);
        assert_eq!(rec.sorted_pairs(), vec![(1, 10), (4, 40), (6, 60)]);
        // The associated form needs only the arena + the image.
        let rec2 = HtList::<Automatic>::recover_in_image(list.arena(), &image);
        assert_eq!(rec2.sorted_pairs(), rec.sorted_pairs());
        // And the db-level survey sees the durable root.
        assert!(db.recover(&image).has_root(roots::LIST_HEAD));
    }

    #[test]
    fn concurrent_inserts_and_removes() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 200;
        let db = ht_db();
        let list: Arc<HtList<Automatic>> = Arc::new(HarrisList::new(&db));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let list = Arc::clone(&list);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    let base = t * PER_THREAD;
                    for k in base..base + PER_THREAD {
                        assert!(list.insert(&h, k, k + 1));
                    }
                    for k in (base..base + PER_THREAD).step_by(2) {
                        assert!(list.remove(&h, k));
                    }
                });
            }
        });
        let h = db.handle();
        assert_eq!(list.len() as u64, THREADS * PER_THREAD / 2);
        for t in 0..THREADS {
            let base = t * PER_THREAD;
            assert_eq!(list.get(&h, base), None);
            assert_eq!(list.get(&h, base + 1), Some(base + 2));
        }
    }

    #[test]
    fn contended_same_keys_stress() {
        // All threads fight over a tiny key range to exercise marking/helping (and,
        // through the arena, failed-CAS frees and slot recycling).
        let db = ht_db();
        let list: Arc<HtList<NvTraverse>> = Arc::new(HarrisList::new(&db));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = Arc::clone(&list);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    for i in 0..500u64 {
                        let k = (t + i) % 8;
                        if i % 2 == 0 {
                            list.insert(&h, k, i);
                        } else {
                            list.remove(&h, k);
                        }
                        let _ = list.get(&h, k);
                    }
                });
            }
        });
        // The list must still be structurally sound: len() terminates and every key is
        // in range.
        assert!(list.len() <= 8);
    }
}
