//! Harris's lock-free linked list (DISC 2001), made durable through FliT.
//!
//! This is the sorted-set linked list used directly in the paper's evaluation
//! (the "Linked List, 128 / 4K keys" plots) and as the bucket implementation of the
//! hash table. Deletion is two-phase: a node is first *logically* deleted by setting
//! the mark bit of its `next` pointer, then *physically* unlinked (by the deleter or by
//! any later traversal that encounters it).
//!
//! Persistence is injected entirely through the [`Policy`] / [`Durability`] type
//! parameters; the algorithm itself is textbook Harris. In the `Automatic` method
//! every load and store below is a p-instruction; in `NvTraverse`/`Manual` the search
//! loop issues v-loads and the links touched by the critical phase are persisted via
//! the transition (see [`Durability::TRANSITION_DEPTH`]).

use std::marker::PhantomData;

use flit::{PFlag, PersistWord, Policy};
use flit_ebr::{Collector, Guard};
use flit_pmem::CrashImage;

use crate::durability::Durability;
use crate::map::ConcurrentMap;
use crate::marked::{address, is_marked, pack, unmark, with_mark};
use crate::recovery::RecoveredMap;

/// A node of the list. `key` and `value` are immutable after construction (the node is
/// persisted wholesale before being published), so only the `next` link is a
/// persist-word.
pub(crate) struct Node<P: Policy> {
    pub(crate) key: u64,
    pub(crate) value: u64,
    pub(crate) next: P::Word<usize>,
}

impl<P: Policy> Node<P> {
    fn new(key: u64, value: u64, next: usize) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key,
            value,
            next: P::Word::<usize>::new(next),
        }))
    }
}

/// Harris's lock-free sorted linked list over persistence policy `P` and durability
/// method `D`.
pub struct HarrisList<P: Policy, D: Durability> {
    head: *mut Node<P>,
    tail: *mut Node<P>,
    policy: P,
    collector: Collector,
    _durability: PhantomData<D>,
}

// SAFETY: the list is a standard lock-free structure — all shared mutable state is
// accessed through atomic persist-words, and node lifetime is managed by the EBR
// collector. The raw sentinel pointers are only written during construction/drop.
unsafe impl<P: Policy, D: Durability> Send for HarrisList<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for HarrisList<P, D> {}

impl<P: Policy, D: Durability> HarrisList<P, D> {
    /// Create an empty list using `policy` for persistence.
    pub fn new(policy: P) -> Self {
        let tail = Node::<P>::new(u64::MAX, 0, 0);
        let head = Node::<P>::new(0, 0, pack(tail));
        // Re-issue the sentinels' link values as private volatile stores so the
        // tracking backend records them, then persist the initial (empty) structure
        // so a crash immediately after construction recovers to an empty list
        // rather than garbage.
        for node in [tail, head] {
            let node_ref = unsafe { &*node };
            node_ref
                .next
                .store_private(&policy, node_ref.next.load_direct(), PFlag::Volatile);
            policy.persist_object(node_ref, PFlag::Persisted);
        }
        Self {
            head,
            tail,
            policy,
            collector: Collector::new(),
            _durability: PhantomData,
        }
    }

    /// The EBR collector used by this list (shared with the hash table when the list
    /// serves as a bucket).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// NVTraverse-style transition: re-read the links the critical phase depends on
    /// as p-loads, so they are flushed (if tagged) before the update CAS.
    #[inline]
    fn transition(&self, left: *mut Node<P>, right: *mut Node<P>) {
        if D::TRANSITION_DEPTH >= 1 {
            let _ = unsafe { &*left }.next.load(&self.policy, PFlag::Persisted);
        }
        if D::TRANSITION_DEPTH >= 2 && right != self.tail {
            let _ = unsafe { &*right }.next.load(&self.policy, PFlag::Persisted);
        }
    }

    /// Harris's `search`: returns `(left, right)` such that `left.key < key <=
    /// right.key`, `left` and `right` are adjacent and unmarked at some point during
    /// the call, physically unlinking any marked nodes it encounters between them.
    fn search(&self, key: u64, guard: &Guard<'_>) -> (*mut Node<P>, *mut Node<P>) {
        'retry: loop {
            let mut t = self.head;
            let mut t_next = unsafe { &*t }.next.load(&self.policy, D::TRAVERSAL_LOAD);
            let mut left = t;
            let mut left_next = t_next;

            // Phase 1: find left (last unmarked node with key < `key`) and right
            // (first unmarked node with key >= `key`).
            loop {
                if !is_marked(t_next) {
                    left = t;
                    left_next = t_next;
                }
                t = address::<Node<P>>(t_next);
                if t == self.tail {
                    break;
                }
                let t_ref = unsafe { &*t };
                t_next = t_ref.next.load(&self.policy, D::TRAVERSAL_LOAD);
                if !is_marked(t_next) && t_ref.key >= key {
                    break;
                }
            }
            let right = t;

            // Phase 2: if left and right are adjacent we are done (unless right got
            // marked in the meantime, in which case start over).
            if address::<Node<P>>(left_next) == right {
                if right != self.tail
                    && is_marked(
                        unsafe { &*right }
                            .next
                            .load(&self.policy, D::TRAVERSAL_LOAD),
                    )
                {
                    continue 'retry;
                }
                return (left, right);
            }

            // Phase 3: unlink the chain of marked nodes between left and right.
            if unsafe { &*left }
                .next
                .compare_exchange(&self.policy, left_next, pack(right), D::STORE)
                .is_ok()
            {
                // The unlinked nodes are no longer reachable; retire them.
                let mut cur = address::<Node<P>>(left_next);
                while cur != right {
                    let next = unmark(unsafe { &*cur }.next.load_direct());
                    // SAFETY: `cur` was just unlinked by the CAS above and can no
                    // longer be reached by new traversals.
                    unsafe { guard.defer_destroy(cur) };
                    cur = address::<Node<P>>(next);
                }
                if right != self.tail
                    && is_marked(
                        unsafe { &*right }
                            .next
                            .load(&self.policy, D::TRAVERSAL_LOAD),
                    )
                {
                    continue 'retry;
                }
                return (left, right);
            }
        }
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        let guard = self.collector.pin();
        let (_left, right) = self.search(key, &guard);
        let result = if right != self.tail {
            let right_ref = unsafe { &*right };
            if right_ref.key == key {
                // NVTraverse: a read-only operation persists the node that determines
                // its result before returning.
                if D::TRANSITION_DEPTH > 0 {
                    let _ = right_ref.next.load(&self.policy, PFlag::Persisted);
                }
                Some(right_ref.value)
            } else {
                None
            }
        } else {
            None
        };
        self.policy.operation_completion();
        result
    }

    fn insert_impl(&self, key: u64, value: u64) -> bool {
        assert!(key < u64::MAX, "key space reserved for the tail sentinel");
        let guard = self.collector.pin();
        loop {
            let (left, right) = self.search(key, &guard);
            if right != self.tail && unsafe { &*right }.key == key {
                self.policy.operation_completion();
                return false;
            }
            self.transition(left, right);
            let node = Node::<P>::new(key, value, pack(right));
            // Record the private link value with the backend, then persist the new
            // node's contents before it becomes reachable: the publishing CAS below
            // depends on them, and recovery walks the persisted `next` words.
            let node_ref = unsafe { &*node };
            node_ref
                .next
                .store_private(&self.policy, pack(right), PFlag::Volatile);
            self.policy.persist_object(node_ref, D::STORE);
            match unsafe { &*left }.next.compare_exchange(
                &self.policy,
                pack(right),
                pack(node),
                D::STORE,
            ) {
                Ok(_) => {
                    self.policy.operation_completion();
                    return true;
                }
                Err(_) => {
                    // Never published: safe to free immediately.
                    // SAFETY: `node` was allocated above and never became reachable.
                    unsafe { drop(Box::from_raw(node)) };
                }
            }
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        let guard = self.collector.pin();
        loop {
            let (left, right) = self.search(key, &guard);
            if right == self.tail || unsafe { &*right }.key != key {
                self.policy.operation_completion();
                return false;
            }
            let right_ref = unsafe { &*right };
            let right_next = right_ref.next.load(&self.policy, D::CRITICAL_LOAD);
            if is_marked(right_next) {
                // Another deleter is ahead of us; re-run the search (which will help
                // unlink) and re-evaluate.
                continue;
            }
            self.transition(left, right);
            if right_ref
                .next
                .compare_exchange(&self.policy, right_next, with_mark(right_next), D::STORE)
                .is_ok()
            {
                // Logical deletion succeeded (linearization point). Try to unlink
                // physically; if that fails, a later search will do it.
                if unsafe { &*left }
                    .next
                    .compare_exchange(&self.policy, pack(right), unmark(right_next), D::STORE)
                    .is_ok()
                {
                    // SAFETY: `right` is marked and now unlinked.
                    unsafe { guard.defer_destroy(right) };
                } else {
                    let _ = self.search(key, &guard);
                }
                self.policy.operation_completion();
                return true;
            }
        }
    }

    /// Reconstruct the durable set from an adversarial crash image: walk the
    /// persisted `next` chain from the head sentinel, skipping nodes whose own
    /// persisted `next` carries the deletion mark. A node reachable through a
    /// persisted link whose own `next` word is absent from the image flags
    /// [`truncated`](RecoveredMap::truncated) — the persist-before-publish
    /// invariant was violated.
    ///
    /// # Safety
    /// Every node pointer stored in the image's `next` words must still be a live
    /// allocation of this list: the caller must run in quiescence and have pinned
    /// [`Self::collector`] since before the first operation.
    pub unsafe fn recover(&self, image: &CrashImage) -> RecoveredMap {
        let mut rec = RecoveredMap::default();
        let mut cur = self.head;
        while cur != self.tail {
            let cur_ref = unsafe { &*cur };
            let Some(word) = image.read(cur_ref.next.addr()) else {
                rec.truncated = true;
                break;
            };
            let word = word as usize;
            // A marked `next` means `cur` itself is logically deleted.
            if cur != self.head && !is_marked(word) {
                rec.pairs.push((cur_ref.key, cur_ref.value));
            }
            let next = address::<Node<P>>(word);
            if next.is_null() {
                // Only the tail has a null link; a persisted null anywhere else
                // means the image is internally inconsistent.
                rec.truncated = true;
                break;
            }
            cur = next;
        }
        rec
    }

    fn len_impl(&self) -> usize {
        // Quiescent-state traversal: counts unmarked nodes between the sentinels.
        let mut count = 0;
        let mut cur = address::<Node<P>>(unsafe { &*self.head }.next.load_direct());
        while cur != self.tail {
            let next = unsafe { &*cur }.next.load_direct();
            if !is_marked(next) {
                count += 1;
            }
            cur = address::<Node<P>>(next);
        }
        count
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for HarrisList<P, D> {
    const NAME: &'static str = "list";

    fn with_capacity(policy: P, _capacity_hint: usize) -> Self {
        Self::new(policy)
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.get_impl(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: u64) -> bool {
        self.remove_impl(key)
    }

    fn len(&self) -> usize {
        self.len_impl()
    }

    fn policy(&self) -> &P {
        &self.policy
    }
}

impl<P: Policy, D: Durability> Drop for HarrisList<P, D> {
    fn drop(&mut self) {
        // Single-threaded teardown: free every node still reachable from head,
        // including both sentinels. Retired (already unlinked) nodes are freed by the
        // collector's own drop.
        let mut cur = self.head;
        while !cur.is_null() {
            let next = address::<Node<P>>(unsafe { &*cur }.next.load_direct());
            // SAFETY: teardown is single-threaded and each reachable node is freed
            // exactly once.
            unsafe { drop(Box::from_raw(cur)) };
            if cur == self.tail {
                break;
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::presets;
    use flit::{FlitPolicy, HashedScheme, NoPersistPolicy};
    use flit_pmem::{LatencyModel, SimNvram};
    use std::sync::Arc;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    type HtList<D> = HarrisList<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_list_behaviour() {
        let list: HtList<Automatic> = HarrisList::new(presets::flit_ht(backend()));
        assert!(list.is_empty());
        assert_eq!(list.get(5), None);
        assert!(!list.remove(5));
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let list: HtList<Automatic> = HarrisList::new(presets::flit_ht(backend()));
        assert!(list.insert(10, 100));
        assert!(list.insert(5, 50));
        assert!(list.insert(20, 200));
        assert!(!list.insert(10, 999), "duplicate insert must fail");
        assert_eq!(list.len(), 3);
        assert_eq!(list.get(10), Some(100));
        assert_eq!(list.get(5), Some(50));
        assert_eq!(list.get(20), Some(200));
        assert_eq!(list.get(15), None);
        assert!(list.remove(10));
        assert!(!list.remove(10));
        assert_eq!(list.get(10), None);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn keys_stay_sorted_and_unique() {
        let list: HtList<Automatic> = HarrisList::new(presets::flit_ht(backend()));
        for k in [5u64, 3, 9, 1, 7, 3, 9] {
            list.insert(k, k * 10);
        }
        assert_eq!(list.len(), 5);
        // Walk the physical list and check ordering.
        let mut prev = 0u64;
        let mut cur = address::<Node<_>>(unsafe { &*list.head }.next.load_direct());
        while cur != list.tail {
            let node = unsafe { &*cur };
            assert!(node.key > prev || prev == 0);
            prev = node.key;
            cur = address::<Node<_>>(unmark(node.next.load_direct()));
        }
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let list: HtList<D> = HarrisList::new(presets::flit_ht(backend()));
            for k in 0..50u64 {
                assert!(list.insert(k, k));
            }
            for k in 0..50u64 {
                assert_eq!(list.get(k), Some(k));
            }
            for k in (0..50u64).step_by(2) {
                assert!(list.remove(k));
            }
            assert_eq!(list.len(), 25);
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_every_policy() {
        fn exercise<P: Policy>(policy: P) {
            let list: HarrisList<P, Automatic> = HarrisList::new(policy);
            assert!(list.insert(1, 11));
            assert!(list.insert(2, 22));
            assert!(list.remove(1));
            assert_eq!(list.get(2), Some(22));
            assert_eq!(list.len(), 1);
        }
        exercise(presets::plain(backend()));
        exercise(presets::flit_adjacent(backend()));
        exercise(presets::flit_ht(backend()));
        exercise(presets::flit_cacheline(backend()));
        exercise(presets::link_and_persist(backend()));
        exercise(NoPersistPolicy::new());
    }

    #[test]
    fn read_only_workload_performs_no_flushes_with_flit() {
        // Paper §6.5: with 0% updates FliT executes no pwbs at all, because nothing
        // is ever tagged — and with persist-epoch elision (the default) the clean
        // reader's completion fences are elided too, so a lookup costs *zero*
        // persistence instructions.
        let sim = backend();
        let list: HtList<Automatic> = HarrisList::new(presets::flit_ht(sim.clone()));
        for k in 0..100u64 {
            list.insert(k, k);
        }
        let before = sim.stats().snapshot();
        for k in 0..100u64 {
            let _ = list.get(k);
        }
        let delta = sim.stats().snapshot().delta_since(&before);
        assert_eq!(delta.pwbs, 0);
        assert_eq!(delta.pfences, 0, "clean completion fences are elided");
        assert_eq!(delta.elided_pfences, 100, "one elided fence per operation");
    }

    #[test]
    fn concurrent_inserts_and_removes() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 200;
        let list: Arc<HtList<Automatic>> = Arc::new(HarrisList::new(presets::flit_ht(backend())));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let list = Arc::clone(&list);
                s.spawn(move || {
                    let base = t * PER_THREAD;
                    for k in base..base + PER_THREAD {
                        assert!(list.insert(k, k + 1));
                    }
                    for k in (base..base + PER_THREAD).step_by(2) {
                        assert!(list.remove(k));
                    }
                });
            }
        });
        assert_eq!(list.len() as u64, THREADS * PER_THREAD / 2);
        for t in 0..THREADS {
            let base = t * PER_THREAD;
            assert_eq!(list.get(base), None);
            assert_eq!(list.get(base + 1), Some(base + 2));
        }
    }

    #[test]
    fn contended_same_keys_stress() {
        // All threads fight over a tiny key range to exercise marking/helping.
        let list: Arc<HtList<NvTraverse>> = Arc::new(HarrisList::new(presets::flit_ht(backend())));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = Arc::clone(&list);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t + i) % 8;
                        if i % 2 == 0 {
                            list.insert(k, i);
                        } else {
                            list.remove(k);
                        }
                        let _ = list.get(k);
                    }
                });
            }
        });
        // The list must still be structurally sound: len() terminates and every key is
        // in range.
        assert!(list.len() <= 8);
    }
}
