//! The Natarajan–Mittal lock-free external binary search tree (PPoPP 2014), made
//! durable through FliT.
//!
//! This is the BST used throughout the paper's evaluation (its Figure 5/6 experiments
//! are all run on this structure). It is *leaf-oriented*: internal nodes only route,
//! every key in the set lives in a leaf. Updates never lock; deletion coordinates
//! through two bits stored in the child-edge words:
//!
//! * the **flag** bit (here [`MARK_BIT`](crate::marked::MARK_BIT)) set on the edge
//!   `parent → leaf` announces that the leaf is being deleted;
//! * the **tag** bit set on the sibling edge prevents new insertions below the parent
//!   while it is being spliced out.
//!
//! Because both low-order pointer bits are in use, the link-and-persist technique
//! (which needs a spare bit *and* CAS-only updates) cannot be applied to this
//! structure — exactly the limitation the paper uses it to illustrate (§6.6). FliT,
//! whose counters live outside the word, works unchanged. Every operation takes the
//! calling thread's [`FlitHandle`], exactly as in the other structures.

use std::marker::PhantomData;
use std::sync::Arc;

use flit::{FlitDb, FlitHandle, PFlag, PersistWord, Policy};
use flit_alloc::{roots, Arena};
use flit_ebr::Guard;
use flit_pmem::{CrashImage, PmemBackend};

use crate::durability::Durability;
use crate::map::ConcurrentMap;
use crate::marked::{address, is_marked, is_tagged, pack, pack_with, with_tag};
use crate::recovery::RecoveredMap;

/// Sentinel keys, all larger than any user key (paper notation ∞₀ < ∞₁ < ∞₂).
const INF0: u64 = u64::MAX - 2;
const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

/// A tree node. Leaves have both child words equal to zero.
struct Node<P: Policy> {
    key: u64,
    value: u64,
    left: P::Word<usize>,
    right: P::Word<usize>,
}

/// Byte offsets of a node's recovery-relevant words within its arena slot.
struct NodeLayout {
    key: usize,
    value: usize,
    left: usize,
    right: usize,
}

impl<P: Policy> Node<P> {
    fn layout() -> NodeLayout {
        let probe = Node::<P> {
            key: 0,
            value: 0,
            left: P::Word::<usize>::new(0),
            right: P::Word::<usize>::new(0),
        };
        let base = &probe as *const Node<P> as usize;
        NodeLayout {
            key: &probe.key as *const u64 as usize - base,
            value: &probe.value as *const u64 as usize - base,
            left: probe.left.addr() - base,
            right: probe.right.addr() - base,
        }
    }
}

/// The result of a traversal: the four nodes the update protocol needs.
struct SeekRecord<P: Policy> {
    ancestor: *mut Node<P>,
    successor: *mut Node<P>,
    parent: *mut Node<P>,
    leaf: *mut Node<P>,
}

/// Which phase a delete operation is in.
#[derive(PartialEq, Eq, Clone, Copy)]
enum DeleteMode {
    Injection,
    Cleanup,
}

/// Natarajan–Mittal lock-free external BST over policy `P` and durability method `D`.
pub struct NatarajanTree<P: Policy, D: Durability> {
    root: *mut Node<P>,
    arena: Arc<Arena>,
    db: FlitDb<P>,
    _durability: PhantomData<D>,
}

// SAFETY: standard lock-free structure; see `HarrisList`.
unsafe impl<P: Policy, D: Durability> Send for NatarajanTree<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for NatarajanTree<P, D> {}

impl<P: Policy, D: Durability> NatarajanTree<P, D> {
    /// Create an empty tree (the three-sentinel initial shape of the original
    /// paper) in `db`, with its own arena, registered under [`roots::BST_ROOT`].
    pub fn new(db: &FlitDb<P>) -> Self {
        let arena = db.new_arena_for::<Node<P>>(db.arena_defaults());
        // Persist-before-publish at construction: the sentinel skeleton becomes
        // durable before the root registration makes the tree recoverable.
        let h = db.handle();
        let leaf_inf0 = Self::alloc_node(&h, &arena, INF0, 0, 0, 0);
        let leaf_inf1 = Self::alloc_node(&h, &arena, INF1, 0, 0, 0);
        let leaf_inf2 = Self::alloc_node(&h, &arena, INF2, 0, 0, 0);
        let s = Self::alloc_node(&h, &arena, INF1, 0, pack(leaf_inf0), pack(leaf_inf1));
        let r = Self::alloc_node(&h, &arena, INF2, 0, pack(s), pack(leaf_inf2));
        for node in [leaf_inf0, leaf_inf1, leaf_inf2, s, r] {
            h.persist_object(unsafe { &*node }, PFlag::Persisted);
        }
        arena.register_root(&h.pmem(), roots::BST_ROOT, r as usize);
        drop(h);
        Self {
            root: r,
            arena,
            db: db.clone(),
            _durability: PhantomData,
        }
    }

    /// The database this tree lives in.
    pub fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// The arena this tree allocates nodes from.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// Allocate a node from the arena and record **all** of its words (key, value,
    /// both child edges) with the backend through `h`, so the node is fully
    /// reconstructible from a crash image. The caller persists and publishes it.
    fn alloc_node(
        h: &FlitHandle<'_, P>,
        arena: &Arena,
        key: u64,
        value: u64,
        left: usize,
        right: usize,
    ) -> *mut Node<P> {
        let pm = h.pmem();
        let node: *mut Node<P> = arena.alloc_init(
            &pm,
            Node {
                key,
                value,
                left: P::Word::<usize>::new(left),
                right: P::Word::<usize>::new(right),
            },
        );
        let node_ref = unsafe { &*node };
        pm.record_store(&node_ref.key as *const u64 as *const u8, key);
        pm.record_store(&node_ref.value as *const u64 as *const u8, value);
        node_ref.left.store_private(h, left, PFlag::Volatile);
        node_ref.right.store_private(h, right, PFlag::Volatile);
        node
    }

    /// Retire `node` through the guard's collector: its slot returns to the
    /// arena's recycle list once no pinned participant can still reach it.
    fn retire(&self, guard: &Guard<'_>, node: *mut Node<P>) {
        // SAFETY: the node was unlinked before retirement and is retired once.
        unsafe { self.arena.defer_recycle(guard, node as usize) };
    }

    #[inline]
    fn s_node(&self) -> *mut Node<P> {
        address(unsafe { &*self.root }.left.load_direct())
    }

    /// The child-edge word of `node` on the side `key` would descend to.
    #[inline]
    fn child_edge(&self, node: *mut Node<P>, key: u64) -> &P::Word<usize> {
        let node_ref = unsafe { &*node };
        if key < node_ref.key {
            &node_ref.left
        } else {
            &node_ref.right
        }
    }

    /// The child-edge word of `node` on the *opposite* side of `key`.
    #[inline]
    fn sibling_edge(&self, node: *mut Node<P>, key: u64) -> &P::Word<usize> {
        let node_ref = unsafe { &*node };
        if key < node_ref.key {
            &node_ref.right
        } else {
            &node_ref.left
        }
    }

    /// Traverse from the root towards `key` (paper's `seek`), recording ancestor,
    /// successor, parent and leaf.
    fn seek(&self, h: &FlitHandle<'_, P>, key: u64) -> SeekRecord<P> {
        let r = self.root;
        let s = self.s_node();
        let mut record = SeekRecord {
            ancestor: r,
            successor: s,
            parent: s,
            leaf: address(unsafe { &*s }.left.load(h, D::TRAVERSAL_LOAD)),
        };
        // The edge we followed to reach `record.leaf`.
        let mut parent_field = unsafe { &*s }.left.load(h, D::TRAVERSAL_LOAD);
        let mut current_field = unsafe { &*record.leaf }.left.load(h, D::TRAVERSAL_LOAD);
        let mut current = address::<Node<P>>(current_field);
        // Leaves have null children, so the loop stops at a leaf.
        while !current.is_null() {
            if !is_tagged(parent_field) {
                record.ancestor = record.parent;
                record.successor = record.leaf;
            }
            record.parent = record.leaf;
            record.leaf = current;
            parent_field = current_field;
            let current_ref = unsafe { &*current };
            current_field = if key < current_ref.key {
                current_ref.left.load(h, D::TRAVERSAL_LOAD)
            } else {
                current_ref.right.load(h, D::TRAVERSAL_LOAD)
            };
            current = address(current_field);
        }
        record
    }

    /// Set the tag bit of `edge`, preserving the flag bit (the original algorithm uses
    /// an atomic bit-test-and-set; emulated here with a CAS loop).
    fn tag_edge(&self, h: &FlitHandle<'_, P>, edge: &P::Word<usize>) {
        loop {
            let w = edge.load(h, D::CRITICAL_LOAD);
            if is_tagged(w) {
                return;
            }
            if edge.compare_exchange(h, w, with_tag(w), D::STORE).is_ok() {
                return;
            }
        }
    }

    /// Splice the flagged leaf (and its parent) out of the tree (paper's `cleanup`).
    /// Returns `true` when this call performed the splice.
    fn cleanup(
        &self,
        h: &FlitHandle<'_, P>,
        key: u64,
        record: &SeekRecord<P>,
        guard: &Guard<'_>,
    ) -> bool {
        let ancestor = record.ancestor;
        let successor = record.successor;
        let parent = record.parent;

        let successor_edge = self.child_edge(ancestor, key);
        let child_edge = self.child_edge(parent, key);
        let sibling_edge = self.sibling_edge(parent, key);

        // If the edge towards our key is not flagged, we are helping a delete whose
        // flag sits on the other child; in that case the subtree that survives is the
        // one on our side.
        let child_word = child_edge.load(h, D::CRITICAL_LOAD);
        let (surviving_edge, removed_edge) = if is_marked(child_word) {
            (sibling_edge, child_edge)
        } else {
            (child_edge, sibling_edge)
        };

        // Prevent further updates below the parent on the surviving side.
        self.tag_edge(h, surviving_edge);
        let surviving_word = surviving_edge.load(h, D::CRITICAL_LOAD);

        if D::TRANSITION_DEPTH >= 1 {
            let _ = self.child_edge(ancestor, key).load(h, PFlag::Persisted);
        }

        // Splice: the ancestor's edge to `successor` now points at the surviving
        // subtree. The surviving subtree's flag bit is carried over (a pending delete
        // of that leaf must not be lost); the tag bit is cleared.
        let new_word = pack_with(
            address::<Node<P>>(surviving_word),
            is_marked(surviving_word),
            false,
        );
        let result = successor_edge
            .compare_exchange(h, pack(successor), new_word, D::STORE)
            .is_ok();
        if result {
            // The spliced-out parent and the removed leaf are now unreachable. The
            // `successor` subtree root equals `parent` except when helping an older
            // splice; retiring `parent` (reachable only through the removed edge
            // chain) is safe in both cases because it is no longer reachable.
            let removed_leaf = address::<Node<P>>(removed_edge.load_direct());
            if !removed_leaf.is_null() {
                self.retire(guard, removed_leaf);
            }
            self.retire(guard, parent);
        }
        result
    }

    fn get_impl(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let _guard = h.pin();
        let record = self.seek(h, key);
        let leaf = unsafe { &*record.leaf };
        let result = if leaf.key == key {
            if D::TRANSITION_DEPTH > 0 {
                let _ = self
                    .child_edge(record.parent, key)
                    .load(h, PFlag::Persisted);
            }
            Some(leaf.value)
        } else {
            None
        };
        h.operation_completion();
        result
    }

    fn insert_impl(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        assert!(key < INF0, "key space reserved for sentinels");
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        loop {
            let record = self.seek(h, key);
            let leaf = record.leaf;
            let leaf_key = unsafe { &*leaf }.key;
            if leaf_key == key {
                h.operation_completion();
                return false;
            }
            let parent = record.parent;
            let child_edge = self.child_edge(parent, key);

            // Build the replacement subtree: a new internal node whose children are
            // the existing leaf and a new leaf holding the key.
            let new_leaf = Self::alloc_node(h, &self.arena, key, value, 0, 0);
            let internal = if key < leaf_key {
                Self::alloc_node(h, &self.arena, leaf_key, 0, pack(new_leaf), pack(leaf))
            } else {
                Self::alloc_node(h, &self.arena, key, 0, pack(leaf), pack(new_leaf))
            };
            h.persist_object(unsafe { &*new_leaf }, D::STORE);
            h.persist_object(unsafe { &*internal }, D::STORE);

            if D::TRANSITION_DEPTH >= 1 {
                let _ = child_edge.load(h, PFlag::Persisted);
            }

            match child_edge.compare_exchange(h, pack(leaf), pack(internal), D::STORE) {
                Ok(_) => {
                    h.operation_completion();
                    return true;
                }
                Err(actual) => {
                    // Never published: return both slots to the durable free list.
                    // SAFETY: neither node became reachable.
                    unsafe {
                        self.arena.free(&h.pmem(), new_leaf as *mut u8);
                        self.arena.free(&h.pmem(), internal as *mut u8);
                    }
                    // Help an in-progress delete of this very leaf before retrying.
                    if address::<Node<P>>(actual) == leaf
                        && (is_marked(actual) || is_tagged(actual))
                    {
                        let _ = self.cleanup(h, key, &record, &guard);
                    }
                }
            }
        }
    }

    fn remove_impl(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        let mut mode = DeleteMode::Injection;
        let mut target_leaf: *mut Node<P> = std::ptr::null_mut();
        loop {
            let record = self.seek(h, key);
            let parent = record.parent;
            let child_edge = self.child_edge(parent, key);

            match mode {
                DeleteMode::Injection => {
                    let leaf = record.leaf;
                    if unsafe { &*leaf }.key != key {
                        h.operation_completion();
                        return false;
                    }
                    if D::TRANSITION_DEPTH >= 1 {
                        let _ = child_edge.load(h, PFlag::Persisted);
                    }
                    // Flag the edge to the leaf: this is the linearization point of a
                    // successful delete.
                    match child_edge.compare_exchange(
                        h,
                        pack(leaf),
                        pack_with(leaf, true, false),
                        D::STORE,
                    ) {
                        Ok(_) => {
                            mode = DeleteMode::Cleanup;
                            target_leaf = leaf;
                            if self.cleanup(h, key, &record, &guard) {
                                h.operation_completion();
                                return true;
                            }
                        }
                        Err(actual) => {
                            if address::<Node<P>>(actual) == leaf
                                && (is_marked(actual) || is_tagged(actual))
                            {
                                let _ = self.cleanup(h, key, &record, &guard);
                            }
                        }
                    }
                }
                DeleteMode::Cleanup => {
                    if record.leaf != target_leaf {
                        // Some helper finished the physical removal for us.
                        h.operation_completion();
                        return true;
                    }
                    if self.cleanup(h, key, &record, &guard) {
                        h.operation_completion();
                        return true;
                    }
                }
            }
        }
    }

    /// Reconstruct the durable set **purely from the crash image and the arena's
    /// root table**: read the root sentinel's slot from the root table, then
    /// descend the persisted child-edge words, collecting every reachable leaf
    /// holding a user key whose incoming edge does not carry the deletion flag
    /// (the flag CAS is the linearization point of a successful remove). Tag bits
    /// only protect in-flight splices and are ignored. Leaf keys and values are
    /// read out of the image — no live memory is touched. An absent root means
    /// the tree was not durably constructed: empty set.
    pub fn recover_in_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        let mut rec = RecoveredMap::default();
        let Some(root) = arena.root_in_image(image, roots::BST_ROOT) else {
            return rec;
        };
        let layout = Node::<P>::layout();
        // Corrupt images (the broken control's) can contain edge loops; bound the
        // walk by the image size so recovery always terminates.
        let mut budget = image.len() + 2;
        Self::recover_node_in_image(arena, image, &layout, root, false, &mut budget, &mut rec);
        rec
    }

    /// Recursive helper for [`recover_in_image`](Self::recover_in_image):
    /// `deleted` carries the flag bit of the edge that led here.
    fn recover_node_in_image(
        arena: &Arena,
        image: &CrashImage,
        layout: &NodeLayout,
        node: usize,
        deleted: bool,
        budget: &mut usize,
        rec: &mut RecoveredMap,
    ) {
        if node == 0 || !arena.contains(node) || *budget == 0 {
            // A persisted edge to null (or out of the arena) never occurs in this
            // tree — leaves are detected below, before recursing — and a walk that
            // exhausts its budget is cyclic: flag the inconsistency.
            rec.truncated = true;
            return;
        }
        *budget -= 1;
        let (Some(left), Some(right)) = (
            image.read(node + layout.left),
            image.read(node + layout.right),
        ) else {
            // Reachable through a persisted edge but its own child words never
            // persisted: persist-before-publish violated.
            rec.truncated = true;
            return;
        };
        let (left, right) = (left as usize, right as usize);
        if address::<Node<P>>(left).is_null() && address::<Node<P>>(right).is_null() {
            if !deleted {
                let (Some(key), Some(value)) = (
                    image.read(node + layout.key),
                    image.read(node + layout.value),
                ) else {
                    rec.truncated = true;
                    return;
                };
                if key < INF0 {
                    rec.pairs.push((key, value));
                }
            }
            return;
        }
        Self::recover_node_in_image(
            arena,
            image,
            layout,
            address::<Node<P>>(left) as usize,
            is_marked(left),
            budget,
            rec,
        );
        Self::recover_node_in_image(
            arena,
            image,
            layout,
            address::<Node<P>>(right) as usize,
            is_marked(right),
            budget,
            rec,
        );
    }

    /// Image-only recovery through this tree's own arena; see
    /// [`recover_in_image`](Self::recover_in_image).
    pub fn recover(&self, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(&self.arena, image)
    }

    fn count_leaves(&self, node: *mut Node<P>) -> usize {
        if node.is_null() {
            return 0;
        }
        let node_ref = unsafe { &*node };
        let left = address::<Node<P>>(node_ref.left.load_direct());
        let right = address::<Node<P>>(node_ref.right.load_direct());
        if left.is_null() && right.is_null() {
            // A leaf: count it only if it holds a user key.
            usize::from(node_ref.key < INF0)
        } else {
            self.count_leaves(left) + self.count_leaves(right)
        }
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for NatarajanTree<P, D> {
    const NAME: &'static str = "bst";

    fn with_capacity(db: &FlitDb<P>, _capacity_hint: usize) -> Self {
        Self::new(db)
    }

    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        self.get_impl(h, key)
    }

    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        self.insert_impl(h, key, value)
    }

    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        self.remove_impl(h, key)
    }

    fn len(&self) -> usize {
        self.count_leaves(self.root)
    }

    fn db(&self) -> &FlitDb<P> {
        &self.db
    }
}

// No `Drop` impl: nodes are plain data in arena slots, reclaimed wholesale when the
// last `Arc<Arena>` (and the collector, whose deferred recycles hold clones of it)
// goes away.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};
    use std::sync::Arc;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn ht_db() -> FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
        FlitDb::flit_ht(backend())
    }

    type Bst<D> = NatarajanTree<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_tree() {
        let db = ht_db();
        let h = db.handle();
        let t: Bst<Automatic> = NatarajanTree::new(&db);
        assert!(t.is_empty());
        assert_eq!(t.get(&h, 1), None);
        assert!(!t.remove(&h, 1));
    }

    #[test]
    fn insert_lookup_remove() {
        let db = ht_db();
        let h = db.handle();
        let t: Bst<Automatic> = NatarajanTree::new(&db);
        assert!(t.insert(&h, 50, 500));
        assert!(t.insert(&h, 30, 300));
        assert!(t.insert(&h, 70, 700));
        assert!(!t.insert(&h, 50, 999));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&h, 50), Some(500));
        assert_eq!(t.get(&h, 30), Some(300));
        assert_eq!(t.get(&h, 70), Some(700));
        assert_eq!(t.get(&h, 60), None);
        assert!(t.remove(&h, 50));
        assert!(!t.remove(&h, 50));
        assert_eq!(t.get(&h, 50), None);
        assert_eq!(t.get(&h, 30), Some(300));
        assert_eq!(t.get(&h, 70), Some(700));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ascending_and_descending_insertions() {
        let db = ht_db();
        let h = db.handle();
        let t: Bst<Automatic> = NatarajanTree::new(&db);
        for k in 0..200u64 {
            assert!(t.insert(&h, k, k));
        }
        for k in (200..400u64).rev() {
            assert!(t.insert(&h, k, k));
        }
        assert_eq!(t.len(), 400);
        for k in 0..400u64 {
            assert_eq!(t.get(&h, k), Some(k));
        }
        for k in 0..400u64 {
            assert!(t.remove(&h, k), "failed to remove {k}");
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_then_reinsert() {
        let db = ht_db();
        let h = db.handle();
        let t: Bst<NvTraverse> = NatarajanTree::new(&db);
        for round in 0..5 {
            for k in 0..50u64 {
                assert!(t.insert(&h, k, k + round), "round {round}, key {k}");
            }
            for k in 0..50u64 {
                assert!(t.remove(&h, k));
            }
            assert!(t.is_empty());
        }
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let db = FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build());
            let h = db.handle();
            let t: Bst<D> = NatarajanTree::new(&db);
            for k in [5u64, 2, 8, 1, 3, 7, 9, 4, 6] {
                assert!(t.insert(&h, k, k * 10));
            }
            assert_eq!(t.len(), 9);
            for k in 1..=9u64 {
                assert_eq!(t.get(&h, k), Some(k * 10));
            }
            for k in [2u64, 8, 5] {
                assert!(t.remove(&h, k));
            }
            assert_eq!(t.len(), 6);
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_plain_and_baseline_policies() {
        let db = FlitDb::plain(backend());
        let h = db.handle();
        let t: NatarajanTree<_, Automatic> = NatarajanTree::new(&db);
        for k in 0..64u64 {
            assert!(t.insert(&h, k, k));
        }
        assert_eq!(t.len(), 64);
        let db = FlitDb::no_persist();
        let h = db.handle();
        let t: NatarajanTree<_, Automatic> = NatarajanTree::new(&db);
        for k in 0..64u64 {
            assert!(t.insert(&h, k, k));
        }
        for k in 0..64u64 {
            assert!(t.remove(&h, k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn image_only_recovery_matches_the_quiescent_tree() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let t: Bst<Automatic> = NatarajanTree::new(&db);
        for k in [4u64, 1, 9, 6] {
            assert!(t.insert(&h, k, k * 11));
        }
        assert!(t.remove(&h, 9));
        let image = sim.tracker().unwrap().crash_image();
        let rec = t.recover(&image);
        assert!(!rec.truncated);
        assert_eq!(rec.sorted_pairs(), vec![(1, 11), (4, 44), (6, 66)]);
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        let db = ht_db();
        let t: Arc<Bst<Automatic>> = Arc::new(NatarajanTree::new(&db));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    let base = tid * 10_000;
                    for k in base..base + 400 {
                        assert!(t.insert(&h, k, k));
                    }
                    for k in (base..base + 400).step_by(2) {
                        assert!(t.remove(&h, k));
                    }
                    for k in base..base + 400 {
                        assert_eq!(t.get(&h, k).is_some(), k % 2 == 1, "key {k}");
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 200);
    }

    #[test]
    fn concurrent_contended_stress() {
        let db = ht_db();
        let t: Arc<Bst<Manual>> = Arc::new(NatarajanTree::new(&db));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    for i in 0..600u64 {
                        let k = (tid * 17 + i * 5) % 24;
                        match i % 3 {
                            0 => {
                                t.insert(&h, k, i);
                            }
                            1 => {
                                t.remove(&h, k);
                            }
                            _ => {
                                t.get(&h, k);
                            }
                        }
                    }
                });
            }
        });
        assert!(t.len() <= 24);
        // The sentinel skeleton must be intact.
        assert_eq!(unsafe { &*t.root }.key, INF2);
        assert_eq!(unsafe { &*t.s_node() }.key, INF1);
    }
}
