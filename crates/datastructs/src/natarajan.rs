//! The Natarajan–Mittal lock-free external binary search tree (PPoPP 2014), made
//! durable through FliT.
//!
//! This is the BST used throughout the paper's evaluation (its Figure 5/6 experiments
//! are all run on this structure). It is *leaf-oriented*: internal nodes only route,
//! every key in the set lives in a leaf. Updates never lock; deletion coordinates
//! through two bits stored in the child-edge words:
//!
//! * the **flag** bit (here [`MARK_BIT`](crate::marked::MARK_BIT)) set on the edge
//!   `parent → leaf` announces that the leaf is being deleted;
//! * the **tag** bit set on the sibling edge prevents new insertions below the parent
//!   while it is being spliced out.
//!
//! Because both low-order pointer bits are in use, the link-and-persist technique
//! (which needs a spare bit *and* CAS-only updates) cannot be applied to this
//! structure — exactly the limitation the paper uses it to illustrate (§6.6). FliT,
//! whose counters live outside the word, works unchanged.

use std::marker::PhantomData;

use flit::{PFlag, PersistWord, Policy};
use flit_ebr::{Collector, Guard};
use flit_pmem::CrashImage;

use crate::durability::Durability;
use crate::map::ConcurrentMap;
use crate::marked::{address, is_marked, is_tagged, pack, pack_with, with_tag};
use crate::recovery::RecoveredMap;

/// Sentinel keys, all larger than any user key (paper notation ∞₀ < ∞₁ < ∞₂).
const INF0: u64 = u64::MAX - 2;
const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

/// A tree node. Leaves have both child words equal to zero.
struct Node<P: Policy> {
    key: u64,
    value: u64,
    left: P::Word<usize>,
    right: P::Word<usize>,
}

impl<P: Policy> Node<P> {
    fn leaf(key: u64, value: u64) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key,
            value,
            left: P::Word::<usize>::new(0),
            right: P::Word::<usize>::new(0),
        }))
    }

    fn internal(key: u64, left: *mut Self, right: *mut Self) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key,
            value: 0,
            left: P::Word::<usize>::new(pack(left)),
            right: P::Word::<usize>::new(pack(right)),
        }))
    }
}

/// The result of a traversal: the four nodes the update protocol needs.
struct SeekRecord<P: Policy> {
    ancestor: *mut Node<P>,
    successor: *mut Node<P>,
    parent: *mut Node<P>,
    leaf: *mut Node<P>,
}

/// Which phase a delete operation is in.
#[derive(PartialEq, Eq, Clone, Copy)]
enum DeleteMode {
    Injection,
    Cleanup,
}

/// Natarajan–Mittal lock-free external BST over policy `P` and durability method `D`.
pub struct NatarajanTree<P: Policy, D: Durability> {
    root: *mut Node<P>,
    policy: P,
    collector: Collector,
    _durability: PhantomData<D>,
}

// SAFETY: standard lock-free structure; see `HarrisList`.
unsafe impl<P: Policy, D: Durability> Send for NatarajanTree<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for NatarajanTree<P, D> {}

impl<P: Policy, D: Durability> NatarajanTree<P, D> {
    /// Create an empty tree (the three-sentinel initial shape of the original paper).
    pub fn new(policy: P) -> Self {
        let leaf_inf0 = Node::<P>::leaf(INF0, 0);
        let leaf_inf1 = Node::<P>::leaf(INF1, 0);
        let leaf_inf2 = Node::<P>::leaf(INF2, 0);
        let s = Node::<P>::internal(INF1, leaf_inf0, leaf_inf1);
        let r = Node::<P>::internal(INF2, s, leaf_inf2);
        for node in [leaf_inf0, leaf_inf1, leaf_inf2, s, r] {
            Self::record_node(&policy, node);
            policy.persist_object(unsafe { &*node }, PFlag::Persisted);
        }
        Self {
            root: r,
            policy,
            collector: Collector::new(),
            _durability: PhantomData,
        }
    }

    /// The EBR collector used by this tree (crash tests pin it for the duration of
    /// a run so recovery may dereference retired nodes).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Re-issue a freshly built node's child words as private volatile stores so a
    /// tracking backend records them; `persist_object` alone flushes cache lines the
    /// tracker knows nothing about.
    fn record_node(policy: &P, node: *mut Node<P>) {
        let node_ref = unsafe { &*node };
        node_ref
            .left
            .store_private(policy, node_ref.left.load_direct(), PFlag::Volatile);
        node_ref
            .right
            .store_private(policy, node_ref.right.load_direct(), PFlag::Volatile);
    }

    #[inline]
    fn s_node(&self) -> *mut Node<P> {
        address(unsafe { &*self.root }.left.load_direct())
    }

    /// The child-edge word of `node` on the side `key` would descend to.
    #[inline]
    fn child_edge(&self, node: *mut Node<P>, key: u64) -> &P::Word<usize> {
        let node_ref = unsafe { &*node };
        if key < node_ref.key {
            &node_ref.left
        } else {
            &node_ref.right
        }
    }

    /// The child-edge word of `node` on the *opposite* side of `key`.
    #[inline]
    fn sibling_edge(&self, node: *mut Node<P>, key: u64) -> &P::Word<usize> {
        let node_ref = unsafe { &*node };
        if key < node_ref.key {
            &node_ref.right
        } else {
            &node_ref.left
        }
    }

    /// Traverse from the root towards `key` (paper's `seek`), recording ancestor,
    /// successor, parent and leaf.
    fn seek(&self, key: u64) -> SeekRecord<P> {
        let r = self.root;
        let s = self.s_node();
        let mut record = SeekRecord {
            ancestor: r,
            successor: s,
            parent: s,
            leaf: address(unsafe { &*s }.left.load(&self.policy, D::TRAVERSAL_LOAD)),
        };
        // The edge we followed to reach `record.leaf`.
        let mut parent_field = unsafe { &*s }.left.load(&self.policy, D::TRAVERSAL_LOAD);
        let mut current_field = unsafe { &*record.leaf }
            .left
            .load(&self.policy, D::TRAVERSAL_LOAD);
        let mut current = address::<Node<P>>(current_field);
        // Leaves have null children, so the loop stops at a leaf.
        while !current.is_null() {
            if !is_tagged(parent_field) {
                record.ancestor = record.parent;
                record.successor = record.leaf;
            }
            record.parent = record.leaf;
            record.leaf = current;
            parent_field = current_field;
            let current_ref = unsafe { &*current };
            current_field = if key < current_ref.key {
                current_ref.left.load(&self.policy, D::TRAVERSAL_LOAD)
            } else {
                current_ref.right.load(&self.policy, D::TRAVERSAL_LOAD)
            };
            current = address(current_field);
        }
        record
    }

    /// Set the tag bit of `edge`, preserving the flag bit (the original algorithm uses
    /// an atomic bit-test-and-set; emulated here with a CAS loop).
    fn tag_edge(&self, edge: &P::Word<usize>) {
        loop {
            let w = edge.load(&self.policy, D::CRITICAL_LOAD);
            if is_tagged(w) {
                return;
            }
            if edge
                .compare_exchange(&self.policy, w, with_tag(w), D::STORE)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Splice the flagged leaf (and its parent) out of the tree (paper's `cleanup`).
    /// Returns `true` when this call performed the splice.
    fn cleanup(&self, key: u64, record: &SeekRecord<P>, guard: &Guard<'_>) -> bool {
        let ancestor = record.ancestor;
        let successor = record.successor;
        let parent = record.parent;

        let successor_edge = self.child_edge(ancestor, key);
        let child_edge = self.child_edge(parent, key);
        let sibling_edge = self.sibling_edge(parent, key);

        // If the edge towards our key is not flagged, we are helping a delete whose
        // flag sits on the other child; in that case the subtree that survives is the
        // one on our side.
        let child_word = child_edge.load(&self.policy, D::CRITICAL_LOAD);
        let (surviving_edge, removed_edge) = if is_marked(child_word) {
            (sibling_edge, child_edge)
        } else {
            (child_edge, sibling_edge)
        };

        // Prevent further updates below the parent on the surviving side.
        self.tag_edge(surviving_edge);
        let surviving_word = surviving_edge.load(&self.policy, D::CRITICAL_LOAD);

        if D::TRANSITION_DEPTH >= 1 {
            let _ = self
                .child_edge(ancestor, key)
                .load(&self.policy, PFlag::Persisted);
        }

        // Splice: the ancestor's edge to `successor` now points at the surviving
        // subtree. The surviving subtree's flag bit is carried over (a pending delete
        // of that leaf must not be lost); the tag bit is cleared.
        let new_word = pack_with(
            address::<Node<P>>(surviving_word),
            is_marked(surviving_word),
            false,
        );
        let result = successor_edge
            .compare_exchange(&self.policy, pack(successor), new_word, D::STORE)
            .is_ok();
        if result {
            // The spliced-out parent and the removed leaf are now unreachable.
            let removed_leaf = address::<Node<P>>(removed_edge.load_direct());
            // SAFETY: both nodes were unlinked by the successful CAS above. The
            // `successor` subtree root equals `parent` except when helping an older
            // splice; retiring `parent` (reachable only through the removed edge
            // chain) is safe in both cases because it is no longer reachable.
            unsafe {
                if !removed_leaf.is_null() {
                    guard.defer_destroy(removed_leaf);
                }
                guard.defer_destroy(parent);
            }
        }
        result
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        let _guard = self.collector.pin();
        let record = self.seek(key);
        let leaf = unsafe { &*record.leaf };
        let result = if leaf.key == key {
            if D::TRANSITION_DEPTH > 0 {
                let _ = self
                    .child_edge(record.parent, key)
                    .load(&self.policy, PFlag::Persisted);
            }
            Some(leaf.value)
        } else {
            None
        };
        self.policy.operation_completion();
        result
    }

    fn insert_impl(&self, key: u64, value: u64) -> bool {
        assert!(key < INF0, "key space reserved for sentinels");
        let guard = self.collector.pin();
        loop {
            let record = self.seek(key);
            let leaf = record.leaf;
            let leaf_key = unsafe { &*leaf }.key;
            if leaf_key == key {
                self.policy.operation_completion();
                return false;
            }
            let parent = record.parent;
            let child_edge = self.child_edge(parent, key);

            // Build the replacement subtree: a new internal node whose children are
            // the existing leaf and a new leaf holding the key.
            let new_leaf = Node::<P>::leaf(key, value);
            let internal = if key < leaf_key {
                Node::<P>::internal(leaf_key, new_leaf, leaf)
            } else {
                Node::<P>::internal(key, leaf, new_leaf)
            };
            Self::record_node(&self.policy, new_leaf);
            Self::record_node(&self.policy, internal);
            self.policy.persist_object(unsafe { &*new_leaf }, D::STORE);
            self.policy.persist_object(unsafe { &*internal }, D::STORE);

            if D::TRANSITION_DEPTH >= 1 {
                let _ = child_edge.load(&self.policy, PFlag::Persisted);
            }

            match child_edge.compare_exchange(&self.policy, pack(leaf), pack(internal), D::STORE) {
                Ok(_) => {
                    self.policy.operation_completion();
                    return true;
                }
                Err(actual) => {
                    // SAFETY: neither node was published.
                    unsafe {
                        drop(Box::from_raw(new_leaf));
                        drop(Box::from_raw(internal));
                    }
                    // Help an in-progress delete of this very leaf before retrying.
                    if address::<Node<P>>(actual) == leaf
                        && (is_marked(actual) || is_tagged(actual))
                    {
                        let _ = self.cleanup(key, &record, &guard);
                    }
                }
            }
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        let guard = self.collector.pin();
        let mut mode = DeleteMode::Injection;
        let mut target_leaf: *mut Node<P> = std::ptr::null_mut();
        loop {
            let record = self.seek(key);
            let parent = record.parent;
            let child_edge = self.child_edge(parent, key);

            match mode {
                DeleteMode::Injection => {
                    let leaf = record.leaf;
                    if unsafe { &*leaf }.key != key {
                        self.policy.operation_completion();
                        return false;
                    }
                    if D::TRANSITION_DEPTH >= 1 {
                        let _ = child_edge.load(&self.policy, PFlag::Persisted);
                    }
                    // Flag the edge to the leaf: this is the linearization point of a
                    // successful delete.
                    match child_edge.compare_exchange(
                        &self.policy,
                        pack(leaf),
                        pack_with(leaf, true, false),
                        D::STORE,
                    ) {
                        Ok(_) => {
                            mode = DeleteMode::Cleanup;
                            target_leaf = leaf;
                            if self.cleanup(key, &record, &guard) {
                                self.policy.operation_completion();
                                return true;
                            }
                        }
                        Err(actual) => {
                            if address::<Node<P>>(actual) == leaf
                                && (is_marked(actual) || is_tagged(actual))
                            {
                                let _ = self.cleanup(key, &record, &guard);
                            }
                        }
                    }
                }
                DeleteMode::Cleanup => {
                    if record.leaf != target_leaf {
                        // Some helper finished the physical removal for us.
                        self.policy.operation_completion();
                        return true;
                    }
                    if self.cleanup(key, &record, &guard) {
                        self.policy.operation_completion();
                        return true;
                    }
                }
            }
        }
    }

    /// Reconstruct the durable set from an adversarial crash image: descend the
    /// persisted child-edge words from the root and collect every reachable leaf
    /// holding a user key whose incoming edge does not carry the deletion flag (the
    /// flag CAS is the linearization point of a successful remove). Tag bits only
    /// protect in-flight splices and are ignored.
    ///
    /// # Safety
    /// Every node pointer stored in the image's child words must still be a live
    /// allocation of this tree: the caller must run in quiescence and have pinned
    /// [`Self::collector`] since before the first operation.
    pub unsafe fn recover(&self, image: &CrashImage) -> RecoveredMap {
        let mut rec = RecoveredMap::default();
        // SAFETY: forwarded contract; the root is never retired.
        unsafe { self.recover_node(self.root, false, image, &mut rec) };
        rec
    }

    /// Recursive helper for [`recover`](Self::recover): `deleted` carries the flag
    /// bit of the edge that led here.
    unsafe fn recover_node(
        &self,
        node: *mut Node<P>,
        deleted: bool,
        image: &CrashImage,
        rec: &mut RecoveredMap,
    ) {
        if node.is_null() {
            // A persisted edge to null never occurs in this tree (leaves are
            // detected below, before recursing): flag the inconsistency.
            rec.truncated = true;
            return;
        }
        let node_ref = unsafe { &*node };
        let (Some(left), Some(right)) = (
            image.read(node_ref.left.addr()),
            image.read(node_ref.right.addr()),
        ) else {
            // Reachable through a persisted edge but its own child words never
            // persisted: persist-before-publish violated.
            rec.truncated = true;
            return;
        };
        let (left, right) = (left as usize, right as usize);
        if address::<Node<P>>(left).is_null() && address::<Node<P>>(right).is_null() {
            if !deleted && node_ref.key < INF0 {
                rec.pairs.push((node_ref.key, node_ref.value));
            }
            return;
        }
        // SAFETY: forwarded contract.
        unsafe {
            self.recover_node(address(left), is_marked(left), image, rec);
            self.recover_node(address(right), is_marked(right), image, rec);
        }
    }

    fn count_leaves(&self, node: *mut Node<P>) -> usize {
        if node.is_null() {
            return 0;
        }
        let node_ref = unsafe { &*node };
        let left = address::<Node<P>>(node_ref.left.load_direct());
        let right = address::<Node<P>>(node_ref.right.load_direct());
        if left.is_null() && right.is_null() {
            // A leaf: count it only if it holds a user key.
            usize::from(node_ref.key < INF0)
        } else {
            self.count_leaves(left) + self.count_leaves(right)
        }
    }

    fn free_subtree(node: *mut Node<P>) {
        if node.is_null() {
            return;
        }
        let node_ref = unsafe { &*node };
        let left = address::<Node<P>>(node_ref.left.load_direct());
        let right = address::<Node<P>>(node_ref.right.load_direct());
        Self::free_subtree(left);
        Self::free_subtree(right);
        // SAFETY: single-threaded teardown, each reachable node freed once.
        unsafe { drop(Box::from_raw(node)) };
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for NatarajanTree<P, D> {
    const NAME: &'static str = "bst";

    fn with_capacity(policy: P, _capacity_hint: usize) -> Self {
        Self::new(policy)
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.get_impl(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: u64) -> bool {
        self.remove_impl(key)
    }

    fn len(&self) -> usize {
        self.count_leaves(self.root)
    }

    fn policy(&self) -> &P {
        &self.policy
    }
}

impl<P: Policy, D: Durability> Drop for NatarajanTree<P, D> {
    fn drop(&mut self) {
        Self::free_subtree(self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::presets;
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};
    use std::sync::Arc;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    type Bst<D> = NatarajanTree<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_tree() {
        let t: Bst<Automatic> = NatarajanTree::new(presets::flit_ht(backend()));
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert!(!t.remove(1));
    }

    #[test]
    fn insert_lookup_remove() {
        let t: Bst<Automatic> = NatarajanTree::new(presets::flit_ht(backend()));
        assert!(t.insert(50, 500));
        assert!(t.insert(30, 300));
        assert!(t.insert(70, 700));
        assert!(!t.insert(50, 999));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(50), Some(500));
        assert_eq!(t.get(30), Some(300));
        assert_eq!(t.get(70), Some(700));
        assert_eq!(t.get(60), None);
        assert!(t.remove(50));
        assert!(!t.remove(50));
        assert_eq!(t.get(50), None);
        assert_eq!(t.get(30), Some(300));
        assert_eq!(t.get(70), Some(700));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ascending_and_descending_insertions() {
        let t: Bst<Automatic> = NatarajanTree::new(presets::flit_ht(backend()));
        for k in 0..200u64 {
            assert!(t.insert(k, k));
        }
        for k in (200..400u64).rev() {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.len(), 400);
        for k in 0..400u64 {
            assert_eq!(t.get(k), Some(k));
        }
        for k in 0..400u64 {
            assert!(t.remove(k), "failed to remove {k}");
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_then_reinsert() {
        let t: Bst<NvTraverse> = NatarajanTree::new(presets::flit_ht(backend()));
        for round in 0..5 {
            for k in 0..50u64 {
                assert!(t.insert(k, k + round), "round {round}, key {k}");
            }
            for k in 0..50u64 {
                assert!(t.remove(k));
            }
            assert!(t.is_empty());
        }
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let t: Bst<D> = NatarajanTree::new(presets::flit_ht(backend()));
            for k in [5u64, 2, 8, 1, 3, 7, 9, 4, 6] {
                assert!(t.insert(k, k * 10));
            }
            assert_eq!(t.len(), 9);
            for k in 1..=9u64 {
                assert_eq!(t.get(k), Some(k * 10));
            }
            for k in [2u64, 8, 5] {
                assert!(t.remove(k));
            }
            assert_eq!(t.len(), 6);
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_plain_and_baseline_policies() {
        let t: NatarajanTree<_, Automatic> = NatarajanTree::new(presets::plain(backend()));
        for k in 0..64u64 {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.len(), 64);
        let t: NatarajanTree<_, Automatic> = NatarajanTree::new(presets::no_persist());
        for k in 0..64u64 {
            assert!(t.insert(k, k));
        }
        for k in 0..64u64 {
            assert!(t.remove(k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        let t: Arc<Bst<Automatic>> = Arc::new(NatarajanTree::new(presets::flit_ht(backend())));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let base = tid * 10_000;
                    for k in base..base + 400 {
                        assert!(t.insert(k, k));
                    }
                    for k in (base..base + 400).step_by(2) {
                        assert!(t.remove(k));
                    }
                    for k in base..base + 400 {
                        assert_eq!(t.get(k).is_some(), k % 2 == 1, "key {k}");
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 200);
    }

    #[test]
    fn concurrent_contended_stress() {
        let t: Arc<Bst<Manual>> = Arc::new(NatarajanTree::new(presets::flit_ht(backend())));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..600u64 {
                        let k = (tid * 17 + i * 5) % 24;
                        match i % 3 {
                            0 => {
                                t.insert(k, i);
                            }
                            1 => {
                                t.remove(k);
                            }
                            _ => {
                                t.get(k);
                            }
                        }
                    }
                });
            }
        });
        assert!(t.len() <= 24);
        // The sentinel skeleton must be intact.
        assert_eq!(unsafe { &*t.root }.key, INF2);
        assert_eq!(unsafe { &*t.s_node() }.key, INF1);
    }
}
