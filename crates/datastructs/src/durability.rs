//! Durability methods: which instructions of a data-structure operation are
//! p-instructions and which are v-instructions.
//!
//! The paper evaluates each data structure under three methods (§6):
//!
//! * [`Automatic`] — the Theorem 3.1 transformation: *every* load and store is a
//!   p-instruction. Zero algorithm-specific reasoning required.
//! * [`NvTraverse`] — the NVTraverse methodology (Friedman et al., PLDI'20): the
//!   read-only traversal phase uses v-loads; just before entering the critical phase
//!   the operation p-loads the nodes the critical phase depends on (the *transition*);
//!   everything in the critical phase is a p-instruction.
//! * [`Manual`] — a hand-tuned placement following David et al. (ATC'18): traversal
//!   *and* critical-phase loads stay volatile, only the specific link being modified
//!   is persisted (via a p-load transition of depth 1 plus p-stores).
//!
//! All three are expressed as compile-time constants consumed by the generic
//! data-structure code, so each (structure × method × policy) combination is a fully
//! monomorphised instantiation with no runtime dispatch on the hot path.

use flit::PFlag;

/// A durability method: a static assignment of p-/v-flags to the instruction classes
/// that appear in the four evaluated data structures.
pub trait Durability: Send + Sync + Default + Clone + 'static {
    /// Name used in benchmark output (`"automatic"`, `"nvtraverse"`, `"manual"`).
    const NAME: &'static str;

    /// Flag for loads issued while traversing towards the operation's target.
    const TRAVERSAL_LOAD: PFlag;

    /// Flag for loads issued in the critical phase (at or next to the modification
    /// point, after the traversal).
    const CRITICAL_LOAD: PFlag;

    /// Flag for shared stores (CAS/exchange) that modify the structure.
    const STORE: PFlag;

    /// Flag for stores to auxiliary "index" state that does not define the abstract
    /// set — e.g. marking or linking the upper levels of a skiplist tower. Only the
    /// automatic transformation persists these; the optimised methods reason that the
    /// bottom level alone determines membership after a crash.
    const INDEX_STORE: PFlag;

    /// How many of the most recently traversed links are re-read with a p-load right
    /// before the critical phase (the NVTraverse "transition"). Zero disables the
    /// transition (Automatic: traversal loads were already persisted; see each
    /// structure's use).
    const TRANSITION_DEPTH: usize;
}

/// Every instruction is a p-instruction (paper Theorem 3.1).
#[derive(Debug, Default, Clone, Copy)]
pub struct Automatic;

impl Durability for Automatic {
    const NAME: &'static str = "automatic";
    const TRAVERSAL_LOAD: PFlag = PFlag::Persisted;
    const CRITICAL_LOAD: PFlag = PFlag::Persisted;
    const STORE: PFlag = PFlag::Persisted;
    const INDEX_STORE: PFlag = PFlag::Persisted;
    const TRANSITION_DEPTH: usize = 0;
}

/// NVTraverse: volatile traversal, persisted transition + critical phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct NvTraverse;

impl Durability for NvTraverse {
    const NAME: &'static str = "nvtraverse";
    const TRAVERSAL_LOAD: PFlag = PFlag::Volatile;
    const CRITICAL_LOAD: PFlag = PFlag::Persisted;
    const STORE: PFlag = PFlag::Persisted;
    const INDEX_STORE: PFlag = PFlag::Volatile;
    const TRANSITION_DEPTH: usize = 2;
}

/// Hand-tuned: volatile loads everywhere, persistence confined to the modified link.
#[derive(Debug, Default, Clone, Copy)]
pub struct Manual;

impl Durability for Manual {
    const NAME: &'static str = "manual";
    const TRAVERSAL_LOAD: PFlag = PFlag::Volatile;
    const CRITICAL_LOAD: PFlag = PFlag::Volatile;
    const STORE: PFlag = PFlag::Persisted;
    const INDEX_STORE: PFlag = PFlag::Volatile;
    const TRANSITION_DEPTH: usize = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_are_ordered_by_how_much_they_persist() {
        // Automatic persists the most, Manual the least; the constants must reflect
        // that ordering or the Figure 7 comparison loses its meaning.
        assert!(Automatic::TRAVERSAL_LOAD.is_persisted());
        assert!(NvTraverse::TRAVERSAL_LOAD.is_volatile());
        assert!(Manual::TRAVERSAL_LOAD.is_volatile());

        assert!(Automatic::CRITICAL_LOAD.is_persisted());
        assert!(NvTraverse::CRITICAL_LOAD.is_persisted());
        assert!(Manual::CRITICAL_LOAD.is_volatile());

        // All three persist their updates — none of them can skip store persistence
        // and remain durably linearizable.
        assert!(Automatic::STORE.is_persisted());
        assert!(NvTraverse::STORE.is_persisted());
        assert!(Manual::STORE.is_persisted());

        assert_eq!(Automatic::TRANSITION_DEPTH, 0);
        assert_eq!(NvTraverse::TRANSITION_DEPTH, 2);
        assert_eq!(Manual::TRANSITION_DEPTH, 1);
    }

    #[test]
    fn names_are_distinct() {
        let names = [Automatic::NAME, NvTraverse::NAME, Manual::NAME];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
