//! Crash recovery for the map structures: rebuild the abstract key→value set from an
//! adversarial [`CrashImage`] — and from *nothing else*.
//!
//! Recovery is **image-only**. Every structure allocates its nodes from a
//! [`flit_alloc::Arena`] and records all node words (links *and* the immutable
//! key/value contents) with the backend, and each structure registers where its
//! durable state begins in the arena's recovery-root table. A recovery walk
//! therefore consists of: root table (in the image) → root slot → persisted words
//! (in the image), with the live structure contributing nothing but its arena
//! handle. In particular:
//!
//! * **no live-structure pointer** is needed — each structure exposes an
//!   associated `recover_in_image(arena, image)` beside the trait method;
//! * **no live-memory reads** happen — keys and values come out of the image, so
//!   the persist-before-publish argument is *checked*, not assumed;
//! * a structure whose root never became durable recovers to the **empty**
//!   structure, which is what makes crash sweeps over the *construction window*
//!   meaningful (the arena header itself is always reachable from offset 0).
//!
//! The walks define each structure's durable abstract state:
//!
//! * **Harris list** — the chain of `next` words from the head sentinel; a node
//!   whose own `next` is marked is logically deleted; the tail is recognised by
//!   its persisted sentinel key.
//! * **hash table** — the persisted bucket directory block, then the union of its
//!   bucket chains.
//! * **Natarajan–Mittal BST** — the tree of child-edge words from the root
//!   sentinel; a flagged edge announces the logical deletion of the leaf below it.
//! * **skiplist** — the bottom-level `next` chain (upper levels are index state
//!   and deliberately unrecoverable under the optimised durability methods).
//!
//! A node reachable through persisted links whose own recovery words are absent
//! from the image flags [`truncated`](RecoveredMap::truncated) — the signature of
//! a violated persist-before-publish invariant. Since no pointer found in the
//! image is ever dereferenced (every read goes through the image, bounds-checked
//! against the arena), recovery is *safe* code and needs no quiescence or pinning
//! contract.

use flit::Policy;
use flit_pmem::CrashImage;

use crate::harris_list::HarrisList;
use crate::hash_table::HashTable;
use crate::natarajan::NatarajanTree;
use crate::skiplist::SkipList;
use crate::Durability;

/// What map recovery reconstructs from a [`CrashImage`]: the durable key→value
/// pairs, plus a flag for walks that hit un-persisted territory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredMap {
    /// The recovered pairs, in structure-walk order (use
    /// [`sorted_pairs`](Self::sorted_pairs) to compare against a model).
    pub pairs: Vec<(u64, u64)>,
    /// `true` when a node was reachable through persisted links but its own
    /// recovery words were missing from the image. For any durability method whose
    /// `STORE` flag is persisted this indicates a durability bug: node
    /// initialisation is persisted before the store that publishes the node.
    pub truncated: bool,
}

impl RecoveredMap {
    /// The recovered pairs sorted by key — the canonical form compared against a
    /// sequential model.
    pub fn sorted_pairs(&self) -> Vec<(u64, u64)> {
        let mut pairs = self.pairs.clone();
        pairs.sort_unstable_by_key(|(k, _)| *k);
        pairs
    }

    /// Fold another partial recovery (e.g. one hash bucket) into this one.
    pub fn absorb(&mut self, other: RecoveredMap) {
        self.pairs.extend(other.pairs);
        self.truncated |= other.truncated;
    }
}

/// Uniform crash-recovery interface over the four map structures, used by the
/// `flit-crashtest` sweep engine. Recovery is image-only and safe: see the module
/// docs.
pub trait MapCrashRecovery<P: Policy> {
    /// Rebuild the durable abstract state from `image`, reading only the image and
    /// the structure's arena root table (never live memory).
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap;
}

/// **Static** image-only recovery: rebuild a structure's durable abstract
/// state from an arena and a crash image with *no live structure at all*.
///
/// This is what a process re-opening a file-backed pool needs: after
/// `FlitDb::open` adopts the arenas and synthesizes the pool's
/// [`CrashImage`], there is no live `HashTable` to call
/// [`MapCrashRecovery::recover_from_image`] on — the dead process's structure
/// is just a root-table entry ([`Self::ROOT_KEY`]) plus persisted words. Each
/// implementation delegates to the structure's inherent
/// `recover_in_image(arena, image)` walk, so the simulated sweeps and the
/// real-pool reopen path exercise the same code.
pub trait RecoverInImage {
    /// The root-table key (`flit_alloc::roots::*`) this structure registers
    /// its durable entry point under — how a reopening process locates the
    /// structure inside an adopted arena.
    const ROOT_KEY: u64;

    /// Rebuild the durable key→value state from `arena`'s root table and
    /// `image`. An image in which [`Self::ROOT_KEY`] was never durably
    /// registered recovers to the empty map.
    fn recover_arena_image(arena: &flit_alloc::Arena, image: &CrashImage) -> RecoveredMap;
}

impl<P: Policy, D: Durability> RecoverInImage for HarrisList<P, D> {
    const ROOT_KEY: u64 = flit_alloc::roots::LIST_HEAD;

    fn recover_arena_image(arena: &flit_alloc::Arena, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(arena, image)
    }
}

impl<P: Policy, D: Durability> RecoverInImage for HashTable<P, D> {
    const ROOT_KEY: u64 = flit_alloc::roots::HASH_DIRECTORY;

    fn recover_arena_image(arena: &flit_alloc::Arena, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(arena, image)
    }
}

impl<P: Policy, D: Durability> RecoverInImage for NatarajanTree<P, D> {
    const ROOT_KEY: u64 = flit_alloc::roots::BST_ROOT;

    fn recover_arena_image(arena: &flit_alloc::Arena, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(arena, image)
    }
}

impl<P: Policy, D: Durability> RecoverInImage for SkipList<P, D> {
    const ROOT_KEY: u64 = flit_alloc::roots::SKIPLIST_HEAD;

    fn recover_arena_image(arena: &flit_alloc::Arena, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(arena, image)
    }
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for HarrisList<P, D> {
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        self.recover(image)
    }
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for HashTable<P, D> {
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        self.recover(image)
    }
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for NatarajanTree<P, D> {
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        self.recover(image)
    }
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for SkipList<P, D> {
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        self.recover(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_pairs_orders_by_key() {
        let rec = RecoveredMap {
            pairs: vec![(3, 30), (1, 10), (2, 20)],
            truncated: false,
        };
        assert_eq!(rec.sorted_pairs(), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn absorb_merges_pairs_and_truncation() {
        let mut a = RecoveredMap {
            pairs: vec![(1, 10)],
            truncated: false,
        };
        a.absorb(RecoveredMap {
            pairs: vec![(2, 20)],
            truncated: true,
        });
        assert_eq!(a.pairs.len(), 2);
        assert!(a.truncated);
    }
}
