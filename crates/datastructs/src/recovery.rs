//! Crash recovery for the map structures: rebuild the abstract key→value set from an
//! adversarial [`CrashImage`].
//!
//! Each structure defines its abstract state through a specific set of persisted
//! link words:
//!
//! * **Harris list** — the chain of `next` words from the head sentinel; a node whose
//!   own `next` is marked is logically deleted.
//! * **hash table** — the union of its bucket lists.
//! * **Natarajan–Mittal BST** — the tree of child-edge words from the root; a
//!   flagged edge announces the logical deletion of the leaf below it.
//! * **skiplist** — the bottom-level `next` chain (upper levels are index state and
//!   deliberately unrecoverable under the optimised durability methods).
//!
//! Recovery walks exactly those words in the image. Node *contents* (`key`/`value`,
//! immutable after publication) are read from live memory: the persist-before-publish
//! protocol makes their durable values equal to the live ones whenever the link that
//! publishes the node is itself in the image, and the walk flags
//! [`truncated`](RecoveredMap::truncated) when it reaches a node whose own link words
//! are absent — the signature of a violated persist-before-publish invariant.
//!
//! # Safety contract
//!
//! All `recover_from_image` implementations dereference node pointers found in the
//! image, so every such pointer must still be a live allocation: the caller must run
//! in quiescence **and** have held the guards returned by
//! [`pin_for_recovery`](MapCrashRecovery::pin_for_recovery) since before the first
//! operation, so no retired node has been reclaimed. The `flit-crashtest` engine
//! does exactly this.

use flit::Policy;
use flit_ebr::Guard;
use flit_pmem::CrashImage;

use crate::harris_list::HarrisList;
use crate::hash_table::HashTable;
use crate::natarajan::NatarajanTree;
use crate::skiplist::SkipList;
use crate::Durability;

/// What map recovery reconstructs from a [`CrashImage`]: the durable key→value
/// pairs, plus a flag for walks that hit un-persisted territory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredMap {
    /// The recovered pairs, in structure-walk order (use
    /// [`sorted_pairs`](Self::sorted_pairs) to compare against a model).
    pub pairs: Vec<(u64, u64)>,
    /// `true` when a node was reachable through persisted links but its own link
    /// words were missing from the image. For any durability method whose `STORE`
    /// flag is persisted this indicates a durability bug: node initialisation is
    /// persisted before the store that publishes the node.
    pub truncated: bool,
}

impl RecoveredMap {
    /// The recovered pairs sorted by key — the canonical form compared against a
    /// sequential model.
    pub fn sorted_pairs(&self) -> Vec<(u64, u64)> {
        let mut pairs = self.pairs.clone();
        pairs.sort_unstable_by_key(|(k, _)| *k);
        pairs
    }

    /// Fold another partial recovery (e.g. one hash bucket) into this one.
    pub fn absorb(&mut self, other: RecoveredMap) {
        self.pairs.extend(other.pairs);
        self.truncated |= other.truncated;
    }
}

/// Uniform crash-recovery interface over the four map structures, used by the
/// `flit-crashtest` sweep engine. See the module docs for the safety contract.
pub trait MapCrashRecovery<P: Policy> {
    /// Rebuild the durable abstract state from `image`.
    ///
    /// # Safety
    /// Every node pointer in the image must still be a live allocation of this
    /// structure: quiescence + guards from [`pin_for_recovery`] held since before
    /// the first operation.
    ///
    /// [`pin_for_recovery`]: MapCrashRecovery::pin_for_recovery
    unsafe fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap;

    /// Pin every EBR collector this structure retires nodes through. Hold the
    /// returned guards for the whole run to keep crash images dereferenceable.
    fn pin_for_recovery(&self) -> Vec<Guard<'_>>;
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for HarrisList<P, D> {
    unsafe fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        // SAFETY: forwarded contract.
        unsafe { self.recover(image) }
    }

    fn pin_for_recovery(&self) -> Vec<Guard<'_>> {
        vec![self.collector().pin()]
    }
}

impl<P: Policy + Clone, D: Durability> MapCrashRecovery<P> for HashTable<P, D> {
    unsafe fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        // SAFETY: forwarded contract.
        unsafe { self.recover(image) }
    }

    fn pin_for_recovery(&self) -> Vec<Guard<'_>> {
        self.bucket_collectors().map(|c| c.pin()).collect()
    }
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for NatarajanTree<P, D> {
    unsafe fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        // SAFETY: forwarded contract.
        unsafe { self.recover(image) }
    }

    fn pin_for_recovery(&self) -> Vec<Guard<'_>> {
        vec![self.collector().pin()]
    }
}

impl<P: Policy, D: Durability> MapCrashRecovery<P> for SkipList<P, D> {
    unsafe fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        // SAFETY: forwarded contract.
        unsafe { self.recover(image) }
    }

    fn pin_for_recovery(&self) -> Vec<Guard<'_>> {
        vec![self.collector().pin()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_pairs_orders_by_key() {
        let rec = RecoveredMap {
            pairs: vec![(3, 30), (1, 10), (2, 20)],
            truncated: false,
        };
        assert_eq!(rec.sorted_pairs(), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn absorb_merges_pairs_and_truncation() {
        let mut a = RecoveredMap {
            pairs: vec![(1, 10)],
            truncated: false,
        };
        a.absorb(RecoveredMap {
            pairs: vec![(2, 20)],
            truncated: true,
        });
        assert_eq!(a.pairs.len(), 2);
        assert!(a.truncated);
    }
}
