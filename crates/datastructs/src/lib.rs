//! # `flit-datastructs` — the lock-free data structures of the FliT evaluation
//!
//! The FliT paper evaluates its library on four lock-free set/map data structures,
//! each made durable in three different ways. This crate implements all of them from
//! scratch, generic over two type parameters:
//!
//! * `P:` [`flit::Policy`] — *how* p-instructions are implemented (plain,
//!   flit-adjacent, flit-HT, flit-cacheline, link-and-persist, or the non-persistent
//!   baseline);
//! * `D:` [`Durability`] — *which* instructions are p-instructions (automatic,
//!   NVTraverse, or manual).
//!
//! | structure | module | paper reference |
//! |---|---|---|
//! | Harris linked list | [`harris_list`] | Harris, DISC'01 |
//! | hash table (Harris-list buckets) | [`hash_table`] | David et al., ATC'18 setup |
//! | Natarajan–Mittal external BST | [`natarajan`] | Natarajan & Mittal, PPoPP'14 |
//! | lock-free skiplist | [`skiplist`] | Fraser'03 / Herlihy–Shavit |
//!
//! All four expose the common [`ConcurrentMap`] interface used by the workload
//! generator and the benchmark harness; [`SequentialMap`] is the reference model used
//! by the property-based tests.
//!
//! ## The explicit-handle API
//!
//! Structures are constructed in a [`FlitDb`](flit::FlitDb) (which owns the
//! policy, the EBR collector and the arena registry), and **every operation takes
//! the calling thread's [`FlitHandle`](flit::FlitHandle)**:
//!
//! ```
//! use flit::FlitDb;
//! use flit_datastructs::{Automatic, ConcurrentMap, HashTable};
//! use flit_pmem::SimNvram;
//!
//! let db = FlitDb::flit_ht(SimNvram::default());
//! let map: HashTable<_, Automatic> = HashTable::new(&db, 1024);
//! let h = db.handle();
//! assert!(map.insert(&h, 7, 70));
//! assert_eq!(map.get(&h, 7), Some(70));
//! ```
//!
//! The handle owns the persist-epoch state (fence/flush elision) and the EBR
//! participant; nothing in the operation path is keyed to the OS thread, which is
//! what lets `flit-crashtest` step several handles deterministically on one
//! thread.
//!
//! ## Allocation and recovery
//!
//! Every structure allocates its nodes from a per-structure
//! [`Arena`](flit_alloc::Arena): fixed-size, cache-line-aligned slots whose *every* word
//! (links and the immutable key/value contents alike) is recorded with the
//! backend before the node is persisted and published, and whose durable entry
//! point is registered in the arena's recovery-root table. Recovery
//! ([`MapCrashRecovery`], module [`recovery`]) is therefore **image-only**: it
//! rebuilds the durable abstract state from an adversarial
//! [`CrashImage`](flit_pmem::CrashImage) plus the root table, with no pointer
//! into the live structure and no live-memory reads — so it works for crashes at
//! *any* point, including mid-construction (an absent root recovers to the empty
//! structure), and it is safe code (nothing from the image is ever dereferenced).
//! This is the interface the `flit-crashtest` crash-point sweep engine drives.
//!
//! Every operation ends with
//! [`FlitHandle::operation_completion`](flit::FlitHandle::operation_completion),
//! which is *epoch-aware*: a read-only operation over untagged words leaves its
//! handle clean, so the completion fence (and with it the entire persistence cost
//! of the operation) is elided — per handle, not per OS thread.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod durability;
pub mod harris_list;
pub mod hash_table;
pub mod map;
pub mod marked;
pub mod natarajan;
pub mod recovery;
pub mod skiplist;

pub use durability::{Automatic, Durability, Manual, NvTraverse};
pub use harris_list::HarrisList;
pub use hash_table::HashTable;
pub use map::{ConcurrentMap, SequentialMap, MAX_USER_KEY};
pub use natarajan::NatarajanTree;
pub use recovery::{MapCrashRecovery, RecoverInImage, RecoveredMap};
pub use skiplist::SkipList;

#[cfg(test)]
mod proptests {
    //! Property-based tests: every structure, under every durability method, agrees
    //! with a sequential model on arbitrary operation sequences.

    use super::*;
    use flit::{FlitDb, FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u64),
        Remove(u64),
        Get(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // A small key universe maximises collisions between inserts and removes.
        let key = 0u64..32;
        prop_oneof![
            (key.clone(), 0u64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
            key.clone().prop_map(Op::Remove),
            key.prop_map(Op::Get),
        ]
    }

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn check_against_model<M>(ops: &[Op])
    where
        M: ConcurrentMap<FlitPolicy<HashedScheme, SimNvram>>,
    {
        let db = FlitDb::flit_ht(backend());
        let map = M::with_capacity(&db, 64);
        let h = db.handle();
        let model = SequentialMap::new();
        for op in ops {
            match *op {
                Op::Insert(k, v) => {
                    assert_eq!(map.insert(&h, k, v), model.insert(k, v), "insert {k}")
                }
                Op::Remove(k) => assert_eq!(map.remove(&h, k), model.remove(k), "remove {k}"),
                Op::Get(k) => assert_eq!(map.get(&h, k), model.get(k), "get {k}"),
            }
        }
        assert_eq!(map.len(), model.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn list_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            check_against_model::<HarrisList<_, Automatic>>(&ops);
            check_against_model::<HarrisList<_, NvTraverse>>(&ops);
            check_against_model::<HarrisList<_, Manual>>(&ops);
        }

        #[test]
        fn hash_table_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            check_against_model::<HashTable<_, Automatic>>(&ops);
            check_against_model::<HashTable<_, NvTraverse>>(&ops);
        }

        #[test]
        fn bst_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            check_against_model::<NatarajanTree<_, Automatic>>(&ops);
            check_against_model::<NatarajanTree<_, NvTraverse>>(&ops);
            check_against_model::<NatarajanTree<_, Manual>>(&ops);
        }

        #[test]
        fn skiplist_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            check_against_model::<SkipList<_, Automatic>>(&ops);
            check_against_model::<SkipList<_, Manual>>(&ops);
        }
    }
}
