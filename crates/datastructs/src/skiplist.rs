//! Lock-free skiplist (Fraser / Herlihy–Shavit style), made durable through FliT.
//!
//! The skiplist is a tower of sorted linked lists; membership is defined solely by the
//! bottom level, which is why the optimised durability methods treat upper-level link
//! updates as v-instructions ([`Durability::INDEX_STORE`]). Removal marks the tower
//! from the top down and linearizes at the bottom-level mark; physical unlinking is
//! done by `find`, exactly as in the Harris list. Every operation takes the calling
//! thread's [`FlitHandle`], exactly as in the other structures.
//!
//! This is the structure where the paper observes the layout cost of the adjacent
//! counter placement (§6.6): a tower node stores one next-pointer per level, so
//! doubling every word can overflow a cache line. That effect is reproduced
//! structurally here (`FlitAtomic` with `AdjacentScheme` is 16 bytes instead of 8),
//! even though the microarchitectural penalty is not modelled by the simulated
//! backend.
//!
//! ## Arena allocation and image-only recovery
//!
//! Tower links used to live in a heap `Vec` beside the node, which made the node's
//! recovery words unreachable by address arithmetic. Nodes are now single
//! cache-line-aligned arena slots with the tower **inline** (`[P::Word; MAX_LEVEL]`,
//! `repr(C)`, tower last): only the occupied prefix `0..=top_level` is recorded and
//! persisted, and the bottom-level word sits at a fixed offset from the slot base.
//! The head tower is registered under [`roots::SKIPLIST_HEAD`], so
//! [`SkipList::recover_in_image`] walks the persisted bottom level purely from the
//! [`CrashImage`] + root table.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flit::{FlitDb, FlitHandle, PFlag, PersistWord, Policy};
use flit_alloc::{roots, Arena};
use flit_ebr::Guard;
use flit_pmem::{CrashImage, PmemBackend, WORD_SIZE};

use crate::durability::Durability;
use crate::map::ConcurrentMap;
use crate::marked::{address, is_marked, pack, unmark, with_mark};
use crate::recovery::RecoveredMap;

/// Maximum tower height. 2^20 expected elements per probability 1/2 level is ample for
/// the evaluation sizes.
pub const MAX_LEVEL: usize = 20;

/// A tower node. `repr(C)` with the tower last, so the occupied prefix
/// `..=top_level` is a contiguous range from the slot base (persisted as one
/// `persist_range`) and every recovery word sits at a layout-probed offset.
#[repr(C)]
struct Node<P: Policy> {
    key: u64,
    value: u64,
    top_level: usize,
    next: [P::Word<usize>; MAX_LEVEL],
}

/// Byte offsets of the recovery-relevant words within a node slot.
struct NodeLayout {
    key: usize,
    value: usize,
    next0: usize,
}

impl<P: Policy> Node<P> {
    fn layout() -> NodeLayout {
        let probe = Node::<P> {
            key: 0,
            value: 0,
            top_level: 0,
            next: std::array::from_fn(|_| P::Word::<usize>::new(0)),
        };
        let base = &probe as *const Node<P> as usize;
        NodeLayout {
            key: &probe.key as *const u64 as usize - base,
            value: &probe.value as *const u64 as usize - base,
            next0: probe.next[0].addr() - base,
        }
    }
}

/// Lock-free skiplist over persistence policy `P` and durability method `D`.
pub struct SkipList<P: Policy, D: Durability> {
    head: *mut Node<P>,
    arena: Arc<Arena>,
    db: FlitDb<P>,
    /// Cheap xorshift state for tower-height selection (splittable per call site).
    rng: AtomicU64,
    _durability: PhantomData<D>,
}

// SAFETY: standard lock-free structure; see `HarrisList`.
unsafe impl<P: Policy, D: Durability> Send for SkipList<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for SkipList<P, D> {}

impl<P: Policy, D: Durability> SkipList<P, D> {
    /// Create an empty skiplist in `db` with its own arena, registered under
    /// [`roots::SKIPLIST_HEAD`].
    pub fn new(db: &FlitDb<P>) -> Self {
        let arena = db.new_arena_for::<Node<P>>(db.arena_defaults());
        let list = Self {
            head: std::ptr::null_mut(),
            arena,
            db: db.clone(),
            rng: AtomicU64::new(0x9E3779B97F4A7C15),
            _durability: PhantomData,
        };
        // Persist-before-publish at construction: the full head tower becomes
        // durable, then the root registration makes the (empty) list recoverable.
        let h = db.handle();
        let head = list.alloc_node(&h, 0, 0, MAX_LEVEL - 1, &[]);
        list.persist_new_node(&h, head, PFlag::Persisted);
        list.arena
            .register_root(&h.pmem(), roots::SKIPLIST_HEAD, head as usize);
        drop(h);
        Self { head, ..list }
    }

    /// The database this skiplist lives in.
    pub fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// The arena this skiplist allocates towers from.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// Allocate a tower node from the arena and record its key/value and occupied
    /// tower words with the backend through `h`.
    fn alloc_node(
        &self,
        h: &FlitHandle<'_, P>,
        key: u64,
        value: u64,
        top_level: usize,
        succs: &[usize],
    ) -> *mut Node<P> {
        let pm = h.pmem();
        let node: *mut Node<P> = self.arena.alloc_init(
            &pm,
            Node {
                key,
                value,
                top_level,
                next: std::array::from_fn(|lvl| {
                    P::Word::<usize>::new(succs.get(lvl).copied().unwrap_or(0))
                }),
            },
        );
        let node_ref = unsafe { &*node };
        pm.record_store(&node_ref.key as *const u64 as *const u8, key);
        pm.record_store(&node_ref.value as *const u64 as *const u8, value);
        for word in &node_ref.next[..=top_level] {
            word.store_private(h, word.load_direct(), PFlag::Volatile);
        }
        node
    }

    /// Retire `node` through the guard's collector: its slot returns to the
    /// arena's recycle list once no pinned participant can still reach it.
    fn retire(&self, guard: &Guard<'_>, node: *mut Node<P>) {
        // SAFETY: the node was unlinked from level 0 before retirement and is
        // retired once.
        unsafe { self.arena.defer_recycle(guard, node as usize) };
    }

    /// Geometric tower height in `0..MAX_LEVEL` (p = 1/2).
    fn random_level(&self) -> usize {
        let mut x = self.rng.fetch_add(0x2545F4914F6CDD1D, Ordering::Relaxed);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545F4914F6CDD1D);
        (r.trailing_ones() as usize).min(MAX_LEVEL - 1)
    }

    /// Persist a freshly created node: the contiguous slot prefix from the node
    /// base through its highest occupied tower word (the unoccupied tail of the
    /// inline tower is dead space — flushing it would only add layout-independent
    /// but pointless `pwb`s).
    fn persist_new_node(&self, h: &FlitHandle<'_, P>, node: *mut Node<P>, flag: PFlag) {
        let node_ref = unsafe { &*node };
        let base = node as usize;
        let len = node_ref.next[node_ref.top_level].addr() + WORD_SIZE - base;
        h.persist_range(base as *const u8, len, flag);
    }

    /// Find the insertion window at every level: `preds[l]` is the last node with key
    /// < `key` at level `l`, `succs[l]` the following node (null = end of level).
    /// Physically unlinks marked nodes it passes. Returns `true` when an unmarked node
    /// with the exact key is present at the bottom level.
    fn find(
        &self,
        h: &FlitHandle<'_, P>,
        key: u64,
        preds: &mut [*mut Node<P>; MAX_LEVEL],
        succs: &mut [*mut Node<P>; MAX_LEVEL],
        guard: &Guard<'_>,
    ) -> bool {
        'retry: loop {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr =
                    address::<Node<P>>(unsafe { &*pred }.next[level].load(h, D::TRAVERSAL_LOAD));
                loop {
                    if curr.is_null() {
                        break;
                    }
                    let mut succ_word = unsafe { &*curr }.next[level].load(h, D::TRAVERSAL_LOAD);
                    while is_marked(succ_word) {
                        // `curr` is logically deleted at this level: unlink it.
                        if unsafe { &*pred }.next[level]
                            .compare_exchange(
                                h,
                                pack(curr),
                                unmark(succ_word),
                                if level == 0 { D::STORE } else { D::INDEX_STORE },
                            )
                            .is_err()
                        {
                            continue 'retry;
                        }
                        if level == 0 {
                            // The bottom-level unlink is what makes the node
                            // unreachable; only then may it be retired.
                            self.retire(guard, curr);
                        }
                        curr = address::<Node<P>>(unmark(succ_word));
                        if curr.is_null() {
                            break;
                        }
                        succ_word = unsafe { &*curr }.next[level].load(h, D::TRAVERSAL_LOAD);
                    }
                    if curr.is_null() {
                        break;
                    }
                    if unsafe { &*curr }.key < key {
                        pred = curr;
                        curr = address::<Node<P>>(unmark(succ_word));
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
            }
            return !succs[0].is_null() && unsafe { &*succs[0] }.key == key;
        }
    }

    fn get_impl(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let found = self.find(h, key, &mut preds, &mut succs, &guard);
        let result = if found {
            let node = unsafe { &*succs[0] };
            if D::TRANSITION_DEPTH > 0 {
                let _ = node.next[0].load(h, PFlag::Persisted);
            }
            Some(node.value)
        } else {
            None
        };
        h.operation_completion();
        result
    }

    fn insert_impl(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        assert!(key < u64::MAX);
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        let top_level = self.random_level();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        loop {
            if self.find(h, key, &mut preds, &mut succs, &guard) {
                h.operation_completion();
                return false;
            }
            // Build the tower pointing at the successors observed by find().
            let succ_words: Vec<usize> = (0..=top_level).map(|l| pack(succs[l])).collect();
            let node = self.alloc_node(h, key, value, top_level, &succ_words);
            self.persist_new_node(h, node, D::STORE);

            // Transition: persist the bottom-level link we are about to modify.
            if D::TRANSITION_DEPTH >= 1 {
                let _ = unsafe { &*preds[0] }.next[0].load(h, PFlag::Persisted);
            }
            if D::TRANSITION_DEPTH >= 2 && !succs[0].is_null() {
                let _ = unsafe { &*succs[0] }.next[0].load(h, PFlag::Persisted);
            }

            // Linking the bottom level is the linearization point.
            if unsafe { &*preds[0] }.next[0]
                .compare_exchange(h, pack(succs[0]), pack(node), D::STORE)
                .is_err()
            {
                // Never published: return the slot to the durable free list.
                // SAFETY: `node` was allocated above and never became reachable.
                unsafe { self.arena.free(&h.pmem(), node as *mut u8) };
                continue;
            }

            // Link the index levels (best-effort; failures only cost search speed).
            for level in 1..=top_level {
                loop {
                    let pred = preds[level];
                    let succ = succs[level];
                    let cur_tower = unsafe { &*node }.next[level].load_direct();
                    if is_marked(cur_tower) {
                        // A concurrent remove already started dismantling the tower.
                        break;
                    }
                    // Point the tower at the current successor if it changed.
                    if address::<Node<P>>(cur_tower) != succ
                        && unsafe { &*node }.next[level]
                            .compare_exchange(h, cur_tower, pack(succ), D::INDEX_STORE)
                            .is_err()
                    {
                        break;
                    }
                    if unsafe { &*pred }.next[level]
                        .compare_exchange(h, pack(succ), pack(node), D::INDEX_STORE)
                        .is_ok()
                    {
                        break;
                    }
                    // The window moved: recompute it and retry this level.
                    if self.find(h, key, &mut preds, &mut succs, &guard) && succs[0] != node {
                        // Our node has already been removed; stop linking.
                        h.operation_completion();
                        return true;
                    }
                    if succs[0] != node {
                        h.operation_completion();
                        return true;
                    }
                }
            }
            h.operation_completion();
            return true;
        }
    }

    fn remove_impl(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        if !self.find(h, key, &mut preds, &mut succs, &guard) {
            h.operation_completion();
            return false;
        }
        let node = succs[0];
        let node_ref = unsafe { &*node };

        // Mark the index levels top-down (auxiliary state: INDEX_STORE).
        for level in (1..=node_ref.top_level).rev() {
            loop {
                let w = node_ref.next[level].load(h, D::CRITICAL_LOAD);
                if is_marked(w) {
                    break;
                }
                if node_ref.next[level]
                    .compare_exchange(h, w, with_mark(w), D::INDEX_STORE)
                    .is_ok()
                {
                    break;
                }
            }
        }

        // Marking the bottom level is the linearization point of a successful remove.
        loop {
            let w = node_ref.next[0].load(h, D::CRITICAL_LOAD);
            if is_marked(w) {
                // Another thread won the removal race.
                h.operation_completion();
                return false;
            }
            if D::TRANSITION_DEPTH >= 1 {
                let _ = unsafe { &*preds[0] }.next[0].load(h, PFlag::Persisted);
            }
            if node_ref.next[0]
                .compare_exchange(h, w, with_mark(w), D::STORE)
                .is_ok()
            {
                // Physically unlink (and retire) through find().
                let _ = self.find(h, key, &mut preds, &mut succs, &guard);
                h.operation_completion();
                return true;
            }
        }
    }

    /// Reconstruct the durable set **purely from the crash image and the arena's
    /// root table**: read the head tower's slot from the root table, then walk the
    /// persisted bottom-level chain, reading every key/value out of the image (the
    /// bottom level alone defines membership; upper levels are volatile index
    /// state under the optimised durability methods). An absent root means the
    /// skiplist was not durably constructed: empty set.
    pub fn recover_in_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        let Some(head) = arena.root_in_image(image, roots::SKIPLIST_HEAD) else {
            return RecoveredMap::default();
        };
        let layout = Node::<P>::layout();
        let mut rec = RecoveredMap::default();
        let Some(first) = image.read(head + layout.next0) else {
            rec.truncated = true;
            return rec;
        };
        let mut budget = image.len() + 2;
        let mut cur = unmark(first as usize);
        while cur != 0 {
            if budget == 0 || !arena.contains(cur) {
                rec.truncated = true;
                break;
            }
            budget -= 1;
            let Some(word) = image.read(cur + layout.next0) else {
                rec.truncated = true;
                break;
            };
            let word = word as usize;
            if !is_marked(word) {
                let (Some(key), Some(value)) =
                    (image.read(cur + layout.key), image.read(cur + layout.value))
                else {
                    rec.truncated = true;
                    break;
                };
                rec.pairs.push((key, value));
            }
            cur = unmark(word);
        }
        rec
    }

    /// Image-only recovery through this skiplist's own arena; see
    /// [`recover_in_image`](Self::recover_in_image).
    pub fn recover(&self, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(&self.arena, image)
    }

    fn len_impl(&self) -> usize {
        let mut count = 0;
        let mut cur = address::<Node<P>>(unsafe { &*self.head }.next[0].load_direct());
        while !cur.is_null() {
            let next = unsafe { &*cur }.next[0].load_direct();
            if !is_marked(next) {
                count += 1;
            }
            cur = address::<Node<P>>(next);
        }
        count
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for SkipList<P, D> {
    const NAME: &'static str = "skiplist";

    fn with_capacity(db: &FlitDb<P>, _capacity_hint: usize) -> Self {
        Self::new(db)
    }

    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        self.get_impl(h, key)
    }

    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        self.insert_impl(h, key, value)
    }

    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        self.remove_impl(h, key)
    }

    fn len(&self) -> usize {
        self.len_impl()
    }

    fn db(&self) -> &FlitDb<P> {
        &self.db
    }
}

// No `Drop` impl: towers are plain data in arena slots, reclaimed wholesale when
// the last `Arc<Arena>` goes away.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn ht_db() -> FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
        FlitDb::flit_ht(backend())
    }

    type Sl<D> = SkipList<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_and_basic_ops() {
        let db = ht_db();
        let h = db.handle();
        let s: Sl<Automatic> = SkipList::new(&db);
        assert!(s.is_empty());
        assert_eq!(s.get(&h, 3), None);
        assert!(s.insert(&h, 3, 30));
        assert!(!s.insert(&h, 3, 31));
        assert_eq!(s.get(&h, 3), Some(30));
        assert!(s.remove(&h, 3));
        assert!(!s.remove(&h, 3));
        assert!(s.is_empty());
    }

    #[test]
    fn many_sequential_keys() {
        let db = ht_db();
        let h = db.handle();
        let s: Sl<Automatic> = SkipList::new(&db);
        for k in 0..1000u64 {
            assert!(s.insert(&h, k, k * 3));
        }
        assert_eq!(s.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(s.get(&h, k), Some(k * 3));
        }
        for k in (0..1000u64).step_by(2) {
            assert!(s.remove(&h, k));
        }
        assert_eq!(s.len(), 500);
        for k in 0..1000u64 {
            assert_eq!(s.get(&h, k).is_some(), k % 2 == 1);
        }
    }

    /// Walk the physical bottom level of a skiplist and return the keys in order
    /// (generic helper so the persist-word trait methods resolve without annotations).
    fn bottom_level_keys<P: Policy, D: Durability>(s: &SkipList<P, D>) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = address::<Node<P>>(unsafe { &*s.head }.next[0].load_direct());
        while !cur.is_null() {
            let n = unsafe { &*cur };
            keys.push(n.key);
            cur = address::<Node<P>>(unmark(n.next[0].load_direct()));
        }
        keys
    }

    #[test]
    fn bottom_level_is_sorted() {
        let db = ht_db();
        let h = db.handle();
        let s: Sl<NvTraverse> = SkipList::new(&db);
        for k in [9u64, 2, 7, 4, 1, 8, 3] {
            s.insert(&h, k, k);
        }
        let seen = bottom_level_keys(&s);
        assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {seen:?}"
        );
        assert_eq!(seen, vec![1, 2, 3, 4, 7, 8, 9]);
    }

    #[test]
    fn random_levels_are_bounded_and_varied() {
        let db = ht_db();
        let s: Sl<Automatic> = SkipList::new(&db);
        let mut heights = std::collections::HashSet::new();
        for _ in 0..512 {
            let h = s.random_level();
            assert!(h < MAX_LEVEL);
            heights.insert(h);
        }
        assert!(heights.len() > 2, "tower heights should vary: {heights:?}");
    }

    #[test]
    fn towers_are_inline_single_arena_slots() {
        let db = ht_db();
        let h = db.handle();
        let s: Sl<Automatic> = SkipList::new(&db);
        s.insert(&h, 5, 50);
        let node = address::<Node<FlitPolicy<HashedScheme, SimNvram>>>(
            unsafe { &*s.head }.next[0].load_direct(),
        );
        assert!(s.arena().contains(node as usize));
        assert_eq!(node as usize % flit_pmem::CACHE_LINE_SIZE, 0);
        // The bottom-level word must live inside the same slot as the node.
        let n = unsafe { &*node };
        assert!(n.next[0].addr() - (node as usize) < s.arena().slot_size());
    }

    #[test]
    fn image_only_recovery_matches_the_quiescent_set() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let s: Sl<Automatic> = SkipList::new(&db);
        for k in [5u64, 1, 8, 3] {
            assert!(s.insert(&h, k, k + 100));
        }
        assert!(s.remove(&h, 8));
        let image = sim.tracker().unwrap().crash_image();
        let rec = s.recover(&image);
        assert!(!rec.truncated);
        assert_eq!(rec.sorted_pairs(), vec![(1, 101), (3, 103), (5, 105)]);
        let rec2 = Sl::<Automatic>::recover_in_image(s.arena(), &image);
        assert_eq!(rec2.sorted_pairs(), rec.sorted_pairs());
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let db = FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build());
            let h = db.handle();
            let s: Sl<D> = SkipList::new(&db);
            for k in 0..200u64 {
                assert!(s.insert(&h, k, k + 1));
            }
            for k in 0..200u64 {
                assert_eq!(s.get(&h, k), Some(k + 1));
            }
            for k in (0..200u64).step_by(3) {
                assert!(s.remove(&h, k));
            }
            assert_eq!(s.len(), 200 - 200usize.div_ceil(3));
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_link_and_persist_and_baseline() {
        let db = FlitDb::link_and_persist(backend());
        let h = db.handle();
        let s: SkipList<_, Automatic> = SkipList::new(&db);
        for k in 0..100u64 {
            assert!(s.insert(&h, k, k));
        }
        assert_eq!(s.len(), 100);
        let db = FlitDb::no_persist();
        let h = db.handle();
        let s: SkipList<_, Automatic> = SkipList::new(&db);
        for k in 0..100u64 {
            assert!(s.insert(&h, k, k));
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let db = ht_db();
        let s: Arc<Sl<Automatic>> = Arc::new(SkipList::new(&db));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                let db = &db;
                scope.spawn(move || {
                    let h = db.handle();
                    let base = t * 1000;
                    for k in base..base + 300 {
                        assert!(s.insert(&h, k, k));
                    }
                    for k in (base..base + 300).step_by(2) {
                        assert!(s.remove(&h, k));
                    }
                    for k in base..base + 300 {
                        assert_eq!(s.get(&h, k).is_some(), k % 2 == 1);
                    }
                });
            }
        });
        assert_eq!(s.len(), 4 * 150);
    }

    #[test]
    fn concurrent_contended_stress() {
        let db = ht_db();
        let s: Arc<Sl<Manual>> = Arc::new(SkipList::new(&db));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                let db = &db;
                scope.spawn(move || {
                    let h = db.handle();
                    for i in 0..800u64 {
                        let k = (t * 31 + i * 7) % 32;
                        match i % 3 {
                            0 => {
                                s.insert(&h, k, i);
                            }
                            1 => {
                                s.remove(&h, k);
                            }
                            _ => {
                                s.get(&h, k);
                            }
                        }
                    }
                });
            }
        });
        assert!(s.len() <= 32);
    }
}
