//! Lock-free skiplist (Fraser / Herlihy–Shavit style), made durable through FliT.
//!
//! The skiplist is a tower of sorted linked lists; membership is defined solely by the
//! bottom level, which is why the optimised durability methods treat upper-level link
//! updates as v-instructions ([`Durability::INDEX_STORE`]). Removal marks the tower
//! from the top down and linearizes at the bottom-level mark; physical unlinking is
//! done by `find`, exactly as in the Harris list.
//!
//! This is the structure where the paper observes the layout cost of the adjacent
//! counter placement (§6.6): a tower node stores one next-pointer per level, so
//! doubling every word can overflow a cache line. That effect is reproduced
//! structurally here (`FlitAtomic` with `AdjacentScheme` is 16 bytes instead of 8),
//! even though the microarchitectural penalty is not modelled by the simulated
//! backend.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use flit::{PFlag, PersistWord, Policy};
use flit_ebr::{Collector, Guard};
use flit_pmem::CrashImage;

use crate::durability::Durability;
use crate::map::ConcurrentMap;
use crate::marked::{address, is_marked, pack, unmark, with_mark};
use crate::recovery::RecoveredMap;

/// Maximum tower height. 2^20 expected elements per probability 1/2 level is ample for
/// the evaluation sizes.
pub const MAX_LEVEL: usize = 20;

struct Node<P: Policy> {
    key: u64,
    value: u64,
    top_level: usize,
    next: Vec<P::Word<usize>>,
}

impl<P: Policy> Node<P> {
    fn new(key: u64, value: u64, top_level: usize, succs: &[usize]) -> *mut Self {
        let next = (0..=top_level)
            .map(|lvl| P::Word::<usize>::new(succs.get(lvl).copied().unwrap_or(0)))
            .collect();
        Box::into_raw(Box::new(Node {
            key,
            value,
            top_level,
            next,
        }))
    }
}

/// Lock-free skiplist over persistence policy `P` and durability method `D`.
pub struct SkipList<P: Policy, D: Durability> {
    head: *mut Node<P>,
    policy: P,
    collector: Collector,
    /// Cheap xorshift state for tower-height selection (splittable per call site).
    rng: AtomicU64,
    _durability: PhantomData<D>,
}

// SAFETY: standard lock-free structure; see `HarrisList`.
unsafe impl<P: Policy, D: Durability> Send for SkipList<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for SkipList<P, D> {}

impl<P: Policy, D: Durability> SkipList<P, D> {
    /// Create an empty skiplist.
    pub fn new(policy: P) -> Self {
        let head = Node::<P>::new(0, 0, MAX_LEVEL - 1, &[]);
        let list = Self {
            head,
            policy,
            collector: Collector::new(),
            rng: AtomicU64::new(0x9E3779B97F4A7C15),
            _durability: PhantomData,
        };
        // Record + persist the head tower (including its heap-allocated links) so a
        // crash right after construction recovers to an empty list.
        list.persist_new_node(head, PFlag::Persisted);
        list
    }

    /// The EBR collector used by this skiplist (crash tests pin it for the duration
    /// of a run so recovery may dereference retired nodes).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Geometric tower height in `0..MAX_LEVEL` (p = 1/2).
    fn random_level(&self) -> usize {
        let mut x = self.rng.fetch_add(0x2545F4914F6CDD1D, Ordering::Relaxed);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545F4914F6CDD1D);
        (r.trailing_ones() as usize).min(MAX_LEVEL - 1)
    }

    /// Persist a freshly created node, including its heap-allocated tower. The tower
    /// words are first re-issued as private volatile stores so a tracking backend
    /// records them (recovery walks the persisted bottom-level links).
    fn persist_new_node(&self, node: *mut Node<P>, flag: PFlag) {
        let node_ref = unsafe { &*node };
        for word in &node_ref.next {
            word.store_private(&self.policy, word.load_direct(), PFlag::Volatile);
        }
        self.policy.persist_object(node_ref, flag);
        self.policy.persist_range(
            node_ref.next.as_ptr() as *const u8,
            node_ref.next.len() * std::mem::size_of::<P::Word<usize>>(),
            flag,
        );
    }

    /// Find the insertion window at every level: `preds[l]` is the last node with key
    /// < `key` at level `l`, `succs[l]` the following node (null = end of level).
    /// Physically unlinks marked nodes it passes. Returns `true` when an unmarked node
    /// with the exact key is present at the bottom level.
    fn find(
        &self,
        key: u64,
        preds: &mut [*mut Node<P>; MAX_LEVEL],
        succs: &mut [*mut Node<P>; MAX_LEVEL],
        guard: &Guard<'_>,
    ) -> bool {
        'retry: loop {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = address::<Node<P>>(
                    unsafe { &*pred }.next[level].load(&self.policy, D::TRAVERSAL_LOAD),
                );
                loop {
                    if curr.is_null() {
                        break;
                    }
                    let mut succ_word =
                        unsafe { &*curr }.next[level].load(&self.policy, D::TRAVERSAL_LOAD);
                    while is_marked(succ_word) {
                        // `curr` is logically deleted at this level: unlink it.
                        if unsafe { &*pred }.next[level]
                            .compare_exchange(
                                &self.policy,
                                pack(curr),
                                unmark(succ_word),
                                if level == 0 { D::STORE } else { D::INDEX_STORE },
                            )
                            .is_err()
                        {
                            continue 'retry;
                        }
                        if level == 0 {
                            // The bottom-level unlink is what makes the node
                            // unreachable; only then may it be retired.
                            // SAFETY: `curr` was just unlinked from level 0 by this
                            // thread's successful CAS.
                            unsafe { guard.defer_destroy(curr) };
                        }
                        curr = address::<Node<P>>(unmark(succ_word));
                        if curr.is_null() {
                            break;
                        }
                        succ_word =
                            unsafe { &*curr }.next[level].load(&self.policy, D::TRAVERSAL_LOAD);
                    }
                    if curr.is_null() {
                        break;
                    }
                    if unsafe { &*curr }.key < key {
                        pred = curr;
                        curr = address::<Node<P>>(unmark(succ_word));
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
            }
            return !succs[0].is_null() && unsafe { &*succs[0] }.key == key;
        }
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        let guard = self.collector.pin();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let found = self.find(key, &mut preds, &mut succs, &guard);
        let result = if found {
            let node = unsafe { &*succs[0] };
            if D::TRANSITION_DEPTH > 0 {
                let _ = node.next[0].load(&self.policy, PFlag::Persisted);
            }
            Some(node.value)
        } else {
            None
        };
        self.policy.operation_completion();
        result
    }

    fn insert_impl(&self, key: u64, value: u64) -> bool {
        assert!(key < u64::MAX);
        let guard = self.collector.pin();
        let top_level = self.random_level();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        loop {
            if self.find(key, &mut preds, &mut succs, &guard) {
                self.policy.operation_completion();
                return false;
            }
            // Build the tower pointing at the successors observed by find().
            let succ_words: Vec<usize> = (0..=top_level).map(|l| pack(succs[l])).collect();
            let node = Node::<P>::new(key, value, top_level, &succ_words);
            self.persist_new_node(node, D::STORE);

            // Transition: persist the bottom-level link we are about to modify.
            if D::TRANSITION_DEPTH >= 1 {
                let _ = unsafe { &*preds[0] }.next[0].load(&self.policy, PFlag::Persisted);
            }
            if D::TRANSITION_DEPTH >= 2 && !succs[0].is_null() {
                let _ = unsafe { &*succs[0] }.next[0].load(&self.policy, PFlag::Persisted);
            }

            // Linking the bottom level is the linearization point.
            if unsafe { &*preds[0] }.next[0]
                .compare_exchange(&self.policy, pack(succs[0]), pack(node), D::STORE)
                .is_err()
            {
                // SAFETY: never published.
                unsafe { drop(Box::from_raw(node)) };
                continue;
            }

            // Link the index levels (best-effort; failures only cost search speed).
            for level in 1..=top_level {
                loop {
                    let pred = preds[level];
                    let succ = succs[level];
                    let cur_tower = unsafe { &*node }.next[level].load_direct();
                    if is_marked(cur_tower) {
                        // A concurrent remove already started dismantling the tower.
                        break;
                    }
                    // Point the tower at the current successor if it changed.
                    if address::<Node<P>>(cur_tower) != succ
                        && unsafe { &*node }.next[level]
                            .compare_exchange(&self.policy, cur_tower, pack(succ), D::INDEX_STORE)
                            .is_err()
                    {
                        break;
                    }
                    if unsafe { &*pred }.next[level]
                        .compare_exchange(&self.policy, pack(succ), pack(node), D::INDEX_STORE)
                        .is_ok()
                    {
                        break;
                    }
                    // The window moved: recompute it and retry this level.
                    if self.find(key, &mut preds, &mut succs, &guard) && succs[0] != node {
                        // Our node has already been removed; stop linking.
                        self.policy.operation_completion();
                        return true;
                    }
                    if succs[0] != node {
                        self.policy.operation_completion();
                        return true;
                    }
                }
            }
            self.policy.operation_completion();
            return true;
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        let guard = self.collector.pin();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        if !self.find(key, &mut preds, &mut succs, &guard) {
            self.policy.operation_completion();
            return false;
        }
        let node = succs[0];
        let node_ref = unsafe { &*node };

        // Mark the index levels top-down (auxiliary state: INDEX_STORE).
        for level in (1..=node_ref.top_level).rev() {
            loop {
                let w = node_ref.next[level].load(&self.policy, D::CRITICAL_LOAD);
                if is_marked(w) {
                    break;
                }
                if node_ref.next[level]
                    .compare_exchange(&self.policy, w, with_mark(w), D::INDEX_STORE)
                    .is_ok()
                {
                    break;
                }
            }
        }

        // Marking the bottom level is the linearization point of a successful remove.
        loop {
            let w = node_ref.next[0].load(&self.policy, D::CRITICAL_LOAD);
            if is_marked(w) {
                // Another thread won the removal race.
                self.policy.operation_completion();
                return false;
            }
            if D::TRANSITION_DEPTH >= 1 {
                let _ = unsafe { &*preds[0] }.next[0].load(&self.policy, PFlag::Persisted);
            }
            if node_ref.next[0]
                .compare_exchange(&self.policy, w, with_mark(w), D::STORE)
                .is_ok()
            {
                // Physically unlink (and retire) through find().
                let _ = self.find(key, &mut preds, &mut succs, &guard);
                self.policy.operation_completion();
                return true;
            }
        }
    }

    /// Reconstruct the durable set from an adversarial crash image: walk the
    /// persisted bottom-level `next` chain from the head sentinel (the bottom level
    /// alone defines membership; the upper levels are volatile index state under the
    /// optimised durability methods). A node whose own persisted bottom link carries
    /// the deletion mark is skipped; a reachable node whose bottom link is absent
    /// from the image flags [`truncated`](RecoveredMap::truncated).
    ///
    /// # Safety
    /// Every node pointer stored in the image's bottom-level words must still be a
    /// live allocation of this skiplist: the caller must run in quiescence and have
    /// pinned [`Self::collector`] since before the first operation.
    pub unsafe fn recover(&self, image: &CrashImage) -> RecoveredMap {
        let mut rec = RecoveredMap::default();
        let head_ref = unsafe { &*self.head };
        let Some(first) = image.read(head_ref.next[0].addr()) else {
            rec.truncated = true;
            return rec;
        };
        let mut cur = address::<Node<P>>(first as usize);
        while !cur.is_null() {
            let cur_ref = unsafe { &*cur };
            let Some(word) = image.read(cur_ref.next[0].addr()) else {
                rec.truncated = true;
                break;
            };
            let word = word as usize;
            if !is_marked(word) {
                rec.pairs.push((cur_ref.key, cur_ref.value));
            }
            cur = address(word);
        }
        rec
    }

    fn len_impl(&self) -> usize {
        let mut count = 0;
        let mut cur = address::<Node<P>>(unsafe { &*self.head }.next[0].load_direct());
        while !cur.is_null() {
            let next = unsafe { &*cur }.next[0].load_direct();
            if !is_marked(next) {
                count += 1;
            }
            cur = address::<Node<P>>(next);
        }
        count
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for SkipList<P, D> {
    const NAME: &'static str = "skiplist";

    fn with_capacity(policy: P, _capacity_hint: usize) -> Self {
        Self::new(policy)
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.get_impl(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        self.insert_impl(key, value)
    }

    fn remove(&self, key: u64) -> bool {
        self.remove_impl(key)
    }

    fn len(&self) -> usize {
        self.len_impl()
    }

    fn policy(&self) -> &P {
        &self.policy
    }
}

impl<P: Policy, D: Durability> Drop for SkipList<P, D> {
    fn drop(&mut self) {
        // Free every node still linked at the bottom level, then the head sentinel.
        let mut cur = address::<Node<P>>(unsafe { &*self.head }.next[0].load_direct());
        while !cur.is_null() {
            let next = address::<Node<P>>(unmark(unsafe { &*cur }.next[0].load_direct()));
            // SAFETY: single-threaded teardown.
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
        // SAFETY: head was allocated in `new` and never retired.
        unsafe { drop(Box::from_raw(self.head)) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::presets;
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};
    use std::sync::Arc;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    type Sl<D> = SkipList<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_and_basic_ops() {
        let s: Sl<Automatic> = SkipList::new(presets::flit_ht(backend()));
        assert!(s.is_empty());
        assert_eq!(s.get(3), None);
        assert!(s.insert(3, 30));
        assert!(!s.insert(3, 31));
        assert_eq!(s.get(3), Some(30));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn many_sequential_keys() {
        let s: Sl<Automatic> = SkipList::new(presets::flit_ht(backend()));
        for k in 0..1000u64 {
            assert!(s.insert(k, k * 3));
        }
        assert_eq!(s.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(s.get(k), Some(k * 3));
        }
        for k in (0..1000u64).step_by(2) {
            assert!(s.remove(k));
        }
        assert_eq!(s.len(), 500);
        for k in 0..1000u64 {
            assert_eq!(s.get(k).is_some(), k % 2 == 1);
        }
    }

    /// Walk the physical bottom level of a skiplist and return the keys in order
    /// (generic helper so the persist-word trait methods resolve without annotations).
    fn bottom_level_keys<P: Policy, D: Durability>(s: &SkipList<P, D>) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = address::<Node<P>>(unsafe { &*s.head }.next[0].load_direct());
        while !cur.is_null() {
            let n = unsafe { &*cur };
            keys.push(n.key);
            cur = address::<Node<P>>(unmark(n.next[0].load_direct()));
        }
        keys
    }

    #[test]
    fn bottom_level_is_sorted() {
        let s: Sl<NvTraverse> = SkipList::new(presets::flit_ht(backend()));
        for k in [9u64, 2, 7, 4, 1, 8, 3] {
            s.insert(k, k);
        }
        let seen = bottom_level_keys(&s);
        assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {seen:?}"
        );
        assert_eq!(seen, vec![1, 2, 3, 4, 7, 8, 9]);
    }

    #[test]
    fn random_levels_are_bounded_and_varied() {
        let s: Sl<Automatic> = SkipList::new(presets::flit_ht(backend()));
        let mut heights = std::collections::HashSet::new();
        for _ in 0..512 {
            let h = s.random_level();
            assert!(h < MAX_LEVEL);
            heights.insert(h);
        }
        assert!(heights.len() > 2, "tower heights should vary: {heights:?}");
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let s: Sl<D> = SkipList::new(presets::flit_ht(backend()));
            for k in 0..200u64 {
                assert!(s.insert(k, k + 1));
            }
            for k in 0..200u64 {
                assert_eq!(s.get(k), Some(k + 1));
            }
            for k in (0..200u64).step_by(3) {
                assert!(s.remove(k));
            }
            assert_eq!(s.len(), 200 - 200usize.div_ceil(3));
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_link_and_persist_and_baseline() {
        let s: SkipList<_, Automatic> = SkipList::new(presets::link_and_persist(backend()));
        for k in 0..100u64 {
            assert!(s.insert(k, k));
        }
        assert_eq!(s.len(), 100);
        let s: SkipList<_, Automatic> = SkipList::new(presets::no_persist());
        for k in 0..100u64 {
            assert!(s.insert(k, k));
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let s: Arc<Sl<Automatic>> = Arc::new(SkipList::new(presets::flit_ht(backend())));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let base = t * 1000;
                    for k in base..base + 300 {
                        assert!(s.insert(k, k));
                    }
                    for k in (base..base + 300).step_by(2) {
                        assert!(s.remove(k));
                    }
                    for k in base..base + 300 {
                        assert_eq!(s.get(k).is_some(), k % 2 == 1);
                    }
                });
            }
        });
        assert_eq!(s.len(), 4 * 150);
    }

    #[test]
    fn concurrent_contended_stress() {
        let s: Arc<Sl<Manual>> = Arc::new(SkipList::new(presets::flit_ht(backend())));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..800u64 {
                        let k = (t * 31 + i * 7) % 32;
                        match i % 3 {
                            0 => {
                                s.insert(k, i);
                            }
                            1 => {
                                s.remove(k);
                            }
                            _ => {
                                s.get(k);
                            }
                        }
                    }
                });
            }
        });
        assert!(s.len() <= 32);
    }
}
