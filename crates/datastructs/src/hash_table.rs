//! Lock-free hash table: a fixed array of buckets, each a Harris linked list —
//! exactly the construction benchmarked in the paper ("a hash table which uses
//! Harris's linked list to implement each bucket").
//!
//! The bucket array is sized once at construction (there is no resizing, matching the
//! evaluated implementation); every bucket shares the owning [`FlitDb`]'s policy and
//! collector, so all statistics, counter tables and reclamation are global to the
//! structure, and every operation takes the calling thread's
//! [`flit::FlitHandle`].
//!
//! ## Arena layout and recovery
//!
//! All buckets allocate their nodes from **one shared arena**, and the table
//! publishes a persisted **bucket directory** block in that arena:
//! `[bucket_count, head-slot-offset+1 of bucket 0, …]`. The directory is persisted
//! after every bucket's sentinels (persist-before-publish at construction scale)
//! and registered in the arena's root table under
//! [`roots::HASH_DIRECTORY`], so
//! [`HashTable::recover_in_image`] rebuilds the durable map purely from a
//! [`CrashImage`]: root table → directory → one image-only chain walk per bucket.

use std::sync::Arc;

use flit::{FlitDb, FlitHandle, PFlag, Policy};
use flit_alloc::{roots, Arena, ArenaConfig};
use flit_pmem::{CrashImage, PmemBackend, WORD_SIZE};

use crate::durability::Durability;
use crate::harris_list::{HarrisList, Node};
use crate::map::ConcurrentMap;
use crate::recovery::RecoveredMap;

/// Fixed-size lock-free hash table with Harris-list buckets.
pub struct HashTable<P: Policy, D: Durability> {
    buckets: Vec<HarrisList<P, D>>,
    arena: Arc<Arena>,
    db: FlitDb<P>,
    mask: u64,
}

impl<P: Policy, D: Durability> HashTable<P, D> {
    /// Create a table in `db` with roughly one bucket per expected key
    /// (`capacity_hint`), rounded up to a power of two and at least 64 buckets.
    pub fn new(db: &FlitDb<P>, capacity_hint: usize) -> Self {
        Self::with_config(db, capacity_hint, db.arena_defaults())
    }

    /// [`HashTable::new`] with an explicit node-arena [`ArenaConfig`], so a
    /// shard-sized table can grow its arena in shard-sized steps. The requested
    /// chunk slot-count is raised when needed: a chunk must fit the bucket
    /// directory contiguously.
    pub fn with_config(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig) -> Self {
        let buckets_len = capacity_hint.next_power_of_two().max(64);
        // One shared arena for every bucket's nodes plus the directory block. The
        // chunk size must fit the directory contiguously.
        let dir_bytes = (buckets_len + 1) * WORD_SIZE;
        let node_slot = Arena::slot_size_for::<Node<P>>();
        let chunk_slots = config
            .slots_per_chunk
            .max(2 * dir_bytes.div_ceil(node_slot));
        let arena = db.new_arena(config.sized(node_slot).chunked(chunk_slots));
        let buckets: Vec<HarrisList<P, D>> = (0..buckets_len)
            .map(|_| HarrisList::with_arena(db, Arc::clone(&arena), None))
            .collect();

        // Publish the directory: bucket count, then each bucket's head-slot offset
        // (+1, so 0 stays "absent"). Every word is recorded with the backend and
        // the whole block is flushed + fenced *before* the root that makes the
        // table recoverable is registered. Runs under a temporary handle, like
        // the per-bucket constructions above.
        let h = db.handle();
        let pm = h.pmem();
        let dir = arena.alloc_block(&pm, dir_bytes) as *mut u64;
        let write_word = |i: usize, val: u64| {
            // SAFETY: in-bounds write inside the freshly allocated, exclusively
            // owned directory block.
            unsafe { dir.add(i).write(val) };
            pm.record_store(unsafe { dir.add(i) } as *const u8, val);
        };
        write_word(0, buckets_len as u64);
        for (i, bucket) in buckets.iter().enumerate() {
            let offset = arena
                .offset_of_addr(bucket.head_addr())
                .expect("bucket heads live in the shared arena");
            write_word(i + 1, (offset + 1) as u64);
        }
        h.persist_range(dir as *const u8, dir_bytes, PFlag::Persisted);
        arena.register_root(&pm, roots::HASH_DIRECTORY, dir as usize);
        drop(h);

        Self {
            buckets,
            arena,
            db: db.clone(),
            mask: (buckets_len - 1) as u64,
        }
    }

    /// Number of buckets in the table.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The shared arena every bucket allocates from.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// Reconstruct the durable map **purely from the crash image and the arena's
    /// root table**: read the directory block (bucket count + per-bucket head
    /// offsets) out of the image, then run the image-only chain walk per bucket.
    /// An absent root means the table was not durably constructed: empty map.
    pub fn recover_in_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        let Some(dir) = arena.root_in_image(image, roots::HASH_DIRECTORY) else {
            return RecoveredMap::default();
        };
        let mut rec = RecoveredMap::default();
        let Some(len) = image.read(dir) else {
            rec.truncated = true;
            return rec;
        };
        for i in 0..len as usize {
            let Some(head_off) = image.read(dir + (i + 1) * WORD_SIZE) else {
                rec.truncated = true;
                return rec;
            };
            if head_off == 0 {
                rec.truncated = true;
                return rec;
            }
            let head = arena.addr_of_offset(head_off as usize - 1);
            rec.absorb(HarrisList::<P, D>::walk_chain_in_image(arena, image, head));
        }
        rec
    }

    /// Image-only recovery through this table's own arena; see
    /// [`recover_in_image`](Self::recover_in_image).
    pub fn recover(&self, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(&self.arena, image)
    }

    #[inline]
    fn bucket(&self, key: u64) -> &HarrisList<P, D> {
        // Fibonacci hashing spreads consecutive keys (the benchmark uses dense key
        // ranges) across buckets.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        &self.buckets[(h & self.mask) as usize]
    }
}

impl<P: Policy, D: Durability> ConcurrentMap<P> for HashTable<P, D> {
    const NAME: &'static str = "hashtable";

    fn with_capacity(db: &FlitDb<P>, capacity_hint: usize) -> Self {
        Self::new(db, capacity_hint)
    }

    fn with_capacity_cfg(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig) -> Self {
        Self::with_config(db, capacity_hint, config)
    }

    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        self.bucket(key).get(h, key)
    }

    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        self.bucket(key).insert(h, key, value)
    }

    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        self.bucket(key).remove(h, key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    fn db(&self) -> &FlitDb<P> {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn ht_db() -> FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
        FlitDb::flit_ht(backend())
    }

    type Ht<D> = HashTable<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn bucket_count_is_a_power_of_two_with_a_floor() {
        let db = ht_db();
        let t: Ht<Automatic> = HashTable::new(&db, 1000);
        assert_eq!(t.bucket_count(), 1024);
        let t: Ht<Automatic> = HashTable::new(&db, 1);
        assert_eq!(t.bucket_count(), 64);
    }

    #[test]
    fn basic_map_semantics() {
        let db = ht_db();
        let h = db.handle();
        let t: Ht<Automatic> = HashTable::new(&db, 256);
        assert!(t.is_empty());
        assert!(t.insert(&h, 1, 10));
        assert!(t.insert(&h, 2, 20));
        assert!(!t.insert(&h, 1, 99));
        assert_eq!(t.get(&h, 1), Some(10));
        assert_eq!(t.get(&h, 3), None);
        assert!(t.remove(&h, 1));
        assert!(!t.remove(&h, 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_keys_spread_over_buckets() {
        let db = ht_db();
        let h = db.handle();
        let t: Ht<NvTraverse> = HashTable::new(&db, 128);
        for k in 0..2000u64 {
            assert!(t.insert(&h, k, k * 2));
        }
        assert_eq!(t.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(t.get(&h, k), Some(k * 2));
        }
        for k in (0..2000u64).step_by(3) {
            assert!(t.remove(&h, k));
        }
        assert_eq!(t.len(), 2000 - 2000u64.div_ceil(3) as usize);
    }

    #[test]
    fn buckets_share_one_arena_and_the_directory_is_recoverable() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let t: Ht<Automatic> = HashTable::new(&db, 64);
        for k in 0..40u64 {
            assert!(t.insert(&h, k, k + 7));
        }
        assert!(t.remove(&h, 3));
        let image = sim.tracker().unwrap().crash_image();
        let rec = t.recover(&image);
        assert!(!rec.truncated);
        let expected: Vec<(u64, u64)> =
            (0..40u64).filter(|k| *k != 3).map(|k| (k, k + 7)).collect();
        assert_eq!(rec.sorted_pairs(), expected);
        // The associated form needs only the arena + the image.
        let rec2 = Ht::<Automatic>::recover_in_image(t.arena(), &image);
        assert_eq!(rec2.sorted_pairs(), expected);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let db = ht_db();
        let t: Arc<Ht<Manual>> = Arc::new(HashTable::new(&db, 512));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    let base = tid * 1000;
                    for k in base..base + 500 {
                        assert!(t.insert(&h, k, k));
                    }
                    for k in base..base + 500 {
                        assert_eq!(t.get(&h, k), Some(k));
                    }
                    for k in (base..base + 500).step_by(2) {
                        assert!(t.remove(&h, k));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 250);
    }

    #[test]
    fn policies_share_statistics_across_buckets() {
        let sim = backend();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let t: Ht<Automatic> = HashTable::new(&db, 64);
        for k in 0..100u64 {
            t.insert(&h, k, k);
        }
        // Every insert is a p-store somewhere in some bucket; the shared backend must
        // have seen them all.
        assert!(sim.stats().pwbs() >= 100);
    }
}
