//! Lock-free hash table: a fixed array of buckets, each a Harris linked list —
//! exactly the construction benchmarked in the paper ("a hash table which uses
//! Harris's linked list to implement each bucket").
//!
//! The bucket array is sized once at construction (there is no resizing, matching the
//! evaluated implementation); every bucket shares the same persistence policy, so all
//! statistics and counter tables are global to the structure.

use flit::Policy;
use flit_ebr::Collector;
use flit_pmem::CrashImage;

use crate::durability::Durability;
use crate::harris_list::HarrisList;
use crate::map::ConcurrentMap;
use crate::recovery::RecoveredMap;

/// Fixed-size lock-free hash table with Harris-list buckets.
pub struct HashTable<P: Policy + Clone, D: Durability> {
    buckets: Vec<HarrisList<P, D>>,
    policy: P,
    mask: u64,
}

impl<P: Policy + Clone, D: Durability> HashTable<P, D> {
    /// Create a table with roughly one bucket per expected key (`capacity_hint`),
    /// rounded up to a power of two and at least 64 buckets.
    pub fn new(policy: P, capacity_hint: usize) -> Self {
        let buckets_len = capacity_hint.next_power_of_two().max(64);
        let buckets = (0..buckets_len)
            .map(|_| HarrisList::new(policy.clone()))
            .collect();
        Self {
            buckets,
            policy,
            mask: (buckets_len - 1) as u64,
        }
    }

    /// Number of buckets in the table.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The EBR collector of every bucket list (each Harris list retires through its
    /// own). Crash tests pin all of them for the duration of a run.
    pub fn bucket_collectors(&self) -> impl Iterator<Item = &Collector> {
        self.buckets.iter().map(|b| b.collector())
    }

    /// Reconstruct the durable map from an adversarial crash image: the union of
    /// every bucket's [`HarrisList::recover`].
    ///
    /// # Safety
    /// Same contract as [`HarrisList::recover`], for every bucket: quiescence, and
    /// all [`bucket_collectors`](Self::bucket_collectors) pinned since before the
    /// first operation.
    pub unsafe fn recover(&self, image: &CrashImage) -> RecoveredMap {
        let mut rec = RecoveredMap::default();
        for bucket in &self.buckets {
            // SAFETY: forwarded contract.
            rec.absorb(unsafe { bucket.recover(image) });
        }
        rec
    }

    #[inline]
    fn bucket(&self, key: u64) -> &HarrisList<P, D> {
        // Fibonacci hashing spreads consecutive keys (the benchmark uses dense key
        // ranges) across buckets.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        &self.buckets[(h & self.mask) as usize]
    }
}

impl<P: Policy + Clone, D: Durability> ConcurrentMap<P> for HashTable<P, D> {
    const NAME: &'static str = "hashtable";

    fn with_capacity(policy: P, capacity_hint: usize) -> Self {
        Self::new(policy, capacity_hint)
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.bucket(key).get(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        self.bucket(key).insert(key, value)
    }

    fn remove(&self, key: u64) -> bool {
        self.bucket(key).remove(key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{Automatic, Manual, NvTraverse};
    use flit::presets;
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};
    use std::sync::Arc;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    type Ht<D> = HashTable<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn bucket_count_is_a_power_of_two_with_a_floor() {
        let t: Ht<Automatic> = HashTable::new(presets::flit_ht(backend()), 1000);
        assert_eq!(t.bucket_count(), 1024);
        let t: Ht<Automatic> = HashTable::new(presets::flit_ht(backend()), 1);
        assert_eq!(t.bucket_count(), 64);
    }

    #[test]
    fn basic_map_semantics() {
        let t: Ht<Automatic> = HashTable::new(presets::flit_ht(backend()), 256);
        assert!(t.is_empty());
        assert!(t.insert(1, 10));
        assert!(t.insert(2, 20));
        assert!(!t.insert(1, 99));
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(3), None);
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_keys_spread_over_buckets() {
        let t: Ht<NvTraverse> = HashTable::new(presets::flit_ht(backend()), 128);
        for k in 0..2000u64 {
            assert!(t.insert(k, k * 2));
        }
        assert_eq!(t.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(t.get(k), Some(k * 2));
        }
        for k in (0..2000u64).step_by(3) {
            assert!(t.remove(k));
        }
        assert_eq!(t.len(), 2000 - 2000u64.div_ceil(3) as usize);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t: Arc<Ht<Manual>> = Arc::new(HashTable::new(presets::flit_ht(backend()), 512));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let base = tid * 1000;
                    for k in base..base + 500 {
                        assert!(t.insert(k, k));
                    }
                    for k in base..base + 500 {
                        assert_eq!(t.get(k), Some(k));
                    }
                    for k in (base..base + 500).step_by(2) {
                        assert!(t.remove(k));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 250);
    }

    #[test]
    fn policies_share_statistics_across_buckets() {
        let sim = backend();
        let t: Ht<Automatic> = HashTable::new(presets::flit_ht(sim.clone()), 64);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        // Every insert is a p-store somewhere in some bucket; the shared backend must
        // have seen them all.
        assert!(sim.stats().pwbs() >= 100);
    }
}
