//! Persistence-instruction statistics.
//!
//! Figure 9 of the paper reports the *number of `pwb` instructions per operation* for
//! each FliT variant; these counters are how the reproduction measures the same
//! quantity. Counters are global per backend instance and use relaxed atomics so the
//! probe effect on the benchmarked code is negligible.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Monotonic counters for every persistence instruction issued through a backend.
///
/// Each counter lives on its own cache line so that threads hammering `pwbs` do not
/// false-share with threads hammering `pfences`.
#[derive(Debug, Default)]
pub struct PmemStats {
    pwbs: CachePadded<AtomicU64>,
    pfences: CachePadded<AtomicU64>,
    /// `pwb`s that the FliT read path executed because the location was tagged
    /// (i.e. read-side flushes that the plain transformation would always pay).
    read_side_pwbs: CachePadded<AtomicU64>,
    /// `pfence`s requested through `pfence_if_dirty` but skipped because the calling
    /// thread's persist epoch was clean (the fence would have persisted nothing).
    elided_pfences: CachePadded<AtomicU64>,
    /// Read-side `pwb`s skipped because the word was already flushed with the same
    /// observed value in the calling thread's current persist epoch.
    elided_pwbs: CachePadded<AtomicU64>,
}

impl PmemStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `pwb`.
    #[inline]
    pub fn record_pwb(&self) {
        self.pwbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `pfence`.
    #[inline]
    pub fn record_pfence(&self) {
        self.pfences.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one read-side (`p-load`-triggered) `pwb`.
    #[inline]
    pub fn record_read_side_pwb(&self) {
        self.read_side_pwbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fence skipped by persist-epoch elision.
    #[inline]
    pub fn record_elided_pfence(&self) {
        self.elided_pfences.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duplicate read-side flush skipped by persist-epoch elision.
    #[inline]
    pub fn record_elided_pwb(&self) {
        self.elided_pwbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Total `pwb`s so far.
    #[inline]
    pub fn pwbs(&self) -> u64 {
        self.pwbs.load(Ordering::Relaxed)
    }

    /// Total `pfence`s so far.
    #[inline]
    pub fn pfences(&self) -> u64 {
        self.pfences.load(Ordering::Relaxed)
    }

    /// Total read-side `pwb`s so far.
    #[inline]
    pub fn read_side_pwbs(&self) -> u64 {
        self.read_side_pwbs.load(Ordering::Relaxed)
    }

    /// Total fences skipped by persist-epoch elision so far.
    #[inline]
    pub fn elided_pfences(&self) -> u64 {
        self.elided_pfences.load(Ordering::Relaxed)
    }

    /// Total duplicate read-side flushes skipped by persist-epoch elision so far.
    #[inline]
    pub fn elided_pwbs(&self) -> u64 {
        self.elided_pwbs.load(Ordering::Relaxed)
    }

    /// Capture a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pwbs: self.pwbs(),
            pfences: self.pfences(),
            read_side_pwbs: self.read_side_pwbs(),
            elided_pfences: self.elided_pfences(),
            elided_pwbs: self.elided_pwbs(),
        }
    }

    /// Reset all counters to zero. Intended for use between benchmark phases
    /// (e.g. after pre-filling a data structure, before the measured interval).
    pub fn reset(&self) {
        self.pwbs.store(0, Ordering::Relaxed);
        self.pfences.store(0, Ordering::Relaxed);
        self.read_side_pwbs.store(0, Ordering::Relaxed);
        self.elided_pfences.store(0, Ordering::Relaxed);
        self.elided_pwbs.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`PmemStats`], supporting subtraction to form deltas over a
/// measured interval.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total `pwb` instructions.
    pub pwbs: u64,
    /// Total `pfence` instructions.
    pub pfences: u64,
    /// `pwb`s triggered by tagged p-loads.
    pub read_side_pwbs: u64,
    /// Fences skipped by persist-epoch elision.
    pub elided_pfences: u64,
    /// Duplicate read-side flushes skipped by persist-epoch elision.
    pub elided_pwbs: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pwbs: self.pwbs.saturating_sub(earlier.pwbs),
            pfences: self.pfences.saturating_sub(earlier.pfences),
            read_side_pwbs: self.read_side_pwbs.saturating_sub(earlier.read_side_pwbs),
            elided_pfences: self.elided_pfences.saturating_sub(earlier.elided_pfences),
            elided_pwbs: self.elided_pwbs.saturating_sub(earlier.elided_pwbs),
        }
    }

    /// `pwb`s per operation given an operation count (0 ops yields 0.0).
    pub fn pwbs_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.pwbs as f64 / ops as f64
        }
    }

    /// `pfence`s per operation given an operation count (0 ops yields 0.0).
    pub fn pfences_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.pfences as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = PmemStats::new();
        for _ in 0..5 {
            s.record_pwb();
        }
        for _ in 0..3 {
            s.record_pfence();
        }
        s.record_read_side_pwb();
        assert_eq!(s.pwbs(), 5);
        assert_eq!(s.pfences(), 3);
        assert_eq!(s.read_side_pwbs(), 1);
    }

    #[test]
    fn snapshot_and_delta() {
        let s = PmemStats::new();
        s.record_pwb();
        s.record_pwb();
        let a = s.snapshot();
        s.record_pwb();
        s.record_pfence();
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.pwbs, 1);
        assert_eq!(d.pfences, 1);
        assert_eq!(d.read_side_pwbs, 0);
    }

    #[test]
    fn per_op_rates() {
        let snap = StatsSnapshot {
            pwbs: 100,
            pfences: 50,
            read_side_pwbs: 10,
            ..Default::default()
        };
        assert!((snap.pwbs_per_op(50) - 2.0).abs() < 1e-12);
        assert!((snap.pfences_per_op(50) - 1.0).abs() < 1e-12);
        assert_eq!(snap.pwbs_per_op(0), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = PmemStats::new();
        s.record_pwb();
        s.record_pfence();
        s.record_read_side_pwb();
        s.record_elided_pfence();
        s.record_elided_pwb();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn elided_counters_accumulate_and_delta() {
        let s = PmemStats::new();
        s.record_elided_pfence();
        s.record_elided_pfence();
        s.record_elided_pwb();
        let a = s.snapshot();
        assert_eq!(a.elided_pfences, 2);
        assert_eq!(a.elided_pwbs, 1);
        s.record_elided_pfence();
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.elided_pfences, 1);
        assert_eq!(d.elided_pwbs, 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let s = Arc::new(PmemStats::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_pwb();
                        s.record_pfence();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.pwbs(), 4000);
        assert_eq!(s.pfences(), 4000);
    }
}
