//! [`PmemSession`]: a per-handle view of a backend that applies persist-epoch
//! elision on the caller's side.
//!
//! The elision decisions of [`crate::epoch`] depend on *whose* epoch is asked —
//! which used to mean thread-local lookups inside each backend. With explicit
//! handles, the handle owns its [`PersistEpoch`] and wraps the shared backend in a
//! `PmemSession` for the duration of each operation. The session implements
//! [`PmemBackend`] itself, so everything written against the trait (the FliT
//! word algorithms, `flit_alloc::Arena`, `persist_range`) works unchanged while
//! every instruction is attributed to exactly one handle:
//!
//! * `pwb`/`pfence` forward to the backend and update the handle's epoch;
//! * [`pfence_if_dirty`](PmemBackend::pfence_if_dirty) elides the fence when the
//!   handle is clean (recording the elision in the backend's stats);
//! * [`pwb_dedup`](PmemBackend::pwb_dedup) skips a duplicate read-side flush of a
//!   word the handle already flushed this epoch with an unchanged store version.
//!
//! Raw backends keep the conservative trait defaults (always fence, always
//! flush): an instruction stream that never goes through a session is simply the
//! paper-literal stream. The session consults the backend's configured
//! [`ElisionMode`] (see [`PmemBackend::elision_mode`]), so building a `SimNvram`
//! with `ElisionMode::Disabled` still yields the literal stream *through* a
//! session — the A/B toggle the benchmarks and crash sweeps rely on.
//!
//! Because an elided instruction is never issued at all, any observer layered
//! *below* the session (statistics, a `CrashPlan`, a
//! [`RecordingBackend`](crate::RecordingBackend)) records exactly the issued
//! stream — recorded and executed streams cannot diverge by construction.

use crate::backend::PmemBackend;
use crate::cache_line::word_of;
use crate::epoch::{ElisionMode, PersistEpoch};
use crate::stats::PmemStats;
use crate::tracker::PersistenceTracker;
use flit_obs::{FlightEventKind, FlightRecorder, FlightSink};

/// A borrowed (backend, epoch) pair implementing [`PmemBackend`] with per-handle
/// elision. Cheap to construct (two references and a mode); see the module docs.
pub struct PmemSession<'h, B: PmemBackend + ?Sized> {
    backend: &'h B,
    epoch: &'h PersistEpoch,
    elision: ElisionMode,
    /// Whether the epoch's flight recorder was armed when this session was
    /// constructed (the epoch-local hint, not the ring's shared atomic).
    /// Sampled once here so the per-event dormant check tests a
    /// register-resident bool; sessions live for one operation, so a handle
    /// armed between operations is picked up by the next session.
    flight_armed: bool,
}

impl<'h, B: PmemBackend + ?Sized> Clone for PmemSession<'h, B> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'h, B: PmemBackend + ?Sized> Copy for PmemSession<'h, B> {}

impl<'h, B: PmemBackend + ?Sized> PmemSession<'h, B> {
    /// View `backend` through `epoch` with the given elision mode.
    ///
    /// Most callers want [`for_backend`](Self::for_backend), which asks the
    /// backend for its configured mode.
    pub fn new(backend: &'h B, epoch: &'h PersistEpoch, elision: ElisionMode) -> Self {
        Self {
            backend,
            epoch,
            elision,
            flight_armed: epoch.flight_armed(),
        }
    }

    /// View `backend` through `epoch`, honouring the backend's configured
    /// [`ElisionMode`].
    pub fn for_backend(backend: &'h B, epoch: &'h PersistEpoch) -> Self {
        Self::new(backend, epoch, backend.elision_mode())
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &'h B {
        self.backend
    }

    /// The epoch this session attributes instructions to.
    pub fn epoch(&self) -> &'h PersistEpoch {
        self.epoch
    }

    /// The elision mode this session applies.
    pub fn elision(&self) -> ElisionMode {
        self.elision
    }

    /// Append one event to the owning handle's flight recorder. Compiles to
    /// nothing unless the `flight-recorder` cargo feature is on, and even
    /// then evaluates neither `word` nor the store version until the ring has
    /// been armed at runtime (sampled at session construction) — an
    /// instrumented-but-dormant build pays one predictable branch on a local
    /// bool per event, nothing more.
    #[inline]
    fn flight_record(&self, kind: FlightEventKind, word: usize) {
        if FlightRecorder::ENABLED && self.flight_armed {
            self.epoch
                .flight()
                .record(kind, word, self.backend.store_version());
        }
    }
}

impl<'h, B: PmemBackend + ?Sized> std::fmt::Debug for PmemSession<'h, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemSession")
            .field("epoch", &self.epoch.id())
            .field("elision", &self.elision)
            .finish()
    }
}

impl<'h, B: PmemBackend + ?Sized> PmemBackend for PmemSession<'h, B> {
    #[inline]
    fn pwb(&self, addr: *const u8) {
        self.backend.pwb(addr);
        self.epoch.note_pwb();
        self.flight_record(FlightEventKind::Pwb, word_of(addr as usize));
    }

    #[inline]
    fn pfence(&self) {
        self.backend.pfence();
        self.epoch.note_pfence();
        self.flight_record(FlightEventKind::Pfence, 0);
    }

    #[inline]
    fn pfence_if_dirty(&self) {
        // A clean handle has no pending write-backs through this session: the
        // fence would persist nothing (the tracker's `on_pfence` would
        // early-return), so it is elided from the instruction stream entirely.
        if self.elision.is_enabled() && self.epoch.is_clean() {
            self.backend.note_elided_pfence();
            self.flight_record(FlightEventKind::ElidedPfence, 0);
            return;
        }
        self.pfence();
    }

    #[inline]
    fn pwb_dedup(&self, addr: *const u8, observed: u64) -> bool {
        let word = word_of(addr as usize);
        // A dedup hit means the value already sits in this handle's pending set
        // and the next fence commits it; the hit also implies the handle is
        // dirty, so that fence cannot itself be elided. The store-version stamp
        // makes the hit unconditionally sound: an unchanged version rules out
        // any overwrite-and-restore since the recorded flush.
        let stamp = self.backend.store_version();
        if self.elision.is_enabled() && self.epoch.recently_flushed(word, observed, stamp) {
            self.backend.note_elided_pwb();
            self.flight_record(FlightEventKind::ElidedPwb, word);
            return false;
        }
        // With a tracker attached (crash testing), a flush of a word that
        // *provably, durably* holds `observed` is elided too: it could neither
        // persist anything new nor be overtaken by a pending write-back (see
        // `PersistenceTracker::durably_holds`). Group commit leaves words
        // tagged past their durability point, and without this the helping
        // flush of an already-durable word would fire or not depending on
        // counter-table hash collisions — making crash-event streams depend on
        // allocation addresses and breaking replay determinism.
        if self.elision.is_enabled() {
            if let Some(tracker) = self.backend.persistence_tracker() {
                if tracker.durably_holds(word, observed) {
                    self.backend.note_elided_pwb();
                    self.flight_record(FlightEventKind::ElidedPwb, word);
                    return false;
                }
            }
        }
        self.backend.pwb(addr);
        self.epoch.note_pwb_flushed(word, observed, stamp);
        self.flight_record(FlightEventKind::Pwb, word);
        true
    }

    #[inline]
    fn note_read_side_pwb(&self) {
        self.backend.note_read_side_pwb();
    }

    #[inline]
    fn record_store(&self, addr: *const u8, val: u64) {
        self.backend.record_store(addr, val);
        self.flight_record(FlightEventKind::Store, word_of(addr as usize));
    }

    #[inline]
    fn store_version(&self) -> u64 {
        self.backend.store_version()
    }

    #[inline]
    fn elision_mode(&self) -> ElisionMode {
        self.elision
    }

    #[inline]
    fn note_elided_pfence(&self) {
        self.backend.note_elided_pfence();
    }

    #[inline]
    fn note_elided_pwb(&self) {
        self.backend.note_elided_pwb();
    }

    #[inline]
    fn pmem_stats(&self) -> Option<&PmemStats> {
        self.backend.pmem_stats()
    }

    #[inline]
    fn persistence_tracker(&self) -> Option<&PersistenceTracker> {
        self.backend.persistence_tracker()
    }

    #[inline]
    fn is_persistent(&self) -> bool {
        self.backend.is_persistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::sim::SimNvram;

    fn counting() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    #[test]
    fn clean_handle_fence_is_elided_and_counted() {
        let sim = counting();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&sim, &epoch);
        s.pfence_if_dirty(); // clean: elided
        assert_eq!(sim.stats().pfences(), 0);
        assert_eq!(sim.stats().elided_pfences(), 1);
        let x = 1u64;
        s.pwb(&x as *const u64 as *const u8);
        s.pfence_if_dirty(); // dirty: must fence
        assert_eq!(sim.stats().pfences(), 1);
        s.pfence_if_dirty(); // the fence cleaned the epoch again
        assert_eq!(sim.stats().pfences(), 1);
        assert_eq!(sim.stats().elided_pfences(), 2);
    }

    #[test]
    fn two_sessions_over_one_backend_have_independent_epochs() {
        // The tentpole invariant: two handles on one OS thread, one backend.
        let sim = counting();
        let (ea, eb) = (PersistEpoch::new(), PersistEpoch::new());
        let a = PmemSession::for_backend(&sim, &ea);
        let b = PmemSession::for_backend(&sim, &eb);
        let x = 1u64;
        a.pwb(&x as *const u64 as *const u8);
        b.pfence_if_dirty(); // B is clean even though A dirtied the backend
        assert_eq!(sim.stats().pfences(), 0);
        a.pfence_if_dirty(); // A must fence
        assert_eq!(sim.stats().pfences(), 1);
        assert!(ea.is_clean() && eb.is_clean());
    }

    #[test]
    fn duplicate_flush_of_same_value_is_deduped_within_an_epoch() {
        let sim = counting();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&sim, &epoch);
        let x = 7u64;
        let addr = &x as *const u64 as *const u8;
        assert!(s.pwb_dedup(addr, 7));
        assert!(!s.pwb_dedup(addr, 7), "same word+value: dedup");
        assert!(s.pwb_dedup(addr, 8), "changed value: must reflush");
        assert_eq!(sim.stats().pwbs(), 2);
        assert_eq!(sim.stats().elided_pwbs(), 1);
        s.pfence();
        assert!(s.pwb_dedup(addr, 8), "a fence closes the epoch");
        assert_eq!(sim.stats().pwbs(), 3);
    }

    #[test]
    fn an_intervening_store_invalidates_the_dedup_entry() {
        let sim = counting();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&sim, &epoch);
        let x = 7u64;
        let addr = &x as *const u64 as *const u8;
        assert!(s.pwb_dedup(addr, 7));
        // A store recorded through the backend bumps the version; the entry's
        // stamp no longer matches, so the flush must be re-issued (ABA closed).
        s.record_store(addr, 9);
        assert!(s.pwb_dedup(addr, 7));
        assert_eq!(sim.stats().pwbs(), 2);
    }

    #[test]
    fn deduped_flush_still_reaches_the_next_fence() {
        // The dedup invariant: a skipped flush's value is already pending, so the
        // (unskippable) next fence persists it.
        let sim = SimNvram::for_crash_testing();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&sim, &epoch);
        let x = 0u64;
        let addr = &x as *const u64 as *const u8;
        s.record_store(addr, 11);
        assert!(s.pwb_dedup(addr, 11));
        assert!(!s.pwb_dedup(addr, 11));
        s.pfence_if_dirty(); // dirty because of the first flush
        assert_eq!(
            sim.tracker().unwrap().persisted_value(addr as usize),
            Some(11)
        );
    }

    #[test]
    fn literal_mode_disables_both_elisions() {
        let sim = SimNvram::builder()
            .latency(LatencyModel::none())
            .elision(ElisionMode::Disabled)
            .build();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&sim, &epoch);
        assert_eq!(s.elision(), ElisionMode::Disabled);
        s.pfence_if_dirty(); // clean, but literal mode must fence anyway
        let x = 1u64;
        let addr = &x as *const u64 as *const u8;
        assert!(s.pwb_dedup(addr, 1));
        assert!(s.pwb_dedup(addr, 1), "no dedup in literal mode");
        assert_eq!(sim.stats().pfences(), 1);
        assert_eq!(sim.stats().pwbs(), 2);
        assert_eq!(sim.stats().elided_pfences(), 0);
        assert_eq!(sim.stats().elided_pwbs(), 0);
    }

    #[test]
    fn session_delegates_metadata() {
        let sim = SimNvram::for_crash_testing();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&sim, &epoch);
        assert!(s.is_persistent());
        assert!(s.pmem_stats().is_some());
        assert!(s.persistence_tracker().is_some());
        assert_eq!(s.epoch().id(), epoch.id());
        let x = 0u64;
        s.record_store(&x as *const u64 as *const u8, 1);
        assert_eq!(s.store_version(), sim.store_version());
    }
}
