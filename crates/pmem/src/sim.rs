//! Simulated NVRAM backend.
//!
//! [`SimNvram`] is the substitute for the Intel Optane DC persistent memory used in
//! the paper's evaluation. It combines three orthogonal pieces, each optional:
//!
//! * a [`LatencyModel`] charging a cost to every `pwb`/`pfence` (this is what makes
//!   the benchmark *shapes* of the paper reproducible on ordinary hardware);
//! * [`PmemStats`] counting every persistence instruction (Figure 9);
//! * a [`PersistenceTracker`] maintaining the persisted image for crash testing
//!   (disabled by default — it is far too slow for throughput runs).
//!
//! The backend itself issues every instruction it is handed: persist-epoch
//! **elision** happens *above* it, in the per-handle
//! [`PmemSession`](crate::PmemSession) view that `flit`'s `FlitHandle` wraps
//! around the backend. `SimNvram` only carries the configured [`ElisionMode`]
//! (via [`PmemBackend::elision_mode`]) so sessions know whether to elide, and the
//! statistics counters for elided instructions. Build with
//! [`ElisionMode::Disabled`] to get the paper-literal instruction stream through
//! any session; elided instructions are counted separately in the stats either
//! way, so the two streams can be A/B-compared.
//!
//! `SimNvram` is internally reference counted, so it can be cloned cheaply and shared
//! between a data structure, the workload runner and the test harness.

use std::sync::Arc;

use crate::backend::PmemBackend;
use crate::crash::{CrashEventKind, CrashPlan};
use crate::epoch::ElisionMode;
use crate::latency::LatencyModel;
use crate::stats::PmemStats;
use crate::tracker::PersistenceTracker;

struct Inner {
    latency: LatencyModel,
    stats: PmemStats,
    tracker: Option<PersistenceTracker>,
    crash_plan: Option<CrashPlan>,
    count_stats: bool,
    elision: ElisionMode,
    /// Store counter for non-tracking instances (dedup stamps); tracking instances
    /// use the tracker's own version counter instead.
    store_version: std::sync::atomic::AtomicU64,
}

/// Simulated NVRAM: ordinary memory plus modelled persistence costs, statistics and
/// optional crash tracking. See the module docs.
#[derive(Clone)]
pub struct SimNvram {
    inner: Arc<Inner>,
}

impl Default for SimNvram {
    /// An Optane-like latency model with statistics and no crash tracking.
    fn default() -> Self {
        Self::builder().build()
    }
}

impl std::fmt::Debug for SimNvram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNvram")
            .field("latency", &self.inner.latency)
            .field("tracking", &self.inner.tracker.is_some())
            .field("pwbs", &self.inner.stats.pwbs())
            .field("pfences", &self.inner.stats.pfences())
            .finish()
    }
}

impl SimNvram {
    /// Start building a simulated NVRAM instance.
    pub fn builder() -> SimNvramBuilder {
        SimNvramBuilder::default()
    }

    /// A zero-latency, tracking-enabled instance — the configuration used by
    /// durability (crash) tests, where only the bookkeeping matters.
    pub fn for_crash_testing() -> Self {
        Self::builder()
            .latency(LatencyModel::none())
            .tracking(true)
            .build()
    }

    /// Like [`for_crash_testing`](Self::for_crash_testing), with a [`CrashPlan`]
    /// observing every persistence event. This is the configuration the
    /// `flit-crashtest` sweep engine runs under.
    pub fn for_crash_testing_with_plan(plan: CrashPlan) -> Self {
        Self::builder()
            .latency(LatencyModel::none())
            .tracking(true)
            .crash_plan(plan)
            .build()
    }

    /// A zero-latency, non-tracking instance — useful for functional tests that only
    /// care about instruction counts.
    pub fn for_counting() -> Self {
        Self::builder().latency(LatencyModel::none()).build()
    }

    /// The latency model in effect.
    pub fn latency(&self) -> LatencyModel {
        self.inner.latency
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &PmemStats {
        &self.inner.stats
    }

    /// The persistence tracker, if tracking was enabled.
    pub fn tracker(&self) -> Option<&PersistenceTracker> {
        self.inner.tracker.as_ref()
    }

    /// The crash plan observing this backend's events, if one was attached.
    pub fn crash_plan(&self) -> Option<&CrashPlan> {
        self.inner.crash_plan.as_ref()
    }

    /// The persist-epoch elision mode sessions over this instance apply.
    pub fn elision(&self) -> ElisionMode {
        self.inner.elision
    }
}

impl SimNvram {
    /// The store version used to stamp dedup entries: the tracker's global store
    /// counter when tracking is on (the counter the monotone-commit logic already
    /// maintains), a private per-backend counter otherwise.
    #[inline]
    fn current_store_version(&self) -> u64 {
        match &self.inner.tracker {
            Some(tracker) => tracker.stores_recorded(),
            None => self
                .inner
                .store_version
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

impl PmemBackend for SimNvram {
    #[inline]
    fn pwb(&self, addr: *const u8) {
        if self.inner.count_stats {
            self.inner.stats.record_pwb();
        }
        // The plan observes the event *before* the tracker applies it, so a trigger
        // at index n models a power failure during event n (the event is lost).
        if let Some(plan) = &self.inner.crash_plan {
            plan.observe(CrashEventKind::Pwb, self.inner.tracker.as_ref());
        }
        if let Some(tracker) = &self.inner.tracker {
            tracker.on_pwb(addr as usize);
        }
        self.inner.latency.charge_pwb();
    }

    #[inline]
    fn pfence(&self) {
        if self.inner.count_stats {
            self.inner.stats.record_pfence();
        }
        if let Some(plan) = &self.inner.crash_plan {
            plan.observe(CrashEventKind::Pfence, self.inner.tracker.as_ref());
        }
        if let Some(tracker) = &self.inner.tracker {
            tracker.on_pfence();
        }
        self.inner.latency.charge_pfence();
    }

    #[inline]
    fn note_read_side_pwb(&self) {
        if self.inner.count_stats {
            self.inner.stats.record_read_side_pwb();
        }
    }

    #[inline]
    fn record_store(&self, addr: *const u8, val: u64) {
        if let Some(plan) = &self.inner.crash_plan {
            plan.observe(CrashEventKind::Store, self.inner.tracker.as_ref());
        }
        match &self.inner.tracker {
            // The tracker's global store counter doubles as the version source.
            Some(tracker) => tracker.record_store(addr as usize, val),
            None => {
                // Nothing consumes the stamp on the literal stream: skip the
                // shared-counter bump when elision is disabled.
                if self.inner.elision.is_enabled() {
                    self.inner
                        .store_version
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }

    #[inline]
    fn store_version(&self) -> u64 {
        self.current_store_version()
    }

    #[inline]
    fn elision_mode(&self) -> ElisionMode {
        self.inner.elision
    }

    #[inline]
    fn note_elided_pfence(&self) {
        if self.inner.count_stats {
            self.inner.stats.record_elided_pfence();
        }
    }

    #[inline]
    fn note_elided_pwb(&self) {
        if self.inner.count_stats {
            self.inner.stats.record_elided_pwb();
        }
    }

    #[inline]
    fn pmem_stats(&self) -> Option<&PmemStats> {
        Some(&self.inner.stats)
    }

    #[inline]
    fn persistence_tracker(&self) -> Option<&PersistenceTracker> {
        self.inner.tracker.as_ref()
    }
}

/// Builder for [`SimNvram`].
#[derive(Debug, Clone)]
pub struct SimNvramBuilder {
    latency: LatencyModel,
    tracking: bool,
    crash_plan: Option<CrashPlan>,
    count_stats: bool,
    elision: ElisionMode,
}

impl Default for SimNvramBuilder {
    fn default() -> Self {
        Self {
            latency: LatencyModel::optane(),
            tracking: false,
            crash_plan: None,
            count_stats: true,
            elision: ElisionMode::default(),
        }
    }
}

impl SimNvramBuilder {
    /// Set the latency model (default: [`LatencyModel::optane`]).
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Enable or disable word-granularity persistence tracking (default: disabled).
    pub fn tracking(mut self, tracking: bool) -> Self {
        self.tracking = tracking;
        self
    }

    /// Attach a [`CrashPlan`] that observes every store/pwb/pfence event flowing
    /// through the backend (default: none). Usually combined with
    /// [`tracking`](Self::tracking) so the plan has an image to freeze.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = Some(plan);
        self
    }

    /// Enable or disable statistics counters (default: enabled).
    pub fn count_stats(mut self, count: bool) -> Self {
        self.count_stats = count;
        self
    }

    /// Set the persist-epoch elision mode sessions over this instance apply
    /// (default: [`ElisionMode::Enabled`]). [`ElisionMode::Disabled`] restores
    /// the paper-literal instruction stream.
    pub fn elision(mut self, mode: ElisionMode) -> Self {
        self.elision = mode;
        self
    }

    /// Finish building.
    pub fn build(self) -> SimNvram {
        SimNvram {
            inner: Arc::new(Inner {
                latency: self.latency,
                stats: PmemStats::new(),
                tracker: if self.tracking {
                    Some(PersistenceTracker::new())
                } else {
                    None
                },
                crash_plan: self.crash_plan,
                count_stats: self.count_stats,
                elision: self.elision,
                store_version: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_counted() {
        let sim = SimNvram::for_counting();
        let x = 3u64;
        for _ in 0..10 {
            sim.pwb(&x as *const u64 as *const u8);
        }
        sim.pfence();
        assert_eq!(sim.stats().pwbs(), 10);
        assert_eq!(sim.stats().pfences(), 1);
    }

    #[test]
    fn clones_share_state() {
        let sim = SimNvram::for_counting();
        let clone = sim.clone();
        let x = 3u64;
        clone.pwb(&x as *const u64 as *const u8);
        assert_eq!(sim.stats().pwbs(), 1);
    }

    #[test]
    fn tracking_round_trip() {
        let sim = SimNvram::for_crash_testing();
        let x = 0u64;
        let addr = &x as *const u64 as *const u8;
        sim.record_store(addr, 123);
        assert_eq!(
            sim.tracker().unwrap().volatile_value(addr as usize),
            Some(123)
        );
        assert!(sim.tracker().unwrap().crash_image().is_empty());
        sim.pwb(addr);
        sim.pfence();
        assert_eq!(
            sim.tracker().unwrap().crash_image().read(addr as usize),
            Some(123)
        );
    }

    #[test]
    fn non_tracking_instance_ignores_record_store() {
        let sim = SimNvram::for_counting();
        let x = 0u64;
        sim.record_store(&x as *const u64 as *const u8, 5);
        assert!(sim.tracker().is_none());
    }

    #[test]
    fn counting_can_be_disabled() {
        let sim = SimNvram::builder()
            .latency(LatencyModel::none())
            .count_stats(false)
            .build();
        let x = 0u64;
        sim.pwb(&x as *const u64 as *const u8);
        sim.pfence();
        sim.note_elided_pfence();
        sim.note_elided_pwb();
        assert_eq!(sim.stats().pwbs(), 0);
        assert_eq!(sim.stats().pfences(), 0);
        assert_eq!(sim.stats().elided_pfences(), 0);
        assert_eq!(sim.stats().elided_pwbs(), 0);
    }

    #[test]
    fn read_side_pwb_notes_accumulate() {
        let sim = SimNvram::for_counting();
        sim.note_read_side_pwb();
        sim.note_read_side_pwb();
        assert_eq!(sim.stats().read_side_pwbs(), 2);
    }

    #[test]
    fn crash_plan_sees_the_event_stream() {
        use crate::crash::CrashPlan;
        // Crash at event 4 (0-based): store, pwb, pfence for x persist x; the second
        // store survives volatile-only; the pwb at index 4 is lost.
        let plan = CrashPlan::armed_at(4);
        let sim = SimNvram::for_crash_testing_with_plan(plan.clone());
        let x = 0u64;
        let addr = &x as *const u64 as *const u8;
        sim.record_store(addr, 1); // event 0
        sim.pwb(addr); // event 1
        sim.pfence(); // event 2
        sim.record_store(addr, 2); // event 3
        sim.pwb(addr); // event 4 <- crash here (lost)
        sim.pfence(); // event 5
        assert_eq!(plan.events_seen(), 6);
        assert!(plan.triggered());
        let frozen = plan.crash_image().unwrap();
        assert_eq!(frozen.read(addr as usize), Some(1), "only the fenced value");
        // The live tracker saw everything.
        assert_eq!(
            sim.tracker().unwrap().crash_image().read(addr as usize),
            Some(2)
        );
        assert!(sim.crash_plan().is_some());
    }

    #[test]
    fn raw_backend_is_paper_literal() {
        // With no session (no handle epoch) the backend cannot elide anything:
        // the conservative trait defaults always fence and always flush.
        let sim = SimNvram::for_counting();
        sim.pfence_if_dirty();
        let x = 1u64;
        let addr = &x as *const u64 as *const u8;
        assert!(sim.pwb_dedup(addr, 1));
        assert!(sim.pwb_dedup(addr, 1), "no dedup without a session");
        assert_eq!(sim.stats().pfences(), 1);
        assert_eq!(sim.stats().pwbs(), 2);
        assert_eq!(sim.stats().elided_pfences(), 0);
        assert_eq!(sim.stats().elided_pwbs(), 0);
    }

    #[test]
    fn elision_mode_is_exposed_to_sessions() {
        let on = SimNvram::for_counting();
        assert_eq!(on.elision(), ElisionMode::Enabled);
        assert_eq!(on.elision_mode(), ElisionMode::Enabled);
        let off = SimNvram::builder()
            .latency(LatencyModel::none())
            .elision(ElisionMode::Disabled)
            .build();
        assert_eq!(off.elision(), ElisionMode::Disabled);
        assert_eq!(off.elision_mode(), ElisionMode::Disabled);
    }

    #[test]
    fn latency_model_is_exposed() {
        let sim = SimNvram::builder().latency(LatencyModel::dram()).build();
        assert_eq!(sim.latency(), LatencyModel::dram());
        assert!(sim.is_persistent());
    }
}
