//! Reserved persistent-memory address ranges.
//!
//! A [`PmemRegion`] is a pinned, cache-line-aligned, zero-initialised address range
//! carved out of the persistence substrate — the raw-memory half of an arena
//! allocator. The region guarantees exactly three things:
//!
//! * **Stability** — the base address never changes for the lifetime of the region
//!   (objects inside it can be linked by address and flushed line by line);
//! * **Alignment** — the base is cache-line aligned and the length is a whole number
//!   of cache lines, so offset arithmetic within the region never changes how many
//!   lines an object straddles (this is what makes persistence-event streams
//!   reproducible across runs: a slot at offset *o* covers the same line span in
//!   every process, regardless of where the region itself landed);
//! * **Zeroing** — freshly reserved memory reads as zero, matching the "null link"
//!   conventions of the lock-free structures.
//!
//! A region comes in two provenances:
//!
//! * **Owned** ([`PmemRegion::reserve`]) — an aligned heap allocation, freed on
//!   drop. This is the *volatile substrate*: exactly equivalent to real NVRAM
//!   under [`SimNvram`](crate::SimNvram), whose tracker models persistence of
//!   arbitrary addresses.
//! * **Borrowed** ([`PmemRegion::borrowed`]) — a window into memory owned by
//!   someone else, typically a `mmap`-ed [`PoolFile`](crate::pool::PoolFile).
//!   Dropping a borrowed region releases nothing; the pool unmaps the whole
//!   file when it is dropped.
//!
//! Reservation is fallible ([`ReserveError`]): the *pool* layer turns a failed
//! map into a typed error for `FlitDb::open` callers. Arena internals, by
//! contrast, may still treat a failed reservation as fatal (`.expect`) — an
//! arena that cannot grow mid-operation has no useful recovery.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;

use crate::cache_line::CACHE_LINE_SIZE;

/// Why a region reservation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// A zero-length region was requested.
    Empty,
    /// The rounded length overflows what a [`Layout`] can describe.
    LayoutOverflow {
        /// The requested length in bytes.
        len: usize,
    },
    /// The allocator returned null.
    OutOfMemory {
        /// The requested length in bytes.
        len: usize,
    },
}

impl std::fmt::Display for ReserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReserveError::Empty => write!(f, "cannot reserve an empty region"),
            ReserveError::LayoutOverflow { len } => {
                write!(f, "region of {len} bytes overflows the address space")
            }
            ReserveError::OutOfMemory { len } => {
                write!(f, "allocation of a {len}-byte region failed")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// How the region's memory is owned (and therefore what drop must do).
enum Backing {
    /// Heap allocation produced by `alloc_zeroed(layout)`; freed on drop.
    Heap(Layout),
    /// A window into memory owned elsewhere (a mapped pool file); drop is a no-op.
    Borrowed,
}

/// A pinned, cache-line-aligned, zeroed address range. See the module docs.
pub struct PmemRegion {
    base: NonNull<u8>,
    len: usize,
    backing: Backing,
}

// SAFETY: the region is a plain block of memory with no interior state; all mutation
// happens through raw pointers whose synchronisation is the caller's responsibility
// (the arena layer serialises its metadata writes and hands out disjoint slots).
unsafe impl Send for PmemRegion {}
unsafe impl Sync for PmemRegion {}

impl PmemRegion {
    /// Reserve a zeroed heap-backed region of at least `len` bytes, rounded up to
    /// a whole number of cache lines.
    pub fn reserve(len: usize) -> Result<Self, ReserveError> {
        if len == 0 {
            return Err(ReserveError::Empty);
        }
        let len = len.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let layout = Layout::from_size_align(len, CACHE_LINE_SIZE)
            .map_err(|_| ReserveError::LayoutOverflow { len })?;
        // SAFETY: layout has non-zero size (checked above).
        let ptr = unsafe { alloc_zeroed(layout) };
        let Some(base) = NonNull::new(ptr) else {
            return Err(ReserveError::OutOfMemory { len });
        };
        Ok(Self {
            base,
            len,
            backing: Backing::Heap(layout),
        })
    }

    /// A region borrowing `len` bytes at `base` from memory owned elsewhere
    /// (typically a range carved out of a mapped pool file). Dropping the
    /// returned region releases nothing.
    ///
    /// # Safety
    /// `base` must be cache-line aligned, the `len` bytes starting at it must be
    /// valid for reads and writes for the whole lifetime of the returned region
    /// (the caller keeps the owner — e.g. the pool mapping — alive), `len` must
    /// be a non-zero multiple of the cache-line size, and the range must not be
    /// concurrently reserved by any other region.
    pub unsafe fn borrowed(base: *mut u8, len: usize) -> Self {
        debug_assert!(!base.is_null());
        debug_assert_eq!(base as usize % CACHE_LINE_SIZE, 0);
        debug_assert!(len > 0 && len % CACHE_LINE_SIZE == 0);
        Self {
            // SAFETY: non-null per the caller's contract (debug-asserted).
            base: unsafe { NonNull::new_unchecked(base) },
            len,
            backing: Backing::Borrowed,
        }
    }

    /// The base address of the region (cache-line aligned).
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.base.as_ptr() as usize
    }

    /// The base pointer of the region.
    #[inline]
    pub fn base_ptr(&self) -> *mut u8 {
        self.base.as_ptr()
    }

    /// Length of the region in bytes (a multiple of the cache-line size).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `false` always — regions cannot be empty — but provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        let base = self.base_addr();
        addr >= base && addr < base + self.len()
    }

    /// `true` when the `len`-byte range starting at `addr` falls entirely inside
    /// the region.
    #[inline]
    pub fn contains_range(&self, addr: usize, len: usize) -> bool {
        len == 0
            || (self.contains(addr)
                && addr
                    .checked_add(len - 1)
                    .is_some_and(|end| self.contains(end)))
    }
}

impl Drop for PmemRegion {
    fn drop(&mut self) {
        if let Backing::Heap(layout) = self.backing {
            // SAFETY: `base` was produced by `alloc_zeroed(layout)` and is freed
            // exactly once; borrowed regions never reach this arm.
            unsafe { dealloc(self.base.as_ptr(), layout) };
        }
    }
}

impl std::fmt::Debug for PmemRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemRegion")
            .field("base", &format_args!("{:#x}", self.base_addr()))
            .field("len", &self.len())
            .field(
                "backing",
                &match self.backing {
                    Backing::Heap(_) => "heap",
                    Backing::Borrowed => "borrowed",
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_is_aligned_rounded_and_zeroed() {
        let r = PmemRegion::reserve(100).unwrap();
        assert_eq!(r.base_addr() % CACHE_LINE_SIZE, 0);
        assert_eq!(r.len(), 128, "rounded up to whole cache lines");
        assert!(!r.is_empty());
        // SAFETY: freshly reserved, exclusively owned.
        let bytes = unsafe { std::slice::from_raw_parts(r.base_ptr(), r.len()) };
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn reservation_failures_are_typed() {
        assert_eq!(PmemRegion::reserve(0).unwrap_err(), ReserveError::Empty);
        assert!(matches!(
            PmemRegion::reserve(usize::MAX - 63).unwrap_err(),
            ReserveError::LayoutOverflow { .. }
        ));
    }

    #[test]
    fn containment_checks() {
        let r = PmemRegion::reserve(256).unwrap();
        let base = r.base_addr();
        assert!(r.contains(base));
        assert!(r.contains(base + 255));
        assert!(!r.contains(base + 256));
        assert!(!r.contains(base.wrapping_sub(1)));
        assert!(r.contains_range(base, 256));
        assert!(!r.contains_range(base + 1, 256));
        assert!(r.contains_range(base + 256, 0), "empty range always fits");
    }

    #[test]
    fn regions_are_stable_and_writable() {
        let r = PmemRegion::reserve(64).unwrap();
        let base = r.base_ptr();
        // SAFETY: in-bounds write to exclusively owned memory.
        unsafe { base.cast::<u64>().write(0xDEAD_BEEF) };
        assert_eq!(r.base_ptr(), base);
        // SAFETY: just written above.
        assert_eq!(unsafe { base.cast::<u64>().read() }, 0xDEAD_BEEF);
    }

    #[test]
    fn borrowed_regions_release_nothing() {
        let owner = PmemRegion::reserve(256).unwrap();
        {
            // SAFETY: window into `owner`, which outlives it; aligned and sized.
            let view = unsafe { PmemRegion::borrowed(owner.base_ptr(), 128) };
            assert_eq!(view.base_addr(), owner.base_addr());
            assert_eq!(view.len(), 128);
            // SAFETY: in-bounds write through the view.
            unsafe { view.base_ptr().cast::<u64>().write(7) };
        }
        // The owner's memory must still be live and hold the write.
        // SAFETY: owner is alive.
        assert_eq!(unsafe { owner.base_ptr().cast::<u64>().read() }, 7);
    }
}
