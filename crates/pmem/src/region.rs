//! Reserved persistent-memory address ranges.
//!
//! A [`PmemRegion`] is a pinned, cache-line-aligned, zero-initialised address range
//! carved out of the persistence substrate — the raw-memory half of an arena
//! allocator. The region guarantees exactly three things:
//!
//! * **Stability** — the base address never changes for the lifetime of the region
//!   (objects inside it can be linked by address and flushed line by line);
//! * **Alignment** — the base is cache-line aligned and the length is a whole number
//!   of cache lines, so offset arithmetic within the region never changes how many
//!   lines an object straddles (this is what makes persistence-event streams
//!   reproducible across runs: a slot at offset *o* covers the same line span in
//!   every process, regardless of where the region itself landed);
//! * **Zeroing** — freshly reserved memory reads as zero, matching the "null link"
//!   conventions of the lock-free structures.
//!
//! On a machine with real NVDIMMs this would be a `mmap` of a DAX file; in the
//! reproduction environment it is an aligned heap allocation, which is exactly
//! equivalent under [`SimNvram`](crate::SimNvram) (the tracker models persistence of
//! arbitrary addresses). Higher-level allocation policy — slots, headers, free lists,
//! recovery roots — lives in the `flit-alloc` crate, on top of this type.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

use crate::cache_line::CACHE_LINE_SIZE;

/// A pinned, cache-line-aligned, zeroed address range. See the module docs.
pub struct PmemRegion {
    base: NonNull<u8>,
    layout: Layout,
}

// SAFETY: the region is a plain block of memory with no interior state; all mutation
// happens through raw pointers whose synchronisation is the caller's responsibility
// (the arena layer serialises its metadata writes and hands out disjoint slots).
unsafe impl Send for PmemRegion {}
unsafe impl Sync for PmemRegion {}

impl PmemRegion {
    /// Reserve a zeroed region of at least `len` bytes, rounded up to a whole number
    /// of cache lines. Panics on a zero-length request or allocation failure (a
    /// persistence arena that failed to map is not a recoverable condition).
    pub fn reserve(len: usize) -> Self {
        assert!(len > 0, "cannot reserve an empty region");
        let len = len.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let layout = Layout::from_size_align(len, CACHE_LINE_SIZE)
            .expect("region size overflows the address space");
        // SAFETY: layout has non-zero size (asserted above).
        let ptr = unsafe { alloc_zeroed(layout) };
        let Some(base) = NonNull::new(ptr) else {
            handle_alloc_error(layout);
        };
        Self { base, layout }
    }

    /// The base address of the region (cache-line aligned).
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.base.as_ptr() as usize
    }

    /// The base pointer of the region.
    #[inline]
    pub fn base_ptr(&self) -> *mut u8 {
        self.base.as_ptr()
    }

    /// Length of the region in bytes (a multiple of the cache-line size).
    #[inline]
    pub fn len(&self) -> usize {
        self.layout.size()
    }

    /// `false` always — regions cannot be empty — but provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        let base = self.base_addr();
        addr >= base && addr < base + self.len()
    }

    /// `true` when the `len`-byte range starting at `addr` falls entirely inside
    /// the region.
    #[inline]
    pub fn contains_range(&self, addr: usize, len: usize) -> bool {
        len == 0
            || (self.contains(addr)
                && addr
                    .checked_add(len - 1)
                    .is_some_and(|end| self.contains(end)))
    }
}

impl Drop for PmemRegion {
    fn drop(&mut self) {
        // SAFETY: `base` was produced by `alloc_zeroed(self.layout)` and is freed
        // exactly once.
        unsafe { dealloc(self.base.as_ptr(), self.layout) };
    }
}

impl std::fmt::Debug for PmemRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemRegion")
            .field("base", &format_args!("{:#x}", self.base_addr()))
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_is_aligned_rounded_and_zeroed() {
        let r = PmemRegion::reserve(100);
        assert_eq!(r.base_addr() % CACHE_LINE_SIZE, 0);
        assert_eq!(r.len(), 128, "rounded up to whole cache lines");
        assert!(!r.is_empty());
        // SAFETY: freshly reserved, exclusively owned.
        let bytes = unsafe { std::slice::from_raw_parts(r.base_ptr(), r.len()) };
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn containment_checks() {
        let r = PmemRegion::reserve(256);
        let base = r.base_addr();
        assert!(r.contains(base));
        assert!(r.contains(base + 255));
        assert!(!r.contains(base + 256));
        assert!(!r.contains(base.wrapping_sub(1)));
        assert!(r.contains_range(base, 256));
        assert!(!r.contains_range(base + 1, 256));
        assert!(r.contains_range(base + 256, 0), "empty range always fits");
    }

    #[test]
    fn regions_are_stable_and_writable() {
        let r = PmemRegion::reserve(64);
        let base = r.base_ptr();
        // SAFETY: in-bounds write to exclusively owned memory.
        unsafe { base.cast::<u64>().write(0xDEAD_BEEF) };
        assert_eq!(r.base_ptr(), base);
        // SAFETY: just written above.
        assert_eq!(unsafe { base.cast::<u64>().read() }, 0xDEAD_BEEF);
    }
}
