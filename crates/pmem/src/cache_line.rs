//! Cache-line and word geometry helpers.
//!
//! Flush instructions operate on whole cache lines while the FliT library tags and
//! tracks individual 8-byte words; these helpers convert between the two.

/// Size of a cache line in bytes on every platform we target.
///
/// The paper's machine (Cascade Lake SP) and essentially all current x86-64 and ARMv8
/// server parts use 64-byte lines. The simulated backend flushes at this granularity.
pub const CACHE_LINE_SIZE: usize = 64;

/// Size of the word the FliT library operates on (one `u64`).
pub const WORD_SIZE: usize = 8;

/// Number of words per cache line.
pub const WORDS_PER_LINE: usize = CACHE_LINE_SIZE / WORD_SIZE;

/// Returns the base address of the cache line containing `addr`.
#[inline]
pub fn cache_line_of(addr: usize) -> usize {
    addr & !(CACHE_LINE_SIZE - 1)
}

/// Returns the base address of the 8-byte word containing `addr`.
#[inline]
pub fn word_of(addr: usize) -> usize {
    addr & !(WORD_SIZE - 1)
}

/// Returns the index (0..8) of the word containing `addr` within its cache line.
#[inline]
pub fn word_index_in_line(addr: usize) -> usize {
    (addr & (CACHE_LINE_SIZE - 1)) / WORD_SIZE
}

/// Returns `true` when two addresses fall on the same cache line.
///
/// The paper's §6.6 discussion of adjacent counters vs. hashed counters hinges on
/// whether the flit-counter shares a line with the data word; this helper is used by
/// tests that assert the layout properties of each scheme.
#[inline]
pub fn same_cache_line(a: usize, b: usize) -> bool {
    cache_line_of(a) == cache_line_of(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounding() {
        assert_eq!(cache_line_of(0), 0);
        assert_eq!(cache_line_of(63), 0);
        assert_eq!(cache_line_of(64), 64);
        assert_eq!(cache_line_of(65), 64);
        assert_eq!(cache_line_of(0x1234_5678), 0x1234_5678 & !63);
    }

    #[test]
    fn word_rounding() {
        assert_eq!(word_of(0), 0);
        assert_eq!(word_of(7), 0);
        assert_eq!(word_of(8), 8);
        assert_eq!(word_of(15), 8);
    }

    #[test]
    fn word_index() {
        assert_eq!(word_index_in_line(0), 0);
        assert_eq!(word_index_in_line(8), 1);
        assert_eq!(word_index_in_line(63), 7);
        assert_eq!(word_index_in_line(64), 0);
    }

    #[test]
    fn same_line_detection() {
        assert!(same_cache_line(0, 63));
        assert!(!same_cache_line(0, 64));
        assert!(same_cache_line(128, 191));
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(CACHE_LINE_SIZE % WORD_SIZE, 0);
        assert_eq!(WORDS_PER_LINE, 8);
        assert!(CACHE_LINE_SIZE.is_power_of_two());
        assert!(WORD_SIZE.is_power_of_two());
    }
}
