//! Per-thread **persist epochs**: the bookkeeping behind redundant-fence and
//! duplicate-flush elision.
//!
//! ## The observation
//!
//! A `pfence` only has an effect when the calling thread has issued at least one
//! `pwb` since its previous fence — the adversarial tracker model makes this
//! explicit (its `on_pfence` early-returns on an empty pending set), and real
//! hardware agrees: an `sfence` with no outstanding `clwb`s orders nothing that
//! x86-TSO had not already ordered. FliT's hot path issues fences *pessimistically*
//! (a leading fence before every shared store, a completion fence after every
//! operation), so on read-mostly workloads nearly every fence is such a no-op.
//!
//! A **persist epoch** is the interval between two consecutive `pfence`s of one
//! thread *through one backend instance*. Within an epoch the thread tracks:
//!
//! * `pwbs_since_fence` — how many write-backs it has issued ("is it *dirty*?");
//! * a small *recently-flushed* set of `(word address, observed value)` pairs.
//!
//! Backends with elision enabled use this to implement two optimisations:
//!
//! 1. **Fence elision** ([`PersistEpoch::is_clean`]): a fence requested through
//!    `pfence_if_dirty` by a *clean* thread (zero `pwb`s this epoch) is skipped.
//!    This is sound unconditionally: a clean thread has no pending write-backs, so
//!    by the P-V Interface's own semantics the fence would persist nothing. The
//!    dirty count can only *over*-approximate the tracker's pending set (a `pwb` of
//!    a line with no tracked words still counts), so elision is conservative.
//! 2. **Duplicate-flush elision** ([`PersistEpoch::recently_flushed`]): a read-side
//!    flush of a word the thread already flushed *with the same observed value* in
//!    the current epoch is skipped — the value is already in the thread's pending
//!    set and the next (now unavoidable) fence commits it. A dedup hit implies the
//!    thread is dirty, so every fence the skipped flush relied on still fires.
//!
//! ## Why the dedup is unconditionally sound: store-version stamps
//!
//! Keying the recently-flushed set by `(address, value)` alone would admit a narrow
//! overwrite-and-restore (ABA) hole: a remote thread stores a different value and a
//! second remote store restores the original, all between the recorded flush and
//! the dedup hit — the reader's pending set then holds a snapshot that is
//! value-equal but *persistence*-stale. Each dedup entry therefore additionally
//! carries the backend's [`store_version`](crate::PmemBackend::store_version) — a
//! monotone counter of every store recorded through the backend — at flush time,
//! and a dedup hit requires the version to be **unchanged**. If no store at all was
//! recorded since the flush, no overwrite (let alone an overwrite-and-restore) can
//! have happened, so the pending snapshot is exactly the current value and skipping
//! the re-flush is sound with no caveat. The price is one relaxed counter load per
//! tagged read and a coarser dedup (any concurrent store, to any word, invalidates
//! the entry — on read-mostly workloads, where the dedup matters, stores are rare
//! by definition). Fence elision (point 1) never needed a caveat: a clean thread's
//! fence persists nothing under any interleaving.
//!
//! ## Keying
//!
//! Epoch state is keyed by *(thread, backend instance)*: each [`PersistEpoch`]
//! handle owns a process-unique id, and every thread lazily materialises its own
//! counter/set per id in thread-local storage. Two backends driven by one thread
//! therefore never cross-contaminate (a fence through backend A does not clean the
//! thread's epoch on backend B), and each entry holds a liveness token of its
//! backend so long-lived threads can purge state for dropped instances.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use crate::stats::PmemStats;

/// Whether a backend applies persist-epoch elision or issues the paper-literal
/// instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElisionMode {
    /// Skip no-op fences and duplicate read-side flushes (the default).
    #[default]
    Enabled,
    /// Issue every fence and flush exactly as Algorithm 4 writes them. Used for
    /// A/B statistics (`BENCH_flit.json` records both streams) and for sweeping
    /// the paper-literal instruction stream in `flit-crashtest`.
    Disabled,
}

impl ElisionMode {
    /// `true` when elision is enabled.
    #[inline]
    pub fn is_enabled(self) -> bool {
        self == ElisionMode::Enabled
    }

    /// CLI-friendly key (`on` / `off`).
    pub fn name(self) -> &'static str {
        match self {
            ElisionMode::Enabled => "on",
            ElisionMode::Disabled => "off",
        }
    }

    /// Parse a CLI key (`on` / `off`).
    pub fn parse(s: &str) -> Option<ElisionMode> {
        match s {
            "on" => Some(ElisionMode::Enabled),
            "off" => Some(ElisionMode::Disabled),
            _ => None,
        }
    }
}

/// Capacity of the per-thread recently-flushed set. Small on purpose: the set only
/// needs to cover the reads of one operation (it is cleared on every fence), and a
/// bounded ring keeps the lookup a handful of compares.
const RECENT_FLUSHES: usize = 8;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Number of live per-thread entries above which a lookup first purges entries
/// whose backing [`PersistEpoch`] has been dropped.
const PURGE_THRESHOLD: usize = 16;

struct ThreadState {
    id: u64,
    /// Dead when the owning [`PersistEpoch`] was dropped; purge passes use this to
    /// discard the entry without any global bookkeeping.
    alive: Weak<()>,
    pwbs_since_fence: u64,
    /// Ring buffer of `(word address, observed value, store-version stamp)` triples
    /// flushed this epoch. The stamp is the backend's store version at flush time;
    /// a dedup hit requires it to be unchanged (see the module docs).
    recent: [(usize, u64, u64); RECENT_FLUSHES],
    recent_len: usize,
    next_slot: usize,
}

impl ThreadState {
    fn new(id: u64, alive: Weak<()>) -> Self {
        Self {
            id,
            alive,
            pwbs_since_fence: 0,
            recent: [(0, 0, 0); RECENT_FLUSHES],
            recent_len: 0,
            next_slot: 0,
        }
    }

    fn note_flushed(&mut self, word: usize, val: u64, stamp: u64) {
        self.recent[self.next_slot] = (word, val, stamp);
        self.next_slot = (self.next_slot + 1) % RECENT_FLUSHES;
        self.recent_len = (self.recent_len + 1).min(RECENT_FLUSHES);
    }
}

thread_local! {
    static STATES: RefCell<Vec<ThreadState>> = const { RefCell::new(Vec::new()) };
}

/// Per-backend-instance handle to the per-thread epoch state. See the module docs.
///
/// The handle is cheap to create and thread-safe to share; all per-thread state is
/// materialised lazily in thread-local storage on first use.
pub struct PersistEpoch {
    id: u64,
    /// Liveness token: thread-local entries hold a [`Weak`] to it, so dropping the
    /// epoch (i.e. its backend) makes every thread's state for it purgeable.
    alive: Arc<()>,
}

impl Default for PersistEpoch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PersistEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistEpoch")
            .field("id", &self.id)
            .finish()
    }
}

impl PersistEpoch {
    /// Create a handle with a fresh process-unique id.
    pub fn new() -> Self {
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            alive: Arc::new(()),
        }
    }

    /// Run `f` on the calling thread's state for this backend, creating it on
    /// first use. The table is scanned newest-first (the most recently created
    /// backend is almost always the active one).
    fn with_state<R>(&self, f: impl FnOnce(&mut ThreadState) -> R) -> R {
        STATES.with(|states| {
            let mut states = states.borrow_mut();
            if let Some(pos) = states.iter().rposition(|s| s.id == self.id) {
                return f(&mut states[pos]);
            }
            // Slow path (first use of this backend on this thread): purge entries
            // of dropped backends before growing the table, so the hot path above
            // never pays for the scan.
            if states.len() > PURGE_THRESHOLD {
                states.retain(|s| s.alive.strong_count() > 0);
            }
            states.push(ThreadState::new(self.id, Arc::downgrade(&self.alive)));
            let last = states.last_mut().expect("just pushed");
            f(last)
        })
    }

    /// Record a `pwb` by the calling thread: the thread is dirty until its next
    /// fence.
    #[inline]
    pub fn note_pwb(&self) {
        self.with_state(|s| s.pwbs_since_fence += 1);
    }

    /// Record a `pfence` by the calling thread: close the epoch (clean the dirty
    /// count and forget the recently-flushed set).
    #[inline]
    pub fn note_pfence(&self) {
        self.with_state(|s| {
            s.pwbs_since_fence = 0;
            s.recent_len = 0;
            s.next_slot = 0;
        });
    }

    /// `true` when the calling thread has issued no `pwb` through this backend
    /// since its last `pfence` — i.e. a fence right now would persist nothing.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.with_state(|s| s.pwbs_since_fence == 0)
    }

    /// Number of `pwb`s the calling thread has issued this epoch (diagnostic).
    pub fn pending_pwbs(&self) -> u64 {
        self.with_state(|s| s.pwbs_since_fence)
    }

    /// Record that the calling thread flushed `word` while it held `val`, with the
    /// backend's store version (`stamp`) at flush time.
    #[inline]
    pub fn note_flushed(&self, word: usize, val: u64, stamp: u64) {
        self.with_state(|s| s.note_flushed(word, val, stamp));
    }

    /// Record a read-side `pwb` of `word` holding `val` (stamped with the backend's
    /// store version at flush time) in one table access: equivalent to
    /// [`note_pwb`](Self::note_pwb) + [`note_flushed`](Self::note_flushed), for the
    /// `pwb_dedup` miss path.
    #[inline]
    pub fn note_pwb_flushed(&self, word: usize, val: u64, stamp: u64) {
        self.with_state(|s| {
            s.pwbs_since_fence += 1;
            s.note_flushed(word, val, stamp);
        });
    }

    /// `true` when the calling thread already flushed `word` holding exactly `val`
    /// in the current epoch *and* no store has been recorded through the backend
    /// since (`stamp` equals the stamp recorded at flush time) — the condition
    /// under which skipping the re-flush is unconditionally sound (module docs).
    #[inline]
    pub fn recently_flushed(&self, word: usize, val: u64, stamp: u64) -> bool {
        self.with_state(|s| s.recent[..s.recent_len].contains(&(word, val, stamp)))
    }
}

/// Shared elision driver for [`pfence_if_dirty`](crate::PmemBackend::pfence_if_dirty)
/// implementations: `true` when the fence should be *skipped* (elision on and the
/// calling thread clean), recording the elision stat when counting is on.
#[inline]
pub(crate) fn try_elide_pfence(
    elision: ElisionMode,
    epoch: &PersistEpoch,
    stats: Option<&PmemStats>,
) -> bool {
    if elision.is_enabled() && epoch.is_clean() {
        if let Some(stats) = stats {
            stats.record_elided_pfence();
        }
        return true;
    }
    false
}

/// Shared elision driver for [`pwb_dedup`](crate::PmemBackend::pwb_dedup)
/// implementations: `true` when the flush should be *skipped* (elision on, the
/// word already flushed with this value in the current epoch, and the backend's
/// store version unchanged since that flush), recording the elision stat when
/// counting is on. On a miss the caller issues the `pwb` and then records the
/// flush with [`PersistEpoch::note_pwb_flushed`].
#[inline]
pub(crate) fn try_dedup_pwb(
    elision: ElisionMode,
    epoch: &PersistEpoch,
    word: usize,
    observed: u64,
    stamp: u64,
    stats: Option<&PmemStats>,
) -> bool {
    if elision.is_enabled() && epoch.recently_flushed(word, observed, stamp) {
        if let Some(stats) = stats {
            stats.record_elided_pwb();
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thread_is_clean() {
        let e = PersistEpoch::new();
        assert!(e.is_clean());
        assert_eq!(e.pending_pwbs(), 0);
    }

    #[test]
    fn pwb_dirties_and_pfence_cleans() {
        let e = PersistEpoch::new();
        e.note_pwb();
        e.note_pwb();
        assert!(!e.is_clean());
        assert_eq!(e.pending_pwbs(), 2);
        e.note_pfence();
        assert!(e.is_clean());
    }

    #[test]
    fn recently_flushed_is_keyed_by_word_value_and_stamp() {
        let e = PersistEpoch::new();
        e.note_flushed(0x1000, 7, 3);
        assert!(e.recently_flushed(0x1000, 7, 3));
        assert!(
            !e.recently_flushed(0x1000, 8, 3),
            "value mismatch must reflush"
        );
        assert!(!e.recently_flushed(0x1008, 7, 3), "other word must reflush");
        assert!(
            !e.recently_flushed(0x1000, 7, 4),
            "an intervening store (version bump) must reflush: ABA closed"
        );
    }

    #[test]
    fn pfence_forgets_the_recent_set() {
        let e = PersistEpoch::new();
        e.note_pwb();
        e.note_flushed(0x40, 1, 0);
        e.note_pfence();
        assert!(!e.recently_flushed(0x40, 1, 0));
    }

    #[test]
    fn recent_set_is_a_bounded_ring() {
        let e = PersistEpoch::new();
        for i in 0..RECENT_FLUSHES + 2 {
            e.note_flushed(0x1000 + i * 8, i as u64, 0);
        }
        // The two oldest entries were evicted, the rest are still present.
        assert!(!e.recently_flushed(0x1000, 0, 0));
        assert!(!e.recently_flushed(0x1008, 1, 0));
        assert!(e.recently_flushed(0x1010, 2, 0));
        assert!(e.recently_flushed(
            0x1000 + (RECENT_FLUSHES + 1) * 8,
            (RECENT_FLUSHES + 1) as u64,
            0
        ));
    }

    #[test]
    fn instances_do_not_cross_contaminate() {
        // The satellite invariant: two backends on one thread keep separate epochs.
        let a = PersistEpoch::new();
        let b = PersistEpoch::new();
        a.note_pwb();
        assert!(!a.is_clean());
        assert!(b.is_clean(), "backend B must not see backend A's pwb");
        b.note_pfence();
        assert!(!a.is_clean(), "a fence through B must not clean A");
    }

    #[test]
    fn state_is_per_thread() {
        let e = std::sync::Arc::new(PersistEpoch::new());
        e.note_pwb();
        let e2 = std::sync::Arc::clone(&e);
        std::thread::spawn(move || {
            assert!(e2.is_clean(), "another thread starts its own epoch");
            e2.note_pwb();
            e2.note_pfence();
        })
        .join()
        .unwrap();
        assert!(!e.is_clean(), "remote fences must not clean this thread");
    }

    #[test]
    fn dropped_instances_are_purged_from_thread_state() {
        // Create enough short-lived instances to cross the purge threshold, then
        // confirm the thread-local table does not keep growing without bound: the
        // dead entries' liveness tokens are gone, so a purge pass discards them.
        for _ in 0..4 * PURGE_THRESHOLD {
            let e = PersistEpoch::new();
            e.note_pwb();
        }
        let live = PersistEpoch::new();
        live.note_pwb(); // triggers a purge pass
        let len = STATES.with(|s| s.borrow().len());
        assert!(len <= PURGE_THRESHOLD + 2, "table grew to {len}");
    }

    #[test]
    fn elision_mode_round_trips() {
        assert_eq!(ElisionMode::parse("on"), Some(ElisionMode::Enabled));
        assert_eq!(ElisionMode::parse("off"), Some(ElisionMode::Disabled));
        assert_eq!(ElisionMode::parse("maybe"), None);
        assert_eq!(ElisionMode::Enabled.name(), "on");
        assert_eq!(ElisionMode::Disabled.name(), "off");
        assert!(ElisionMode::default().is_enabled());
    }
}
