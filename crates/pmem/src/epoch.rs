//! **Persist epochs**: the bookkeeping behind redundant-fence and duplicate-flush
//! elision, owned by an explicit per-thread handle.
//!
//! ## The observation
//!
//! A `pfence` only has an effect when the calling thread has issued at least one
//! `pwb` since its previous fence — the adversarial tracker model makes this
//! explicit (its `on_pfence` early-returns on an empty pending set), and real
//! hardware agrees: an `sfence` with no outstanding `clwb`s orders nothing that
//! x86-TSO had not already ordered. FliT's hot path issues fences *pessimistically*
//! (a leading fence before every shared store, a completion fence after every
//! operation), so on read-mostly workloads nearly every fence is such a no-op.
//!
//! A **persist epoch** is the interval between two consecutive `pfence`s of one
//! logical thread of execution *through one backend*. Within an epoch the thread
//! tracks:
//!
//! * `pwbs_since_fence` — how many write-backs it has issued ("is it *dirty*?");
//! * a small *recently-flushed* set of `(word address, observed value)` pairs.
//!
//! ## Explicit ownership (no thread-locals)
//!
//! Earlier revisions kept this state in `thread_local!` tables keyed by backend
//! instance, which made thread identity ambient: nothing outside the thread could
//! observe or step its persistence state, and short-lived worker threads leaked
//! retired entries until a purge pass ran. The state now lives in a plain
//! [`PersistEpoch`] value **owned by whoever represents the logical thread** — in
//! practice the `FlitHandle` of the `flit` crate, which passes it into every
//! persistence instruction through a [`PmemSession`](crate::PmemSession). Dropping
//! the handle drops the state: there is nothing left to purge, and a controlled
//! scheduler can own N epochs and interleave them deterministically on one OS
//! thread.
//!
//! The soundness argument is unchanged but now *per handle*: a handle is clean
//! exactly when it has issued no `pwb` through its session since its last fence,
//! and only instructions issued through that session are attributed to it. Code
//! that bypasses the session (raw backend calls during construction) must fence
//! its own write-backs before returning, which every construction path does.
//!
//! ## Why the dedup is unconditionally sound: store-version stamps
//!
//! Keying the recently-flushed set by `(address, value)` alone would admit a narrow
//! overwrite-and-restore (ABA) hole: a remote thread stores a different value and a
//! second remote store restores the original, all between the recorded flush and
//! the dedup hit — the reader's pending set then holds a snapshot that is
//! value-equal but *persistence*-stale. Each dedup entry therefore additionally
//! carries the backend's [`store_version`](crate::PmemBackend::store_version) — a
//! monotone counter of every store recorded through the backend — at flush time,
//! and a dedup hit requires the version to be **unchanged**. If no store at all was
//! recorded since the flush, no overwrite (let alone an overwrite-and-restore) can
//! have happened, so the pending snapshot is exactly the current value and skipping
//! the re-flush is sound with no caveat. Fence elision never needed a caveat: a
//! clean handle's fence persists nothing under any interleaving.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use flit_obs::FlightRecorder;

/// Whether a session applies persist-epoch elision or issues the paper-literal
/// instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElisionMode {
    /// Skip no-op fences and duplicate read-side flushes (the default).
    #[default]
    Enabled,
    /// Issue every fence and flush exactly as Algorithm 4 writes them. Used for
    /// A/B statistics (`BENCH_flit.json` records both streams) and for sweeping
    /// the paper-literal instruction stream in `flit-crashtest`.
    Disabled,
}

impl ElisionMode {
    /// `true` when elision is enabled.
    #[inline]
    pub fn is_enabled(self) -> bool {
        self == ElisionMode::Enabled
    }

    /// CLI-friendly key (`on` / `off`).
    pub fn name(self) -> &'static str {
        match self {
            ElisionMode::Enabled => "on",
            ElisionMode::Disabled => "off",
        }
    }

    /// Parse a CLI key (`on` / `off`).
    pub fn parse(s: &str) -> Option<ElisionMode> {
        match s {
            "on" => Some(ElisionMode::Enabled),
            "off" => Some(ElisionMode::Disabled),
            _ => None,
        }
    }
}

/// When a session's owning handle acknowledges operation durability: at every
/// completion fence, or in groups of up to `k` obligations committed by one
/// shared fence (group commit).
///
/// Chosen once at database construction and inherited by every handle. Under
/// `Batched(k)` an operation's completion *enqueues an obligation* on the
/// handle instead of fencing; the handle drains its queue — one `pfence`
/// committing every outstanding obligation — when the queue reaches `k`, on an
/// explicit flush, or on handle drop. The durability contract weakens
/// accordingly: a crash may lose operations that completed but were never
/// acknowledged, yet recovered state is always a consistent prefix that
/// includes every *acknowledged* operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Fence at every operation completion (the paper's Condition 4, and the
    /// default): an operation is durable before it returns.
    #[default]
    Immediate,
    /// Group commit: acknowledge completions in batches of up to `k`
    /// obligations, one fence per batch.
    Batched(usize),
}

impl CommitMode {
    /// `true` under any batched mode.
    #[inline]
    pub fn is_batched(self) -> bool {
        matches!(self, CommitMode::Batched(_))
    }

    /// The batch size `k`, or `None` under [`CommitMode::Immediate`].
    #[inline]
    pub fn batch_limit(self) -> Option<u64> {
        match self {
            CommitMode::Immediate => None,
            CommitMode::Batched(k) => Some(k.max(1) as u64),
        }
    }

    /// CLI-friendly key (`immediate` / `batched-<k>`).
    pub fn name(self) -> String {
        match self {
            CommitMode::Immediate => "immediate".to_string(),
            CommitMode::Batched(k) => format!("batched-{k}"),
        }
    }

    /// Parse a CLI key (`immediate` / `batched-<k>`, `k >= 1`).
    pub fn parse(s: &str) -> Option<CommitMode> {
        if s == "immediate" {
            return Some(CommitMode::Immediate);
        }
        let k: usize = s.strip_prefix("batched-")?.parse().ok()?;
        if k == 0 {
            return None;
        }
        Some(CommitMode::Batched(k))
    }

    /// Encode the mode as a pool-superblock compat word: `1` for immediate,
    /// `2 | k << 8` for batched. Zero (a fresh page) never decodes, so a pool
    /// whose commit word was torn or never written is detectably invalid.
    pub fn compat_word(self) -> u64 {
        match self {
            CommitMode::Immediate => 1,
            CommitMode::Batched(k) => 2 | (k as u64) << 8,
        }
    }

    /// Decode a pool-superblock compat word; `None` for anything
    /// [`compat_word`](Self::compat_word) cannot produce.
    pub fn from_compat_word(word: u64) -> Option<CommitMode> {
        match word & 0xFF {
            1 if word == 1 => Some(CommitMode::Immediate),
            2 => {
                let k = (word >> 8) as usize;
                (k >= 1).then_some(CommitMode::Batched(k))
            }
            _ => None,
        }
    }
}

/// Capacity of the per-handle recently-flushed set. Small on purpose: the set only
/// needs to cover the reads of one operation (it is cleared on every fence), and a
/// bounded ring keeps the lookup a handful of compares.
const RECENT_FLUSHES: usize = 8;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Per-handle persist-epoch state: the dirty counter and the recently-flushed set
/// of one logical thread of execution. See the module docs.
///
/// The state is a plain value with interior mutability (`Cell`s): it is `Send` —
/// a handle may migrate between OS threads — but deliberately **not** `Sync`,
/// because an epoch describes exactly one logical thread. There is no global
/// registry and no thread-local table: dropping the epoch (with its handle) is the
/// only cleanup that exists or is needed.
pub struct PersistEpoch {
    id: u64,
    pwbs_since_fence: Cell<u64>,
    /// Ring buffer of `(word address, observed value, store-version stamp)` triples
    /// flushed this epoch. The stamp is the backend's store version at flush time;
    /// a dedup hit requires it to be unchanged (see the module docs). Per-entry
    /// `Cell`s so a record writes one slot and a lookup scans in place (a single
    /// whole-array `Cell` would memcpy all 192 bytes on every access).
    recent: [Cell<(usize, u64, u64)>; RECENT_FLUSHES],
    recent_len: Cell<usize>,
    next_slot: Cell<usize>,
    /// Completion obligations enqueued on this handle over its lifetime
    /// (group commit, [`CommitMode::Batched`]). Monotone; ticket targets are
    /// cut from it.
    obligations_enqueued: Cell<u64>,
    /// Obligations enqueued but not yet acknowledged by a batch drain. Note
    /// this is *not* cleared by [`note_pfence`](Self::note_pfence): a fence
    /// makes pending write-backs durable, but acknowledgment is a separate,
    /// explicit act of the owning handle (the drain), so that the crashtest
    /// harness can model — and break — the two independently.
    obligations_pending: Cell<u64>,
    /// Flight recorder for this handle's persistence events. A real ring only
    /// under the `flight-recorder` cargo feature; a zero-sized no-op otherwise
    /// (see `flit-obs`). Shared (`Clone`) so a database can snapshot the tail
    /// from another thread while the handle keeps recording.
    flight: FlightRecorder,
    /// Epoch-local mirror of the ring's armed flag, kept so the per-operation
    /// session constructor reads a plain cell on a line it already touches
    /// instead of chasing the shared ring's atomic. Set by
    /// [`arm_flight`](Self::arm_flight) — the owning handle is the only
    /// arming path that reaches sessions.
    flight_armed: Cell<bool>,
}

impl Default for PersistEpoch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PersistEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistEpoch")
            .field("id", &self.id)
            .field("pending_pwbs", &self.pwbs_since_fence.get())
            .finish()
    }
}

impl PersistEpoch {
    /// Create a fresh (clean) epoch with a process-unique id.
    pub fn new() -> Self {
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            pwbs_since_fence: Cell::new(0),
            recent: std::array::from_fn(|_| Cell::new((0, 0, 0))),
            recent_len: Cell::new(0),
            next_slot: Cell::new(0),
            obligations_enqueued: Cell::new(0),
            obligations_pending: Cell::new(0),
            flight: FlightRecorder::new(),
            flight_armed: Cell::new(false),
        }
    }

    /// This handle's persistence flight recorder (a no-op unless the
    /// `flight-recorder` cargo feature is enabled).
    #[inline]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Arm the flight recorder *through this epoch* so sessions constructed
    /// from it start recording. Arming the ring directly still works for
    /// snapshot readers, but only this path flips the epoch-local hint the
    /// per-operation hot path checks.
    pub fn arm_flight(&self) {
        self.flight.arm();
        self.flight_armed.set(true);
    }

    /// Whether [`arm_flight`](Self::arm_flight) has been called: the cheap,
    /// epoch-local gate the session constructor samples once per operation.
    #[inline]
    pub fn flight_armed(&self) -> bool {
        FlightRecorder::ENABLED && self.flight_armed.get()
    }

    /// Process-unique id of this epoch (diagnostics; doubles as the owning
    /// handle's identity in debug output).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record a `pwb` by the owning handle: it is dirty until its next fence.
    #[inline]
    pub fn note_pwb(&self) {
        self.pwbs_since_fence.set(self.pwbs_since_fence.get() + 1);
    }

    /// Record a `pfence` by the owning handle: close the epoch (clean the dirty
    /// count and forget the recently-flushed set).
    #[inline]
    pub fn note_pfence(&self) {
        self.pwbs_since_fence.set(0);
        self.recent_len.set(0);
        self.next_slot.set(0);
    }

    /// `true` when the owning handle has issued no `pwb` since its last `pfence`
    /// — i.e. a fence right now would persist nothing.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.pwbs_since_fence.get() == 0
    }

    /// Number of `pwb`s the owning handle has issued this epoch (diagnostic).
    pub fn pending_pwbs(&self) -> u64 {
        self.pwbs_since_fence.get()
    }

    /// Record that the owning handle flushed `word` while it held `val`, with the
    /// backend's store version (`stamp`) at flush time.
    #[inline]
    pub fn note_flushed(&self, word: usize, val: u64, stamp: u64) {
        self.recent[self.next_slot.get()].set((word, val, stamp));
        self.next_slot
            .set((self.next_slot.get() + 1) % RECENT_FLUSHES);
        self.recent_len
            .set((self.recent_len.get() + 1).min(RECENT_FLUSHES));
    }

    /// Record a read-side `pwb` of `word` holding `val` (stamped with the backend's
    /// store version at flush time): equivalent to [`note_pwb`](Self::note_pwb) +
    /// [`note_flushed`](Self::note_flushed), for the `pwb_dedup` miss path.
    #[inline]
    pub fn note_pwb_flushed(&self, word: usize, val: u64, stamp: u64) {
        self.note_pwb();
        self.note_flushed(word, val, stamp);
    }

    /// Enqueue one completion obligation on the owning handle (group commit):
    /// the operation has linearized but its durability is not yet
    /// acknowledged. Returns the new pending count, so the caller can compare
    /// it against the batch limit.
    #[inline]
    pub fn note_obligation(&self) -> u64 {
        self.obligations_enqueued
            .set(self.obligations_enqueued.get() + 1);
        let pending = self.obligations_pending.get() + 1;
        self.obligations_pending.set(pending);
        pending
    }

    /// Obligations enqueued on this handle over its lifetime (monotone).
    #[inline]
    pub fn enqueued_obligations(&self) -> u64 {
        self.obligations_enqueued.get()
    }

    /// Obligations enqueued but not yet acknowledged by a drain.
    #[inline]
    pub fn pending_obligations(&self) -> u64 {
        self.obligations_pending.get()
    }

    /// Obligations acknowledged so far (enqueued minus pending).
    #[inline]
    pub fn committed_obligations(&self) -> u64 {
        self.obligations_enqueued.get() - self.obligations_pending.get()
    }

    /// Acknowledge every pending obligation (the bookkeeping half of a batch
    /// drain — the owning handle must fence *before* calling this). Returns
    /// how many obligations were acknowledged.
    #[inline]
    pub fn take_obligations(&self) -> u64 {
        let pending = self.obligations_pending.get();
        self.obligations_pending.set(0);
        pending
    }

    /// `true` when the owning handle already flushed `word` holding exactly `val`
    /// in the current epoch *and* no store has been recorded through the backend
    /// since (`stamp` equals the stamp recorded at flush time) — the condition
    /// under which skipping the re-flush is unconditionally sound (module docs).
    #[inline]
    pub fn recently_flushed(&self, word: usize, val: u64, stamp: u64) -> bool {
        self.recent[..self.recent_len.get()]
            .iter()
            .any(|slot| slot.get() == (word, val, stamp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_epoch_is_clean() {
        let e = PersistEpoch::new();
        assert!(e.is_clean());
        assert_eq!(e.pending_pwbs(), 0);
    }

    #[test]
    fn pwb_dirties_and_pfence_cleans() {
        let e = PersistEpoch::new();
        e.note_pwb();
        e.note_pwb();
        assert!(!e.is_clean());
        assert_eq!(e.pending_pwbs(), 2);
        e.note_pfence();
        assert!(e.is_clean());
    }

    #[test]
    fn recently_flushed_is_keyed_by_word_value_and_stamp() {
        let e = PersistEpoch::new();
        e.note_flushed(0x1000, 7, 3);
        assert!(e.recently_flushed(0x1000, 7, 3));
        assert!(
            !e.recently_flushed(0x1000, 8, 3),
            "value mismatch must reflush"
        );
        assert!(!e.recently_flushed(0x1008, 7, 3), "other word must reflush");
        assert!(
            !e.recently_flushed(0x1000, 7, 4),
            "an intervening store (version bump) must reflush: ABA closed"
        );
    }

    #[test]
    fn pfence_forgets_the_recent_set() {
        let e = PersistEpoch::new();
        e.note_pwb();
        e.note_flushed(0x40, 1, 0);
        e.note_pfence();
        assert!(!e.recently_flushed(0x40, 1, 0));
    }

    #[test]
    fn recent_set_is_a_bounded_ring() {
        let e = PersistEpoch::new();
        for i in 0..RECENT_FLUSHES + 2 {
            e.note_flushed(0x1000 + i * 8, i as u64, 0);
        }
        // The two oldest entries were evicted, the rest are still present.
        assert!(!e.recently_flushed(0x1000, 0, 0));
        assert!(!e.recently_flushed(0x1008, 1, 0));
        assert!(e.recently_flushed(0x1010, 2, 0));
        assert!(e.recently_flushed(
            0x1000 + (RECENT_FLUSHES + 1) * 8,
            (RECENT_FLUSHES + 1) as u64,
            0
        ));
    }

    #[test]
    fn epochs_are_independent_values() {
        // Two epochs on one OS thread (two handles) never cross-contaminate: the
        // state is keyed by ownership, not by thread identity.
        let a = PersistEpoch::new();
        let b = PersistEpoch::new();
        a.note_pwb();
        assert!(!a.is_clean());
        assert!(b.is_clean(), "epoch B must not see epoch A's pwb");
        b.note_pfence();
        assert!(!a.is_clean(), "a fence through B must not clean A");
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn epoch_state_travels_with_the_value_across_threads() {
        // A handle outliving its spawning thread keeps its dirty state: the epoch
        // is `Send`, and nothing about it is keyed to the OS thread.
        let e = PersistEpoch::new();
        e.note_pwb();
        let e = std::thread::spawn(move || {
            assert!(!e.is_clean(), "dirtiness moved with the value");
            e.note_pfence();
            e
        })
        .join()
        .unwrap();
        assert!(
            e.is_clean(),
            "the fence on the other thread closed the epoch"
        );
    }

    #[test]
    fn commit_mode_round_trips() {
        assert_eq!(CommitMode::parse("immediate"), Some(CommitMode::Immediate));
        assert_eq!(CommitMode::parse("batched-8"), Some(CommitMode::Batched(8)));
        assert_eq!(CommitMode::parse("batched-0"), None, "k must be positive");
        assert_eq!(CommitMode::parse("batched-"), None);
        assert_eq!(CommitMode::parse("eventually"), None);
        assert_eq!(CommitMode::Immediate.name(), "immediate");
        assert_eq!(CommitMode::Batched(4).name(), "batched-4");
        assert_eq!(CommitMode::Batched(4).batch_limit(), Some(4));
        assert_eq!(CommitMode::Immediate.batch_limit(), None);
        assert!(!CommitMode::default().is_batched());
    }

    #[test]
    fn obligations_accumulate_and_drain_independently_of_fences() {
        let e = PersistEpoch::new();
        assert_eq!(e.note_obligation(), 1);
        assert_eq!(e.note_obligation(), 2);
        assert_eq!(e.enqueued_obligations(), 2);
        assert_eq!(e.pending_obligations(), 2);
        assert_eq!(e.committed_obligations(), 0);
        // A fence alone does not acknowledge anything: the drain is explicit.
        e.note_pwb();
        e.note_pfence();
        assert_eq!(e.pending_obligations(), 2);
        assert_eq!(e.take_obligations(), 2);
        assert_eq!(e.pending_obligations(), 0);
        assert_eq!(e.committed_obligations(), 2);
        assert_eq!(e.enqueued_obligations(), 2, "enqueued stays monotone");
    }

    #[test]
    fn elision_mode_round_trips() {
        assert_eq!(ElisionMode::parse("on"), Some(ElisionMode::Enabled));
        assert_eq!(ElisionMode::parse("off"), Some(ElisionMode::Disabled));
        assert_eq!(ElisionMode::parse("maybe"), None);
        assert_eq!(ElisionMode::Enabled.name(), "on");
        assert_eq!(ElisionMode::Disabled.name(), "off");
        assert!(ElisionMode::default().is_enabled());
    }
}
