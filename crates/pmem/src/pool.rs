//! File-backed persistent pools: the real-NVRAM substrate.
//!
//! Everywhere else in the workspace, "persistent memory" is a heap allocation
//! whose durability is *modelled* by [`SimNvram`](crate::SimNvram)'s tracker.
//! This module provides the production analogue: a [`PoolFile`] is a regular
//! file (or a DAX-mapped device file) mapped `MAP_SHARED` into the process, so
//! every completed store lands in the file image and survives the process being
//! SIGKILLed mid-traffic. Arenas carve their header and chunk regions out of
//! the mapping instead of the heap; nothing above the region layer changes.
//!
//! ## Layout
//!
//! ```text
//! offset 0        4096          20480                                  len
//! +---------------+--------------+--------------------------------------+
//! |  superblock   |  arena dir   |  data (bump-allocated, never reused) |
//! |  (one page)   |  32 × 512 B  |  headers and chunks, cache-aligned   |
//! +---------------+--------------+--------------------------------------+
//! ```
//!
//! **Superblock** (word offsets): `0` magic `"FLITPOOL"`, `8` layout version,
//! `16` commit-mode compat word (see [`CommitMode::compat_word`]), `24` the
//! virtual base address of the original mapping, `32` the data bump cursor,
//! `40` the number of published arena-directory entries.
//!
//! **Arena directory entry** (relative word offsets): `0` state (1 = live),
//! `8` slot size, `16` slots per chunk, `24` header byte-offset, `32` chunk
//! count, `40` block-record count, `64..` up to 40 chunk byte-offsets, `384..`
//! up to 8 `(first_slot, slot_count)` multi-slot block records (the hash
//! table's bucket directory is such a block; post-crash GC needs its span).
//!
//! ## Fixed-base remapping
//!
//! FliT structures link nodes by *absolute* address, so a reopened pool is only
//! meaningful if it maps at the address it was created at. The superblock
//! records that base; [`PoolFile::open`] remaps with `MAP_FIXED_NOREPLACE` and
//! returns [`OpenError::MappingConflict`] if the range is taken (the PMDK
//! approach). Creation biases the first mapping into a quiet corner of the
//! address space so reopen conflicts are rare in practice.
//!
//! ## Crash-ordering discipline
//!
//! Pool metadata follows the same persist-before-publish rule as the
//! structures: a directory entry is fully written before `arena_count` is
//! bumped, a chunk offset before the chunk count, and the superblock magic is
//! the *last* word written at creation. A crash mid-publish therefore leaves
//! either the old state or the new state, never a half-visible entry —
//! [`PoolFile::open`] validates everything it reads and returns a typed
//! [`OpenError`] rather than panicking on a corrupt or torn pool.

use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache_line::{CACHE_LINE_SIZE, WORD_SIZE};
use crate::epoch::CommitMode;
use crate::region::{PmemRegion, ReserveError};

/// `"FLITPOOL"` in big-endian ASCII: the superblock magic.
pub const POOL_MAGIC: u64 = 0x464C_4954_504F_4F4C;
/// The pool layout version this build reads and writes.
pub const POOL_VERSION: u64 = 1;
/// Size of an OS page; the superblock occupies exactly one.
pub const PAGE_SIZE: usize = 4096;
/// Byte offset of the arena directory.
pub const DIR_OFFSET: usize = PAGE_SIZE;
/// Maximum number of arenas a pool can hold.
pub const MAX_ARENAS: usize = 32;
/// Bytes per arena-directory entry.
pub const DIR_ENTRY_BYTES: usize = 512;
/// Byte offset where bump-allocated arena data begins.
pub const DATA_OFFSET: usize = DIR_OFFSET + MAX_ARENAS * DIR_ENTRY_BYTES;
/// Maximum chunks a single pool-backed arena can grow to.
pub const MAX_CHUNKS_PER_ARENA: usize = 40;
/// Maximum multi-slot block records per arena.
pub const MAX_BLOCKS_PER_ARENA: usize = 8;

/// Superblock word offsets.
pub mod superblock {
    /// Magic word (`"FLITPOOL"`).
    pub const MAGIC: usize = 0;
    /// Layout version.
    pub const VERSION: usize = 8;
    /// Commit-mode compat word.
    pub const COMMIT: usize = 16;
    /// Virtual base address of the original mapping.
    pub const BASE: usize = 24;
    /// Data bump cursor (byte offset of the next free data byte).
    pub const NEXT_FREE: usize = 32;
    /// Number of published arena-directory entries.
    pub const ARENA_COUNT: usize = 40;
}

/// Arena-directory entry word offsets (relative to the entry).
pub mod direntry {
    /// Entry state: 0 = empty, 1 = live.
    pub const STATE: usize = 0;
    /// Slot size in bytes.
    pub const SLOT_SIZE: usize = 8;
    /// Slots per chunk.
    pub const CHUNK_SLOTS: usize = 16;
    /// Byte offset of the arena header region.
    pub const HEADER_OFF: usize = 24;
    /// Number of published chunks.
    pub const NCHUNKS: usize = 32;
    /// Number of published block records.
    pub const NBLOCKS: usize = 40;
    /// First chunk byte-offset; subsequent chunks at +8 each.
    pub const CHUNKS: usize = 64;
    /// First block record (`first_slot`, then `slot_count` at +8); 16 bytes each.
    pub const BLOCKS: usize = 384;
}

/// Why a pool could not be created or opened. Every map/validate failure in
/// the pool layer surfaces as one of these variants — corrupt pools produce
/// diagnostics, never panics.
#[derive(Debug)]
pub enum OpenError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file is smaller than the metadata area (or than its own superblock
    /// claims): a truncated pool.
    Truncated {
        /// Actual file length in bytes.
        len: u64,
        /// Minimum length the pool needs to be readable.
        need: u64,
    },
    /// The superblock magic is not `"FLITPOOL"`.
    BadMagic {
        /// The word found at offset 0.
        found: u64,
    },
    /// The pool was written by an incompatible layout version.
    BadVersion {
        /// Version recorded in the pool.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// A superblock field is out of range (base address unaligned, bump cursor
    /// past the end of the file, arena count over the directory capacity, …).
    BadSuperblock {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// `mmap` itself failed.
    MapFailed {
        /// The OS errno.
        errno: i32,
    },
    /// The pool's recorded base address is already occupied in this process,
    /// so the file cannot be remapped where its pointers point.
    MappingConflict {
        /// The base address the pool was created at.
        wanted: usize,
    },
    /// The data area is exhausted (or the arena directory is full).
    PoolFull {
        /// Bytes requested.
        requested: usize,
        /// Bytes (or directory slots) still available.
        available: usize,
    },
    /// The pool was created under a different commit mode than the one
    /// requested; reopening with mismatched batching would change the
    /// durability contract of already-acked operations.
    CommitModeMismatch {
        /// Mode decoded from the pool's compat word (`None` if undecodable).
        pool: Option<CommitMode>,
        /// Mode the caller asked for.
        requested: CommitMode,
    },
    /// An arena's directory entry or persisted header failed validation.
    ArenaHeader {
        /// Directory index of the arena.
        arena: usize,
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The slot size in the arena's persisted header disagrees with its
    /// directory entry.
    SlotSizeMismatch {
        /// Directory index of the arena.
        arena: usize,
        /// Slot size recorded in the arena header.
        header: u64,
        /// Slot size recorded in the directory entry.
        directory: u64,
    },
    /// A root-table entry has a key but a null or out-of-range offset: the
    /// entry was torn (or deliberately corrupted) and cannot be trusted.
    TornRootEntry {
        /// Directory index of the arena.
        arena: usize,
        /// Root-table entry index.
        entry: usize,
    },
    /// A heap reservation failed while building the in-memory pool handle.
    Reserve(ReserveError),
    /// Pools are not supported on this platform.
    Unsupported(&'static str),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "pool i/o error: {e}"),
            OpenError::Truncated { len, need } => {
                write!(f, "pool file truncated: {len} bytes, need at least {need}")
            }
            OpenError::BadMagic { found } => {
                write!(f, "not a flit pool: superblock magic {found:#018x}")
            }
            OpenError::BadVersion { found, supported } => {
                write!(
                    f,
                    "pool layout version {found} (this build supports {supported})"
                )
            }
            OpenError::BadSuperblock { reason } => write!(f, "corrupt superblock: {reason}"),
            OpenError::MapFailed { errno } => write!(f, "mmap failed (errno {errno})"),
            OpenError::MappingConflict { wanted } => write!(
                f,
                "pool base address {wanted:#x} is already mapped in this process"
            ),
            OpenError::PoolFull {
                requested,
                available,
            } => write!(f, "pool full: requested {requested}, available {available}"),
            OpenError::CommitModeMismatch { pool, requested } => match pool {
                Some(mode) => write!(
                    f,
                    "pool was created with commit mode {}, reopen requested {}",
                    mode.name(),
                    requested.name()
                ),
                None => write!(
                    f,
                    "pool commit-mode compat word is undecodable (reopen requested {})",
                    requested.name()
                ),
            },
            OpenError::ArenaHeader { arena, reason } => {
                write!(f, "arena {arena}: corrupt header: {reason}")
            }
            OpenError::SlotSizeMismatch {
                arena,
                header,
                directory,
            } => write!(
                f,
                "arena {arena}: header slot size {header} disagrees with directory {directory}"
            ),
            OpenError::TornRootEntry { arena, entry } => {
                write!(f, "arena {arena}: root-table entry {entry} is torn")
            }
            OpenError::Reserve(e) => write!(f, "pool reservation failed: {e}"),
            OpenError::Unsupported(what) => write!(f, "pools are unsupported here: {what}"),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenError::Io(e) => Some(e),
            OpenError::Reserve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

impl From<ReserveError> for OpenError {
    fn from(e: ReserveError) -> Self {
        OpenError::Reserve(e)
    }
}

/// Options for [`PoolFile::create`].
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// Total pool size in bytes (rounded up to a whole page). The data area is
    /// `capacity - 20 KiB`; it is bump-allocated and never reused.
    pub capacity: usize,
    /// Ask the kernel for a synchronous DAX mapping (`MAP_SYNC`), which makes
    /// CPU cache flushes durable without `msync`. Falls back to a plain shared
    /// mapping when the file system does not support DAX.
    pub dax: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            capacity: 64 << 20,
            dax: false,
        }
    }
}

impl PoolOptions {
    /// `PoolOptions` with an explicit capacity in bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }
}

#[cfg(unix)]
mod sys {
    //! Minimal raw-syscall surface: `mmap`/`munmap`/`msync` via the platform
    //! libc the binary is already linked against (no `libc` crate in-tree).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x01;
    #[cfg(target_os = "linux")]
    pub const MAP_SHARED_VALIDATE: c_int = 0x03;
    #[cfg(target_os = "linux")]
    pub const MAP_SYNC: c_int = 0x80000;
    #[cfg(target_os = "linux")]
    pub const MAP_FIXED_NOREPLACE: c_int = 0x100000;
    pub const MS_SYNC: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// Hint generator for fresh pool mappings: a quiet 1 TiB corner of the user
/// address space, advanced in 1 GiB strides so concurrent creations in one
/// process do not collide. Purely a hint — creation falls back to a
/// kernel-chosen address if the slot is taken.
#[cfg(target_os = "linux")]
fn next_base_hint() -> usize {
    use std::sync::atomic::AtomicUsize;
    static SLOT: AtomicUsize = AtomicUsize::new(0);
    const WINDOW: usize = 0x7B00_0000_0000;
    const STRIDE: usize = 1 << 30;
    const SLOTS: usize = 1 << 10;
    let pid = std::process::id() as usize;
    let slot = (SLOT.fetch_add(1, Ordering::Relaxed) + pid.wrapping_mul(0x9E37)) % SLOTS;
    WINDOW + slot * STRIDE
}

/// A mapped pool file. Holds the `mmap` for its whole lifetime; dropped, it
/// `msync`s and unmaps (which also makes in-process reopen-after-drop
/// deterministic: the base address is free again).
pub struct PoolFile {
    file: File,
    path: PathBuf,
    base: NonNull<u8>,
    len: usize,
    dax: bool,
    /// Serialises data-area bump allocation and directory publication.
    meta: Mutex<()>,
}

// SAFETY: the mapping is plain memory; `meta` serialises all metadata mutation
// and data ranges are handed out disjointly (bump allocation under the lock).
unsafe impl Send for PoolFile {}
unsafe impl Sync for PoolFile {}

impl PoolFile {
    /// Create a fresh pool at `path` (truncating any existing file), map it,
    /// and write its superblock. `commit_word` records the commit mode the
    /// owning database runs under (see [`CommitMode::compat_word`]).
    pub fn create(
        path: impl AsRef<Path>,
        opts: &PoolOptions,
        commit_word: u64,
    ) -> Result<Arc<Self>, OpenError> {
        #[cfg(not(unix))]
        {
            let _ = (path, opts, commit_word);
            Err(OpenError::Unsupported("mmap pools require a unix platform"))
        }
        #[cfg(unix)]
        {
            let len = opts
                .capacity
                .max(DATA_OFFSET + PAGE_SIZE)
                .div_ceil(PAGE_SIZE)
                * PAGE_SIZE;
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path.as_ref())?;
            file.set_len(len as u64)?;
            let (base, dax) = map_pool(&file, len, None, opts.dax)?;
            let pool = Arc::new(Self {
                file,
                path: path.as_ref().to_path_buf(),
                base,
                len,
                dax,
                meta: Mutex::new(()),
            });
            // Persist-before-publish at pool scale: every superblock field
            // lands before the magic word that marks the pool valid.
            pool.word(superblock::VERSION)
                .store(POOL_VERSION, Ordering::SeqCst);
            pool.word(superblock::COMMIT)
                .store(commit_word, Ordering::SeqCst);
            pool.word(superblock::BASE)
                .store(base.as_ptr() as u64, Ordering::SeqCst);
            pool.word(superblock::NEXT_FREE)
                .store(DATA_OFFSET as u64, Ordering::SeqCst);
            pool.word(superblock::ARENA_COUNT)
                .store(0, Ordering::SeqCst);
            pool.word(superblock::MAGIC)
                .store(POOL_MAGIC, Ordering::SeqCst);
            pool.sync()?;
            Ok(pool)
        }
    }

    /// Map an existing pool at the base address recorded in its superblock and
    /// validate all pool-level metadata. Arena-level validation happens when
    /// each arena is adopted ([`PoolArenaSlot::adopt`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<Self>, OpenError> {
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(OpenError::Unsupported("mmap pools require a unix platform"))
        }
        #[cfg(unix)]
        {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path.as_ref())?;
            let len = file.metadata()?.len();
            if len < DATA_OFFSET as u64 {
                return Err(OpenError::Truncated {
                    len,
                    need: DATA_OFFSET as u64,
                });
            }
            // Read the superblock through the file API first: nothing is mapped
            // until the metadata that controls the mapping has been vetted.
            let mut sb = [0u8; 48];
            file.read_exact(&mut sb)?;
            let sb_word = |off: usize| u64::from_le_bytes(sb[off..off + 8].try_into().unwrap());
            let magic = sb_word(superblock::MAGIC);
            if magic != POOL_MAGIC {
                return Err(OpenError::BadMagic { found: magic });
            }
            let version = sb_word(superblock::VERSION);
            if version != POOL_VERSION {
                return Err(OpenError::BadVersion {
                    found: version,
                    supported: POOL_VERSION,
                });
            }
            let base = sb_word(superblock::BASE) as usize;
            if base == 0 || base % PAGE_SIZE != 0 {
                return Err(OpenError::BadSuperblock {
                    reason: format!("recorded base address {base:#x} is not page-aligned"),
                });
            }
            let next_free = sb_word(superblock::NEXT_FREE);
            if next_free < DATA_OFFSET as u64 || next_free > len {
                return Err(OpenError::BadSuperblock {
                    reason: format!(
                        "bump cursor {next_free} outside the data area ({DATA_OFFSET}..={len})"
                    ),
                });
            }
            let arena_count = sb_word(superblock::ARENA_COUNT);
            if arena_count > MAX_ARENAS as u64 {
                return Err(OpenError::BadSuperblock {
                    reason: format!("arena count {arena_count} exceeds capacity {MAX_ARENAS}"),
                });
            }
            let map_len = len as usize;
            let (mapped, dax) = map_pool(&file, map_len, Some(base), false)?;
            Ok(Arc::new(Self {
                file,
                path: path.as_ref().to_path_buf(),
                base: mapped,
                len: map_len,
                dax,
                meta: Mutex::new(()),
            }))
        }
    }

    /// The word at byte offset `off`, as an atomic view into the mapping.
    fn word(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off % WORD_SIZE == 0 && off + WORD_SIZE <= self.len);
        // SAFETY: in-bounds, word-aligned, and the mapping lives as long as
        // `self`; AtomicU64 makes concurrent access well-defined.
        unsafe { &*(self.base.as_ptr().add(off) as *const AtomicU64) }
    }

    /// Base address the pool is mapped at.
    pub fn base_addr(&self) -> usize {
        self.base.as_ptr() as usize
    }

    /// Total mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` only for a zero-length mapping, which cannot exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path the pool was created or opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `true` when the mapping is a synchronous DAX mapping (`MAP_SYNC`):
    /// cache-line flushes are durable without `msync`.
    pub fn is_dax(&self) -> bool {
        self.dax
    }

    /// The commit-mode compat word recorded at creation.
    pub fn commit_word(&self) -> u64 {
        self.word(superblock::COMMIT).load(Ordering::SeqCst)
    }

    /// Number of published arena-directory entries.
    pub fn arena_count(&self) -> usize {
        self.word(superblock::ARENA_COUNT).load(Ordering::SeqCst) as usize
    }

    /// `msync` the whole mapping: makes the file image current even without
    /// DAX. Needed for power-failure durability on a plain file system; a
    /// SIGKILLed process's completed stores survive in the page cache anyway.
    pub fn sync(&self) -> Result<(), OpenError> {
        #[cfg(unix)]
        {
            // SAFETY: syncing the exact range this pool mapped.
            let rc = unsafe { sys::msync(self.base.as_ptr().cast(), self.len, sys::MS_SYNC) };
            if rc != 0 {
                return Err(OpenError::Io(std::io::Error::last_os_error()));
            }
        }
        // Metadata (length, timestamps) rides along with the data.
        self.file.sync_all()?;
        Ok(())
    }

    /// Bump-allocate `len` bytes (a multiple of the cache-line size) from the
    /// data area; returns the byte offset. Never reused — pool space is
    /// reclaimed at slot granularity by the arenas, not at range granularity.
    /// Caller holds `meta`.
    fn alloc_range_locked(&self, len: usize) -> Result<usize, OpenError> {
        let cursor = self.word(superblock::NEXT_FREE);
        let off = cursor.load(Ordering::SeqCst) as usize;
        if off + len > self.len {
            return Err(OpenError::PoolFull {
                requested: len,
                available: self.len - off,
            });
        }
        cursor.store((off + len) as u64, Ordering::SeqCst);
        Ok(off)
    }

    /// A borrowed [`PmemRegion`] over `len` bytes at byte offset `off`.
    fn carve(&self, off: usize, len: usize) -> PmemRegion {
        debug_assert!(off % CACHE_LINE_SIZE == 0);
        debug_assert!(off + len <= self.len);
        // SAFETY: in-bounds, cache-line-aligned range of the mapping, which the
        // Arc keeping `self` alive outlives; bump allocation never hands the
        // same range out twice.
        unsafe { PmemRegion::borrowed(self.base.as_ptr().add(off), len) }
    }

    /// Absolute byte offset of directory entry `index`.
    fn entry_off(index: usize) -> usize {
        DIR_OFFSET + index * DIR_ENTRY_BYTES
    }

    /// The directory word for entry `index` at relative offset `field`.
    fn entry_word(&self, index: usize, field: usize) -> &AtomicU64 {
        self.word(Self::entry_off(index) + field)
    }
}

impl Drop for PoolFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            // Best-effort clean shutdown: flush the page cache to the file,
            // then free the address range so the base can be remapped.
            // SAFETY: exact range this pool mapped; nothing dereferences the
            // mapping after drop (regions carved from it are owned by arenas
            // that are kept alive only alongside the Arc'd pool).
            unsafe {
                sys::msync(self.base.as_ptr().cast(), self.len, sys::MS_SYNC);
                sys::munmap(self.base.as_ptr().cast(), self.len);
            }
        }
    }
}

impl std::fmt::Debug for PoolFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolFile")
            .field("path", &self.path)
            .field("base", &format_args!("{:#x}", self.base_addr()))
            .field("len", &self.len)
            .field("dax", &self.dax)
            .field("arenas", &self.arena_count())
            .finish()
    }
}

/// Map `len` bytes of `file` shared, optionally at a fixed `hint` address
/// (reopen) and optionally requesting DAX semantics. Returns the mapping base
/// and whether a synchronous DAX mapping was obtained.
#[cfg(unix)]
fn map_pool(
    file: &File,
    len: usize,
    fixed: Option<usize>,
    want_dax: bool,
) -> Result<(NonNull<u8>, bool), OpenError> {
    use std::os::unix::io::AsRawFd;
    let fd = file.as_raw_fd();
    let prot = sys::PROT_READ | sys::PROT_WRITE;

    let try_map = |addr: usize, flags| {
        // SAFETY: mapping a file we own for its exact length; a fixed address
        // uses MAP_FIXED_NOREPLACE, which refuses rather than clobbers.
        let p = unsafe { sys::mmap(addr as *mut _, len, prot, flags, fd, 0) };
        if p == sys::MAP_FAILED {
            Err(std::io::Error::last_os_error().raw_os_error().unwrap_or(0))
        } else {
            Ok(p as *mut u8)
        }
    };

    // A reopen must land exactly at the recorded base: node pointers in the
    // pool are absolute addresses.
    if let Some(base) = fixed {
        #[cfg(target_os = "linux")]
        let flags = sys::MAP_SHARED | sys::MAP_FIXED_NOREPLACE;
        #[cfg(not(target_os = "linux"))]
        let flags = sys::MAP_SHARED;
        return match try_map(base, flags) {
            Ok(p) if p as usize == base => Ok((
                // SAFETY: mmap success is non-null.
                unsafe { NonNull::new_unchecked(p) },
                false,
            )),
            Ok(p) => {
                // Kernels without MAP_FIXED_NOREPLACE treat the address as a
                // hint; a mapping anywhere else is useless, so undo it.
                // SAFETY: unmapping the mapping just created.
                unsafe { sys::munmap(p.cast(), len) };
                Err(OpenError::MappingConflict { wanted: base })
            }
            // EEXIST: MAP_FIXED_NOREPLACE found a live mapping in the range.
            Err(17) => Err(OpenError::MappingConflict { wanted: base }),
            Err(errno) => Err(OpenError::MapFailed { errno }),
        };
    }

    // Fresh creation: try a DAX mapping first when asked, then a hinted plain
    // mapping (quiet address corner → reopen rarely conflicts), then whatever
    // the kernel picks.
    #[cfg(target_os = "linux")]
    if want_dax {
        if let Ok(p) = try_map(0, sys::MAP_SHARED_VALIDATE | sys::MAP_SYNC) {
            // SAFETY: mmap success is non-null.
            return Ok((unsafe { NonNull::new_unchecked(p) }, true));
        }
    }
    #[cfg(not(target_os = "linux"))]
    let _ = want_dax;
    #[cfg(target_os = "linux")]
    {
        for _ in 0..4 {
            let hint = next_base_hint();
            if let Ok(p) = try_map(hint, sys::MAP_SHARED | sys::MAP_FIXED_NOREPLACE) {
                if p as usize == hint {
                    // SAFETY: mmap success is non-null.
                    return Ok((unsafe { NonNull::new_unchecked(p) }, false));
                }
                // SAFETY: unmapping the mapping just created.
                unsafe { sys::munmap(p.cast(), len) };
            }
        }
    }
    match try_map(0, sys::MAP_SHARED) {
        Ok(p) => Ok((
            // SAFETY: mmap success is non-null.
            unsafe { NonNull::new_unchecked(p) },
            false,
        )),
        Err(errno) => Err(OpenError::MapFailed { errno }),
    }
}

/// An arena's binding to its pool: one directory entry plus the ability to
/// carve header and chunk regions out of the data area. Created fresh by
/// [`PoolArenaSlot::create`] or recovered by [`PoolArenaSlot::adopt`].
pub struct PoolArenaSlot {
    pool: Arc<PoolFile>,
    index: usize,
    slot_size: usize,
    chunk_slots: usize,
    header_off: usize,
    header_bytes: usize,
}

impl PoolArenaSlot {
    /// Claim the next directory entry, allocate the header region, and publish
    /// the entry (fields first, then the arena count — persist-before-publish).
    pub fn create(
        pool: &Arc<PoolFile>,
        slot_size: usize,
        chunk_slots: usize,
        header_bytes: usize,
    ) -> Result<Self, OpenError> {
        let _g = pool.meta.lock().unwrap();
        let count = pool.word(superblock::ARENA_COUNT).load(Ordering::SeqCst) as usize;
        if count >= MAX_ARENAS {
            return Err(OpenError::PoolFull {
                requested: 1,
                available: 0,
            });
        }
        let header_len = header_bytes.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let header_off = pool.alloc_range_locked(header_len)?;
        pool.entry_word(count, direntry::SLOT_SIZE)
            .store(slot_size as u64, Ordering::SeqCst);
        pool.entry_word(count, direntry::CHUNK_SLOTS)
            .store(chunk_slots as u64, Ordering::SeqCst);
        pool.entry_word(count, direntry::HEADER_OFF)
            .store(header_off as u64, Ordering::SeqCst);
        pool.entry_word(count, direntry::NCHUNKS)
            .store(0, Ordering::SeqCst);
        pool.entry_word(count, direntry::NBLOCKS)
            .store(0, Ordering::SeqCst);
        pool.entry_word(count, direntry::STATE)
            .store(1, Ordering::SeqCst);
        pool.word(superblock::ARENA_COUNT)
            .store((count + 1) as u64, Ordering::SeqCst);
        Ok(Self {
            pool: Arc::clone(pool),
            index: count,
            slot_size,
            chunk_slots,
            header_off,
            header_bytes: header_len,
        })
    }

    /// Bind to an existing directory entry, validating every field against the
    /// pool's bounds. Header-*content* validation (arena magic, high water,
    /// root table) is the arena layer's job; this validates the directory.
    pub fn adopt(
        pool: &Arc<PoolFile>,
        index: usize,
        header_bytes: usize,
    ) -> Result<Self, OpenError> {
        let bad = |reason: String| OpenError::ArenaHeader {
            arena: index,
            reason,
        };
        if index >= pool.arena_count() {
            return Err(bad(format!(
                "directory index {index} out of range (count {})",
                pool.arena_count()
            )));
        }
        let state = pool
            .entry_word(index, direntry::STATE)
            .load(Ordering::SeqCst);
        if state != 1 {
            return Err(bad(format!("directory entry state {state} is not live")));
        }
        let slot_size = pool
            .entry_word(index, direntry::SLOT_SIZE)
            .load(Ordering::SeqCst) as usize;
        if slot_size == 0 || slot_size % CACHE_LINE_SIZE != 0 {
            return Err(bad(format!(
                "directory slot size {slot_size} is not a positive multiple of {CACHE_LINE_SIZE}"
            )));
        }
        let chunk_slots = pool
            .entry_word(index, direntry::CHUNK_SLOTS)
            .load(Ordering::SeqCst) as usize;
        if chunk_slots == 0 {
            return Err(bad("directory chunk slot-count is zero".to_string()));
        }
        let chunk_bytes = chunk_slots
            .checked_mul(slot_size)
            .filter(|b| *b <= pool.len)
            .ok_or_else(|| {
                bad(format!(
                    "chunk geometry {chunk_slots}×{slot_size} overflows"
                ))
            })?;
        let header_len = header_bytes.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let header_off = pool
            .entry_word(index, direntry::HEADER_OFF)
            .load(Ordering::SeqCst) as usize;
        if header_off < DATA_OFFSET
            || header_off % CACHE_LINE_SIZE != 0
            || header_off + header_len > pool.len
        {
            return Err(bad(format!(
                "header offset {header_off} outside the data area"
            )));
        }
        let nchunks = pool
            .entry_word(index, direntry::NCHUNKS)
            .load(Ordering::SeqCst) as usize;
        if nchunks > MAX_CHUNKS_PER_ARENA {
            return Err(bad(format!(
                "chunk count {nchunks} exceeds capacity {MAX_CHUNKS_PER_ARENA}"
            )));
        }
        for c in 0..nchunks {
            let off = pool
                .entry_word(index, direntry::CHUNKS + c * WORD_SIZE)
                .load(Ordering::SeqCst) as usize;
            if off < DATA_OFFSET || off % CACHE_LINE_SIZE != 0 || off + chunk_bytes > pool.len {
                return Err(bad(format!("chunk {c} offset {off} outside the data area")));
            }
        }
        let nblocks = pool
            .entry_word(index, direntry::NBLOCKS)
            .load(Ordering::SeqCst) as usize;
        if nblocks > MAX_BLOCKS_PER_ARENA {
            return Err(bad(format!(
                "block-record count {nblocks} exceeds capacity {MAX_BLOCKS_PER_ARENA}"
            )));
        }
        let capacity_slots = nchunks * chunk_slots;
        for b in 0..nblocks {
            let rec = Self::entry_off_block(index, b);
            let first = pool.word(rec).load(Ordering::SeqCst) as usize;
            let nslots = pool.word(rec + WORD_SIZE).load(Ordering::SeqCst) as usize;
            if nslots == 0 || first + nslots > capacity_slots {
                return Err(bad(format!(
                    "block record {b} ({first}+{nslots} slots) outside {capacity_slots} mapped slots"
                )));
            }
        }
        Ok(Self {
            pool: Arc::clone(pool),
            index,
            slot_size,
            chunk_slots,
            header_off,
            header_bytes: header_len,
        })
    }

    /// Absolute byte offset of block record `b` of entry `index`.
    fn entry_off_block(index: usize, b: usize) -> usize {
        PoolFile::entry_off(index) + direntry::BLOCKS + b * 2 * WORD_SIZE
    }

    /// Directory index of this arena in its pool.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The pool this arena lives in.
    pub fn pool(&self) -> &Arc<PoolFile> {
        &self.pool
    }

    /// Slot size recorded in the directory entry.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Slots per chunk recorded in the directory entry.
    pub fn chunk_slots(&self) -> usize {
        self.chunk_slots
    }

    /// The arena's header region, carved from the data area.
    pub fn header_region(&self) -> PmemRegion {
        self.pool.carve(self.header_off, self.header_bytes)
    }

    /// Number of published chunks.
    pub fn chunk_count(&self) -> usize {
        self.pool
            .entry_word(self.index, direntry::NCHUNKS)
            .load(Ordering::SeqCst) as usize
    }

    /// Regions for every published chunk, in publication order.
    pub fn chunk_regions(&self) -> Vec<PmemRegion> {
        let bytes = self.chunk_slots * self.slot_size;
        (0..self.chunk_count())
            .map(|c| {
                let off = self
                    .pool
                    .entry_word(self.index, direntry::CHUNKS + c * WORD_SIZE)
                    .load(Ordering::SeqCst) as usize;
                self.pool.carve(off, bytes)
            })
            .collect()
    }

    /// Allocate and publish one more chunk (offset first, then the count).
    pub fn add_chunk(&self) -> Result<PmemRegion, OpenError> {
        let bytes = self.chunk_slots * self.slot_size;
        let _g = self.pool.meta.lock().unwrap();
        let n = self
            .pool
            .entry_word(self.index, direntry::NCHUNKS)
            .load(Ordering::SeqCst) as usize;
        if n >= MAX_CHUNKS_PER_ARENA {
            return Err(OpenError::PoolFull {
                requested: bytes,
                available: 0,
            });
        }
        let off = self.pool.alloc_range_locked(bytes)?;
        self.pool
            .entry_word(self.index, direntry::CHUNKS + n * WORD_SIZE)
            .store(off as u64, Ordering::SeqCst);
        self.pool
            .entry_word(self.index, direntry::NCHUNKS)
            .store((n + 1) as u64, Ordering::SeqCst);
        Ok(self.pool.carve(off, bytes))
    }

    /// Durably record a multi-slot block (`first_slot`, `nslots`) so post-crash
    /// GC treats the span as one object (record first, then the count).
    pub fn note_block(&self, first_slot: usize, nslots: usize) -> Result<(), OpenError> {
        let _g = self.pool.meta.lock().unwrap();
        let n = self
            .pool
            .entry_word(self.index, direntry::NBLOCKS)
            .load(Ordering::SeqCst) as usize;
        if n >= MAX_BLOCKS_PER_ARENA {
            return Err(OpenError::PoolFull {
                requested: 1,
                available: 0,
            });
        }
        let rec = Self::entry_off_block(self.index, n);
        self.pool
            .word(rec)
            .store(first_slot as u64, Ordering::SeqCst);
        self.pool
            .word(rec + WORD_SIZE)
            .store(nslots as u64, Ordering::SeqCst);
        self.pool
            .entry_word(self.index, direntry::NBLOCKS)
            .store((n + 1) as u64, Ordering::SeqCst);
        Ok(())
    }

    /// All recorded multi-slot blocks as `(first_slot, nslots)` pairs.
    pub fn blocks(&self) -> Vec<(usize, usize)> {
        let n = self
            .pool
            .entry_word(self.index, direntry::NBLOCKS)
            .load(Ordering::SeqCst) as usize;
        (0..n)
            .map(|b| {
                let rec = Self::entry_off_block(self.index, b);
                (
                    self.pool.word(rec).load(Ordering::SeqCst) as usize,
                    self.pool.word(rec + WORD_SIZE).load(Ordering::SeqCst) as usize,
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for PoolArenaSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolArenaSlot")
            .field("index", &self.index)
            .field("slot_size", &self.slot_size)
            .field("chunk_slots", &self.chunk_slots)
            .field("header_off", &self.header_off)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("flit-pool-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}.pool", name, std::process::id()))
    }

    fn small_opts() -> PoolOptions {
        PoolOptions::with_capacity(1 << 20)
    }

    #[test]
    fn create_then_reopen_at_same_base() {
        let path = tmp("roundtrip");
        let base;
        {
            let pool = PoolFile::create(&path, &small_opts(), 1).unwrap();
            base = pool.base_addr();
            assert_eq!(pool.commit_word(), 1);
            assert_eq!(pool.arena_count(), 0);
        }
        let pool = PoolFile::open(&path).unwrap();
        assert_eq!(
            pool.base_addr(),
            base,
            "reopen must land at the recorded base"
        );
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn double_open_conflicts() {
        let path = tmp("conflict");
        let pool = PoolFile::create(&path, &small_opts(), 1).unwrap();
        let err = PoolFile::open(&path).unwrap_err();
        assert!(
            matches!(err, OpenError::MappingConflict { wanted } if wanted == pool.base_addr()),
            "expected MappingConflict, got {err:?}"
        );
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn arena_slot_roundtrip() {
        let path = tmp("slot");
        let (base, header_off);
        {
            let pool = PoolFile::create(&path, &small_opts(), 1).unwrap();
            let slot = PoolArenaSlot::create(&pool, 128, 64, 320).unwrap();
            assert_eq!(slot.index(), 0);
            header_off = slot.header_region().base_addr() - pool.base_addr();
            let chunk = slot.add_chunk().unwrap();
            assert_eq!(chunk.len(), 128 * 64);
            slot.note_block(3, 5).unwrap();
            base = pool.base_addr();
            // SAFETY: in-bounds write into the freshly created chunk.
            unsafe { chunk.base_ptr().cast::<u64>().write(0xABCD) };
        }
        let pool = PoolFile::open(&path).unwrap();
        assert_eq!(pool.base_addr(), base);
        assert_eq!(pool.arena_count(), 1);
        let slot = PoolArenaSlot::adopt(&pool, 0, 320).unwrap();
        assert_eq!(slot.slot_size(), 128);
        assert_eq!(slot.chunk_slots(), 64);
        assert_eq!(
            slot.header_region().base_addr() - pool.base_addr(),
            header_off
        );
        assert_eq!(slot.chunk_count(), 1);
        assert_eq!(slot.blocks(), vec![(3, 5)]);
        let chunks = slot.chunk_regions();
        // SAFETY: reading the word written before the reopen.
        assert_eq!(unsafe { chunks[0].base_ptr().cast::<u64>().read() }, 0xABCD);
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn adopt_rejects_corrupt_directory() {
        let path = tmp("corrupt-dir");
        let pool = PoolFile::create(&path, &small_opts(), 1).unwrap();
        let _slot = PoolArenaSlot::create(&pool, 128, 64, 320).unwrap();
        // Out-of-range index.
        assert!(matches!(
            PoolArenaSlot::adopt(&pool, 7, 320).unwrap_err(),
            OpenError::ArenaHeader { arena: 7, .. }
        ));
        // Zero slot size in the directory.
        pool.entry_word(0, direntry::SLOT_SIZE)
            .store(0, Ordering::SeqCst);
        assert!(matches!(
            PoolArenaSlot::adopt(&pool, 0, 320).unwrap_err(),
            OpenError::ArenaHeader { arena: 0, .. }
        ));
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_bad_metadata() {
        use std::os::unix::fs::FileExt;
        let path = tmp("bad-meta");
        drop(PoolFile::create(&path, &small_opts(), 1).unwrap());

        let clobber = |off: u64, val: u64| {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.write_at(&val.to_le_bytes(), off).unwrap();
        };

        clobber(superblock::VERSION as u64, 99);
        assert!(matches!(
            PoolFile::open(&path).unwrap_err(),
            OpenError::BadVersion { found: 99, .. }
        ));
        clobber(superblock::VERSION as u64, POOL_VERSION);

        clobber(superblock::MAGIC as u64, 0x1234);
        assert!(matches!(
            PoolFile::open(&path).unwrap_err(),
            OpenError::BadMagic { found: 0x1234 }
        ));
        clobber(superblock::MAGIC as u64, POOL_MAGIC);

        clobber(superblock::NEXT_FREE as u64, 5);
        assert!(matches!(
            PoolFile::open(&path).unwrap_err(),
            OpenError::BadSuperblock { .. }
        ));
        clobber(superblock::NEXT_FREE as u64, DATA_OFFSET as u64);

        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(100).unwrap();
        drop(f);
        assert!(matches!(
            PoolFile::open(&path).unwrap_err(),
            OpenError::Truncated { len: 100, .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pool_full_is_typed() {
        let path = tmp("full");
        let pool = PoolFile::create(&path, &PoolOptions::with_capacity(DATA_OFFSET), 1).unwrap();
        {
            let _g = pool.meta.lock().unwrap();
            let err = pool.alloc_range_locked(2 * PAGE_SIZE).unwrap_err();
            assert!(matches!(err, OpenError::PoolFull { .. }), "got {err:?}");
        }
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }
}
