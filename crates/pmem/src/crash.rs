//! Deterministic crash injection: the [`CrashPlan`] hook.
//!
//! The durability tests of the seed repo crashed only at hand-picked operation
//! boundaries (take a [`CrashImage`] between operations, recover, compare). That
//! misses the interesting failure windows *inside* an operation — between a store and
//! its write-back, between a write-back and its fence, between the linearizing CAS
//! and the completion fence. Systematic crash-point sweeps (MOD, Memento, the
//! persistent-FIFO literature) instead crash at **every** persistence event.
//!
//! A [`CrashPlan`] makes that possible without process-kill machinery: it observes
//! the global stream of persistence events flowing through a
//! [`SimNvram`](crate::SimNvram) — every tracked store, `pwb` and `pfence`, in
//! program order — and, when the event counter reaches the armed trigger index,
//! freezes a [`CrashImage`] *as of the instant just before the triggering event
//! applies*. Execution then continues normally (unwinding through lock-free code is
//! neither possible nor necessary); the frozen image is exactly what persistent
//! memory would have held had the machine lost power at that point, and the harness
//! recovers from it after the run completes.
//!
//! Determinism: a single-threaded history replayed against a fresh backend produces
//! the identical event stream every time, so `(seed, crash_event)` is a complete
//! reproduction recipe. Event indices are counts, not addresses, which keeps them
//! stable across runs even though the allocator hands out different pointers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::tracker::{CrashImage, PersistenceTracker};

/// Which persistence instruction an event index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashEventKind {
    /// A store to a tracked word (volatile visibility).
    Store,
    /// A `pwb` (cache-line write-back).
    Pwb,
    /// A `pfence` (write-backs of the calling thread become durable).
    Pfence,
}

impl CrashEventKind {
    /// Short label used in repro strings.
    pub fn name(self) -> &'static str {
        match self {
            CrashEventKind::Store => "store",
            CrashEventKind::Pwb => "pwb",
            CrashEventKind::Pfence => "pfence",
        }
    }
}

/// Never triggers: the sentinel trigger index used by counting-only plans.
const NEVER: u64 = u64::MAX;

struct Inner {
    /// Event index to crash at (the image is captured *before* this event applies).
    /// Re-armable: [`CrashPlan::arm_after`] sets it relative to the current count,
    /// which is how sweeps pin crash points to post-construction offsets (absolute
    /// indices drift between runs because `persist_object`'s pwb count depends on
    /// whether an allocation straddles a cache line).
    trigger: AtomicU64,
    /// Events observed so far.
    events: AtomicU64,
    /// The frozen image plus the kind of event that triggered the capture.
    captured: Mutex<Option<(CrashImage, CrashEventKind)>>,
    /// When present, every observed event kind is appended in observation order —
    /// the global persistence-event *stream*, not just its length. Used by the
    /// controlled-scheduler harness to assert byte-identical streams across runs.
    log: Option<Mutex<Vec<CrashEventKind>>>,
}

/// A deterministic crash trigger attached to a [`SimNvram`](crate::SimNvram).
///
/// Internally reference counted: clone it, hand one half to the backend builder and
/// keep the other to read [`crash_image`](CrashPlan::crash_image) /
/// [`events_seen`](CrashPlan::events_seen) after the run.
#[derive(Clone)]
pub struct CrashPlan {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CrashPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashPlan")
            .field("trigger", &self.inner.trigger)
            .field("events_seen", &self.events_seen())
            .field("triggered", &self.triggered())
            .finish()
    }
}

impl CrashPlan {
    /// A plan that crashes at event index `trigger` (0-based): the captured image
    /// reflects exactly the persisted state after events `0..trigger`.
    pub fn armed_at(trigger: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                trigger: AtomicU64::new(trigger),
                events: AtomicU64::new(0),
                captured: Mutex::new(None),
                log: None,
            }),
        }
    }

    /// A plan that never triggers — used for the counting pass that measures how many
    /// events a history generates and where its operation boundaries fall, and as
    /// the unarmed state before [`arm_after`](Self::arm_after).
    pub fn counting() -> Self {
        Self::armed_at(NEVER)
    }

    /// A never-triggering plan that additionally records every observed event
    /// *kind* in order (see [`event_log`](Self::event_log)). Used by the
    /// controlled-scheduler round-robin harness, which asserts that two replays
    /// of one scripted history produce byte-identical global event streams.
    pub fn counting_logged() -> Self {
        Self {
            inner: Arc::new(Inner {
                trigger: AtomicU64::new(NEVER),
                events: AtomicU64::new(0),
                captured: Mutex::new(None),
                log: Some(Mutex::new(Vec::new())),
            }),
        }
    }

    /// The recorded event-kind stream, in observation order. Empty unless the
    /// plan was created with [`counting_logged`](Self::counting_logged).
    pub fn event_log(&self) -> Vec<CrashEventKind> {
        self.inner
            .log
            .as_ref()
            .map(|log| log.lock().clone())
            .unwrap_or_default()
    }

    /// Arm (or re-arm) the plan to crash `offset` events from *now*: the trigger
    /// becomes `events_seen() + offset`. Sweeps use this to pin crash points
    /// relative to the end of structure construction, which keeps them meaningful
    /// even though absolute construction event counts vary with allocator layout.
    pub fn arm_after(&self, offset: u64) {
        let now = self.inner.events.load(Ordering::SeqCst);
        self.inner
            .trigger
            .store(now.saturating_add(offset), Ordering::SeqCst);
    }

    /// The event index this plan is armed at, or `None` for a counting plan.
    pub fn trigger(&self) -> Option<u64> {
        let trigger = self.inner.trigger.load(Ordering::SeqCst);
        (trigger != NEVER).then_some(trigger)
    }

    /// Number of persistence events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.inner.events.load(Ordering::SeqCst)
    }

    /// `true` once the trigger index has been reached and an image captured.
    pub fn triggered(&self) -> bool {
        self.inner.captured.lock().is_some()
    }

    /// The frozen crash image, if the plan has triggered.
    pub fn crash_image(&self) -> Option<CrashImage> {
        self.inner
            .captured
            .lock()
            .as_ref()
            .map(|(img, _)| img.clone())
    }

    /// The kind of event the crash landed on, if the plan has triggered.
    pub fn triggered_on(&self) -> Option<CrashEventKind> {
        self.inner.captured.lock().as_ref().map(|(_, kind)| *kind)
    }

    /// Observe one persistence event. Called by the backend *before* the event is
    /// applied to `tracker`, so a trigger at index `n` freezes the state with events
    /// `0..n` applied and event `n` lost — the adversarial "power failed during this
    /// instruction" semantics.
    pub fn observe(&self, kind: CrashEventKind, tracker: Option<&PersistenceTracker>) {
        let index = self.inner.events.fetch_add(1, Ordering::SeqCst);
        if let Some(log) = &self.inner.log {
            log.lock().push(kind);
        }
        if index == self.inner.trigger.load(Ordering::SeqCst) {
            let image = tracker.map(|t| t.crash_image()).unwrap_or_default();
            let mut captured = self.inner.captured.lock();
            if captured.is_none() {
                *captured = Some((image, kind));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_plan_counts_and_never_triggers() {
        let plan = CrashPlan::counting();
        let tracker = PersistenceTracker::new();
        for _ in 0..10 {
            plan.observe(CrashEventKind::Pwb, Some(&tracker));
        }
        assert_eq!(plan.events_seen(), 10);
        assert!(!plan.triggered());
        assert!(plan.crash_image().is_none());
        assert!(plan.trigger().is_none());
    }

    #[test]
    fn armed_plan_freezes_the_image_before_the_triggering_event() {
        let x = 0u64;
        let addr = &x as *const u64 as usize;
        let tracker = PersistenceTracker::new();
        // Crash at event 2 = the pfence: the store and pwb happened, the fence did
        // not, so nothing is persisted in the frozen image.
        let plan = CrashPlan::armed_at(2);

        plan.observe(CrashEventKind::Store, Some(&tracker));
        tracker.record_store(addr, 7);
        plan.observe(CrashEventKind::Pwb, Some(&tracker));
        tracker.on_pwb(addr);
        plan.observe(CrashEventKind::Pfence, Some(&tracker));
        tracker.on_pfence();

        assert!(plan.triggered());
        assert_eq!(plan.triggered_on(), Some(CrashEventKind::Pfence));
        let frozen = plan.crash_image().unwrap();
        assert_eq!(frozen.read(addr), None, "fence was lost to the crash");
        // The live tracker, by contrast, saw the whole sequence.
        assert_eq!(tracker.crash_image().read(addr), Some(7));
    }

    #[test]
    fn first_capture_wins() {
        let tracker = PersistenceTracker::new();
        let plan = CrashPlan::armed_at(0);
        let x = 0u64;
        let addr = &x as *const u64 as usize;
        plan.observe(CrashEventKind::Store, Some(&tracker));
        tracker.record_store(addr, 1);
        tracker.on_pwb(addr);
        tracker.on_pfence();
        // Later events do not overwrite the frozen image.
        plan.observe(CrashEventKind::Pfence, Some(&tracker));
        assert!(plan.crash_image().unwrap().is_empty());
        assert_eq!(plan.events_seen(), 2);
    }

    #[test]
    fn trigger_is_reported() {
        assert_eq!(CrashPlan::armed_at(17).trigger(), Some(17));
        assert_eq!(CrashEventKind::Store.name(), "store");
        assert_eq!(CrashEventKind::Pwb.name(), "pwb");
        assert_eq!(CrashEventKind::Pfence.name(), "pfence");
    }

    #[test]
    fn arm_after_counts_from_the_current_event() {
        let tracker = PersistenceTracker::new();
        let plan = CrashPlan::counting();
        let x = 0u64;
        let addr = &x as *const u64 as usize;
        // Three "construction" events, fully persisted.
        plan.observe(CrashEventKind::Store, Some(&tracker));
        tracker.record_store(addr, 1);
        plan.observe(CrashEventKind::Pwb, Some(&tracker));
        tracker.on_pwb(addr);
        plan.observe(CrashEventKind::Pfence, Some(&tracker));
        tracker.on_pfence();
        // Crash one event from now: the next event is applied, the one after lost.
        plan.arm_after(1);
        assert_eq!(plan.trigger(), Some(4));
        plan.observe(CrashEventKind::Store, Some(&tracker));
        tracker.record_store(addr, 2);
        assert!(!plan.triggered());
        plan.observe(CrashEventKind::Pwb, Some(&tracker));
        assert!(plan.triggered());
        // The frozen image holds the construction value only.
        assert_eq!(plan.crash_image().unwrap().read(addr), Some(1));
    }
}
