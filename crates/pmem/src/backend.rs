//! The [`PmemBackend`] trait: the minimal instruction set the FliT library needs from
//! the persistent-memory substrate (`pwb` + `pfence`), plus hooks for statistics and
//! crash tracking.

use crate::epoch::ElisionMode;
use crate::stats::PmemStats;
use crate::tracker::PersistenceTracker;

/// Abstraction over the two persistence instructions of the paper's model (§2):
///
/// * `pwb` (*persistent write-back*) — asynchronously writes the cache line containing
///   the given address back towards persistent media. Does not block and does not, by
///   itself, guarantee the data has reached the media.
/// * `pfence` — orders and completes: after a `pfence` by thread *t* returns, every
///   location `pwb`-ed by *t* before the fence is durably in persistent memory.
///
/// Backends may additionally observe every store performed through the FliT library
/// (via [`record_store`](PmemBackend::record_store)) so that a software model of the
/// persisted image can be maintained; hardware backends ignore this hook.
///
/// All methods take `&self`: backends are shared across every thread of a data
/// structure and must be internally synchronised. The trait itself carries no
/// `Send`/`Sync`/`'static` bounds, because the per-handle
/// [`PmemSession`](crate::PmemSession) view (borrowed, handle-owned epoch state)
/// also implements it; shared *storage* backends are required to be
/// `Send + Sync + 'static` where they are stored (e.g. `flit::Policy::Backend`).
pub trait PmemBackend {
    /// Issue a persistent write-back for the cache line containing `addr`.
    fn pwb(&self, addr: *const u8);

    /// Issue a persist fence: block until every previously `pwb`-ed line issued by the
    /// calling thread is durable, and order it before subsequent stores.
    fn pfence(&self);

    /// Issue a persist fence *unless the calling handle's persist epoch is clean*
    /// (zero `pwb`s through it since its last fence), in which case the fence
    /// would persist nothing and may be skipped.
    ///
    /// The default implementation is the conservative paper-literal behaviour: it
    /// always fences — a raw backend has no epoch to consult. The per-handle
    /// [`PmemSession`](crate::PmemSession) overrides it with the real elision
    /// (see [`crate::epoch`]); [`ElisionMode::Disabled`] restores this default
    /// even through a session.
    #[inline]
    fn pfence_if_dirty(&self) {
        self.pfence();
    }

    /// Epoch-aware read-side flush: issue a `pwb` for the cache line containing
    /// `addr`, unless the calling handle already flushed the word at `addr` holding
    /// exactly `observed` in its current persist epoch (the value is then already in
    /// the handle's pending set and the next fence commits it). Returns `true` when
    /// a `pwb` was actually issued.
    ///
    /// The default implementation always flushes — the conservative paper-literal
    /// behaviour; [`PmemSession`](crate::PmemSession) overrides it. See
    /// [`crate::epoch`] for the dedup's soundness boundary.
    #[inline]
    fn pwb_dedup(&self, addr: *const u8, observed: u64) -> bool {
        let _ = observed;
        self.pwb(addr);
        true
    }

    /// The persist-epoch elision mode sessions over this backend should apply.
    ///
    /// The default is [`ElisionMode::Enabled`] — caller-side elision is sound
    /// over any backend (an elided instruction is simply never issued).
    /// Configurable backends ([`SimNvram`](crate::SimNvram),
    /// [`HardwarePmem`](crate::HardwarePmem)) return their builder-chosen mode so
    /// the paper-literal stream can be selected per instance.
    #[inline]
    fn elision_mode(&self) -> ElisionMode {
        ElisionMode::Enabled
    }

    /// Record that a fence requested through [`pfence_if_dirty`](Self::pfence_if_dirty)
    /// was elided (statistics only; the default records into
    /// [`pmem_stats`](Self::pmem_stats) when present).
    #[inline]
    fn note_elided_pfence(&self) {
        if let Some(stats) = self.pmem_stats() {
            stats.record_elided_pfence();
        }
    }

    /// Record that a flush requested through [`pwb_dedup`](Self::pwb_dedup) was
    /// elided (statistics only; the default records into
    /// [`pmem_stats`](Self::pmem_stats) when present).
    #[inline]
    fn note_elided_pwb(&self) {
        if let Some(stats) = self.pmem_stats() {
            stats.record_elided_pwb();
        }
    }

    /// Record that a `pwb` just issued by the FliT library was a *read-side* flush
    /// (triggered by a tagged p-load rather than a store), so Figure 9's read-side
    /// breakdown can be reported. Called *in addition to* the flush itself.
    ///
    /// The default implementation records into [`pmem_stats`](Self::pmem_stats) when
    /// the backend keeps statistics; backends with a statistics kill-switch override
    /// it to honour that gate.
    #[inline]
    fn note_read_side_pwb(&self) {
        if let Some(stats) = self.pmem_stats() {
            stats.record_read_side_pwb();
        }
    }

    /// Notify the backend that an 8-byte word at `addr` now holds `val` in volatile
    /// memory. Called by the FliT library immediately after every store it performs on
    /// a tracked (`persist<T>`) variable.
    ///
    /// The default implementation does nothing; only tracking backends (e.g.
    /// [`SimNvram`](crate::SimNvram) with a [`PersistenceTracker`]) use it.
    #[inline]
    fn record_store(&self, _addr: *const u8, _val: u64) {}

    /// A monotone counter of the stores this backend has observed through
    /// [`record_store`](Self::record_store). Backends implementing the
    /// [`pwb_dedup`](Self::pwb_dedup) elision stamp each dedup entry with this
    /// version at flush time and require the version to be *unchanged* at dedup
    /// time, which closes the overwrite-and-restore (ABA) window: if no store at
    /// all was recorded since the flush, the word cannot have been overwritten
    /// (see [`crate::epoch`]).
    ///
    /// The default implementation returns `0` — correct for backends that also use
    /// the default (never-eliding) `pwb_dedup`.
    #[inline]
    fn store_version(&self) -> u64 {
        0
    }

    /// Statistics collected by this backend, if any.
    #[inline]
    fn pmem_stats(&self) -> Option<&PmemStats> {
        None
    }

    /// The persistence tracker attached to this backend, if any.
    #[inline]
    fn persistence_tracker(&self) -> Option<&PersistenceTracker> {
        None
    }

    /// `true` when `pwb`/`pfence` issued through this backend actually cost something
    /// (hardware instruction or simulated latency). The non-persistent baseline
    /// returns `false`, which lets higher layers skip work entirely.
    #[inline]
    fn is_persistent(&self) -> bool {
        true
    }
}

/// A backend where every persistence instruction is a no-op.
///
/// This models the *non-persistent* version of each data structure: the grey dotted
/// baseline in the paper's plots, which no durable implementation can significantly
/// outperform.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPmem;

impl PmemBackend for NullPmem {
    #[inline]
    fn pwb(&self, _addr: *const u8) {}

    #[inline]
    fn pfence(&self) {}

    #[inline]
    fn is_persistent(&self) -> bool {
        false
    }
}

/// Blanket implementation so an `Arc<B>` can be used wherever a backend is expected
/// without an extra newtype at every call site.
impl<B: PmemBackend + ?Sized> PmemBackend for std::sync::Arc<B> {
    #[inline]
    fn pwb(&self, addr: *const u8) {
        (**self).pwb(addr)
    }

    #[inline]
    fn pfence(&self) {
        (**self).pfence()
    }

    #[inline]
    fn pfence_if_dirty(&self) {
        (**self).pfence_if_dirty()
    }

    #[inline]
    fn pwb_dedup(&self, addr: *const u8, observed: u64) -> bool {
        (**self).pwb_dedup(addr, observed)
    }

    #[inline]
    fn note_read_side_pwb(&self) {
        (**self).note_read_side_pwb()
    }

    #[inline]
    fn record_store(&self, addr: *const u8, val: u64) {
        (**self).record_store(addr, val)
    }

    #[inline]
    fn store_version(&self) -> u64 {
        (**self).store_version()
    }

    #[inline]
    fn elision_mode(&self) -> ElisionMode {
        (**self).elision_mode()
    }

    #[inline]
    fn note_elided_pfence(&self) {
        (**self).note_elided_pfence()
    }

    #[inline]
    fn note_elided_pwb(&self) {
        (**self).note_elided_pwb()
    }

    #[inline]
    fn pmem_stats(&self) -> Option<&PmemStats> {
        (**self).pmem_stats()
    }

    #[inline]
    fn persistence_tracker(&self) -> Option<&PersistenceTracker> {
        (**self).persistence_tracker()
    }

    #[inline]
    fn is_persistent(&self) -> bool {
        (**self).is_persistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn null_backend_is_a_noop_and_not_persistent() {
        let b = NullPmem;
        let x = 7u64;
        b.pwb(&x as *const u64 as *const u8);
        b.pfence();
        b.record_store(&x as *const u64 as *const u8, 7);
        assert!(!b.is_persistent());
        assert!(b.pmem_stats().is_none());
        assert!(b.persistence_tracker().is_none());
    }

    #[test]
    fn arc_backend_delegates() {
        let b: Arc<NullPmem> = Arc::new(NullPmem);
        let x = 9u64;
        b.pwb(&x as *const u64 as *const u8);
        b.pfence();
        assert!(!b.is_persistent());
    }

    #[test]
    fn default_epoch_methods_are_conservative() {
        // A backend that does not track persist epochs must behave paper-literally:
        // pfence_if_dirty always fences, pwb_dedup always flushes.
        use crate::sim::SimNvram;
        use crate::LatencyModel;

        struct PassThrough(SimNvram);
        impl PmemBackend for PassThrough {
            fn pwb(&self, addr: *const u8) {
                self.0.pwb(addr)
            }
            fn pfence(&self) {
                self.0.pfence()
            }
            fn pmem_stats(&self) -> Option<&crate::PmemStats> {
                self.0.pmem_stats()
            }
        }

        let b = PassThrough(SimNvram::builder().latency(LatencyModel::none()).build());
        let x = 5u64;
        b.pfence_if_dirty(); // clean thread, but the default must still fence
        assert!(b.pwb_dedup(&x as *const u64 as *const u8, 5));
        assert!(b.pwb_dedup(&x as *const u64 as *const u8, 5), "no dedup");
        b.note_read_side_pwb();
        let stats = b.pmem_stats().unwrap();
        assert_eq!(stats.pfences(), 1);
        assert_eq!(stats.pwbs(), 2);
        assert_eq!(stats.read_side_pwbs(), 1);
        assert_eq!(stats.elided_pfences(), 0);
        assert_eq!(stats.elided_pwbs(), 0);
    }

    #[test]
    fn dyn_backend_object_safety() {
        // The trait must stay object-safe: the workload runner stores `Arc<dyn PmemBackend>`.
        let b: Arc<dyn PmemBackend> = Arc::new(NullPmem);
        b.pfence();
        assert!(!b.is_persistent());
    }
}
