//! [`RecordingBackend`]: crash-plan event observation over *any* backend.
//!
//! The [`CrashPlan`] hook originally lived inside [`SimNvram`](crate::SimNvram)
//! only, which meant [`HardwarePmem`](crate::HardwarePmem) runs could not be driven
//! by the `flit-crashtest` sweep engine at all (ROADMAP, "Real-PM backend behind
//! `CrashPlan`"). This decorator closes that gap: it wraps any
//! [`PmemBackend`], maintains its own [`PersistenceTracker`] software model of the
//! persisted image, optionally feeds a [`CrashPlan`], and forwards every
//! instruction to the inner backend unchanged — so the wrapped backend still issues
//! its real `clwb`/`sfence` (or charges its simulated latency) while the decorator
//! observes the exact event stream.
//!
//! ## Recorded stream = issued stream
//!
//! Persist-epoch elision lives in the per-handle
//! [`PmemSession`](crate::PmemSession) *above* any backend: an elided
//! instruction is never issued to the decorator at all, so the recorded stream
//! is always exactly the issued stream — they cannot diverge by construction.
//! The decorator itself answers the epoch-aware trait methods with the
//! conservative defaults (always fence, always flush) and forwards the inner
//! backend's configured [`ElisionMode`](crate::ElisionMode) so sessions over a
//! `RecordingBackend<HardwarePmem>` honour the wrapped instance's A/B toggle.

use crate::backend::PmemBackend;
use crate::crash::{CrashEventKind, CrashPlan};
use crate::stats::PmemStats;
use crate::tracker::PersistenceTracker;

/// A decorator that observes every store/`pwb`/`pfence` flowing into `inner`,
/// maintaining a [`PersistenceTracker`] image and optionally driving a
/// [`CrashPlan`]. See the module docs.
pub struct RecordingBackend<P: PmemBackend> {
    inner: P,
    tracker: PersistenceTracker,
    plan: Option<CrashPlan>,
}

impl<P: PmemBackend> RecordingBackend<P> {
    /// Wrap `inner` with a fresh tracker and no crash plan.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            tracker: PersistenceTracker::new(),
            plan: None,
        }
    }

    /// Wrap `inner` with a fresh tracker and the given crash plan.
    pub fn with_plan(inner: P, plan: CrashPlan) -> Self {
        Self {
            inner,
            tracker: PersistenceTracker::new(),
            plan: Some(plan),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The tracker maintaining the recorded persisted image.
    pub fn tracker(&self) -> &PersistenceTracker {
        &self.tracker
    }

    /// The crash plan observing this backend's events, if one was attached.
    pub fn crash_plan(&self) -> Option<&CrashPlan> {
        self.plan.as_ref()
    }

    #[inline]
    fn observe(&self, kind: CrashEventKind) {
        if let Some(plan) = &self.plan {
            plan.observe(kind, Some(&self.tracker));
        }
    }
}

impl<P: PmemBackend> PmemBackend for RecordingBackend<P> {
    #[inline]
    fn pwb(&self, addr: *const u8) {
        self.observe(CrashEventKind::Pwb);
        self.tracker.on_pwb(addr as usize);
        self.inner.pwb(addr);
    }

    #[inline]
    fn pfence(&self) {
        self.observe(CrashEventKind::Pfence);
        self.tracker.on_pfence();
        self.inner.pfence();
    }

    #[inline]
    fn note_read_side_pwb(&self) {
        self.inner.note_read_side_pwb();
    }

    #[inline]
    fn elision_mode(&self) -> crate::ElisionMode {
        self.inner.elision_mode()
    }

    #[inline]
    fn note_elided_pfence(&self) {
        self.inner.note_elided_pfence();
    }

    #[inline]
    fn note_elided_pwb(&self) {
        self.inner.note_elided_pwb();
    }

    #[inline]
    fn record_store(&self, addr: *const u8, val: u64) {
        self.observe(CrashEventKind::Store);
        self.tracker.record_store(addr as usize, val);
        self.inner.record_store(addr, val);
    }

    #[inline]
    fn pmem_stats(&self) -> Option<&PmemStats> {
        self.inner.pmem_stats()
    }

    #[inline]
    fn persistence_tracker(&self) -> Option<&PersistenceTracker> {
        Some(&self.tracker)
    }

    #[inline]
    fn store_version(&self) -> u64 {
        self.tracker.stores_recorded()
    }

    #[inline]
    fn is_persistent(&self) -> bool {
        self.inner.is_persistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwarePmem;
    use crate::NullPmem;

    fn addr_of(x: &u64) -> *const u8 {
        x as *const u64 as *const u8
    }

    #[test]
    fn records_the_image_over_hardware() {
        // The ROADMAP gap this decorator closes: a tracker-backed image over the
        // real-instruction backend.
        let b = RecordingBackend::new(HardwarePmem::new());
        let x = 0u64;
        b.record_store(addr_of(&x), 42);
        assert!(b.tracker().crash_image().is_empty());
        b.pwb(addr_of(&x));
        b.pfence();
        assert_eq!(
            b.tracker().crash_image().read(addr_of(&x) as usize),
            Some(42)
        );
        // The inner backend issued the real instructions (its stats saw them).
        assert_eq!(b.pmem_stats().unwrap().pwbs(), 1);
        assert_eq!(b.pmem_stats().unwrap().pfences(), 1);
        assert!(b.persistence_tracker().is_some());
    }

    #[test]
    fn drives_a_crash_plan_over_any_backend() {
        let plan = CrashPlan::armed_at(2);
        let b = RecordingBackend::with_plan(NullPmem, plan.clone());
        let x = 0u64;
        b.record_store(addr_of(&x), 7); // event 0
        b.pwb(addr_of(&x)); // event 1
        b.pfence(); // event 2 <- crash: the fence is lost
        assert!(plan.triggered());
        assert_eq!(plan.crash_image().unwrap().read(addr_of(&x) as usize), None);
        assert_eq!(
            b.tracker().crash_image().read(addr_of(&x) as usize),
            Some(7)
        );
        assert!(b.crash_plan().is_some());
        assert!(!b.is_persistent(), "inner NullPmem is not persistent");
    }

    #[test]
    fn decorator_is_paper_literal() {
        // Elision must not happen at the decorator level: the recorded stream is
        // the issued stream.
        let b = RecordingBackend::new(HardwarePmem::new());
        b.pfence_if_dirty(); // clean thread, but the decorator must still fence
        assert_eq!(b.pmem_stats().unwrap().pfences(), 1);
        let x = 5u64;
        assert!(b.pwb_dedup(addr_of(&x), 5));
        assert!(
            b.pwb_dedup(addr_of(&x), 5),
            "no dedup through the decorator"
        );
        assert_eq!(b.pmem_stats().unwrap().pwbs(), 2);
    }

    #[test]
    fn store_version_counts_recorded_stores() {
        let b = RecordingBackend::new(NullPmem);
        assert_eq!(b.store_version(), 0);
        let x = 0u64;
        b.record_store(addr_of(&x), 1);
        b.record_store(addr_of(&x), 2);
        assert_eq!(b.store_version(), 2);
    }
}
