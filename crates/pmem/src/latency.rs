//! Latency model for the simulated NVRAM backend.
//!
//! The reproduction environment has no Optane DIMMs, so [`SimNvram`](crate::SimNvram)
//! charges every `pwb`/`pfence` a configurable cost by spinning for a calibrated number
//! of iterations. The defaults approximate the costs reported for Cascade Lake +
//! Optane DC: a non-blocking cache-line write-back in the tens of nanoseconds and a
//! fence that drains write-pending queues in the low hundreds.
//!
//! Spinning (rather than `thread::sleep`) matters: the costs being modelled are far
//! below OS timer resolution, and sleeping would also deschedule the thread, which the
//! real instructions do not do.

use std::sync::OnceLock;
use std::time::Instant;

/// Per-instruction costs charged by the simulated backend, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Cost of one `pwb` (cache-line write-back towards the persistence domain).
    pub pwb_ns: u64,
    /// Cost of one `pfence` (waiting for previously written-back lines to become
    /// durable and ordering subsequent stores).
    pub pfence_ns: u64,
}

impl LatencyModel {
    /// No cost at all. Used by correctness tests and by the crash tracker, where only
    /// the *bookkeeping* matters, not the time.
    pub const fn none() -> Self {
        Self {
            pwb_ns: 0,
            pfence_ns: 0,
        }
    }

    /// Costs approximating Intel Optane DC persistent memory behind an ADR domain:
    /// `clwb` is cheap to issue but the store must travel to the DIMM's write-pending
    /// queue, and `sfence` after a write-back stalls for the drain.
    pub const fn optane() -> Self {
        Self {
            pwb_ns: 60,
            pfence_ns: 150,
        }
    }

    /// Costs approximating battery-backed DRAM (eADR-style platforms), where
    /// write-backs are cheap and fences only pay the store-buffer drain.
    pub const fn dram() -> Self {
        Self {
            pwb_ns: 15,
            pfence_ns: 30,
        }
    }

    /// A custom model.
    pub const fn new(pwb_ns: u64, pfence_ns: u64) -> Self {
        Self { pwb_ns, pfence_ns }
    }

    /// `true` when both costs are zero (the spin loop can be skipped entirely).
    pub const fn is_free(&self) -> bool {
        self.pwb_ns == 0 && self.pfence_ns == 0
    }

    /// Busy-wait for the configured `pwb` cost.
    #[inline]
    pub fn charge_pwb(&self) {
        if self.pwb_ns > 0 {
            busy_wait_ns(self.pwb_ns);
        }
    }

    /// Busy-wait for the configured `pfence` cost.
    #[inline]
    pub fn charge_pfence(&self) {
        if self.pfence_ns > 0 {
            busy_wait_ns(self.pfence_ns);
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::optane()
    }
}

/// Spin-loop iterations executed per nanosecond, measured once per process.
fn spins_per_ns() -> f64 {
    static CALIBRATION: OnceLock<f64> = OnceLock::new();
    *CALIBRATION.get_or_init(|| {
        // Calibrate against the monotonic clock. The measurement is repeated and the
        // maximum rate kept, so descheduling during calibration only makes the model
        // conservative (it will never under-charge by a large factor).
        let mut best = 0.0f64;
        for _ in 0..3 {
            let iters: u64 = 2_000_000;
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::spin_loop();
            }
            let elapsed = start.elapsed().as_nanos().max(1) as f64;
            let rate = iters as f64 / elapsed;
            if rate > best {
                best = rate;
            }
        }
        // Guard against clock anomalies: assume at least 0.05 and at most 100
        // iterations per nanosecond.
        best.clamp(0.05, 100.0)
    })
}

/// Busy-wait for approximately `ns` nanoseconds using the calibrated spin loop.
#[inline]
pub fn busy_wait_ns(ns: u64) {
    let iters = (ns as f64 * spins_per_ns()) as u64;
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ordering() {
        let none = LatencyModel::none();
        let dram = LatencyModel::dram();
        let optane = LatencyModel::optane();
        assert!(none.is_free());
        assert!(!dram.is_free());
        assert!(dram.pwb_ns < optane.pwb_ns);
        assert!(dram.pfence_ns < optane.pfence_ns);
    }

    #[test]
    fn default_is_optane() {
        assert_eq!(LatencyModel::default(), LatencyModel::optane());
    }

    #[test]
    fn calibration_is_sane() {
        let rate = spins_per_ns();
        assert!(rate >= 0.05);
        assert!(rate <= 100.0);
        // Second call must return the cached value.
        assert_eq!(rate, spins_per_ns());
    }

    #[test]
    fn busy_wait_takes_roughly_the_requested_time() {
        // Warm up calibration first.
        let _ = spins_per_ns();
        let start = Instant::now();
        busy_wait_ns(200_000); // 200 microseconds: large enough to measure reliably
        let elapsed = start.elapsed().as_nanos() as u64;
        // Extremely loose bounds: we only need the order of magnitude to be right for
        // the benchmark shapes to hold, and CI machines can be noisy.
        assert!(
            elapsed >= 20_000,
            "busy_wait returned far too quickly: {elapsed}ns"
        );
    }

    #[test]
    fn charging_a_free_model_is_instant() {
        let m = LatencyModel::none();
        let start = Instant::now();
        for _ in 0..10_000 {
            m.charge_pwb();
            m.charge_pfence();
        }
        assert!(start.elapsed().as_millis() < 500);
    }
}
