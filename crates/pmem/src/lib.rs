//! # `flit-pmem` — persistent-memory substrate for the FliT reproduction
//!
//! The FliT paper (PPoPP 2022) targets machines with Intel Optane DC persistent
//! memory, where stores land in a *volatile* cache hierarchy and must be pushed to the
//! *persistent* media with explicit write-back (`pwb`, i.e. `clwb`/`clflushopt`) and
//! ordering (`pfence`, i.e. `sfence`) instructions.
//!
//! This crate provides that substrate in three interchangeable forms behind the
//! [`PmemBackend`] trait:
//!
//! * [`HardwarePmem`] — issues real x86-64 cache-line write-back instructions
//!   (`clwb`, `clflushopt` or `clflush`, chosen by runtime feature detection) and
//!   `sfence`. Use this on a machine with actual persistent memory.
//! * [`SimNvram`] — a *simulated* NVRAM: ordinary heap memory plus
//!   - a configurable [`LatencyModel`] that charges an Optane-like cost to every
//!     `pwb`/`pfence`,
//!   - global [`PmemStats`] counting every `pwb` and `pfence` (used to reproduce
//!     Figure 9 of the paper), and
//!   - an optional [`PersistenceTracker`] that maintains the volatile image and the
//!     persisted image of every tracked word so tests can take an adversarial
//!     [`CrashImage`] ("only what was explicitly flushed *and* fenced survives"), and
//!   - an optional [`CrashPlan`] that deterministically freezes a [`CrashImage`] at
//!     the Nth store/pwb/pfence event, so a harness can sweep a simulated crash
//!     across *every* persistence boundary of a history (see `flit-crashtest`).
//! * [`NullPmem`] — everything is a no-op; used by the non-persistent baseline
//!   (the grey dotted line in the paper's plots).
//!
//! The unit of flushing is a 64-byte cache line ([`CACHE_LINE_SIZE`]); the unit of
//! tracking is an 8-byte word, matching the granularity at which the FliT library
//! operates.
//!
//! ## Persist epochs and sessions
//!
//! Per-handle [persist epochs](crate::epoch) — "how many `pwb`s has this handle
//! issued since its last `pfence`, and which words did it flush" — drive two
//! epoch-aware [`PmemBackend`] methods:
//! [`pfence_if_dirty`](PmemBackend::pfence_if_dirty) (skip a fence that would
//! persist nothing) and [`pwb_dedup`](PmemBackend::pwb_dedup) (skip a duplicate
//! read-side flush). The epoch state is **owned by an explicit handle** (no
//! thread-locals anywhere in this crate): a handle wraps the shared backend in a
//! [`PmemSession`] — itself a `PmemBackend` — for the duration of each
//! operation, and the session applies the elision. The FliT hot path is written
//! against sessions; [`ElisionMode::Disabled`] restores the paper-literal
//! instruction stream for A/B comparison, and raw backends keep the
//! conservative (always-fence, always-flush) trait defaults.
//!
//! ## Why a simulated backend?
//!
//! The reproduction environment has no NVDIMMs. The behaviour FliT's evaluation
//! depends on is (a) *how many* write-backs and fences each variant executes per
//! operation and (b) that each one has a substantial, roughly-constant cost. Both are
//! captured by [`SimNvram`]; see `DESIGN.md` for the full substitution argument.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod cache_line;
pub mod crash;
pub mod epoch;
pub mod hardware;
pub mod latency;
pub mod pool;
pub mod recording;
pub mod region;
pub mod session;
pub mod sim;
pub mod stats;
pub mod tracker;

pub use backend::{NullPmem, PmemBackend};
pub use cache_line::{cache_line_of, word_of, CACHE_LINE_SIZE, WORD_SIZE};
pub use crash::{CrashEventKind, CrashPlan};
pub use epoch::{CommitMode, ElisionMode, PersistEpoch};
pub use flit_obs::{FlightEvent, FlightEventKind, FlightRecorder, FlightSink, FLIGHT_CAPACITY};
pub use hardware::{FlushInstruction, HardwarePmem};
pub use latency::LatencyModel;
pub use pool::{OpenError, PoolArenaSlot, PoolFile, PoolOptions};
pub use recording::RecordingBackend;
pub use region::{PmemRegion, ReserveError};
pub use session::PmemSession;
pub use sim::SimNvram;
pub use stats::{PmemStats, StatsSnapshot};
pub use tracker::{CrashImage, PersistenceTracker};

#[cfg(test)]
mod lib_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn public_api_smoke() {
        let sim = SimNvram::builder().latency(LatencyModel::none()).build();
        let x: u64 = 42;
        sim.pwb(&x as *const u64 as *const u8);
        sim.pfence();
        let snap = sim.stats().snapshot();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.pfences, 1);

        let null = NullPmem;
        null.pwb(&x as *const u64 as *const u8);
        null.pfence();

        let shared: Arc<dyn PmemBackend> = Arc::new(SimNvram::default());
        shared.pfence();
    }
}
