//! Hardware persistence backend: real x86-64 cache-line write-back instructions.
//!
//! On the paper's machine the `pwb` of the model maps to `clwb` (with `clflushopt` and
//! `clflush` as progressively older fallbacks) and `pfence` maps to `sfence`. This
//! backend selects the strongest instruction the running CPU supports at construction
//! time and issues it through inline assembly.
//!
//! On non-x86-64 targets the backend compiles to no-ops (with a documented caveat);
//! ARMv8 users would use `DC CVAP` + `DSB`, which we do not emit here because the
//! reproduction environment is x86-64 only.

use crate::backend::PmemBackend;
use crate::epoch::ElisionMode;
use crate::stats::PmemStats;

/// Which flush instruction the hardware backend issues for `pwb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushInstruction {
    /// `clwb`: write back without invalidating (the instruction the paper uses).
    Clwb,
    /// `clflushopt`: write back and invalidate, weakly ordered.
    ClflushOpt,
    /// `clflush`: write back and invalidate, strongly ordered (always available).
    Clflush,
    /// No flush instruction available (non-x86-64 build): `pwb` is a compiler fence
    /// only. Data is **not** actually persisted; such builds are for API compatibility.
    None,
}

/// Persistence backend issuing real flush/fence instructions.
///
/// Like [`SimNvram`](crate::SimNvram), the backend issues every instruction it is
/// handed; [persist-epoch elision](crate::epoch) happens in the per-handle
/// [`PmemSession`](crate::PmemSession) layered above it, which consults this
/// instance's configured [`ElisionMode`] (default: enabled — the same "minimal
/// ordering" discipline, applied to the real instruction stream).
/// [`with_elision`](Self::with_elision) disables it.
#[derive(Debug)]
pub struct HardwarePmem {
    instr: FlushInstruction,
    stats: PmemStats,
    count_stats: bool,
    elision: ElisionMode,
    /// Per-backend store counter (bumped in `record_store`) used to stamp dedup
    /// entries, making the duplicate-flush elision ABA-proof (see `crate::epoch`).
    store_version: std::sync::atomic::AtomicU64,
}

impl HardwarePmem {
    /// Create a backend using the strongest flush instruction available on this CPU.
    pub fn new() -> Self {
        Self::with_counting(true)
    }

    /// Create a backend, optionally disabling statistics collection (saves two relaxed
    /// atomic increments per persistence instruction on the hot path).
    pub fn with_counting(count_stats: bool) -> Self {
        Self {
            instr: Self::detect(),
            stats: PmemStats::new(),
            count_stats,
            elision: ElisionMode::default(),
            store_version: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Create a backend with an explicit persist-epoch elision mode
    /// ([`ElisionMode::Disabled`] issues the paper-literal instruction stream).
    pub fn with_elision(elision: ElisionMode) -> Self {
        Self {
            elision,
            ..Self::new()
        }
    }

    /// Create a backend that uses a specific flush instruction (panics if the CPU does
    /// not support it).
    pub fn with_instruction(instr: FlushInstruction) -> Self {
        let detected = Self::detect();
        let supported = match (instr, detected) {
            (FlushInstruction::None, _) => true,
            (_, FlushInstruction::None) => false,
            (FlushInstruction::Clflush, _) => true,
            (FlushInstruction::ClflushOpt, FlushInstruction::Clwb)
            | (FlushInstruction::ClflushOpt, FlushInstruction::ClflushOpt) => true,
            (FlushInstruction::Clwb, FlushInstruction::Clwb) => true,
            _ => false,
        };
        assert!(
            supported,
            "requested flush instruction {instr:?} not supported (detected {detected:?})"
        );
        Self {
            instr,
            ..Self::new()
        }
    }

    /// The flush instruction this backend issues.
    pub fn instruction(&self) -> FlushInstruction {
        self.instr
    }

    /// The persist-epoch elision mode sessions over this instance apply.
    pub fn elision(&self) -> ElisionMode {
        self.elision
    }

    #[cfg(target_arch = "x86_64")]
    fn detect() -> FlushInstruction {
        // Feature bits from CPUID leaf 7, sub-leaf 0: EBX bit 23 = CLFLUSHOPT,
        // EBX bit 24 = CLWB. Queried directly because the std feature-detection macro
        // does not expose these names on all toolchains.
        let leaf7 = std::arch::x86_64::__cpuid_count(7, 0);
        if leaf7.ebx & (1 << 24) != 0 {
            FlushInstruction::Clwb
        } else if leaf7.ebx & (1 << 23) != 0 {
            FlushInstruction::ClflushOpt
        } else {
            FlushInstruction::Clflush
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn detect() -> FlushInstruction {
        FlushInstruction::None
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn flush(&self, addr: *const u8) {
        // SAFETY: the flush instructions require only that the linear address is
        // canonical and mapped; callers pass addresses of live Rust objects. The
        // instructions have no architecturally visible register effects.
        unsafe {
            match self.instr {
                FlushInstruction::Clwb => {
                    std::arch::asm!("clwb [{0}]", in(reg) addr, options(nostack, preserves_flags));
                }
                FlushInstruction::ClflushOpt => {
                    std::arch::asm!("clflushopt [{0}]", in(reg) addr, options(nostack, preserves_flags));
                }
                FlushInstruction::Clflush => {
                    std::arch::asm!("clflush [{0}]", in(reg) addr, options(nostack, preserves_flags));
                }
                FlushInstruction::None => {
                    std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
                }
            }
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    fn flush(&self, _addr: *const u8) {
        std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn fence(&self) {
        // SAFETY: `sfence` has no operands and no side effects beyond ordering.
        unsafe {
            std::arch::asm!("sfence", options(nostack, preserves_flags));
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    fn fence(&self) {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }
}

impl Default for HardwarePmem {
    fn default() -> Self {
        Self::new()
    }
}

impl PmemBackend for HardwarePmem {
    #[inline]
    fn pwb(&self, addr: *const u8) {
        if self.count_stats {
            self.stats.record_pwb();
        }
        self.flush(addr);
    }

    #[inline]
    fn pfence(&self) {
        if self.count_stats {
            self.stats.record_pfence();
        }
        self.fence();
    }

    #[inline]
    fn note_read_side_pwb(&self) {
        if self.count_stats {
            self.stats.record_read_side_pwb();
        }
    }

    #[inline]
    fn elision_mode(&self) -> ElisionMode {
        self.elision
    }

    #[inline]
    fn note_elided_pfence(&self) {
        if self.count_stats {
            self.stats.record_elided_pfence();
        }
    }

    #[inline]
    fn note_elided_pwb(&self) {
        if self.count_stats {
            self.stats.record_elided_pwb();
        }
    }

    #[inline]
    fn record_store(&self, _addr: *const u8, _val: u64) {
        // Hardware keeps no software image; the store is only counted so dedup
        // stamps can detect intervening stores (ABA closure, see `crate::epoch`).
        // With elision disabled nothing consumes the stamp, so the (globally
        // shared, hence contended) counter bump is skipped on the literal stream.
        if self.elision.is_enabled() {
            self.store_version
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[inline]
    fn store_version(&self) -> u64 {
        self.store_version
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn pmem_stats(&self) -> Option<&PmemStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_returns_something_usable() {
        let b = HardwarePmem::new();
        #[cfg(target_arch = "x86_64")]
        assert_ne!(b.instruction(), FlushInstruction::None);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(b.instruction(), FlushInstruction::None);
    }

    #[test]
    fn flush_and_fence_execute_on_live_memory() {
        // This exercises the actual instructions (clflush at minimum on x86-64); it
        // must not fault on an ordinary heap allocation.
        let b = HardwarePmem::new();
        let data = vec![0u8; 256];
        for off in (0..256).step_by(64) {
            b.pwb(unsafe { data.as_ptr().add(off) });
        }
        b.pfence();
        assert_eq!(b.pmem_stats().unwrap().pwbs(), 4);
        assert_eq!(b.pmem_stats().unwrap().pfences(), 1);
    }

    #[test]
    fn clflush_fallback_always_constructible() {
        #[cfg(target_arch = "x86_64")]
        {
            let b = HardwarePmem::with_instruction(FlushInstruction::Clflush);
            let x = 1u64;
            b.pwb(&x as *const u64 as *const u8);
            b.pfence();
        }
    }

    #[test]
    fn counting_can_be_disabled() {
        let b = HardwarePmem::with_counting(false);
        let x = 1u64;
        b.pwb(&x as *const u64 as *const u8);
        assert_eq!(b.pmem_stats().unwrap().pwbs(), 0);
    }

    #[test]
    fn clean_handle_sfence_is_elided_through_a_session() {
        use crate::epoch::PersistEpoch;
        use crate::session::PmemSession;
        let b = HardwarePmem::new();
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&b, &epoch);
        s.pfence_if_dirty(); // clean: skipped
        assert_eq!(b.pmem_stats().unwrap().pfences(), 0);
        assert_eq!(b.pmem_stats().unwrap().elided_pfences(), 1);
        let x = 1u64;
        s.pwb(&x as *const u64 as *const u8);
        s.pfence_if_dirty(); // dirty: a real sfence executes
        assert_eq!(b.pmem_stats().unwrap().pfences(), 1);
    }

    #[test]
    fn elision_can_be_disabled() {
        use crate::epoch::PersistEpoch;
        use crate::session::PmemSession;
        let b = HardwarePmem::with_elision(ElisionMode::Disabled);
        assert_eq!(b.elision(), ElisionMode::Disabled);
        assert_eq!(b.elision_mode(), ElisionMode::Disabled);
        let epoch = PersistEpoch::new();
        let s = PmemSession::for_backend(&b, &epoch);
        s.pfence_if_dirty(); // literal mode: the fence executes even when clean
        assert_eq!(b.pmem_stats().unwrap().pfences(), 1);
        assert_eq!(b.pmem_stats().unwrap().elided_pfences(), 0);
    }
}
