//! Word-granularity persistence tracking and adversarial crash images.
//!
//! The durability arguments of the paper (Theorem 3.1, the P-V Interface conditions)
//! are statements about *which stores have reached persistent memory* at given points
//! in an execution. To test them without NVRAM, the [`PersistenceTracker`] maintains a
//! software model of both memories:
//!
//! * the **volatile image** — the latest value stored to every tracked word (this is
//!   what caches + DRAM hold);
//! * per-thread **pending sets** — values whose cache line has been `pwb`-ed by that
//!   thread but not yet fenced;
//! * the **persisted image** — values that have been `pwb`-ed *and* covered by a
//!   subsequent `pfence` of the flushing thread.
//!
//! [`crash_image`](PersistenceTracker::crash_image) returns the persisted image only.
//! This is the *adversarial* ("loss") model: a store survives a crash **only** when it
//! was explicitly written back and fenced. Real hardware may additionally persist
//! lines early through cache evictions, but early persistence can only add durable
//! state, never remove it, so any durable-linearizability violation found under this
//! model is a genuine bug and the absence of violations under it is the strongest
//! statement the test can make.
//!
//! ## Monotone commits (version tagging)
//!
//! Pending values carry the *version* (a global store counter) of the store they
//! snapshot, and a fence only commits a pending value whose version is at least the
//! persisted one. Without this, a slow thread's fence could commit a stale pwb-time
//! snapshot *over* a newer value that another thread had already flushed and fenced
//! — a regression that cache coherence makes impossible on real hardware (a line
//! write-back always writes the line's current contents, so later write-backs never
//! carry older data). Within one thread the adversarial semantics are unchanged: a
//! store issued *after* a pwb still does not ride along on the following fence,
//! because only the snapshotted (value, version) pair is committed.
//!
//! The tracker is intended for correctness tests and crash experiments; benchmarks run
//! with tracking disabled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::ThreadId;

use parking_lot::Mutex;

use crate::cache_line::{cache_line_of, word_of, WORDS_PER_LINE, WORD_SIZE};

const SHARDS: usize = 64;

fn shard_of(line: usize) -> usize {
    // Lines are 64-byte aligned; mix the meaningful bits so consecutive lines spread
    // across shards.
    let x = line >> 6;
    (x ^ (x >> 7) ^ (x >> 13)) & (SHARDS - 1)
}

/// A tracked value plus the global store version that produced it.
type Versioned = (u64, u64);

/// A pending write-back: (word address, value, version) snapshotted at pwb time.
type PendingWrite = (usize, u64, u64);

/// One cache line's worth of tracked words.
type LineWords = [Option<Versioned>; WORDS_PER_LINE];

#[derive(Default)]
struct Shard {
    /// line base address -> latest volatile (value, version) of each word in the line
    volatile: HashMap<usize, LineWords>,
    /// word address -> persisted (value, version)
    persisted: HashMap<usize, Versioned>,
}

/// Software model of the volatile/persistent memory split. See the module docs.
pub struct PersistenceTracker {
    shards: Vec<Mutex<Shard>>,
    /// (word, value, version) triples written back (pwb) but not yet fenced, per thread
    pending: Mutex<HashMap<ThreadId, Vec<PendingWrite>>>,
    /// Global store counter; doubles as the version source for monotone commits.
    stores_recorded: AtomicU64,
}

impl Default for PersistenceTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl PersistenceTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            pending: Mutex::new(HashMap::new()),
            stores_recorded: AtomicU64::new(0),
        }
    }

    /// Record that the 8-byte word at `addr` now holds `val` in volatile memory.
    pub fn record_store(&self, addr: usize, val: u64) {
        let version = self.stores_recorded.fetch_add(1, Ordering::Relaxed) + 1;
        let word = word_of(addr);
        let line = cache_line_of(word);
        let idx = (word - line) / WORD_SIZE;
        let mut shard = self.shards[shard_of(line)].lock();
        shard.volatile.entry(line).or_default()[idx] = Some((val, version));
    }

    /// Model a `pwb` of the cache line containing `addr` by the calling thread: the
    /// line's current volatile contents become *pending* for this thread.
    pub fn on_pwb(&self, addr: usize) {
        let line = cache_line_of(addr);
        let snapshot: Vec<PendingWrite> = {
            let shard = self.shards[shard_of(line)].lock();
            match shard.volatile.get(&line) {
                None => Vec::new(),
                Some(words) => words
                    .iter()
                    .enumerate()
                    .filter_map(|(i, w)| w.map(|(val, ver)| (line + i * WORD_SIZE, val, ver)))
                    .collect(),
            }
        };
        if snapshot.is_empty() {
            return;
        }
        let tid = std::thread::current().id();
        let mut pending = self.pending.lock();
        pending.entry(tid).or_default().extend(snapshot);
    }

    /// Model a `pfence` by the calling thread: everything this thread has `pwb`-ed
    /// since its previous fence becomes persisted — unless a newer version of the
    /// word is already persisted (see the module docs on monotone commits).
    pub fn on_pfence(&self) {
        let tid = std::thread::current().id();
        let drained: Vec<PendingWrite> = {
            let mut pending = self.pending.lock();
            match pending.get_mut(&tid) {
                None => return,
                Some(v) => std::mem::take(v),
            }
        };
        for (word, val, ver) in drained {
            let line = cache_line_of(word);
            let mut shard = self.shards[shard_of(line)].lock();
            let entry = shard.persisted.entry(word).or_insert((val, ver));
            if ver >= entry.1 {
                *entry = (val, ver);
            }
        }
    }

    /// The latest value stored to `addr` in volatile memory, if the word is tracked.
    pub fn volatile_value(&self, addr: usize) -> Option<u64> {
        let word = word_of(addr);
        let line = cache_line_of(word);
        let idx = (word - line) / WORD_SIZE;
        let shard = self.shards[shard_of(line)].lock();
        shard
            .volatile
            .get(&line)
            .and_then(|w| w[idx].map(|(val, _)| val))
    }

    /// The persisted value of `addr`, if any store to it has been flushed and fenced.
    pub fn persisted_value(&self, addr: usize) -> Option<u64> {
        let word = word_of(addr);
        let line = cache_line_of(word);
        let shard = self.shards[shard_of(line)].lock();
        shard.persisted.get(&word).map(|(val, _)| *val)
    }

    /// `true` when the word at `addr` durably holds `val` *and nothing can change
    /// that*: the persisted entry matches and its version is at least the word's
    /// latest volatile version, so by monotone commits every outstanding pending
    /// write-back of the word (necessarily snapshotted at a version ≤ the
    /// volatile one) either loses to the persisted entry or re-commits the same
    /// value. A read-side helping flush of such a word is a provable no-op —
    /// [`PmemSession`](crate::PmemSession) uses this to elide it, which keeps
    /// crash-event streams independent of counter-table collisions when group
    /// commit leaves words tagged past their durability point.
    pub fn durably_holds(&self, addr: usize, val: u64) -> bool {
        let word = word_of(addr);
        let line = cache_line_of(word);
        let idx = (word - line) / WORD_SIZE;
        let shard = self.shards[shard_of(line)].lock();
        let Some(&(pval, pver)) = shard.persisted.get(&word) else {
            return false;
        };
        if pval != val {
            return false;
        }
        match shard.volatile.get(&line).and_then(|w| w[idx]) {
            Some((_, vver)) => vver <= pver,
            None => true,
        }
    }

    /// Number of stores recorded so far (diagnostic).
    pub fn stores_recorded(&self) -> u64 {
        self.stores_recorded.load(Ordering::Relaxed)
    }

    /// Take an adversarial crash snapshot: only flushed-and-fenced values survive.
    pub fn crash_image(&self) -> CrashImage {
        let mut words = HashMap::new();
        for shard in &self.shards {
            let s = shard.lock();
            for (addr, (val, _)) in &s.persisted {
                words.insert(*addr, *val);
            }
        }
        CrashImage { words }
    }

    /// Take a snapshot of the volatile image (what a crash-free reader would see).
    pub fn volatile_image(&self) -> CrashImage {
        let mut words = HashMap::new();
        for shard in &self.shards {
            let s = shard.lock();
            for (line, vals) in &s.volatile {
                for (i, v) in vals.iter().enumerate() {
                    if let Some((val, _)) = v {
                        words.insert(line + i * WORD_SIZE, *val);
                    }
                }
            }
        }
        CrashImage { words }
    }

    /// Forget everything. Used between test cases sharing a backend.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.volatile.clear();
            s.persisted.clear();
        }
        self.pending.lock().clear();
        self.stores_recorded.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of tracked memory (either the persisted image after a
/// simulated crash, or the volatile image), keyed by word address.
#[derive(Debug, Clone, Default)]
pub struct CrashImage {
    words: HashMap<usize, u64>,
}

impl CrashImage {
    /// An empty image, to be populated with [`insert`](Self::insert). Used by
    /// the pool layer, which synthesises an image from a mapped file instead
    /// of from a tracker: in a pool, *every* mapped word is durable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the word holding `addr` as durable with value `value`. Zero
    /// values matter: recovery walks distinguish a durable null (`Some(0)`)
    /// from a word missing from the image (`None`, treated as truncation).
    pub fn insert(&mut self, addr: usize, value: u64) {
        self.words.insert(word_of(addr), value);
    }

    /// Read the 8-byte word at `addr`, if present in the image.
    pub fn read(&self, addr: usize) -> Option<u64> {
        self.words.get(&word_of(addr)).copied()
    }

    /// Read the word holding the value of a typed location.
    pub fn read_of<T>(&self, loc: *const T) -> Option<u64> {
        self.read(loc as usize)
    }

    /// Number of words captured in the image.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the image holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate over `(word address, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words.iter().map(|(a, v)| (*a, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_of(x: &u64) -> usize {
        x as *const u64 as usize
    }

    #[test]
    fn unflushed_store_does_not_survive_a_crash() {
        let t = PersistenceTracker::new();
        let x = 0u64;
        t.record_store(addr_of(&x), 42);
        assert_eq!(t.volatile_value(addr_of(&x)), Some(42));
        assert_eq!(t.persisted_value(addr_of(&x)), None);
        assert_eq!(t.crash_image().read(addr_of(&x)), None);
    }

    #[test]
    fn pwb_without_pfence_is_not_enough() {
        let t = PersistenceTracker::new();
        let x = 0u64;
        t.record_store(addr_of(&x), 7);
        t.on_pwb(addr_of(&x));
        assert_eq!(t.crash_image().read(addr_of(&x)), None);
        t.on_pfence();
        assert_eq!(t.crash_image().read(addr_of(&x)), Some(7));
    }

    #[test]
    fn pfence_persists_the_value_at_pwb_time_not_later_writes() {
        let t = PersistenceTracker::new();
        let x = 0u64;
        t.record_store(addr_of(&x), 1);
        t.on_pwb(addr_of(&x));
        // A later store that is never flushed must not leak into the persisted image.
        t.record_store(addr_of(&x), 2);
        t.on_pfence();
        assert_eq!(t.persisted_value(addr_of(&x)), Some(1));
        assert_eq!(t.volatile_value(addr_of(&x)), Some(2));
    }

    #[test]
    fn pwb_covers_the_whole_cache_line() {
        let t = PersistenceTracker::new();
        // Two words guaranteed to share a cache line: elements 0 and 1 of an aligned
        // array occupying one line.
        #[repr(align(64))]
        struct Line([u64; 8]);
        let line = Line([0; 8]);
        let a0 = addr_of(&line.0[0]);
        let a1 = addr_of(&line.0[1]);
        assert!(crate::cache_line::same_cache_line(a0, a1));
        t.record_store(a0, 10);
        t.record_store(a1, 11);
        t.on_pwb(a0); // flushing either address writes back the whole line
        t.on_pfence();
        assert_eq!(t.persisted_value(a0), Some(10));
        assert_eq!(t.persisted_value(a1), Some(11));
    }

    #[test]
    fn pending_sets_are_per_thread() {
        let t = std::sync::Arc::new(PersistenceTracker::new());
        let x = Box::leak(Box::new(0u64));
        let addr = addr_of(x);
        t.record_store(addr, 99);
        t.on_pwb(addr);
        // A fence on another thread must not commit this thread's pending set.
        {
            let t2 = std::sync::Arc::clone(&t);
            std::thread::spawn(move || t2.on_pfence()).join().unwrap();
        }
        assert_eq!(t.persisted_value(addr), None);
        t.on_pfence();
        assert_eq!(t.persisted_value(addr), Some(99));
    }

    #[test]
    fn stale_cross_thread_fence_cannot_clobber_a_newer_persisted_value() {
        // Thread B snapshots the line (value 1) with a pwb, then stalls. The main
        // thread stores 2, flushes and fences — persisted value 2. When B finally
        // fences, its stale snapshot must NOT regress the persisted image: on real
        // hardware a write-back carries the line's current contents, so later
        // write-backs never carry older data.
        use std::sync::mpsc;
        let t = std::sync::Arc::new(PersistenceTracker::new());
        let x = Box::leak(Box::new(0u64));
        let addr = addr_of(x);
        t.record_store(addr, 1);

        let (to_b, b_gate) = mpsc::channel::<()>();
        let (b_ready, from_b) = mpsc::channel::<()>();
        let t2 = std::sync::Arc::clone(&t);
        let handle = std::thread::spawn(move || {
            t2.on_pwb(addr); // snapshot: value 1
            b_ready.send(()).unwrap();
            b_gate.recv().unwrap(); // stall until main has persisted value 2
            t2.on_pfence(); // stale commit attempt
        });
        from_b.recv().unwrap();
        t.record_store(addr, 2);
        t.on_pwb(addr);
        t.on_pfence();
        assert_eq!(t.persisted_value(addr), Some(2));
        to_b.send(()).unwrap();
        handle.join().unwrap();
        assert_eq!(
            t.persisted_value(addr),
            Some(2),
            "a stale fence regressed the persisted image"
        );
    }

    #[test]
    fn clear_resets_everything() {
        let t = PersistenceTracker::new();
        let x = 0u64;
        t.record_store(addr_of(&x), 5);
        t.on_pwb(addr_of(&x));
        t.on_pfence();
        t.clear();
        assert!(t.crash_image().is_empty());
        assert_eq!(t.volatile_value(addr_of(&x)), None);
        assert_eq!(t.stores_recorded(), 0);
    }

    #[test]
    fn volatile_image_sees_everything() {
        let t = PersistenceTracker::new();
        let xs = [0u64; 16];
        for (i, x) in xs.iter().enumerate() {
            t.record_store(addr_of(x), i as u64);
        }
        let vol = t.volatile_image();
        assert_eq!(vol.len(), 16);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(vol.read(addr_of(x)), Some(i as u64));
        }
        assert!(t.crash_image().is_empty());
    }
}
