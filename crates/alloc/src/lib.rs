//! # `flit-alloc` — persistent arena allocation with recovery roots
//!
//! FliT persists individual *words*; it deliberately says nothing about where those
//! words live. The seed reproduction allocated every data-structure node on the
//! volatile Rust heap, which left three structural holes (ROADMAP):
//!
//! * **Event-stream drift.** `Policy::persist_object` flushes every cache line an
//!   object touches, so its `pwb` count depends on whether the allocator happened
//!   to straddle a line. Absolute persistence-event indices therefore differed
//!   between two replays of the *same* history, and crash points had to be
//!   expressed as fragile construction-relative offsets.
//! * **Live-memory recovery.** Node keys and values were plain fields the tracker
//!   never saw, so crash recovery had to read them from live memory, walking from
//!   a pointer into the *live* structure — impossible after a real crash, and
//!   impossible to even simulate for a crash *during construction*.
//! * **Straddle flushes.** An unaligned node occupying two cache lines costs two
//!   `pwb`s where one would do (MOD — Haria et al., ASPLOS 2019 — identifies
//!   layout control as a first-order persistence-cost lever).
//!
//! This crate closes all three with the standard companion of a persistence
//! library (Memento builds on exactly such a layer): a **persistent arena** that
//! carves fixed-size, cache-line-aligned slots out of reserved
//! [`PmemRegion`] address ranges, plus a small named
//! **recovery-root table** through which structures publish where their durable
//! state begins.
//!
//! ## Arena layout
//!
//! ```text
//! header region (5 cache lines, reserved at construction)
//! ┌──────────┬───────────┬────────────┬───────────┬─────────────────────────────┐
//! │ magic    │ slot size │ high-water │ free head │ root table (16 × key,off+1) │
//! │ +0       │ +8        │ +16        │ +24       │ +64 .. +320                 │
//! └──────────┴───────────┴────────────┴───────────┴─────────────────────────────┘
//! chunk 0, chunk 1, ... (appended on demand, never moved)
//! ┌────────┬────────┬────────┬─── slot_size bytes each, 64-aligned
//! │ slot 0 │ slot 1 │ slot 2 │ ...
//! └────────┴────────┴────────┴───
//! ```
//!
//! Every header and root-table word is written **through the normal
//! store/`pwb`/`pfence` interface** of the owning structure's
//! [`PmemBackend`] — so the crashtest tracker sees every allocator event, the
//! event stream stays deterministic, and a frozen
//! [`CrashImage`] contains the allocator's own metadata
//! exactly as far as it had durably progressed.
//!
//! A slot is identified by its **offset** (a global slot index, stable under the
//! append-only chunk list); the root table stores offsets rather than addresses,
//! which is what a DAX-remapped recovery would need and what keeps the table's
//! *contents* machine-independent.
//!
//! ## Image-only recovery
//!
//! Because nodes live in arena slots and structures record every node word
//! (including keys and values) with the backend, recovery after a crash needs
//! exactly two things: the frozen `CrashImage` and this arena. The root table is
//! reachable from the arena header (offset 0 of the header region), each root
//! names the slot where a structure's durable state begins, and every word the
//! recovery walk reads comes out of the image — **no live-structure pointer and no
//! live-memory reads**. A structure whose root is absent from the image simply was
//! not durably constructed yet: recovery yields the empty structure, which is what
//! makes construction-window crash sweeps possible at all.
//!
//! ## Free lists and reuse
//!
//! Two free lists feed allocation before the bump pointer:
//!
//! * the **durable free list** — freed slots threaded through their first word,
//!   with the head in the persisted header. [`Arena::free`] links a slot here; it
//!   is used for nodes that were never published (failed CAS), where the freeing
//!   thread still holds the backend.
//! * the **volatile recycle list** — [`Arena::recycle`], used by epoch-based
//!   reclamation callbacks that run without backend context. After a crash these
//!   slots are unreachable garbage below the high-water mark; reclaiming them
//!   would take a root-walk GC pass (conservative leak, the standard trade-off of
//!   log-free persistent allocators).
//!
//! ## Determinism contract
//!
//! Slots are cache-line aligned and slot sizes are multiples of the line size, so
//! the number of lines an object flush touches is a pure function of its type —
//! never of where the arena landed in the address space. Single-threaded replays
//! of one history therefore produce *identical absolute event streams* across
//! runs, processes and machines; `flit-crashtest` relies on this to express crash
//! points as stable absolute event indices and to make repro strings portable.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use flit_ebr::Guard;
use parking_lot::{Mutex, RwLock};

use flit_pmem::{
    CrashImage, OpenError, PmemBackend, PmemRegion, PoolArenaSlot, PoolFile, CACHE_LINE_SIZE,
    WORD_SIZE,
};

pub mod gc;
pub use gc::{post_crash_gc, ArenaGc, GcOutcome};

/// Arena header magic ("FLITARNA"): a persisted header whose first word does not
/// read back as this value is uninitialised or torn.
pub const ARENA_MAGIC: u64 = 0x464C_4954_4152_4E41;

/// Number of named recovery roots an arena can hold.
pub const ROOT_CAPACITY: usize = 16;

/// Byte offset of the root table inside the header region. Public so the
/// crash harness can locate (and deliberately corrupt) root entries in a pool
/// file without going through the arena.
pub const ROOT_TABLE_OFFSET: usize = CACHE_LINE_SIZE;

/// Bytes per root-table entry: a key word and an offset word.
pub const ROOT_ENTRY_BYTES: usize = 2 * WORD_SIZE;

/// Total header-region bytes: one line of header words + the root table.
pub const HEADER_BYTES: usize = ROOT_TABLE_OFFSET + ROOT_CAPACITY * ROOT_ENTRY_BYTES;

/// Byte offset of the magic word from the header-region base. The header word
/// offsets are public so the corruption-injection harness can clobber specific
/// persisted fields in a pool file and assert the typed error each produces.
pub const MAGIC_OFFSET: usize = 0;
/// Byte offset of the persisted slot-size word from the header-region base.
pub const SLOT_SIZE_OFFSET: usize = 8;
/// Byte offset of the persisted high-water word from the header-region base.
pub const HIGH_WATER_OFFSET: usize = 16;
/// Byte offset of the durable free-list head from the header-region base.
pub const FREE_HEAD_OFFSET: usize = 24;

/// Well-known root keys used by the workspace's data structures. Any `u64` except
/// `0` (the empty-entry sentinel) is a valid key; these constants only prevent
/// collisions between the structures that share an arena.
pub mod roots {
    /// Head sentinel of a standalone Harris list.
    pub const LIST_HEAD: u64 = 0x6C69_7374_5F68_6561; // "list_hea"
    /// Bucket directory block of a hash table.
    pub const HASH_DIRECTORY: u64 = 0x6874_5F64_6972_6563; // "ht_direc"
    /// Root sentinel of a Natarajan–Mittal BST.
    pub const BST_ROOT: u64 = 0x6273_745F_726F_6F74; // "bst_root"
    /// Head tower of a skiplist.
    pub const SKIPLIST_HEAD: u64 = 0x736B_6970_5F68_6564; // "skip_hed"
    /// Head/tail root-pointer slot of an MS queue.
    pub const QUEUE_ROOTS: u64 = 0x715F_726F_6F74_7321; // "q_roots!"
    /// Root cell of a copy-on-write HAMT (`flit-hamt`): one slot whose first
    /// word is the flushed-CAS publication point of the whole trie.
    pub const HAMT_ROOT: u64 = 0x6861_6D74_5F72_6F6F; // "hamt_roo"
    /// Retained-root (snapshot) table of a copy-on-write HAMT: a persisted
    /// block of `(root, refcount, version)` entries pinning frozen tries so
    /// snapshots survive crashes.
    pub const HAMT_RETAINED: u64 = 0x6861_6D74_5F72_6574; // "hamt_ret"
}

/// The chunk slot-count every arena uses unless a caller overrides it.
///
/// Historically this was a per-call-site constant (the queue's node arena, the
/// hash table's floor); [`ArenaConfig`] makes it a construction parameter so
/// multi-arena systems — one arena per shard of `flit-server`, say — can size
/// each arena to its *share* of the load instead of the full-load size.
pub const DEFAULT_SLOTS_PER_CHUNK: usize = 1024;

/// Construction-time sizing knobs for an [`Arena`]: the slot size and how many
/// slots each lazily-mapped chunk holds.
///
/// This is the single construction surface — `FlitDb::new_arena(cfg)` /
/// `new_arena_for::<T>(cfg)` take one of these instead of positional
/// arguments, and the defaults match the historical constants. Chunk size
/// changes *when* the lazy high-water write-backs happen (they are
/// chunk-boundary triggered), so two arenas with different configs produce
/// different — but individually still deterministic — persistence-event
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Bytes per slot, rounded up to whole cache lines at construction. Must be
    /// non-zero. Ignored by the typed constructors (`new_arena_for::<T>` /
    /// [`Arena::for_slots_of_config`]), which derive the slot size from `T`.
    pub slot_size: usize,
    /// Slots added per chunk when the arena grows. Must be non-zero.
    pub slots_per_chunk: usize,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        Self {
            slot_size: CACHE_LINE_SIZE,
            slots_per_chunk: DEFAULT_SLOTS_PER_CHUNK,
        }
    }
}

impl ArenaConfig {
    /// A config with the given chunk slot-count (default slot size).
    pub fn with_slots_per_chunk(slots_per_chunk: usize) -> Self {
        Self {
            slots_per_chunk,
            ..Self::default()
        }
    }

    /// A config with the given slot size in bytes (default chunk slot-count).
    pub fn with_slot_size(slot_size: usize) -> Self {
        Self {
            slot_size,
            ..Self::default()
        }
    }

    /// This config with its slot size replaced (chainable).
    pub fn sized(self, slot_size: usize) -> Self {
        Self { slot_size, ..self }
    }

    /// This config with its chunk slot-count replaced (chainable).
    pub fn chunked(self, slots_per_chunk: usize) -> Self {
        Self {
            slots_per_chunk,
            ..self
        }
    }

    /// A config sized for an arena expected to hold about `capacity` live slots:
    /// the chunk count is clamped to `[64, DEFAULT_SLOTS_PER_CHUNK]` and rounded
    /// up to a power of two, so small shards grow in small steps while large ones
    /// keep the default granularity.
    pub fn for_capacity(capacity: usize) -> Self {
        Self {
            slots_per_chunk: capacity
                .clamp(64, DEFAULT_SLOTS_PER_CHUNK)
                .next_power_of_two()
                .min(DEFAULT_SLOTS_PER_CHUNK),
            ..Self::default()
        }
    }

    /// The small-slot preset for the interior nodes of a copy-on-write HAMT
    /// (`flit-hamt`): [`HAMT_NODE_SLOT_BYTES`]-byte slots — a header word plus a
    /// bitmap-compressed 16-entry array — with a chunk count derived from
    /// `capacity` via [`ArenaConfig::for_capacity`]. Copy-on-write churns
    /// through slots faster than in-place structures (every update allocates a
    /// whole path), so HAMT arenas want small slots and capacity-proportional
    /// chunks rather than the default cache-line slot geometry.
    pub fn hamt_nodes(capacity: usize) -> Self {
        Self::for_capacity(capacity).sized(HAMT_NODE_SLOT_BYTES)
    }
}

/// Slot size of [`ArenaConfig::hamt_nodes`]: 17 words (a header word carrying
/// the 16-bit occupancy bitmap plus at most 16 packed entry words), rounded up
/// to whole cache lines by the arena (192 bytes).
pub const HAMT_NODE_SLOT_BYTES: usize = 17 * WORD_SIZE;

/// What the persisted arena header looks like inside a [`CrashImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageHeader {
    /// `true` when the magic word was durably written — i.e. the arena itself
    /// completed construction before the crash.
    pub initialised: bool,
    /// The persisted slot size, if the header word reached the image.
    pub slot_size: Option<u64>,
    /// The persisted high-water mark (slots ever bump-allocated). Every update is
    /// recorded with the backend, but the write-back is lazy (chunk-boundary
    /// granularity) and unfenced until the allocating thread's next fence, so the
    /// persisted mark may lag the true value; recovery treats it as a lower bound
    /// — reachability is defined by the root table, never by the mark.
    pub high_water: Option<u64>,
    /// The persisted durable-free-list head (offset + 1; `0` = empty list).
    pub free_head: Option<u64>,
}

/// Free-list and root-registration state, serialised under one lock (allocation
/// itself is mostly lock-free via the bump counter).
#[derive(Default)]
struct AllocState {
    /// Mirror of the durable free-list head word (offset + 1; 0 = empty).
    durable_free: usize,
    /// Volatile recycle list (EBR-freed slots; lost on crash).
    recycled: Vec<usize>,
    /// Multi-slot blocks handed out by [`Arena::alloc_block`], as
    /// `(first_slot, slot_count)` spans. Pool-backed arenas persist these in
    /// the pool directory too; post-crash GC treats each span as one object.
    blocks: Vec<(usize, usize)>,
}

/// Where an arena's regions come from — and therefore how it grows.
enum Backing {
    /// Heap reservations (the simulated substrate).
    Heap,
    /// Ranges carved from a mapped [`PoolFile`]; growth publishes chunk
    /// offsets in the pool's arena directory so a reopen can re-adopt them.
    Pool(PoolArenaSlot),
}

/// A persistent arena of fixed-size, cache-line-aligned slots with a persisted
/// header and a named recovery-root table. See the crate docs.
pub struct Arena {
    header: PmemRegion,
    slot_size: usize,
    chunk_slots: usize,
    chunks: RwLock<Vec<PmemRegion>>,
    /// Bump pointer: the next never-allocated slot index (the high-water mark).
    next_slot: AtomicUsize,
    state: Mutex<AllocState>,
    backing: Backing,
}

impl Arena {
    /// Create an arena whose slots hold `slot_size` bytes (rounded up to whole
    /// cache lines), growing `chunk_slots` slots at a time. The header (magic,
    /// slot size, zero high-water, empty free list) is persisted through `backend`
    /// before the call returns.
    pub fn new<B: PmemBackend>(backend: &B, slot_size: usize, chunk_slots: usize) -> Self {
        assert!(slot_size > 0, "slot size must be non-zero");
        assert!(chunk_slots > 0, "chunks must hold at least one slot");
        let slot_size = slot_size.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let arena = Self {
            header: PmemRegion::reserve(HEADER_BYTES).expect("arena header reservation failed"),
            slot_size,
            chunk_slots,
            chunks: RwLock::new(Vec::new()),
            next_slot: AtomicUsize::new(0),
            state: Mutex::new(AllocState::default()),
            backing: Backing::Heap,
        };
        arena.init_header(backend);
        arena
    }

    /// Create an arena whose header and chunks live in `pool`, claiming the
    /// pool's next directory entry. The header is persisted through `backend`
    /// exactly as in [`Arena::new`]; the directory entry is published before
    /// this returns, so a crash any time after sees a structurally valid
    /// (possibly still magic-less) arena.
    pub fn create_on_pool<B: PmemBackend>(
        backend: &B,
        pool: &Arc<PoolFile>,
        config: ArenaConfig,
    ) -> Result<Self, OpenError> {
        assert!(config.slot_size > 0, "slot size must be non-zero");
        assert!(
            config.slots_per_chunk > 0,
            "chunks must hold at least one slot"
        );
        let slot_size = config.slot_size.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let slot = PoolArenaSlot::create(pool, slot_size, config.slots_per_chunk, HEADER_BYTES)?;
        let arena = Self {
            header: slot.header_region(),
            slot_size,
            chunk_slots: config.slots_per_chunk,
            chunks: RwLock::new(Vec::new()),
            next_slot: AtomicUsize::new(0),
            state: Mutex::new(AllocState::default()),
            backing: Backing::Pool(slot),
        };
        arena.init_header(backend);
        Ok(arena)
    }

    /// Adopt arena `index` of an opened pool: bind its directory entry, map its
    /// chunks, and validate the persisted header — magic, slot size against the
    /// directory, high water against the mapped capacity, the durable free
    /// list, and every root-table entry. Every inconsistency is a typed
    /// [`OpenError`]; nothing panics on a corrupt pool.
    pub fn adopt_from_pool(pool: &Arc<PoolFile>, index: usize) -> Result<Self, OpenError> {
        let slot = PoolArenaSlot::adopt(pool, index, HEADER_BYTES)?;
        let header = slot.header_region();
        let header_base = header.base_addr();
        let read = move |off: usize| -> u64 {
            // SAFETY: in-bounds word of the header region, which outlives this
            // call; atomic view for defined shared access.
            unsafe { (*((header_base + off) as *const AtomicU64)).load(Ordering::SeqCst) }
        };
        let bad = |reason: String| OpenError::ArenaHeader {
            arena: index,
            reason,
        };

        let magic = read(MAGIC_OFFSET);
        if magic != ARENA_MAGIC {
            return Err(bad(format!(
                "arena magic {magic:#018x} (expected {ARENA_MAGIC:#018x})"
            )));
        }
        let header_slot_size = read(SLOT_SIZE_OFFSET);
        if header_slot_size != slot.slot_size() as u64 {
            return Err(OpenError::SlotSizeMismatch {
                arena: index,
                header: header_slot_size,
                directory: slot.slot_size() as u64,
            });
        }
        let chunks = slot.chunk_regions();
        let capacity = chunks.len() * slot.chunk_slots();
        let high_water = read(HIGH_WATER_OFFSET);
        if high_water > capacity as u64 {
            return Err(bad(format!(
                "high-water {high_water} beyond the {capacity} mapped slots"
            )));
        }
        let free_head = read(FREE_HEAD_OFFSET);

        let arena = Self {
            header,
            slot_size: slot.slot_size(),
            chunk_slots: slot.chunk_slots(),
            chunks: RwLock::new(chunks),
            next_slot: AtomicUsize::new(high_water as usize),
            state: Mutex::new(AllocState {
                durable_free: free_head as usize,
                recycled: Vec::new(),
                blocks: slot.blocks(),
            }),
            backing: Backing::Pool(slot),
        };

        // Walk and validate the durable free list: every link must stay below
        // the high-water mark and the list must terminate without a cycle.
        let mut seen = std::collections::HashSet::new();
        let mut cur = free_head as usize;
        while cur != 0 {
            let off = cur - 1;
            if off as u64 >= high_water {
                return Err(bad(format!(
                    "free-list entry {off} at or above high-water {high_water}"
                )));
            }
            if !seen.insert(off) {
                return Err(bad(format!("free list cycles through slot {off}")));
            }
            // SAFETY: `off` is below the high-water mark, so its slot is inside
            // a mapped chunk; the first word is the free-list link.
            cur = unsafe {
                (*(arena.addr_of_offset(off) as *const AtomicU64)).load(Ordering::SeqCst)
            } as usize;
        }

        // Validate the root table: a non-zero key whose offset word is null or
        // out of range is a torn (or corrupted) entry.
        for i in 0..ROOT_CAPACITY {
            let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
            let key = read(key_off);
            if key == 0 {
                continue;
            }
            let off = read(key_off + WORD_SIZE);
            if off == 0 || off > high_water {
                return Err(OpenError::TornRootEntry {
                    arena: index,
                    entry: i,
                });
            }
        }
        Ok(arena)
    }

    /// Persist the header of a freshly created arena: content words first,
    /// magic last, each batch fenced, so a durably-visible magic implies a
    /// durably-visible header (the same persist-before-publish discipline the
    /// data structures follow).
    fn init_header<B: PmemBackend>(&self, backend: &B) {
        self.write_header_word(backend, SLOT_SIZE_OFFSET, self.slot_size as u64);
        self.write_header_word(backend, HIGH_WATER_OFFSET, 0);
        self.write_header_word(backend, FREE_HEAD_OFFSET, 0);
        backend.pwb(self.header_addr(SLOT_SIZE_OFFSET) as *const u8);
        backend.pfence();
        self.write_header_word(backend, MAGIC_OFFSET, ARENA_MAGIC);
        backend.pwb(self.header_addr(MAGIC_OFFSET) as *const u8);
        backend.pfence();
    }

    /// The slot size an arena would use for values of type `T`: the type's size
    /// (at least one word), rounded up to whole cache lines. The single source of
    /// truth for callers that need to size chunks or blocks before construction.
    pub fn slot_size_for<T>() -> usize {
        assert!(
            std::mem::align_of::<T>() <= CACHE_LINE_SIZE,
            "slot types must not require more than cache-line alignment"
        );
        std::mem::size_of::<T>()
            .max(WORD_SIZE)
            .div_ceil(CACHE_LINE_SIZE)
            * CACHE_LINE_SIZE
    }

    /// Create an arena sized for slots of type `T` (one `T` per slot, padded to
    /// whole cache lines).
    pub fn for_slots_of<T, B: PmemBackend>(backend: &B, chunk_slots: usize) -> Self {
        Self::new(backend, Self::slot_size_for::<T>(), chunk_slots)
    }

    /// Create an arena from an [`ArenaConfig`]; equivalent to [`Arena::new`]
    /// with the config's slot size and chunk slot-count.
    pub fn with_config<B: PmemBackend>(backend: &B, config: ArenaConfig) -> Self {
        Self::new(backend, config.slot_size, config.slots_per_chunk)
    }

    /// Create an arena for slots of type `T` with an explicit [`ArenaConfig`].
    pub fn for_slots_of_config<T, B: PmemBackend>(backend: &B, config: ArenaConfig) -> Self {
        Self::for_slots_of::<T, B>(backend, config.slots_per_chunk)
    }

    /// The slot size in bytes (a multiple of the cache-line size).
    #[inline]
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Number of slots ever bump-allocated (the live high-water mark).
    #[inline]
    pub fn high_water(&self) -> usize {
        self.next_slot.load(Ordering::Relaxed)
    }

    /// The address of the arena header's base (the magic word) — "offset 0" of
    /// the recovery story: everything durable is reachable from here.
    #[inline]
    pub fn header_base(&self) -> usize {
        self.header.base_addr()
    }

    #[inline]
    fn header_addr(&self, byte_offset: usize) -> usize {
        debug_assert!(byte_offset < HEADER_BYTES);
        self.header.base_addr() + byte_offset
    }

    /// Header/root words are shared mutable state: go through `AtomicU64` views so
    /// live reads never race the raw region memory.
    #[inline]
    fn header_word(&self, byte_offset: usize) -> &AtomicU64 {
        // SAFETY: the offset is in bounds (debug-asserted), 8-aligned (all callers
        // use word offsets), and the region memory outlives `self`.
        unsafe { &*(self.header_addr(byte_offset) as *const AtomicU64) }
    }

    /// Store a header word and record it with the backend (no flush — callers
    /// batch their own `pwb`/`pfence`).
    fn write_header_word<B: PmemBackend>(&self, backend: &B, byte_offset: usize, val: u64) {
        self.header_word(byte_offset).store(val, Ordering::SeqCst);
        backend.record_store(self.header_addr(byte_offset) as *const u8, val);
    }

    // ---- offsets ----------------------------------------------------------

    /// The base address of the slot at `offset`, which must have been allocated.
    pub fn addr_of_offset(&self, offset: usize) -> usize {
        let chunks = self.chunks.read();
        let chunk = offset / self.chunk_slots;
        assert!(chunk < chunks.len(), "offset {offset} beyond the arena");
        chunks[chunk].base_addr() + (offset % self.chunk_slots) * self.slot_size
    }

    /// The slot offset containing `addr`, or `None` when `addr` is outside every
    /// chunk of this arena.
    pub fn offset_of_addr(&self, addr: usize) -> Option<usize> {
        let chunks = self.chunks.read();
        for (i, chunk) in chunks.iter().enumerate() {
            if chunk.contains(addr) {
                return Some(i * self.chunk_slots + (addr - chunk.base_addr()) / self.slot_size);
            }
        }
        None
    }

    /// `true` when `addr` falls inside this arena's slot storage.
    pub fn contains(&self, addr: usize) -> bool {
        self.chunks.read().iter().any(|c| c.contains(addr))
    }

    // ---- allocation -------------------------------------------------------

    /// Allocate one slot. Reuses recycled/freed slots first, then bumps the
    /// high-water mark. The new mark is always *recorded* with the backend (a
    /// store event: the crash tracker sees every allocator event), but its
    /// write-back is **lazy** — flushed only when the mark crosses a chunk
    /// boundary — so steady-state allocation costs zero `pwb`s. Recovery already
    /// treats the persisted mark as a lower bound (roots, not the mark, define
    /// reachability), and the lazy flush is what keeps cache-line alignment a net
    /// `pwbs/op` win on single-line-node structures.
    pub fn alloc<B: PmemBackend>(&self, backend: &B) -> *mut u8 {
        {
            let mut state = self.state.lock();
            if let Some(offset) = state.recycled.pop() {
                return self.addr_of_offset(offset) as *mut u8;
            }
            if state.durable_free != 0 {
                let offset = state.durable_free - 1;
                let addr = self.addr_of_offset(offset);
                // SAFETY: a freed slot's first word holds the next free offset + 1
                // (written by `free`), and the slot is not in use.
                let next = unsafe { *(addr as *const u64) };
                state.durable_free = next as usize;
                self.write_header_word(backend, FREE_HEAD_OFFSET, next);
                backend.pwb(self.header_addr(FREE_HEAD_OFFSET) as *const u8);
                return addr as *mut u8;
            }
        }
        let index = self.next_slot.fetch_add(1, Ordering::Relaxed);
        self.ensure_chunk(index);
        self.write_header_word(backend, HIGH_WATER_OFFSET, (index + 1) as u64);
        if (index + 1) % self.chunk_slots == 0 {
            // Chunk boundary: flush the durable mark (fenced by the caller's next
            // fence — every allocation is followed by a node persist).
            backend.pwb(self.header_addr(HIGH_WATER_OFFSET) as *const u8);
        }
        self.addr_of_offset(index) as *mut u8
    }

    /// Allocate one slot and move `value` into it. The write is raw
    /// initialisation: callers record the node's words with the backend and
    /// persist them before publishing, exactly as with heap allocation.
    pub fn alloc_init<T, B: PmemBackend>(&self, backend: &B, value: T) -> *mut T {
        assert!(
            std::mem::size_of::<T>() <= self.slot_size,
            "{} does not fit a {}-byte slot",
            std::any::type_name::<T>(),
            self.slot_size
        );
        debug_assert!(std::mem::align_of::<T>() <= CACHE_LINE_SIZE);
        let ptr = self.alloc(backend) as *mut T;
        // SAFETY: `ptr` is a freshly allocated, exclusively owned, cache-line
        // aligned slot of at least `size_of::<T>()` bytes.
        unsafe { ptr.write(value) };
        ptr
    }

    /// Allocate `bytes` of *contiguous* slots (for blocks larger than one slot,
    /// e.g. a hash table's bucket directory). Always bump-allocated; if the block
    /// does not fit the current chunk's remainder, the gap is skipped (the skipped
    /// slots leak — blocks are expected to be allocated once, at construction).
    pub fn alloc_block<B: PmemBackend>(&self, backend: &B, bytes: usize) -> *mut u8 {
        let nslots = bytes.div_ceil(self.slot_size).max(1);
        assert!(
            nslots <= self.chunk_slots,
            "block of {nslots} slots exceeds the chunk size {}",
            self.chunk_slots
        );
        loop {
            let cur = self.next_slot.load(Ordering::Relaxed);
            // If the block would straddle a chunk boundary, start it at the next
            // chunk instead (the gap slots are never handed out).
            let index = if cur % self.chunk_slots + nslots > self.chunk_slots {
                (cur / self.chunk_slots + 1) * self.chunk_slots
            } else {
                cur
            };
            if self
                .next_slot
                .compare_exchange(cur, index + nslots, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            self.ensure_chunk(index + nslots - 1);
            self.write_header_word(backend, HIGH_WATER_OFFSET, (index + nslots) as u64);
            backend.pwb(self.header_addr(HIGH_WATER_OFFSET) as *const u8);
            // Record the span before returning (and before any caller can
            // publish a root that reaches it): post-crash GC must treat the
            // whole block as one object, and block *contents* are directory
            // words (slot offsets), not node pointers.
            self.state.lock().blocks.push((index, nslots));
            if let Backing::Pool(slot) = &self.backing {
                slot.note_block(index, nslots)
                    .expect("pool block directory full");
            }
            return self.addr_of_offset(index) as *mut u8;
        }
    }

    /// Materialise chunks so that slot `index` is addressable. Growth failure
    /// is fatal here by design: an arena that cannot grow mid-operation has no
    /// useful recovery (`open` callers get typed errors; allocators panic).
    fn ensure_chunk(&self, index: usize) {
        let needed = index / self.chunk_slots + 1;
        if self.chunks.read().len() >= needed {
            return;
        }
        let mut chunks = self.chunks.write();
        while chunks.len() < needed {
            let region = match &self.backing {
                Backing::Heap => PmemRegion::reserve(self.chunk_slots * self.slot_size)
                    .expect("arena chunk reservation failed"),
                Backing::Pool(slot) => slot
                    .add_chunk()
                    .expect("pool exhausted while growing an arena"),
            };
            chunks.push(region);
        }
    }

    /// Return a slot to the **durable** free list: the slot's first word becomes
    /// the next-free link and the header's free-list head points at it, both
    /// recorded and flushed through `backend` (committed by the freeing thread's
    /// next fence).
    ///
    /// # Safety
    /// `ptr` must be the base of a slot previously returned by
    /// [`alloc`](Self::alloc)/[`alloc_init`](Self::alloc_init) of this arena, the
    /// slot must be unreachable from any live or durable structure state, and it
    /// must not be freed (or recycled) again.
    pub unsafe fn free<B: PmemBackend>(&self, backend: &B, ptr: *mut u8) {
        let offset = self
            .offset_of_addr(ptr as usize)
            .expect("freed pointer belongs to this arena");
        let mut state = self.state.lock();
        let old_head = state.durable_free as u64;
        // SAFETY: caller guarantees the slot is dead; its first word is ours.
        unsafe { (ptr as *mut u64).write(old_head) };
        backend.record_store(ptr as *const u8, old_head);
        backend.pwb(ptr as *const u8);
        state.durable_free = offset + 1;
        self.write_header_word(backend, FREE_HEAD_OFFSET, (offset + 1) as u64);
        backend.pwb(self.header_addr(FREE_HEAD_OFFSET) as *const u8);
    }

    /// Return a slot to the **volatile** recycle list (no backend required; used
    /// by reclamation callbacks). The slot is reused by later allocations of this
    /// process but leaks across a crash until a GC pass reclaims it.
    ///
    /// # Safety
    /// Same contract as [`free`](Self::free).
    pub unsafe fn recycle(&self, ptr: *mut u8) {
        let offset = self
            .offset_of_addr(ptr as usize)
            .expect("recycled pointer belongs to this arena");
        self.state.lock().recycled.push(offset);
    }

    /// Retire the slot at `addr` through an EBR guard: once the two-epoch rule
    /// proves quiescence, the slot is [`recycle`](Self::recycle)d. This is the
    /// one reclamation hook every arena-allocated structure uses in place of
    /// dropping a `Box`.
    ///
    /// # Safety
    /// `addr` must be the base of a slot of this arena that has been unlinked
    /// from all shared (and durable-reachable) state before this call, and it
    /// must be retired exactly once.
    pub unsafe fn defer_recycle(self: &Arc<Self>, guard: &Guard<'_>, addr: usize) {
        let arena = Arc::clone(self);
        guard.defer(move || {
            // SAFETY: caller's contract (unlinked + unique retirement) plus EBR
            // quiescence make the slot dead by the time this runs.
            unsafe { arena.recycle(addr as *mut u8) };
        });
    }

    // ---- recovery roots ---------------------------------------------------

    /// Register (or update) the named recovery root `key` to point at the slot
    /// containing `addr`. The offset word is persisted *before* the key word
    /// (each with its own fence), so an image containing the key always contains
    /// the offset. Panics when the table is full or `key` is zero.
    pub fn register_root<B: PmemBackend>(&self, backend: &B, key: u64, addr: usize) {
        assert_ne!(key, 0, "root key 0 is the empty-entry sentinel");
        let offset = self
            .offset_of_addr(addr)
            .expect("root address belongs to this arena");
        let _state = self.state.lock(); // serialise table scans + writes
        let mut slot = None;
        for i in 0..ROOT_CAPACITY {
            let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
            match self.header_word(key_off).load(Ordering::SeqCst) {
                k if k == key => {
                    slot = Some(i);
                    break;
                }
                0 if slot.is_none() => slot = Some(i),
                _ => {}
            }
        }
        let i = slot.expect("recovery-root table is full");
        let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
        let val_off = key_off + WORD_SIZE;
        self.write_header_word(backend, val_off, (offset + 1) as u64);
        backend.pwb(self.header_addr(val_off) as *const u8);
        backend.pfence();
        self.write_header_word(backend, key_off, key);
        backend.pwb(self.header_addr(key_off) as *const u8);
        backend.pfence();
    }

    /// The live root registered under `key`, as a slot base address.
    pub fn root(&self, key: u64) -> Option<usize> {
        for i in 0..ROOT_CAPACITY {
            let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
            if self.header_word(key_off).load(Ordering::SeqCst) == key {
                let off = self.header_word(key_off + WORD_SIZE).load(Ordering::SeqCst);
                return (off != 0).then(|| self.addr_of_offset(off as usize - 1));
            }
        }
        None
    }

    /// The root registered under `key` **as persisted in `image`**, as a slot
    /// base address. `None` when the key (or its offset) never became durable —
    /// the structure was not durably constructed at the crash point, and recovery
    /// must treat it as empty.
    pub fn root_in_image(&self, image: &CrashImage, key: u64) -> Option<usize> {
        for i in 0..ROOT_CAPACITY {
            let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
            if image.read(self.header_addr(key_off)) == Some(key) {
                let off = image.read(self.header_addr(key_off + WORD_SIZE))?;
                return (off != 0).then(|| self.addr_of_offset(off as usize - 1));
            }
        }
        None
    }

    /// Every recovery root durably present in `image`, as `(key, slot base
    /// address)` pairs in table order. A key whose offset word never became
    /// durable is skipped (the all-or-nothing contract of
    /// [`root_in_image`](Self::root_in_image)). Used by the `FlitDb::recover`
    /// facade to report which structures were durably constructed at a crash
    /// point without knowing their types.
    pub fn roots_in_image(&self, image: &CrashImage) -> Vec<(u64, usize)> {
        let mut found = Vec::new();
        for i in 0..ROOT_CAPACITY {
            let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
            match image.read(self.header_addr(key_off)) {
                Some(key) if key != 0 => {
                    if let Some(off) = image.read(self.header_addr(key_off + WORD_SIZE)) {
                        if off != 0 {
                            found.push((key, self.addr_of_offset(off as usize - 1)));
                        }
                    }
                }
                _ => {}
            }
        }
        found
    }

    /// The arena header as persisted in `image`. The header is reachable from
    /// offset 0 unconditionally, so this view is meaningful at *every* crash
    /// point, including mid-construction.
    pub fn image_header(&self, image: &CrashImage) -> ImageHeader {
        ImageHeader {
            initialised: image.read(self.header_addr(MAGIC_OFFSET)) == Some(ARENA_MAGIC),
            slot_size: image.read(self.header_addr(SLOT_SIZE_OFFSET)),
            high_water: image.read(self.header_addr(HIGH_WATER_OFFSET)),
            free_head: image.read(self.header_addr(FREE_HEAD_OFFSET)),
        }
    }

    // ---- pool adoption and post-crash GC support --------------------------

    /// Slots added per growth chunk.
    #[inline]
    pub fn chunk_slots(&self) -> usize {
        self.chunk_slots
    }

    /// `true` when this arena's regions live in a mapped pool file.
    pub fn is_pool_backed(&self) -> bool {
        matches!(self.backing, Backing::Pool(_))
    }

    /// Every live root-table entry as `(key, slot offset)` pairs in table
    /// order. After adoption the live table *is* the durable table (the header
    /// is mapped file memory), so this is what post-crash GC seeds from.
    pub fn live_roots(&self) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        for i in 0..ROOT_CAPACITY {
            let key_off = ROOT_TABLE_OFFSET + i * ROOT_ENTRY_BYTES;
            let key = self.header_word(key_off).load(Ordering::SeqCst);
            if key == 0 {
                continue;
            }
            let off = self.header_word(key_off + WORD_SIZE).load(Ordering::SeqCst);
            if off != 0 {
                out.push((key, off as usize - 1));
            }
        }
        out
    }

    /// The slot offsets currently threaded on the durable free list, walked
    /// with a cycle guard (a corrupt list yields a truncated walk, not a hang).
    pub fn durable_free_offsets(&self) -> Vec<usize> {
        let state = self.state.lock();
        let hw = self.high_water();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut cur = state.durable_free;
        while cur != 0 {
            let off = cur - 1;
            if off >= hw || !seen.insert(off) {
                break;
            }
            out.push(off);
            // SAFETY: `off` is an allocated slot (below high water); a freed
            // slot's first word is the free-list link.
            cur =
                unsafe { (*(self.addr_of_offset(off) as *const AtomicU64)).load(Ordering::SeqCst) }
                    as usize;
        }
        out
    }

    /// Snapshot of the volatile recycle list.
    pub fn recycled_offsets(&self) -> Vec<usize> {
        self.state.lock().recycled.clone()
    }

    /// Multi-slot block spans handed out by [`alloc_block`](Self::alloc_block),
    /// as `(first_slot, slot_count)` pairs.
    pub fn recorded_blocks(&self) -> Vec<(usize, usize)> {
        self.state.lock().blocks.clone()
    }

    /// Hand slots that post-crash GC proved unreachable back to the allocator.
    ///
    /// Pool-backed arenas push them onto the **durable** free list so the
    /// reclamation survives the next unmap — a reopened pool reports zero
    /// leaks instead of re-discovering the same garbage every open. GC runs
    /// single-threaded before any handle exists and the mapped file *is* the
    /// durable state, so plain atomic stores suffice (no P-V events to
    /// record). Heap arenas have no durable file; their slots go to the
    /// volatile recycle list for in-process reuse.
    pub fn reclaim_leaked(&self, offsets: &[usize]) {
        let mut state = self.state.lock();
        match &self.backing {
            Backing::Heap => state.recycled.extend_from_slice(offsets),
            Backing::Pool(_) => {
                for &off in offsets {
                    let addr = self.addr_of_offset(off);
                    let old_head = state.durable_free as u64;
                    // SAFETY: GC proved the slot unreachable from every root;
                    // its first word is the allocator's to use as a link.
                    unsafe { (*(addr as *mut AtomicU64)).store(old_head, Ordering::SeqCst) };
                    state.durable_free = off + 1;
                    self.header_word(FREE_HEAD_OFFSET)
                        .store((off + 1) as u64, Ordering::SeqCst);
                }
            }
        }
    }

    /// Copy every mapped word of this arena — the whole header region and every
    /// chunk — into `image`. For a pool-backed arena the file *is* the durable
    /// state, so the synthesized image contains every word (zeros included:
    /// recovery walks distinguish a durable null from a truncated read). This
    /// is what lets `FlitDb::open` reuse the image-only recovery walks
    /// unchanged on a real pool.
    pub fn dump_into_image(&self, image: &mut CrashImage) {
        let dump_region = |image: &mut CrashImage, base: usize, len: usize| {
            for off in (0..len).step_by(WORD_SIZE) {
                // SAFETY: in-bounds word of a region owned by this arena.
                let val = unsafe { (*((base + off) as *const AtomicU64)).load(Ordering::SeqCst) };
                image.insert(base + off, val);
            }
        };
        dump_region(image, self.header.base_addr(), HEADER_BYTES);
        for chunk in self.chunks.read().iter() {
            dump_region(image, chunk.base_addr(), chunk.len());
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("slot_size", &self.slot_size)
            .field("chunk_slots", &self.chunk_slots)
            .field("chunks", &self.chunks.read().len())
            .field("high_water", &self.high_water())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_pmem::{LatencyModel, NullPmem, SimNvram};

    fn tracking() -> SimNvram {
        SimNvram::for_crash_testing()
    }

    fn counting() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    #[test]
    fn slots_are_aligned_disjoint_and_stable() {
        let b = counting();
        let arena = Arena::new(&b, 24, 4); // rounds to 64-byte slots
        assert_eq!(arena.slot_size(), 64);
        let mut seen = std::collections::HashSet::new();
        let mut addrs = Vec::new();
        for _ in 0..10 {
            let p = arena.alloc(&b) as usize;
            assert_eq!(p % CACHE_LINE_SIZE, 0);
            assert!(seen.insert(p), "slot handed out twice");
            addrs.push(p);
        }
        assert_eq!(arena.high_water(), 10);
        // Growth must not move earlier slots.
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(arena.offset_of_addr(a), Some(i));
            assert_eq!(arena.addr_of_offset(i), a);
            assert!(arena.contains(a));
        }
        assert!(!arena.contains(arena.header_base()));
    }

    #[test]
    fn header_is_persisted_and_always_reachable() {
        let b = tracking();
        let arena = Arena::new(&b, 64, 8);
        let image = b.tracker().unwrap().crash_image();
        let header = arena.image_header(&image);
        assert!(header.initialised);
        assert_eq!(header.slot_size, Some(64));
        assert_eq!(header.high_water, Some(0));
        assert_eq!(header.free_head, Some(0));
    }

    #[test]
    fn high_water_is_flushed_lazily_at_chunk_boundaries() {
        let b = tracking();
        let arena = Arena::new(&b, 64, 4);
        for _ in 0..3 {
            let _ = arena.alloc(&b);
        }
        b.pfence();
        // Mid-chunk allocations record the mark but do not flush it.
        let header = arena.image_header(&b.tracker().unwrap().crash_image());
        assert_eq!(
            header.high_water,
            Some(0),
            "lazy: mid-chunk marks unflushed"
        );
        // Crossing the chunk boundary flushes; the caller's next fence commits.
        let _ = arena.alloc(&b);
        let header = arena.image_header(&b.tracker().unwrap().crash_image());
        assert_eq!(header.high_water, Some(0), "flushed but not yet fenced");
        b.pfence();
        let header = arena.image_header(&b.tracker().unwrap().crash_image());
        assert_eq!(header.high_water, Some(4));
        assert_eq!(arena.high_water(), 4);
    }

    #[test]
    fn root_registration_round_trips_live_and_in_image() {
        let b = tracking();
        let arena = Arena::new(&b, 64, 8);
        let node = arena.alloc(&b) as usize;
        assert_eq!(arena.root(roots::LIST_HEAD), None);
        arena.register_root(&b, roots::LIST_HEAD, node);
        assert_eq!(arena.root(roots::LIST_HEAD), Some(node));
        let image = b.tracker().unwrap().crash_image();
        assert_eq!(arena.root_in_image(&image, roots::LIST_HEAD), Some(node));
        assert_eq!(arena.root_in_image(&image, roots::BST_ROOT), None);
        // Re-registration updates in place.
        let other = arena.alloc(&b) as usize;
        arena.register_root(&b, roots::LIST_HEAD, other);
        assert_eq!(arena.root(roots::LIST_HEAD), Some(other));
    }

    #[test]
    fn root_registration_persists_the_offset_before_the_key_at_every_crash_point() {
        // The ordering contract `register_root` documents, checked mechanically:
        // arm a crash at *every* event of construction + registration, and in each
        // frozen image a durable key word must come with a durable non-zero offset
        // word (scanned raw in the header region, because `root_in_image` maps the
        // broken state to `None` and would mask the regression).
        let total = {
            let plan = flit_pmem::CrashPlan::counting();
            let b = SimNvram::for_crash_testing_with_plan(plan.clone());
            let arena = Arena::new(&b, 64, 8);
            let node = arena.alloc(&b) as usize;
            arena.register_root(&b, roots::LIST_HEAD, node);
            plan.events_seen()
        };
        for k in 0..=total {
            let plan = flit_pmem::CrashPlan::armed_at(k);
            let b = SimNvram::for_crash_testing_with_plan(plan.clone());
            let arena = Arena::new(&b, 64, 8);
            let node = arena.alloc(&b) as usize;
            arena.register_root(&b, roots::LIST_HEAD, node);
            let image = plan
                .crash_image()
                .unwrap_or_else(|| b.tracker().unwrap().crash_image());
            let base = arena.header_base();
            for off in (ROOT_TABLE_OFFSET..HEADER_BYTES).step_by(ROOT_ENTRY_BYTES) {
                if image.read(base + off) == Some(roots::LIST_HEAD) {
                    let offset_word = image.read(base + off + WORD_SIZE);
                    assert!(
                        matches!(offset_word, Some(v) if v != 0),
                        "crash at event {k}: root key durable without its offset"
                    );
                }
            }
            // And through the public API the entry is all-or-nothing.
            match arena.root_in_image(&image, roots::LIST_HEAD) {
                None => {}
                Some(addr) => assert_eq!(addr, node),
            }
        }
    }

    #[test]
    fn durable_free_list_reuses_slots_lifo() {
        let b = tracking();
        let arena = Arena::new(&b, 64, 8);
        let a = arena.alloc(&b);
        let c = arena.alloc(&b);
        // SAFETY: both slots are unreachable test allocations.
        unsafe {
            arena.free(&b, a);
            arena.free(&b, c);
        }
        b.pfence();
        let header = arena.image_header(&b.tracker().unwrap().crash_image());
        assert_eq!(header.free_head, Some(2), "head = offset of `c` + 1");
        assert_eq!(arena.alloc(&b), c, "LIFO reuse");
        assert_eq!(arena.alloc(&b), a);
        assert_eq!(arena.high_water(), 2, "no new slots were bumped");
    }

    #[test]
    fn recycle_reuses_without_backend_events() {
        let b = counting();
        let arena = Arena::new(&b, 64, 8);
        let a = arena.alloc(&b);
        let before = b.stats().snapshot();
        // SAFETY: unreachable test allocation.
        unsafe { arena.recycle(a) };
        assert_eq!(arena.alloc(&b), a);
        let delta = b.stats().snapshot().delta_since(&before);
        assert_eq!(delta.pwbs, 0, "recycling is free of persistence events");
    }

    #[test]
    fn chunks_grow_on_demand() {
        let b = counting();
        let arena = Arena::new(&b, 64, 2);
        let addrs: Vec<usize> = (0..7).map(|_| arena.alloc(&b) as usize).collect();
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(arena.offset_of_addr(a), Some(i));
        }
        assert_eq!(arena.addr_of_offset(6), addrs[6]);
    }

    #[test]
    fn blocks_are_contiguous_and_chunk_local() {
        let b = counting();
        let arena = Arena::new(&b, 64, 8);
        let _ = arena.alloc(&b); // misalign the bump pointer
        let block = arena.alloc_block(&b, 64 * 3) as usize;
        assert_eq!(arena.offset_of_addr(block), Some(1));
        assert!(arena.contains(block + 64 * 3 - 1));
        // A block that cannot fit the current chunk's remainder skips the gap.
        let _ = arena.alloc(&b);
        let big = arena.alloc_block(&b, 64 * 6) as usize;
        let off = arena.offset_of_addr(big).unwrap();
        assert_eq!(off % 8, 0, "skipped to the next chunk boundary");
    }

    #[test]
    fn typed_allocation_round_trips() {
        #[repr(C)]
        struct Node {
            key: u64,
            value: u64,
        }
        let b = counting();
        let arena = Arena::for_slots_of::<Node, _>(&b, 8);
        assert_eq!(arena.slot_size(), 64);
        let n = arena.alloc_init(&b, Node { key: 7, value: 70 });
        // SAFETY: just allocated and initialised.
        unsafe {
            assert_eq!((*n).key, 7);
            assert_eq!((*n).value, 70);
        }
    }

    #[test]
    fn works_over_a_null_backend() {
        // The non-persistent baseline must be able to use the arena as a plain
        // allocator: no tracker, no stats, no panic.
        let b = NullPmem;
        let arena = Arena::new(&b, 64, 4);
        let p = arena.alloc(&b);
        arena.register_root(&b, roots::LIST_HEAD, p as usize);
        assert_eq!(arena.root(roots::LIST_HEAD), Some(p as usize));
    }

    #[test]
    fn allocation_event_stream_is_deterministic() {
        // Two identical allocation sequences against fresh backends must generate
        // identical persistence-event counts — the property that makes absolute
        // crash indices stable.
        let run = || {
            let plan = flit_pmem::CrashPlan::counting();
            let backend = SimNvram::for_crash_testing_with_plan(plan.clone());
            let arena = Arena::new(&backend, 128, 4);
            for _ in 0..9 {
                let _ = arena.alloc(&backend);
            }
            arena.register_root(&backend, roots::BST_ROOT, arena.addr_of_offset(3));
            plan.events_seen()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let b = std::sync::Arc::new(counting());
        let arena = std::sync::Arc::new(Arena::new(&*b, 64, 16));
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let arena = std::sync::Arc::clone(&arena);
                let b = std::sync::Arc::clone(&b);
                let seen = &seen;
                s.spawn(move || {
                    for _ in 0..200 {
                        let p = arena.alloc(&*b) as usize;
                        assert!(seen.lock().unwrap().insert(p), "slot {p:#x} reused");
                    }
                });
            }
        });
        assert_eq!(arena.high_water(), 800);
    }
}
