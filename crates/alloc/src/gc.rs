//! Post-crash slot GC: conservative mark-and-sweep from the root tables.
//!
//! The volatile recycle list ([`Arena::recycle`]) is the one allocator
//! structure that does not survive a crash: slots retired through EBR sit on
//! it until they are reused, and a crash forgets them. After a reopen those
//! slots are garbage — below the high-water mark, on no free list, reachable
//! from no root. Without a GC pass they leak forever, which is the standard
//! trade-off of log-free persistent allocators ... unless the pool runtime
//! closes it, which is this module's job. `FlitDb::open` runs
//! [`post_crash_gc`] as the final stage of its validate → adopt → recover → GC
//! pipeline and reports the reclaimed count.
//!
//! ## How marking works
//!
//! * **Seeds** — every live root-table entry of every arena (after adoption
//!   the live table *is* the durable table).
//! * **Slot scanning is conservative** — every word of a marked slot is
//!   treated as a *potential* pointer: strip the link-and-persist flag
//!   (bit 63) and the low mark/tag bits, then ask each arena whether the
//!   address falls inside a chunk. False positives (a value that happens to
//!   look like a live slot address) keep garbage alive — acceptable; false
//!   negatives are impossible because structures store plain tagged addresses.
//! * **Block spans are one object** — [`Arena::alloc_block`] records each
//!   multi-slot span durably. A mark anywhere in a span marks the whole span,
//!   and span words are *additionally* interpreted as `offset + 1` slot
//!   references in the same arena, because block contents are directory words
//!   (the hash table's bucket directory stores head-slot offsets, not
//!   addresses).
//! * **Durable-free slots are accounted, not scanned** — they are dead by
//!   definition; their first word is a free-list link, not a pointer.
//!
//! ## Sweep
//!
//! A slot below the high-water mark that is neither marked, on the durable
//! free list, nor already on the recycle list is leaked: it is handed back via
//! [`Arena::reclaim_leaked`] — onto the **durable** free list for pool-backed
//! arenas (so the reclamation survives the next unmap and a reopened pool
//! reports zero leaks), onto the volatile recycle list for heap arenas.
//! Running the pass twice therefore reclaims nothing the second time — the
//! acceptance check the kill harness uses.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flit_pmem::WORD_SIZE;

use crate::Arena;

/// Strip the link-and-persist flag (bit 63) and the mark/tag bits from a word
/// before treating it as a candidate pointer.
const CANDIDATE_MASK: u64 = !((1 << 63) | 0b111);

/// Per-arena result of one [`post_crash_gc`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaGc {
    /// Slots proved reachable from the root tables.
    pub reachable: usize,
    /// Slots accounted for by the durable free list.
    pub free_listed: usize,
    /// Slots already on the volatile recycle list when the pass ran.
    pub recycled: usize,
    /// Leaked slots reclaimed by this pass (died on the volatile recycle list,
    /// or in a block-placement gap).
    pub reclaimed: usize,
    /// The high-water mark the pass swept up to.
    pub high_water: usize,
}

/// Result of a [`post_crash_gc`] pass over a set of arenas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// One entry per arena, in the order passed in.
    pub arenas: Vec<ArenaGc>,
}

impl GcOutcome {
    /// Total slots reclaimed across all arenas — the `leaked_slots` counter
    /// surfaced in the recovery report.
    pub fn total_reclaimed(&self) -> usize {
        self.arenas.iter().map(|a| a.reclaimed).sum()
    }

    /// Total slots proved reachable across all arenas.
    pub fn total_reachable(&self) -> usize {
        self.arenas.iter().map(|a| a.reachable).sum()
    }
}

/// Read the word at `addr` through an atomic view (GC runs before any handle
/// exists, but the regions are shared memory and deserve defined access).
fn read_word(addr: usize) -> u64 {
    // SAFETY: callers pass in-bounds, word-aligned addresses of arena regions
    // kept alive by the `Arc<Arena>`s held across the pass.
    unsafe { (*(addr as *const AtomicU64)).load(Ordering::SeqCst) }
}

/// Conservative mark-and-sweep over `arenas` (see the module docs). Returns
/// the per-arena accounting; leaked slots are handed back to each arena via
/// [`Arena::reclaim_leaked`] as a side effect (durable free list when
/// pool-backed, volatile recycle list on the heap).
pub fn post_crash_gc(arenas: &[Arc<Arena>]) -> GcOutcome {
    let n = arenas.len();
    let hw: Vec<usize> = arenas.iter().map(|a| a.high_water()).collect();
    // block_of[a][slot] = index into blocks[a] covering `slot`, if any.
    let blocks: Vec<Vec<(usize, usize)>> = arenas.iter().map(|a| a.recorded_blocks()).collect();
    let mut block_of: Vec<Vec<Option<usize>>> = hw.iter().map(|&h| vec![None; h]).collect();
    for (ai, spans) in blocks.iter().enumerate() {
        for (bi, &(first, count)) in spans.iter().enumerate() {
            for slot in block_of[ai].iter_mut().skip(first).take(count) {
                *slot = Some(bi);
            }
        }
    }

    let mut marked: Vec<Vec<bool>> = hw.iter().map(|&h| vec![false; h]).collect();
    let mut work: Vec<(usize, usize)> = Vec::new();

    // Seed from every arena's live root table.
    for (ai, arena) in arenas.iter().enumerate() {
        for (_key, off) in arena.live_roots() {
            if off < hw[ai] {
                work.push((ai, off));
            }
        }
    }

    // Resolve a candidate word to `(arena, slot)`, first as a tagged address.
    let resolve_addr = |word: u64| -> Option<(usize, usize)> {
        let addr = (word & CANDIDATE_MASK) as usize;
        if addr == 0 {
            return None;
        }
        for (ai, arena) in arenas.iter().enumerate() {
            if let Some(off) = arena.offset_of_addr(addr) {
                return Some((ai, off));
            }
        }
        None
    };

    while let Some((ai, off)) = work.pop() {
        if off >= hw[ai] || marked[ai][off] {
            continue;
        }
        // A hit anywhere in a recorded block span marks — and scans — the span
        // as one object.
        let (first, count, in_block) = match block_of[ai][off] {
            Some(bi) => {
                let (f, c) = blocks[ai][bi];
                (f, c.min(hw[ai] - f), true)
            }
            None => (off, 1, false),
        };
        for m in marked[ai].iter_mut().skip(first).take(count) {
            *m = true;
        }
        let arena = &arenas[ai];
        let base = arena.addr_of_offset(first);
        let bytes = count * arena.slot_size();
        for woff in (0..bytes).step_by(WORD_SIZE) {
            let word = read_word(base + woff);
            if let Some(hit) = resolve_addr(word) {
                work.push(hit);
            }
            // Block words are directory entries: `offset + 1` references into
            // the same arena.
            if in_block && word != 0 && (word as usize - 1) < hw[ai] {
                work.push((ai, word as usize - 1));
            }
        }
    }

    // Sweep: anything below high water that is neither reachable nor on a
    // free list is a leak; reclaim it.
    let mut outcome = GcOutcome::default();
    for ai in 0..n {
        let arena = &arenas[ai];
        let free: HashSet<usize> = arena.durable_free_offsets().into_iter().collect();
        let recycled: HashSet<usize> = arena.recycled_offsets().into_iter().collect();
        let mut leaked = Vec::new();
        for (off, m) in marked[ai].iter().enumerate() {
            if !m && !free.contains(&off) && !recycled.contains(&off) {
                leaked.push(off);
            }
        }
        arena.reclaim_leaked(&leaked);
        outcome.arenas.push(ArenaGc {
            reachable: marked[ai].iter().filter(|m| **m).count(),
            free_listed: free.len(),
            recycled: recycled.len(),
            reclaimed: leaked.len(),
            high_water: hw[ai],
        });
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_pmem::{LatencyModel, SimNvram};

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    #[test]
    fn unreachable_slots_are_reclaimed_and_reachable_ones_kept() {
        let b = backend();
        let arena = Arc::new(Arena::new(&b, 64, 16));
        // Three slots: root -> a -> c; b is garbage (simulates a slot that
        // died on the volatile recycle list across a crash).
        let a = arena.alloc(&b) as usize;
        let dead = arena.alloc(&b) as usize;
        let c = arena.alloc(&b) as usize;
        // SAFETY: exclusively owned test slots; first word is ours.
        unsafe {
            (a as *mut u64).write(c as u64);
            (c as *mut u64).write(0);
        }
        arena.register_root(&b, crate::roots::LIST_HEAD, a);
        let outcome = post_crash_gc(&[Arc::clone(&arena)]);
        assert_eq!(outcome.arenas[0].reachable, 2);
        assert_eq!(outcome.arenas[0].reclaimed, 1);
        assert_eq!(outcome.total_reclaimed(), 1);
        // The reclaimed slot is reusable...
        assert_eq!(arena.alloc(&b) as usize, dead);
        // ...and a second pass reclaims nothing (idempotence).
        // SAFETY: the slot just came back from the recycle list; re-retire it.
        unsafe { arena.recycle(dead as *mut u8) };
        let again = post_crash_gc(&[arena]);
        assert_eq!(again.total_reclaimed(), 0);
    }

    #[test]
    fn tagged_pointers_still_mark_their_targets() {
        let b = backend();
        let arena = Arc::new(Arena::new(&b, 64, 16));
        let a = arena.alloc(&b) as usize;
        let target = arena.alloc(&b) as usize;
        // Mark bit + link-and-persist flag set, as a Harris list's next word
        // would carry mid-removal.
        let tagged = (target as u64) | (1 << 63) | 0b1;
        // SAFETY: exclusively owned test slot.
        unsafe { (a as *mut u64).write(tagged) };
        arena.register_root(&b, crate::roots::LIST_HEAD, a);
        let outcome = post_crash_gc(&[arena]);
        assert_eq!(outcome.arenas[0].reachable, 2);
        assert_eq!(outcome.arenas[0].reclaimed, 0);
    }

    #[test]
    fn durable_free_slots_are_accounted_not_leaked() {
        let b = backend();
        let arena = Arc::new(Arena::new(&b, 64, 16));
        let a = arena.alloc(&b);
        let _keep = arena.alloc(&b);
        // SAFETY: unreachable test allocation.
        unsafe { arena.free(&b, a) };
        let outcome = post_crash_gc(&[Arc::clone(&arena)]);
        assert_eq!(outcome.arenas[0].free_listed, 1);
        // `_keep` is unreachable from any root: reclaimed, not free-listed.
        assert_eq!(outcome.arenas[0].reclaimed, 1);
    }

    #[test]
    fn block_spans_mark_as_one_object_and_their_words_act_as_offsets() {
        let b = backend();
        let arena = Arc::new(Arena::new(&b, 64, 16));
        // A 3-slot directory block whose words reference two node slots by
        // offset + 1, exactly like the hash table's bucket directory.
        let n1 = arena.alloc(&b) as usize;
        let n2 = arena.alloc(&b) as usize;
        let dir = arena.alloc_block(&b, 64 * 3) as *mut u64;
        let o1 = arena.offset_of_addr(n1).unwrap() as u64;
        let o2 = arena.offset_of_addr(n2).unwrap() as u64;
        // SAFETY: exclusively owned block.
        unsafe {
            dir.write(2); // count word — also a (harmless, conservative) offset ref
            dir.add(1).write(o1 + 1);
            dir.add(2).write(o2 + 1);
        }
        arena.register_root(&b, crate::roots::HASH_DIRECTORY, dir as usize);
        let outcome = post_crash_gc(&[arena]);
        // 3 block slots + 2 nodes (the count word 2 also marks offset 1 = n2,
        // already counted).
        assert_eq!(outcome.arenas[0].reachable, 5);
        assert_eq!(outcome.arenas[0].reclaimed, 0);
    }
}
