//! The wire protocol: a tiny, hand-rolled byte encoding for requests and replies.
//!
//! Requests are one [`Op`] each — `Get`, `Put` or `Del` over 64-bit keys and
//! values — encoded as a single tag byte followed by little-endian words. No
//! framing, no varints, no serde: the encoding is small enough to write by hand
//! and fully round-trips (`decode(encode(op)) == op`), which the unit tests pin
//! down byte for byte. Replies mirror the map's semantics: `insert` does not
//! overwrite and `remove` of an absent key is a no-op, so every mutation reply
//! says which of the two outcomes happened.
//!
//! Malformed input never panics: [`Op::decode`] and [`Reply::decode`] return a
//! [`ProtoError`] for truncated buffers, unknown tags and trailing garbage.
//!
//! Besides the three data ops there are two *control-plane* requests that
//! address the server as a whole (they have no single key and are never routed
//! to a shard mailbox, which is why [`Op::key`] reports `None` for them):
//! [`Op::Stats`] asks for the aggregated metrics snapshot and is answered by
//! [`Reply::Stats`] carrying a length-prefixed `flit-obs-v1` JSON document, and
//! [`Op::Scan`] asks for every `(key, value)` pair matching a prefix mask and
//! is answered by [`Reply::Entries`] — served from per-shard frozen snapshots
//! and merged in key order. A server whose map cannot take snapshots answers a
//! scan with [`Reply::Unsupported`] rather than lying with an empty result.

/// One request of the KV service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Look up a key.
    Get(u64),
    /// Insert `(key, value)`; does not overwrite an existing key.
    Put(u64, u64),
    /// Remove a key.
    Del(u64),
    /// Fetch the server's aggregated metrics snapshot (control plane; not
    /// routed to any shard).
    Stats,
    /// Enumerate every pair whose key matches `prefix` under `mask`
    /// (`key & mask == prefix & mask`; `mask == 0` dumps the whole map).
    /// Control plane: fans out to *every* shard's frozen snapshot rather than
    /// routing to one.
    Scan {
        /// The key bits the scan selects on (only the bits set in `mask`
        /// participate).
        prefix: u64,
        /// Which key bits must match `prefix`; zero selects everything.
        mask: u64,
    },
}

/// One reply of the KV service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `Get` found the key; carries its value.
    Found(u64),
    /// `Get` did not find the key.
    Missing,
    /// `Put` inserted the key.
    Inserted,
    /// `Put` found the key already present (no overwrite).
    Exists,
    /// `Del` removed the key.
    Deleted,
    /// `Del` found the key absent.
    Absent,
    /// `Stats` answer: a `flit-obs-v1` JSON document (UTF-8 bytes,
    /// length-prefixed on the wire).
    Stats(Vec<u8>),
    /// `Scan` answer: the matching `(key, value)` pairs, count-prefixed on the
    /// wire, sorted by key.
    Entries(Vec<(u64, u64)>),
    /// The request decoded fine but this server cannot serve it — e.g. a
    /// `Scan` against a map structure that cannot take frozen snapshots.
    Unsupported,
}

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before the message did.
    Truncated,
    /// The leading tag byte names no known message.
    BadTag(u8),
    /// Bytes remained after a complete message.
    Trailing,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "buffer ended before the message did"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::Trailing => write!(f, "trailing bytes after a complete message"),
        }
    }
}

impl std::error::Error for ProtoError {}

const TAG_GET: u8 = 0x01;
const TAG_PUT: u8 = 0x02;
const TAG_DEL: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_FOUND: u8 = 0x81;
const TAG_MISSING: u8 = 0x82;
const TAG_INSERTED: u8 = 0x83;
const TAG_EXISTS: u8 = 0x84;
const TAG_DELETED: u8 = 0x85;
const TAG_ABSENT: u8 = 0x86;
const TAG_STATS_REPLY: u8 = 0x87;
const TAG_SCAN: u8 = 0x05;
const TAG_ENTRIES: u8 = 0x88;
const TAG_UNSUPPORTED: u8 = 0x89;

/// Split one little-endian `u64` off the front of `buf`.
fn take_u64(buf: &[u8]) -> Result<(u64, &[u8]), ProtoError> {
    if buf.len() < 8 {
        return Err(ProtoError::Truncated);
    }
    let (word, rest) = buf.split_at(8);
    Ok((u64::from_le_bytes(word.try_into().unwrap()), rest))
}

fn done<T>(value: T, rest: &[u8]) -> Result<T, ProtoError> {
    if rest.is_empty() {
        Ok(value)
    } else {
        Err(ProtoError::Trailing)
    }
}

impl Op {
    /// Append this request's encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Op::Get(k) => {
                out.push(TAG_GET);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Op::Put(k, v) => {
                out.push(TAG_PUT);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            Op::Del(k) => {
                out.push(TAG_DEL);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Op::Stats => out.push(TAG_STATS),
            Op::Scan { prefix, mask } => {
                out.push(TAG_SCAN);
                out.extend_from_slice(&prefix.to_le_bytes());
                out.extend_from_slice(&mask.to_le_bytes());
            }
        }
    }

    /// This request's encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        self.encode_into(&mut out);
        out
    }

    /// Decode one request occupying the whole buffer.
    pub fn decode(buf: &[u8]) -> Result<Op, ProtoError> {
        let (&tag, rest) = buf.split_first().ok_or(ProtoError::Truncated)?;
        match tag {
            TAG_GET => {
                let (k, rest) = take_u64(rest)?;
                done(Op::Get(k), rest)
            }
            TAG_PUT => {
                let (k, rest) = take_u64(rest)?;
                let (v, rest) = take_u64(rest)?;
                done(Op::Put(k, v), rest)
            }
            TAG_DEL => {
                let (k, rest) = take_u64(rest)?;
                done(Op::Del(k), rest)
            }
            TAG_STATS => done(Op::Stats, rest),
            TAG_SCAN => {
                let (prefix, rest) = take_u64(rest)?;
                let (mask, rest) = take_u64(rest)?;
                done(Op::Scan { prefix, mask }, rest)
            }
            other => Err(ProtoError::BadTag(other)),
        }
    }

    /// The key this request addresses — what shard routing hashes. `None` for
    /// the unrouted control-plane requests ([`Op::Stats`], [`Op::Scan`]).
    pub fn key(&self) -> Option<u64> {
        match *self {
            Op::Get(k) | Op::Put(k, _) | Op::Del(k) => Some(k),
            Op::Stats | Op::Scan { .. } => None,
        }
    }
}

impl Reply {
    /// Append this reply's encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Found(v) => {
                out.push(TAG_FOUND);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Reply::Missing => out.push(TAG_MISSING),
            Reply::Inserted => out.push(TAG_INSERTED),
            Reply::Exists => out.push(TAG_EXISTS),
            Reply::Deleted => out.push(TAG_DELETED),
            Reply::Absent => out.push(TAG_ABSENT),
            Reply::Stats(json) => {
                out.push(TAG_STATS_REPLY);
                out.extend_from_slice(&(json.len() as u64).to_le_bytes());
                out.extend_from_slice(json);
            }
            Reply::Entries(pairs) => {
                out.push(TAG_ENTRIES);
                out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
                for (k, v) in pairs {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Reply::Unsupported => out.push(TAG_UNSUPPORTED),
        }
    }

    /// This reply's encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        self.encode_into(&mut out);
        out
    }

    /// Decode one reply occupying the whole buffer.
    pub fn decode(buf: &[u8]) -> Result<Reply, ProtoError> {
        let (&tag, rest) = buf.split_first().ok_or(ProtoError::Truncated)?;
        match tag {
            TAG_FOUND => {
                let (v, rest) = take_u64(rest)?;
                done(Reply::Found(v), rest)
            }
            TAG_MISSING => done(Reply::Missing, rest),
            TAG_INSERTED => done(Reply::Inserted, rest),
            TAG_EXISTS => done(Reply::Exists, rest),
            TAG_DELETED => done(Reply::Deleted, rest),
            TAG_ABSENT => done(Reply::Absent, rest),
            TAG_STATS_REPLY => {
                let (len, rest) = take_u64(rest)?;
                if (rest.len() as u64) < len {
                    return Err(ProtoError::Truncated);
                }
                let (json, rest) = rest.split_at(len as usize);
                done(Reply::Stats(json.to_vec()), rest)
            }
            TAG_ENTRIES => {
                let (count, mut rest) = take_u64(rest)?;
                // Bound the count by the bytes actually present before
                // allocating — a hostile length prefix must not OOM us.
                if count > rest.len() as u64 / 16 {
                    return Err(ProtoError::Truncated);
                }
                let mut pairs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (k, r) = take_u64(rest)?;
                    let (v, r) = take_u64(r)?;
                    pairs.push((k, v));
                    rest = r;
                }
                done(Reply::Entries(pairs), rest)
            }
            TAG_UNSUPPORTED => done(Reply::Unsupported, rest),
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip() {
        for op in [
            Op::Get(0),
            Op::Get(u64::MAX),
            Op::Put(7, 42),
            Op::Del(9),
            Op::Stats,
            Op::Scan { prefix: 0, mask: 0 },
            Op::Scan {
                prefix: 0x4000,
                mask: 0xFF00,
            },
        ] {
            assert_eq!(Op::decode(&op.encode()), Ok(op));
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Found(0),
            Reply::Found(u64::MAX),
            Reply::Missing,
            Reply::Inserted,
            Reply::Exists,
            Reply::Deleted,
            Reply::Absent,
            Reply::Stats(Vec::new()),
            Reply::Stats(b"{\"schema\":\"flit-obs-v1\"}".to_vec()),
            Reply::Entries(Vec::new()),
            Reply::Entries(vec![(1, 10), (2, 20), (u64::MAX, 0)]),
            Reply::Unsupported,
        ] {
            assert_eq!(Reply::decode(&reply.encode()), Ok(reply.clone()));
        }
    }

    #[test]
    fn encodings_are_pinned_byte_for_byte() {
        assert_eq!(Op::Get(1).encode(), vec![0x01, 1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            Op::Put(1, 2).encode(),
            vec![0x02, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(Op::Del(3).encode(), vec![0x03, 3, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(Op::Stats.encode(), vec![0x04]);
        assert_eq!(
            Op::Scan { prefix: 1, mask: 2 }.encode(),
            vec![0x05, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(Reply::Inserted.encode(), vec![0x83]);
        assert_eq!(
            Reply::Entries(vec![(1, 2)]).encode(),
            vec![0x88, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(Reply::Unsupported.encode(), vec![0x89]);
        assert_eq!(
            Reply::Stats(b"{}".to_vec()).encode(),
            vec![0x87, 2, 0, 0, 0, 0, 0, 0, 0, b'{', b'}']
        );
    }

    #[test]
    fn malformed_buffers_error_without_panicking() {
        assert_eq!(Op::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Op::decode(&[0x01, 1, 2]), Err(ProtoError::Truncated));
        assert_eq!(Op::decode(&[0x77]), Err(ProtoError::BadTag(0x77)));
        let mut long = Op::Get(1).encode();
        long.push(0);
        assert_eq!(Op::decode(&long), Err(ProtoError::Trailing));
        assert_eq!(Reply::decode(&[0x00]), Err(ProtoError::BadTag(0x00)));
        assert_eq!(Reply::decode(&[0x81, 1]), Err(ProtoError::Truncated));
        // A stats reply whose length prefix overruns the buffer is truncated,
        // not a panic; one with bytes past the payload is trailing garbage.
        assert_eq!(
            Reply::decode(&[0x87, 9, 0, 0, 0, 0, 0, 0, 0, b'x']),
            Err(ProtoError::Truncated)
        );
        let mut long = Reply::Stats(b"{}".to_vec()).encode();
        long.push(0);
        assert_eq!(Reply::decode(&long), Err(ProtoError::Trailing));
        // A scan missing its mask word; an entries reply whose count prefix
        // claims more pairs than the buffer holds (caught before allocating);
        // one with bytes past the last pair.
        assert_eq!(
            Op::decode(&Op::Scan { prefix: 1, mask: 2 }.encode()[..9]),
            Err(ProtoError::Truncated)
        );
        assert_eq!(
            Reply::decode(&[0x88, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF]),
            Err(ProtoError::Truncated)
        );
        let mut long = Reply::Entries(vec![(1, 2)]).encode();
        long.push(0);
        assert_eq!(Reply::decode(&long), Err(ProtoError::Trailing));
    }

    #[test]
    fn key_extraction() {
        assert_eq!(Op::Get(5).key(), Some(5));
        assert_eq!(Op::Put(6, 1).key(), Some(6));
        assert_eq!(Op::Del(7).key(), Some(7));
        assert_eq!(Op::Stats.key(), None, "stats is unrouted");
        assert_eq!(
            Op::Scan { prefix: 5, mask: 7 }.key(),
            None,
            "scan fans out to every shard"
        );
    }
}
