//! The sharded server: shard = (database, arena-backed map, mailbox); routing by
//! key hash; the request pump that drives bytes through a shard.

use flit::{FlitDb, FlitHandle, Policy};
use flit_alloc::ArenaConfig;
use flit_datastructs::{Automatic, ConcurrentMap, MAX_USER_KEY};
use flit_queues::{ConcurrentQueue, MsQueue};

use crate::proto::{Op, ProtoError, Reply};

/// Chunk slot-count of every shard's mailbox arena: mailboxes stay short (they
/// hold in-flight request tokens, not data), so they grow in small steps.
pub const MAILBOX_CHUNK_SLOTS: usize = 256;

/// Construction parameters of a [`KvServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of shards. Each shard owns its own database, arena, map and
    /// mailbox; keys are routed by hash.
    pub shards: usize,
    /// Expected number of live keys across the whole server. Each shard's map is
    /// sized for its share (`keys_hint / shards`), and its arena grows in
    /// share-sized chunks ([`ArenaConfig::for_capacity`]).
    pub keys_hint: usize,
}

impl ServerConfig {
    /// A config with the given shard count and key capacity hint.
    pub fn new(shards: usize, keys_hint: usize) -> Self {
        assert!(shards > 0, "a server needs at least one shard");
        Self { shards, keys_hint }
    }

    /// This config's per-shard capacity hint.
    pub fn shard_keys_hint(&self) -> usize {
        (self.keys_hint / self.shards).max(1)
    }
}

/// One shard of the service: its own [`FlitDb`] (and therefore its own backend,
/// statistics and crash images), an arena-backed map holding its key range, and
/// an MS-queue request mailbox living in the same database — so mailbox traffic
/// is part of the shard's durable instruction stream, like the rest of the
/// service path.
pub struct Shard<P: Policy, M: ConcurrentMap<P>> {
    db: FlitDb<P>,
    map: M,
    mailbox: MsQueue<P, Automatic>,
}

impl<P: Policy, M: ConcurrentMap<P>> Shard<P, M> {
    fn new(db: FlitDb<P>, config: &ServerConfig) -> Self {
        let hint = config.shard_keys_hint();
        let map = M::with_capacity_cfg(&db, hint, ArenaConfig::for_capacity(hint));
        let mailbox =
            MsQueue::with_config(&db, ArenaConfig::with_slots_per_chunk(MAILBOX_CHUNK_SLOTS));
        Self { db, map, mailbox }
    }

    /// The shard's database. Workers create their per-shard sessions here
    /// (`shard.db().handle()`).
    pub fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// The shard's map (for recovery and quiescent inspection).
    pub fn map(&self) -> &M {
        &self.map
    }

    /// The shard's request mailbox.
    pub fn mailbox(&self) -> &MsQueue<P, Automatic> {
        &self.mailbox
    }

    /// Post a request token into the mailbox. Tokens are opaque `u64`s chosen by
    /// the driver (an index into its request slab); they must keep bit 63 clear
    /// so every policy — including link-and-persist, which reserves the top bit —
    /// can carry them.
    pub fn post(&self, h: &FlitHandle<'_, P>, token: u64) {
        debug_assert!(token < 1 << 63, "mailbox tokens must keep bit 63 clear");
        self.mailbox.enqueue(h, token);
    }

    /// Drain one request token from the mailbox, if any is pending.
    pub fn take(&self, h: &FlitHandle<'_, P>) -> Option<u64> {
        self.mailbox.dequeue(h)
    }

    /// Execute one decoded request against the shard's map. Keys at or above
    /// [`MAX_USER_KEY`] (the structures' reserved sentinel range) are refused
    /// conservatively — `Get` misses, `Put` reports the key as taken, `Del`
    /// reports it absent — instead of panicking on hostile input.
    pub fn apply(&self, h: &FlitHandle<'_, P>, op: &Op) -> Reply {
        if op.key() >= MAX_USER_KEY {
            return match *op {
                Op::Get(_) => Reply::Missing,
                Op::Put(..) => Reply::Exists,
                Op::Del(_) => Reply::Absent,
            };
        }
        match *op {
            Op::Get(k) => match self.map.get(h, k) {
                Some(v) => Reply::Found(v),
                None => Reply::Missing,
            },
            Op::Put(k, v) => {
                if self.map.insert(h, k, v) {
                    Reply::Inserted
                } else {
                    Reply::Exists
                }
            }
            Op::Del(k) => {
                if self.map.remove(h, k) {
                    Reply::Deleted
                } else {
                    Reply::Absent
                }
            }
        }
    }

    /// Bytes in → op → bytes out, bypassing the mailbox: decode one request,
    /// apply it, encode the reply. The direct path used for prefill and for
    /// single-request probes; the measured service path is
    /// [`KvServer::pump`].
    pub fn serve_bytes(
        &self,
        h: &FlitHandle<'_, P>,
        request: &[u8],
    ) -> Result<Vec<u8>, ProtoError> {
        let op = Op::decode(request)?;
        Ok(self.apply(h, &op).encode())
    }
}

/// A sharded durable KV service over `N` independent [`Shard`]s.
///
/// Generic over the persistence policy `P` (all five P-V interface variants of
/// the evaluation instantiate) and the map structure `M` (flit-HT-policy hash
/// table by default in the benchmarks; any [`ConcurrentMap`] works). See the
/// crate docs for the architecture essay.
pub struct KvServer<P: Policy, M: ConcurrentMap<P>> {
    shards: Vec<Shard<P, M>>,
}

impl<P: Policy, M: ConcurrentMap<P>> KvServer<P, M> {
    /// Build a server whose shard `i`'s database is produced by `db_factory(i)`.
    ///
    /// The factory-per-shard shape is what gives each shard an *independent*
    /// backend: independent statistics, an independent persistence-event stream,
    /// and — under the simulated-NVRAM backend — an independent crash plan, which
    /// is what lets the crash harness kill exactly one shard at a stable absolute
    /// event index while the others keep serving.
    pub fn new_with(config: ServerConfig, mut db_factory: impl FnMut(usize) -> FlitDb<P>) -> Self {
        let shards = (0..config.shards)
            .map(|i| Shard::new(db_factory(i), &config))
            .collect();
        Self { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &Shard<P, M> {
        &self.shards[i]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard<P, M>] {
        &self.shards
    }

    /// The shard a key routes to: a Fibonacci-hash mix of the key, reduced
    /// modulo the shard count. A pure function of `(key, num_shards)` — stable
    /// across runs, processes and machines, so a request trace fully determines
    /// which shard served each request.
    pub fn route(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 31;
        (mixed % self.shards.len() as u64) as usize
    }

    /// One session per shard, in shard order — the per-worker handle set
    /// ("each worker thread holds one `FlitHandle` per shard it touches").
    pub fn handles(&self) -> Vec<FlitHandle<'_, P>> {
        self.shards.iter().map(|s| s.db.handle()).collect()
    }

    /// The full service path for one already-encoded request: decode, route by
    /// key, post the slab token into the routed shard's mailbox, drain one token
    /// from that mailbox, decode *that* token's request from `slab`, apply it,
    /// and return `(served_token, reply_bytes)`.
    ///
    /// Under concurrency a worker may drain a token another worker just posted —
    /// the service is work-conserving, so "serve whatever is pending on the
    /// shard you just fed" keeps every request flowing. The drain loop cannot
    /// livelock: each worker performs exactly one successful take per post and
    /// takes only after posting to the same shard, so whenever some worker still
    /// owes a take, that shard's pending count is at least one. On a single
    /// thread the drained token is always the one just posted.
    ///
    /// `handles` must hold one handle per shard in shard order (see
    /// [`KvServer::handles`]); `token` must index into `slab`.
    pub fn pump(
        &self,
        handles: &[FlitHandle<'_, P>],
        slab: &[Vec<u8>],
        token: u64,
    ) -> Result<(u64, Vec<u8>), ProtoError> {
        debug_assert_eq!(handles.len(), self.shards.len());
        let op = Op::decode(&slab[token as usize])?;
        let sid = self.route(op.key());
        let shard = &self.shards[sid];
        let h = &handles[sid];
        shard.post(h, token);
        loop {
            if let Some(served) = shard.take(h) {
                let served_op = Op::decode(&slab[served as usize])?;
                let reply = shard.apply(h, &served_op);
                return Ok((served, reply.encode()));
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit::{FlitDb, FlitPolicy, HashedScheme};
    use flit_datastructs::HashTable;
    use flit_pmem::{LatencyModel, SimNvram};

    type Policy_ = FlitPolicy<HashedScheme, SimNvram>;
    type Map_ = HashTable<Policy_, Automatic>;

    fn server(shards: usize) -> KvServer<Policy_, Map_> {
        KvServer::new_with(ServerConfig::new(shards, 512), |_| {
            FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build())
        })
    }

    #[test]
    fn shards_are_independent_databases() {
        let s = server(3);
        assert_eq!(s.num_shards(), 3);
        let ids: Vec<_> = s.shards().iter().map(|sh| sh.db().id()).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "each shard owns its own database");
    }

    #[test]
    fn apply_matches_map_semantics() {
        let s = server(2);
        let hs = s.handles();
        let shard = s.shard(0);
        let h = &hs[0];
        assert_eq!(shard.apply(h, &Op::Get(7)), Reply::Missing);
        assert_eq!(shard.apply(h, &Op::Put(7, 70)), Reply::Inserted);
        assert_eq!(shard.apply(h, &Op::Put(7, 71)), Reply::Exists);
        assert_eq!(shard.apply(h, &Op::Get(7)), Reply::Found(70));
        assert_eq!(shard.apply(h, &Op::Del(7)), Reply::Deleted);
        assert_eq!(shard.apply(h, &Op::Del(7)), Reply::Absent);
    }

    #[test]
    fn reserved_keys_are_refused_not_panicked_on() {
        let s = server(1);
        let hs = s.handles();
        let shard = s.shard(0);
        assert_eq!(shard.apply(&hs[0], &Op::Put(u64::MAX, 1)), Reply::Exists);
        assert_eq!(shard.apply(&hs[0], &Op::Get(u64::MAX)), Reply::Missing);
        assert_eq!(shard.apply(&hs[0], &Op::Del(u64::MAX)), Reply::Absent);
    }

    #[test]
    fn pump_serves_through_the_mailbox() {
        let s = server(2);
        let hs = s.handles();
        let slab = vec![Op::Put(5, 50).encode(), Op::Get(5).encode()];
        let (t0, r0) = s.pump(&hs, &slab, 0).unwrap();
        assert_eq!((t0, Reply::decode(&r0)), (0, Ok(Reply::Inserted)));
        let (t1, r1) = s.pump(&hs, &slab, 1).unwrap();
        assert_eq!((t1, Reply::decode(&r1)), (1, Ok(Reply::Found(50))));
        assert!(s.shards().iter().all(|sh| sh.mailbox().is_empty()));
    }

    #[test]
    fn serve_bytes_round_trips_and_rejects_garbage() {
        let s = server(1);
        let hs = s.handles();
        let shard = s.shard(0);
        let reply = shard.serve_bytes(&hs[0], &Op::Put(1, 2).encode()).unwrap();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Inserted));
        assert!(shard.serve_bytes(&hs[0], &[0xFF, 0x00]).is_err());
    }
}
