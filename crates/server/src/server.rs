//! The sharded server: shard = (database, arena-backed map, mailbox); routing by
//! key hash; the request pump that drives bytes through a shard.
//!
//! ## Pool-backed shards
//!
//! Each shard's database can live on its own file-backed pool
//! ([`KvServer::create_on_pools`], one `shard-NNN.pool` file per shard under a
//! directory — see [`shard_pool_path`]). One pool per shard preserves the
//! independence the factory-per-shard shape establishes: a process kill or a
//! corrupted file takes down exactly one shard's state, and
//! [`recover_shard_pool`] brings that one shard back — open the pool (full
//! validate → adopt → recover → GC pipeline), locate the shard map's root in
//! the adopted arenas, and rebuild its abstract key→value state image-only.

use std::path::{Path, PathBuf};
use std::time::Instant;

use flit::{CommitMode, FlitDb, FlitHandle, OpenError, OpenReport, Policy};
use flit_alloc::ArenaConfig;
use flit_datastructs::{Automatic, ConcurrentMap, RecoverInImage, RecoveredMap, MAX_USER_KEY};
use flit_obs::{Counter, Histogram, MetricsSnapshot, Registry};
use flit_queues::{ConcurrentQueue, MsQueue};

use crate::proto::{Op, ProtoError, Reply};

/// The pool file backing shard `shard` under `dir`: `dir/shard-NNN.pool`. The
/// single source of truth for the layout — creation, reopening and the kill
/// harness all route through it.
pub fn shard_pool_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.pool"))
}

/// Re-open the pool backing shard `shard` under `dir` and rebuild map `M`'s
/// durable abstract state from it, with no live server.
///
/// Runs [`FlitDb::open`]'s full pipeline, then walks the adopted arenas for
/// `M`'s root key ([`RecoverInImage::ROOT_KEY`]) and recovers image-only from
/// each arena that registered it (exactly one for a server shard: the map
/// arena). A pool in which the root never became durable recovers to the
/// empty map. Returns the re-opened database (ready for new traffic), the
/// [`OpenReport`] (leak accounting included) and the recovered pairs.
pub fn recover_shard_pool<P: Policy, M: ConcurrentMap<P> + RecoverInImage>(
    dir: &Path,
    shard: usize,
    policy: P,
) -> Result<(FlitDb<P>, OpenReport, RecoveredMap), OpenError> {
    let (db, report) = FlitDb::open(shard_pool_path(dir, shard), policy)?;
    let mut recovered = RecoveredMap::default();
    for arena in db.arenas() {
        if arena.live_roots().iter().any(|(k, _)| *k == M::ROOT_KEY) {
            recovered.absorb(M::recover_arena_image(&arena, &report.image));
        }
    }
    Ok((db, report, recovered))
}

/// Chunk slot-count of every shard's mailbox arena: mailboxes stay short (they
/// hold in-flight request tokens, not data), so they grow in small steps.
pub const MAILBOX_CHUNK_SLOTS: usize = 256;

/// Construction parameters of a [`KvServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of shards. Each shard owns its own database, arena, map and
    /// mailbox; keys are routed by hash.
    pub shards: usize,
    /// Expected number of live keys across the whole server. Each shard's map is
    /// sized for its share (`keys_hint / shards`), and its arena grows in
    /// share-sized chunks ([`ArenaConfig::for_capacity`]).
    pub keys_hint: usize,
}

impl ServerConfig {
    /// A config with the given shard count and key capacity hint.
    pub fn new(shards: usize, keys_hint: usize) -> Self {
        assert!(shards > 0, "a server needs at least one shard");
        Self { shards, keys_hint }
    }

    /// This config's per-shard capacity hint.
    pub fn shard_keys_hint(&self) -> usize {
        (self.keys_hint / self.shards).max(1)
    }
}

/// One shard of the service: its own [`FlitDb`] (and therefore its own backend,
/// statistics and crash images), an arena-backed map holding its key range, and
/// an MS-queue request mailbox living in the same database — so mailbox traffic
/// is part of the shard's durable instruction stream, like the rest of the
/// service path.
pub struct Shard<P: Policy, M: ConcurrentMap<P>> {
    db: FlitDb<P>,
    map: M,
    mailbox: MsQueue<P, Automatic>,
    /// Index of this shard within its server (stamped on its metric labels).
    index: usize,
    /// Per-op-kind counters on the server's shared registry
    /// (`server_ops_total{shard=i,op=get|put|del|scan}`).
    ops_get: Counter,
    ops_put: Counter,
    ops_del: Counter,
    ops_scan: Counter,
    /// Apply latency (`server_reply_ns{shard=i}`), nanoseconds.
    reply_ns: Histogram,
}

impl<P: Policy, M: ConcurrentMap<P>> Shard<P, M> {
    fn new(db: FlitDb<P>, config: &ServerConfig, registry: &Registry, index: usize) -> Self {
        let hint = config.shard_keys_hint();
        let map = M::with_capacity_cfg(&db, hint, ArenaConfig::for_capacity(hint));
        let mailbox =
            MsQueue::with_config(&db, ArenaConfig::with_slots_per_chunk(MAILBOX_CHUNK_SLOTS));
        let shard_label = index.to_string();
        let op_counter =
            |op: &str| registry.counter("server_ops_total", &[("shard", &shard_label), ("op", op)]);
        Self {
            db,
            map,
            mailbox,
            index,
            ops_get: op_counter("get"),
            ops_put: op_counter("put"),
            ops_del: op_counter("del"),
            ops_scan: op_counter("scan"),
            reply_ns: registry.histogram("server_reply_ns", &[("shard", &shard_label)]),
        }
    }

    /// The shard's database. Workers create their per-shard sessions here
    /// (`shard.db().handle()`).
    pub fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// The shard's map (for recovery and quiescent inspection).
    pub fn map(&self) -> &M {
        &self.map
    }

    /// The shard's request mailbox.
    pub fn mailbox(&self) -> &MsQueue<P, Automatic> {
        &self.mailbox
    }

    /// Post a request token into the mailbox. Tokens are opaque `u64`s chosen by
    /// the driver (an index into its request slab); they must keep bit 63 clear
    /// so every policy — including link-and-persist, which reserves the top bit —
    /// can carry them.
    pub fn post(&self, h: &FlitHandle<'_, P>, token: u64) {
        debug_assert!(token < 1 << 63, "mailbox tokens must keep bit 63 clear");
        self.mailbox.enqueue(h, token);
    }

    /// Drain one request token from the mailbox, if any is pending.
    pub fn take(&self, h: &FlitHandle<'_, P>) -> Option<u64> {
        self.mailbox.dequeue(h)
    }

    /// Execute one decoded request against the shard's map. Keys at or above
    /// [`MAX_USER_KEY`] (the structures' reserved sentinel range) are refused
    /// conservatively — `Get` misses, `Put` reports the key as taken, `Del`
    /// reports it absent — instead of panicking on hostile input. An
    /// [`Op::Stats`] applied directly to a shard (rather than to the server's
    /// [`KvServer::pump`]) answers with the *shard-local* metrics document.
    ///
    /// Every call counts into `server_ops_total{shard,op}` (refusals
    /// included — they are served requests) and records its latency into
    /// `server_reply_ns{shard}`.
    pub fn apply(&self, h: &FlitHandle<'_, P>, op: &Op) -> Reply {
        let start = Instant::now();
        let reply = self.apply_op(h, op);
        self.reply_ns.record(start.elapsed().as_nanos() as u64);
        reply
    }

    fn apply_op(&self, h: &FlitHandle<'_, P>, op: &Op) -> Reply {
        match *op {
            Op::Get(k) => {
                self.ops_get.add(1);
                if k >= MAX_USER_KEY {
                    return Reply::Missing;
                }
                match self.map.get(h, k) {
                    Some(v) => Reply::Found(v),
                    None => Reply::Missing,
                }
            }
            Op::Put(k, v) => {
                self.ops_put.add(1);
                if k >= MAX_USER_KEY {
                    return Reply::Exists;
                }
                if self.map.insert(h, k, v) {
                    Reply::Inserted
                } else {
                    Reply::Exists
                }
            }
            Op::Del(k) => {
                self.ops_del.add(1);
                if k >= MAX_USER_KEY {
                    return Reply::Absent;
                }
                if self.map.remove(h, k) {
                    Reply::Deleted
                } else {
                    Reply::Absent
                }
            }
            Op::Stats => Reply::Stats(self.db.metrics_snapshot().to_json().into_bytes()),
            Op::Scan { prefix, mask } => match self.scan(h, prefix, mask) {
                Some(pairs) => Reply::Entries(pairs),
                None => Reply::Unsupported,
            },
        }
    }

    /// This shard's share of a scan: the matching pairs of a frozen snapshot
    /// of the shard map ([`ConcurrentMap::snapshot_scan`]), or `None` when the
    /// map structure cannot take snapshots. Counts into
    /// `server_ops_total{shard,op="scan"}` either way.
    pub fn scan(&self, h: &FlitHandle<'_, P>, prefix: u64, mask: u64) -> Option<Vec<(u64, u64)>> {
        self.ops_scan.add(1);
        self.map.snapshot_scan(h, prefix, mask)
    }

    /// Bytes in → op → bytes out, bypassing the mailbox: decode one request,
    /// apply it, encode the reply. The direct path used for prefill and for
    /// single-request probes; the measured service path is
    /// [`KvServer::pump`].
    pub fn serve_bytes(
        &self,
        h: &FlitHandle<'_, P>,
        request: &[u8],
    ) -> Result<Vec<u8>, ProtoError> {
        let op = Op::decode(request)?;
        Ok(self.apply(h, &op).encode())
    }
}

/// A sharded durable KV service over `N` independent [`Shard`]s.
///
/// Generic over the persistence policy `P` (all five P-V interface variants of
/// the evaluation instantiate) and the map structure `M` (flit-HT-policy hash
/// table by default in the benchmarks; any [`ConcurrentMap`] works). See the
/// crate docs for the architecture essay.
pub struct KvServer<P: Policy, M: ConcurrentMap<P>> {
    shards: Vec<Shard<P, M>>,
    /// The server-wide metrics store: per-shard op counters, reply latencies
    /// and queue depths always land here; shard databases built by
    /// [`KvServer::create_on_pools`] write their persistence metrics here too
    /// (labelled `shard=i`), and factory-built databases with private
    /// registries are mirrored in at [`KvServer::stats_snapshot`] time.
    registry: Registry,
}

impl<P: Policy, M: ConcurrentMap<P>> KvServer<P, M> {
    /// Build a server whose shard `i`'s database is produced by `db_factory(i)`.
    ///
    /// The factory-per-shard shape is what gives each shard an *independent*
    /// backend: independent statistics, an independent persistence-event stream,
    /// and — under the simulated-NVRAM backend — an independent crash plan, which
    /// is what lets the crash harness kill exactly one shard at a stable absolute
    /// event index while the others keep serving.
    pub fn new_with(config: ServerConfig, db_factory: impl FnMut(usize) -> FlitDb<P>) -> Self {
        Self::with_registry(Registry::new(), config, db_factory)
    }

    /// [`new_with`](Self::new_with), but aggregating into a caller-supplied
    /// [`Registry`] — pass a clone of the same registry to
    /// [`FlitDbBuilder::metrics`](flit::FlitDbBuilder::metrics) when building
    /// the shard databases and every layer's series land in one store.
    pub fn with_registry(
        registry: Registry,
        config: ServerConfig,
        mut db_factory: impl FnMut(usize) -> FlitDb<P>,
    ) -> Self {
        let shards = (0..config.shards)
            .map(|i| Shard::new(db_factory(i), &config, &registry, i))
            .collect();
        Self { shards, registry }
    }

    /// Build a server whose shard `i` lives on a **fresh file-backed pool** at
    /// [`shard_pool_path`]`(dir, i)` (any existing files are truncated), all
    /// created under `commit`. `policy_factory(i)` supplies each shard's
    /// policy, preserving the independent-backend property of
    /// [`new_with`](Self::new_with). `dir` is created if absent. Each shard's
    /// database joins the server's shared metrics registry under a `shard=i`
    /// label.
    pub fn create_on_pools(
        config: ServerConfig,
        dir: &Path,
        commit: CommitMode,
        mut policy_factory: impl FnMut(usize) -> P,
    ) -> Result<Self, OpenError> {
        std::fs::create_dir_all(dir)?;
        let registry = Registry::new();
        let mut dbs = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            dbs.push(
                FlitDb::builder(policy_factory(i))
                    .commit_mode(commit)
                    .metrics(registry.clone(), &[("shard", &i.to_string())])
                    .create_pool(shard_pool_path(dir, i))?,
            );
        }
        let mut dbs = dbs.into_iter();
        Ok(Self::with_registry(registry, config, |_| {
            dbs.next().expect("one database per shard")
        }))
    }

    /// `msync` every shard's pool (no-op for heap-backed shards) — the clean
    /// shutdown checkpoint.
    pub fn sync_pools(&self) -> Result<(), OpenError> {
        for shard in &self.shards {
            shard.db().sync_pool()?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &Shard<P, M> {
        &self.shards[i]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard<P, M>] {
        &self.shards
    }

    /// The shard a key routes to: a Fibonacci-hash mix of the key, reduced
    /// modulo the shard count. A pure function of `(key, num_shards)` — stable
    /// across runs, processes and machines, so a request trace fully determines
    /// which shard served each request.
    pub fn route(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 31;
        (mixed % self.shards.len() as u64) as usize
    }

    /// One session per shard, in shard order — the per-worker handle set
    /// ("each worker thread holds one `FlitHandle` per shard it touches").
    pub fn handles(&self) -> Vec<FlitHandle<'_, P>> {
        self.shards.iter().map(|s| s.db.handle()).collect()
    }

    /// The full service path for one already-encoded request: decode, route by
    /// key, post the slab token into the routed shard's mailbox, drain one token
    /// from that mailbox, decode *that* token's request from `slab`, apply it,
    /// and return `(served_token, reply_bytes)`.
    ///
    /// Under concurrency a worker may drain a token another worker just posted —
    /// the service is work-conserving, so "serve whatever is pending on the
    /// shard you just fed" keeps every request flowing. The drain loop cannot
    /// livelock: each worker performs exactly one successful take per post and
    /// takes only after posting to the same shard, so whenever some worker still
    /// owes a take, that shard's pending count is at least one. On a single
    /// thread the drained token is always the one just posted.
    ///
    /// `handles` must hold one handle per shard in shard order (see
    /// [`KvServer::handles`]); `token` must index into `slab`.
    pub fn pump(
        &self,
        handles: &[FlitHandle<'_, P>],
        slab: &[Vec<u8>],
        token: u64,
    ) -> Result<(u64, Vec<u8>), ProtoError> {
        debug_assert_eq!(handles.len(), self.shards.len());
        let op = Op::decode(&slab[token as usize])?;
        let Some(key) = op.key() else {
            // Control plane: these address the server as a whole, so they
            // never route to a shard or touch a mailbox. `Stats` answers in
            // place with the aggregated document; `Scan` merges every shard's
            // frozen-snapshot share ([`KvServer::scan`]).
            let reply = match op {
                Op::Stats => Reply::Stats(self.stats_json().into_bytes()),
                Op::Scan { prefix, mask } => match self.scan(handles, prefix, mask) {
                    Some(pairs) => Reply::Entries(pairs),
                    None => Reply::Unsupported,
                },
                _ => unreachable!("every data op has a key"),
            };
            return Ok((token, reply.encode()));
        };
        let sid = self.route(key);
        let shard = &self.shards[sid];
        let h = &handles[sid];
        shard.post(h, token);
        loop {
            if let Some(served) = shard.take(h) {
                let served_op = Op::decode(&slab[served as usize])?;
                let reply = shard.apply(h, &served_op);
                return Ok((served, reply.encode()));
            }
            std::hint::spin_loop();
        }
    }

    /// A whole-server scan: every shard's frozen-snapshot share
    /// ([`Shard::scan`]) merged and sorted by key. Keys are partitioned across
    /// shards by hash, so the union of per-shard snapshots is exactly one
    /// consistent-per-shard cut of the whole keyspace — each shard's share is
    /// atomic with respect to that shard's updates, which is the strongest
    /// consistency a scan can have without a cross-shard commit protocol (see
    /// the crate docs). Returns `None` when the map structure cannot take
    /// snapshots. `handles` must hold one handle per shard in shard order.
    pub fn scan(
        &self,
        handles: &[FlitHandle<'_, P>],
        prefix: u64,
        mask: u64,
    ) -> Option<Vec<(u64, u64)>> {
        debug_assert_eq!(handles.len(), self.shards.len());
        let mut merged = Vec::new();
        for (shard, h) in self.shards.iter().zip(handles) {
            merged.extend(shard.scan(h, prefix, mask)?);
        }
        merged.sort_unstable();
        Some(merged)
    }

    /// The server's shared metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// Aggregate the whole server into one point-in-time snapshot.
    ///
    /// Refreshes the pull-model series first: `server_queue_depth{shard}`
    /// from each mailbox, then each shard database's persistence gauges via
    /// [`FlitDb::metrics_snapshot`]. Databases built by
    /// [`create_on_pools`](Self::create_on_pools) share the server registry,
    /// so their refresh lands here directly; factory-built databases with
    /// private registries have their counter and gauge samples mirrored in as
    /// gauges under a `shard=i` label (histograms are not mirrored — bucket
    /// merges across stores would misreport quantiles).
    pub fn stats_snapshot(&self) -> MetricsSnapshot {
        for shard in &self.shards {
            let label = shard.index.to_string();
            self.registry
                .gauge("server_queue_depth", &[("shard", &label)])
                .set(shard.mailbox.len() as u64);
            let snap = shard.db.metrics_snapshot();
            if !self.registry.same_store(shard.db.metrics()) {
                for s in snap.counters.iter().chain(snap.gauges.iter()) {
                    let mut labels: Vec<(&str, &str)> = s
                        .labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect();
                    labels.push(("shard", &label));
                    self.registry.gauge(&s.name, &labels).set(s.value);
                }
            }
        }
        self.registry.snapshot()
    }

    /// [`stats_snapshot`](Self::stats_snapshot) as a `flit-obs-v1` JSON
    /// document — the payload [`Op::Stats`] is answered with.
    pub fn stats_json(&self) -> String {
        self.stats_snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit::{FlitDb, FlitPolicy, HashedScheme};
    use flit_datastructs::HashTable;
    use flit_pmem::{LatencyModel, SimNvram};

    type Policy_ = FlitPolicy<HashedScheme, SimNvram>;
    type Map_ = HashTable<Policy_, Automatic>;

    fn server(shards: usize) -> KvServer<Policy_, Map_> {
        KvServer::new_with(ServerConfig::new(shards, 512), |_| {
            FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build())
        })
    }

    #[test]
    fn shards_are_independent_databases() {
        let s = server(3);
        assert_eq!(s.num_shards(), 3);
        let ids: Vec<_> = s.shards().iter().map(|sh| sh.db().id()).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "each shard owns its own database");
    }

    #[test]
    fn apply_matches_map_semantics() {
        let s = server(2);
        let hs = s.handles();
        let shard = s.shard(0);
        let h = &hs[0];
        assert_eq!(shard.apply(h, &Op::Get(7)), Reply::Missing);
        assert_eq!(shard.apply(h, &Op::Put(7, 70)), Reply::Inserted);
        assert_eq!(shard.apply(h, &Op::Put(7, 71)), Reply::Exists);
        assert_eq!(shard.apply(h, &Op::Get(7)), Reply::Found(70));
        assert_eq!(shard.apply(h, &Op::Del(7)), Reply::Deleted);
        assert_eq!(shard.apply(h, &Op::Del(7)), Reply::Absent);
    }

    #[test]
    fn reserved_keys_are_refused_not_panicked_on() {
        let s = server(1);
        let hs = s.handles();
        let shard = s.shard(0);
        assert_eq!(shard.apply(&hs[0], &Op::Put(u64::MAX, 1)), Reply::Exists);
        assert_eq!(shard.apply(&hs[0], &Op::Get(u64::MAX)), Reply::Missing);
        assert_eq!(shard.apply(&hs[0], &Op::Del(u64::MAX)), Reply::Absent);
    }

    #[test]
    fn pump_serves_through_the_mailbox() {
        let s = server(2);
        let hs = s.handles();
        let slab = vec![Op::Put(5, 50).encode(), Op::Get(5).encode()];
        let (t0, r0) = s.pump(&hs, &slab, 0).unwrap();
        assert_eq!((t0, Reply::decode(&r0)), (0, Ok(Reply::Inserted)));
        let (t1, r1) = s.pump(&hs, &slab, 1).unwrap();
        assert_eq!((t1, Reply::decode(&r1)), (1, Ok(Reply::Found(50))));
        assert!(s.shards().iter().all(|sh| sh.mailbox().is_empty()));
    }

    #[test]
    fn pool_backed_shards_recover_their_maps() {
        let dir = std::env::temp_dir().join(format!("flit-server-pools-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig::new(2, 64);
        let policy = |_i: usize| {
            flit::FlitPolicy::new(
                HashedScheme::with_bytes(1 << 12),
                SimNvram::builder().latency(LatencyModel::none()).build(),
            )
        };
        {
            let s: KvServer<Policy_, Map_> =
                KvServer::create_on_pools(cfg, &dir, CommitMode::Immediate, policy).unwrap();
            let hs = s.handles();
            for k in 1..=20u64 {
                let sid = s.route(k);
                assert_eq!(
                    s.shard(sid).apply(&hs[sid], &Op::Put(k, 10 * k)),
                    Reply::Inserted
                );
            }
            s.sync_pools().unwrap();
        } // drop: every shard pool unmaps
        let mut recovered: Vec<(u64, u64)> = Vec::new();
        for shard in 0..cfg.shards {
            let (_db, report, rec) =
                recover_shard_pool::<Policy_, Map_>(&dir, shard, policy(shard)).unwrap();
            assert!(report.arenas >= 2, "map arena + mailbox arena");
            recovered.extend(rec.pairs);
            assert!(!rec.truncated);
        }
        recovered.sort_unstable();
        let expected: Vec<(u64, u64)> = (1..=20u64).map(|k| (k, 10 * k)).collect();
        assert_eq!(recovered, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_merges_frozen_shard_snapshots_in_key_order() {
        let s: KvServer<Policy_, flit_hamt::Hamt<Policy_>> =
            KvServer::new_with(ServerConfig::new(3, 256), |_| {
                FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build())
            });
        let hs = s.handles();
        let mut slab: Vec<Vec<u8>> = (1..=24u64).map(|k| Op::Put(k, 100 + k).encode()).collect();
        for t in 0..24u64 {
            s.pump(&hs, &slab, t).unwrap();
        }
        // Full dump (mask 0): every pair, key-sorted, across all three shards.
        slab.push(Op::Scan { prefix: 0, mask: 0 }.encode());
        let (_, reply) = s.pump(&hs, &slab, 24).unwrap();
        let expected: Vec<(u64, u64)> = (1..=24u64).map(|k| (k, 100 + k)).collect();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Entries(expected)));
        // A masked scan keeps exactly the keys matching `prefix` under `mask`:
        // low-three-bits == 2 selects 2, 10, 18.
        slab.push(Op::Scan { prefix: 2, mask: 7 }.encode());
        let (_, reply) = s.pump(&hs, &slab, 25).unwrap();
        assert_eq!(
            Reply::decode(&reply),
            Ok(Reply::Entries(vec![(2, 102), (10, 110), (18, 118)]))
        );
        // Each shard served its snapshot share and counted it.
        let snap = s.stats_snapshot();
        let scans: u64 = snap
            .counters
            .iter()
            .filter(|c| {
                c.name == "server_ops_total"
                    && c.labels.iter().any(|(k, v)| k == "op" && v == "scan")
            })
            .map(|c| c.value)
            .sum();
        assert_eq!(scans, 6, "two scans x three shards");
        // No retained roots leak: every snapshot was released on return.
        for shard in s.shards() {
            assert!(shard.map().retained_roots().is_empty());
        }
    }

    #[test]
    fn scan_against_a_snapshotless_map_answers_unsupported() {
        let s = server(2);
        let hs = s.handles();
        let slab = vec![Op::Scan { prefix: 0, mask: 0 }.encode()];
        let (_, reply) = s.pump(&hs, &slab, 0).unwrap();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Unsupported));
    }

    #[test]
    fn serve_bytes_round_trips_and_rejects_garbage() {
        let s = server(1);
        let hs = s.handles();
        let shard = s.shard(0);
        let reply = shard.serve_bytes(&hs[0], &Op::Put(1, 2).encode()).unwrap();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Inserted));
        assert!(shard.serve_bytes(&hs[0], &[0xFF, 0x00]).is_err());
    }
}
