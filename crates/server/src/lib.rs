//! # `flit-server` — a sharded durable KV service on top of [`FlitDb`]
//!
//! The paper's pitch is that FliT makes whole persistent *systems* cheap to
//! build correctly, not just single structures. This crate is that claim at
//! system scale in miniature: a key-value service of `N` independent shards,
//! where every piece of the request path — the map holding the data *and* the
//! queue carrying the requests — is a durably linearizable structure from this
//! workspace, persisted through the same P-V interface.
//!
//! ## A shard is (arena, map, mailbox, handle)
//!
//! Each [`Shard`] owns its own [`FlitDb`] — and therefore its own backend, its
//! own persistence-event stream, its own statistics, and its own crash images:
//!
//! * **arena** — the shard's map and mailbox allocate from `flit-alloc` arenas
//!   created in the shard's database, sized to the shard's *share* of the load
//!   via [`ArenaConfig`](flit_alloc::ArenaConfig) rather than full-load size;
//!   the arenas' recovery-root tables are what make the shard image-recoverable.
//! * **map** — any [`ConcurrentMap`](flit_datastructs::ConcurrentMap) (the
//!   benchmarks default to the hash table under the flit-HT policy); it holds
//!   exactly the keys that hash-route to this shard.
//! * **mailbox** — a per-shard Michael–Scott queue
//!   ([`MsQueue`](flit_queues::MsQueue)) of pending request tokens. It lives in
//!   the shard's database on purpose: queueing a request is part of the shard's
//!   durable instruction stream, so a crash can land *between* accepting a
//!   request and applying it — exactly the window a durable service has to get
//!   right.
//! * **handle** — threads never share sessions: each worker holds one
//!   [`FlitHandle`](flit::FlitHandle) per shard it touches (see
//!   [`KvServer::handles`]), so persist-epoch fence elision works per
//!   (worker, shard) exactly as it does per thread in the single-structure
//!   benchmarks.
//!
//! Requests are routed to shards by a Fibonacci hash of the key
//! ([`KvServer::route`]) — a pure function of `(key, shard_count)`, so placement
//! is reproducible across runs and machines.
//!
//! ## The wire protocol
//!
//! Requests and replies are small byte strings ([`proto`]): one tag byte plus
//! little-endian words, hand-rolled, no serde. The service loop is strictly
//! *bytes in → [`Op`] → bytes out*; [`KvServer::pump`] is that loop including
//! the mailbox hop, [`Shard::serve_bytes`] the direct variant.
//!
//! ## Observability
//!
//! Every server owns a shared [`Registry`](flit_obs::Registry). Shards count
//! served ops (`server_ops_total{shard,op}`) and apply latency
//! (`server_reply_ns{shard}`) into it; [`KvServer::stats_snapshot`] adds
//! mailbox depths and each shard database's persistence gauges, and
//! [`Op::Stats`] on the wire answers with the whole document as `flit-obs-v1`
//! JSON ([`Reply::Stats`]) — the path `flitctl stats` drives.
//!
//! ## Scans, and why transactions stay out of scope
//!
//! Every *data* request touches exactly one shard, so per-shard durable
//! linearizability composes into service-wide correctness for free: a crash of
//! one shard loses at most that shard's in-flight request, and recovery is the
//! existing image-only per-structure path, shard by shard. The crash harness
//! leans on the same independence: it crashes one shard at a stable absolute
//! event index *of that shard's backend* while the other shards keep serving,
//! then checks each shard against its own history — see
//! `flit_crashtest::server`.
//!
//! [`Op::Scan`] is the one multi-key request, and it preserves the
//! independence rather than breaking it: each shard answers from a **frozen
//! snapshot** of its own map ([`ConcurrentMap::snapshot_scan`](flit_datastructs::ConcurrentMap::snapshot_scan)
//! — a retained-root snapshot on the copy-on-write HAMT), and
//! [`KvServer::scan`] merges the per-shard shares in key order. The result is
//! a consistent-per-shard cut: atomic with respect to each shard's updates,
//! with no cross-shard ordering claimed — the strongest guarantee available
//! without a cross-shard commit protocol. Maps that cannot take snapshots (the
//! in-place structures) answer [`Reply::Unsupported`] instead of serving a
//! torn walk. Multi-key *transactions* would genuinely need that commit
//! protocol, with its own persistence ordering — a different paper.
//!
//! [`FlitDb`]: flit::FlitDb

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod proto;
pub mod server;

pub use proto::{Op, ProtoError, Reply};
pub use server::{
    recover_shard_pool, shard_pool_path, KvServer, ServerConfig, Shard, MAILBOX_CHUNK_SLOTS,
};
