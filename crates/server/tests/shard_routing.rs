//! Routing invariants of the sharded server, plus byte-reproducibility of a
//! deterministic single-OS-thread service drive.
//!
//! Routing must be a *pure function* of `(key, shard count)` — same key, same
//! shard, on every call, on every instance, on every machine — because both the
//! crash harness (deriving a crashed shard's request subsequence) and any
//! future on-disk layout depend on it. The reproducibility test closes the
//! loop: the full service history — routes, reply bytes, and every shard's
//! persistence-event stream — serialises to the same bytes on every run.

use flit::{presets, FlitDb, FlitPolicy, HashedScheme};
use flit_crashtest::round_robin_service;
use flit_datastructs::{Automatic, HashTable};
use flit_pmem::{ElisionMode, LatencyModel, SimNvram};
use flit_server::{KvServer, ServerConfig};
use flit_workload::random_map_history;

type Policy = FlitPolicy<HashedScheme, SimNvram>;
type Map = HashTable<Policy, Automatic>;

fn backend() -> SimNvram {
    SimNvram::builder().latency(LatencyModel::none()).build()
}

fn server(shards: usize) -> KvServer<Policy, Map> {
    KvServer::new_with(ServerConfig::new(shards, 256), |_| {
        FlitDb::flit_ht(backend())
    })
}

#[test]
fn same_key_routes_to_the_same_shard_on_every_instance() {
    let a = server(4);
    let b = server(4);
    for key in (0..2_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 40]) {
        let shard = a.route(key);
        assert_eq!(shard, a.route(key), "repeated calls must agree");
        assert_eq!(shard, b.route(key), "instances must agree: pure function");
        assert!(shard < 4);
    }
}

#[test]
fn all_shards_are_reachable_under_uniform_keys() {
    for shards in [1usize, 2, 3, 4, 7] {
        let s = server(shards);
        let mut counts = vec![0u64; shards];
        for key in 0..1_000u64 {
            counts[s.route(key)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Fibonacci mixing spreads sequential keys well; 10% of fair share
            // is a very loose floor that still catches a dead shard.
            assert!(
                c * shards as u64 * 10 >= 1_000,
                "shard {i}/{shards} starved: {counts:?}"
            );
        }
    }
}

#[test]
fn service_drive_is_byte_reproducible() {
    let history = random_map_history(21, 48, 20);
    let factory = |b: SimNvram| presets::flit_ht_sized(b, 1 << 14);
    let drive = |elision| {
        round_robin_service::<Policy, Map, _>(&factory, 3, &history, elision).stream_string()
    };
    let first = drive(ElisionMode::Enabled);
    assert_eq!(first, drive(ElisionMode::Enabled), "trace must be stable");
    // Sanity on the content: every request routed, every reply recorded, and
    // all three shards appear in the serialised stream.
    let trace = round_robin_service::<Policy, Map, _>(&factory, 3, &history, ElisionMode::Enabled);
    assert_eq!(trace.routes.len(), 48);
    assert_eq!(trace.replies.len(), 48);
    assert_eq!(trace.shard_streams.len(), 3);
    assert!(trace.routes.iter().all(|&r| r < 3));
    // The elided stream differs from the paper-literal one (fence events are
    // removed), so the two modes must not serialise identically.
    assert_ne!(first, drive(ElisionMode::Disabled));
}

#[test]
fn trace_routes_agree_with_the_server_router() {
    let history = random_map_history(5, 32, 16);
    let factory = |b: SimNvram| presets::flit_ht_sized(b, 1 << 14);
    let trace = round_robin_service::<Policy, Map, _>(&factory, 4, &history, ElisionMode::Enabled);
    let s = server(4);
    for (op, &route) in history.iter().zip(&trace.routes) {
        let key = match *op {
            flit_workload::MapOp::Insert(k, _)
            | flit_workload::MapOp::Remove(k)
            | flit_workload::MapOp::Get(k) => k,
        };
        assert_eq!(route, s.route(key));
    }
}
