//! The one-shard crash/recover acceptance test: kill shard 0 of a two-shard
//! server at **every** persistence event of a short mixed history while shard 1
//! keeps serving, recover shard 0 purely from its frozen crash image, and check
//!
//! * the recovered shard is prefix-consistent with the requests routed to it
//!   (state after `c` completed requests, or `c + 1` with one in flight), and
//! * the surviving shard holds **exactly** its full routed history — a crash
//!   elsewhere in the service loses nothing here.
//!
//! The deliberately broken `VolatileStores` control must fail the same sweep;
//! a harness that cannot catch it proves nothing.

use flit::{presets, FlitPolicy, HashedScheme};
use flit_crashtest::{sweep_server_crash, SweepSettings, VolatileStores};
use flit_datastructs::{Automatic, HashTable};
use flit_pmem::{ElisionMode, SimNvram};
use flit_workload::random_map_history;

type Policy = FlitPolicy<HashedScheme, SimNvram>;

fn factory(b: SimNvram) -> Policy {
    presets::flit_ht_sized(b, 1 << 14)
}

/// A short mixed history that exercises both shards: inserts, removes, lookups.
fn history() -> Vec<flit_workload::MapOp> {
    random_map_history(97, 28, 12)
}

#[test]
fn every_event_crash_of_one_shard_recovers_prefix_consistent() {
    let report = sweep_server_crash::<Policy, HashTable<Policy, Automatic>, _>(
        "flit-ht",
        factory,
        2,
        0,
        &history(),
        &SweepSettings::default(), // budget 0: every absolute event
    );
    assert!(
        report.clean(),
        "{}\n{:#?}",
        report.summary(),
        report.violations
    );
    assert!(
        report.requests_crashed_shard > 0 && report.requests_crashed_shard < report.requests_total,
        "history must split across both shards: {}",
        report.summary()
    );
    // Budget 0 swept the whole span, construction included, plus the
    // nothing-lost control point.
    assert_eq!(report.points_tested as u64, report.events_total + 1);
    assert!(report.events_construction > 0);
}

#[test]
fn crashing_the_other_shard_is_equally_clean() {
    let report = sweep_server_crash::<Policy, HashTable<Policy, Automatic>, _>(
        "flit-ht",
        factory,
        2,
        1,
        &history(),
        &SweepSettings {
            budget: 64,
            ..Default::default()
        },
    );
    assert!(
        report.clean(),
        "{}\n{:#?}",
        report.summary(),
        report.violations
    );
}

#[test]
fn paper_literal_stream_sweeps_clean_without_elision() {
    let report = sweep_server_crash::<Policy, HashTable<Policy, Automatic>, _>(
        "flit-ht/elision-off",
        factory,
        2,
        0,
        &history(),
        &SweepSettings {
            budget: 64,
            elision: ElisionMode::Disabled,
            ..Default::default()
        },
    );
    assert!(
        report.clean(),
        "{}\n{:#?}",
        report.summary(),
        report.violations
    );
}

#[test]
fn broken_durability_control_is_caught_by_the_service_sweep() {
    let report = sweep_server_crash::<Policy, HashTable<Policy, VolatileStores>, _>(
        "volatile-broken",
        factory,
        2,
        0,
        &history(),
        &SweepSettings {
            budget: 48,
            ..Default::default()
        },
    );
    assert!(
        !report.clean(),
        "a sweep over VolatileStores that reports zero violations means the \
         harness is broken, not the structure correct"
    );
    // The lost writes must be attributed to a shard, with a crash index that
    // makes the violation a complete repro recipe.
    assert!(report.violations.iter().all(|v| v.shard < 2));
}
