//! End-to-end sweeps: every-event crash injection over the scripted histories must
//! find zero violations for the correct durability methods across every structure
//! and policy, and the deliberately broken control must fail with a repro string.

use flit_crashtest::{
    run_case, run_matrix, HistorySpec, MethodKind, PolicyKind, StructureKind, SweepSettings,
};
use flit_pmem::{CommitMode, ElisionMode};

fn exhaustive() -> SweepSettings {
    SweepSettings {
        budget: 0,
        ..Default::default()
    }
}

fn budgeted(budget: usize) -> SweepSettings {
    SweepSettings {
        budget,
        ..Default::default()
    }
}

fn with_elision(settings: SweepSettings, elision: ElisionMode) -> SweepSettings {
    SweepSettings {
        elision,
        ..settings
    }
}

/// The core acceptance sweep: every structure × every correct method × flit-HT,
/// crashing at every single absolute event of the run — the construction window
/// included.
#[test]
fn scripted_every_event_sweep_is_clean_under_flit_ht() {
    let reports = run_matrix(
        &StructureKind::ALL,
        &MethodKind::CORRECT,
        &[PolicyKind::FlitHt],
        HistorySpec::Scripted,
        &exhaustive(),
    );
    // The HAMT brings its own durability discipline, so of the correct
    // methods only `Automatic` applies to it — the matrix skips the rest.
    assert_eq!(
        reports.len(),
        (StructureKind::ALL.len() - 1) * MethodKind::CORRECT.len() + 1
    );
    for report in &reports {
        assert!(
            report.clean(),
            "{}: {} violations, first: {}",
            report.case.id(),
            report.violations.len(),
            report.violations[0]
        );
        // Every absolute event (index 0 through the nothing-lost control at
        // `events_total`) was injected, construction window included.
        assert_eq!(report.points_tested as u64, report.events_total + 1);
        assert!(
            report.events_construction > 0,
            "construction generates events; the sweep must cover them"
        );
    }
}

/// Policy coverage: the remaining policies on the two list-shaped structures with a
/// budget (their event streams are the longest; semantics identical across points).
#[test]
fn scripted_sweep_is_clean_under_every_policy() {
    let reports = run_matrix(
        &[StructureKind::List, StructureKind::MsQueue],
        &[MethodKind::Automatic, MethodKind::Manual],
        &PolicyKind::ALL,
        HistorySpec::Scripted,
        &budgeted(160),
    );
    for report in &reports {
        assert!(
            report.clean(),
            "{}: first violation: {}",
            report.case.id(),
            report.violations[0]
        );
    }
}

/// Seeded random histories across the map structures and the queue.
#[test]
fn random_histories_sweep_clean() {
    for seed in [0x2a, 0xf117] {
        let spec = HistorySpec::Random {
            seed,
            ops: 48,
            key_range: 12,
        };
        let reports = run_matrix(
            &StructureKind::ALL,
            &[MethodKind::Automatic],
            &[PolicyKind::FlitHt, PolicyKind::Plain],
            spec,
            &budgeted(120),
        );
        for report in &reports {
            assert!(
                report.clean(),
                "{}: first violation: {}",
                report.case.id(),
                report.violations[0]
            );
        }
    }
}

/// The harness must be able to catch durability bugs: the all-volatile control
/// loses completed operations, and the sweep must say so with a usable repro.
#[test]
fn broken_control_fails_with_a_repro_string() {
    for structure in StructureKind::ALL {
        let report = run_case(
            structure,
            MethodKind::VolatileBroken,
            PolicyKind::FlitHt,
            HistorySpec::Scripted,
            &budgeted(40),
        )
        .expect("combination supported");
        assert!(
            !report.clean(),
            "{}: the broken control found no violations — the harness cannot catch bugs",
            report.case.id()
        );
        let v = &report.violations[0];
        assert!(
            v.repro.contains("--crash-at") && v.repro.contains("volatile-broken"),
            "repro not reproducible: {}",
            v.repro
        );
    }
}

/// Violations carry the flight-recorder tail leading into their crash point:
/// deep crash points (≥ half the ring) embed at least 32 events, each stamped
/// with the event index the crash plan counted, and the rendered report shows
/// them.
#[test]
fn violations_embed_the_flight_recorder_tail() {
    let report = run_case(
        StructureKind::List,
        MethodKind::VolatileBroken,
        PolicyKind::FlitHt,
        HistorySpec::Scripted,
        &budgeted(40),
    )
    .expect("combination supported");
    assert!(
        !report.clean(),
        "the broken control must produce violations"
    );
    let deep = report
        .violations
        .iter()
        .filter(|v| v.crash_event >= 32)
        .max_by_key(|v| v.crash_event)
        .expect("budget 40 spans crash points past event 32");
    assert!(
        deep.flight.len() >= 32,
        "a deep violation embeds at least half the ring, got {} events at crash point {}",
        deep.flight.len(),
        deep.crash_event
    );
    // The tail ends at (or just before) the crash point, in order.
    for (a, b) in deep.flight.iter().zip(deep.flight.iter().skip(1)) {
        assert_eq!(b.index, a.index + 1, "flight tail is contiguous");
    }
    let rendered = deep.to_string();
    assert!(
        rendered.contains("flight recorder ("),
        "the rendered violation shows the flight tail: {rendered}"
    );
}

/// Repro mode: re-running a single crash point from a violation's coordinates
/// reproduces exactly that violation.
#[test]
fn single_crash_point_repro_reproduces_the_violation() {
    let sweep = run_case(
        StructureKind::List,
        MethodKind::VolatileBroken,
        PolicyKind::FlitHt,
        HistorySpec::Scripted,
        &budgeted(25),
    )
    .unwrap();
    let first = &sweep.violations[0];
    let repro = run_case(
        StructureKind::List,
        MethodKind::VolatileBroken,
        PolicyKind::FlitHt,
        HistorySpec::Scripted,
        &SweepSettings {
            crash_at: Some(first.crash_event),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(repro.points_tested, 1);
    assert_eq!(repro.violations.len(), 1);
    assert_eq!(repro.violations[0].crash_event, first.crash_event);
    assert_eq!(repro.violations[0].detail, first.detail);
}

/// The elision dimension: the default sweeps above already exercise the elided
/// instruction stream (it is the default); this sweep pins the *paper-literal*
/// stream and must be equally clean, and the two streams must actually differ
/// (the literal one carries the fence events elision removes).
#[test]
fn literal_stream_sweeps_clean_and_differs_from_elided() {
    let structures = [StructureKind::List, StructureKind::MsQueue];
    let literal = run_matrix(
        &structures,
        &[MethodKind::Automatic],
        &[PolicyKind::FlitHt],
        HistorySpec::Scripted,
        &with_elision(exhaustive(), ElisionMode::Disabled),
    );
    let elided = run_matrix(
        &structures,
        &[MethodKind::Automatic],
        &[PolicyKind::FlitHt],
        HistorySpec::Scripted,
        &exhaustive(),
    );
    for (lit, eli) in literal.iter().zip(&elided) {
        assert!(
            lit.clean(),
            "{}: first violation: {}",
            lit.case.id(),
            lit.violations[0]
        );
        assert!(eli.clean(), "{}: not clean", eli.case.id());
        assert!(lit.case.id().contains("elision-off"));
        assert!(eli.case.id().contains("elision-on"));
        let lit_span = lit.events_total - lit.events_construction;
        let eli_span = eli.events_total - eli.events_construction;
        assert!(
            eli_span < lit_span,
            "{}: elision must shrink the event span ({eli_span} vs {lit_span})",
            eli.case.id()
        );
    }
}

/// The group-commit dimension: every structure swept under `Batched(4)` must be
/// clean under the weaker watermark/ticket contract — acknowledged operations
/// survive every crash, the unacknowledged tail recovers to a consistent prefix.
#[test]
fn batched_commit_sweeps_clean_for_every_structure() {
    let reports = run_matrix(
        &StructureKind::ALL,
        &MethodKind::CORRECT,
        &[PolicyKind::FlitHt],
        HistorySpec::Scripted,
        &SweepSettings {
            budget: 120,
            commit: CommitMode::Batched(4),
            ..Default::default()
        },
    );
    // As above: the HAMT supports only `Automatic` of the correct methods.
    assert_eq!(
        reports.len(),
        (StructureKind::ALL.len() - 1) * MethodKind::CORRECT.len() + 1
    );
    for report in &reports {
        assert!(
            report.clean(),
            "{}: {} violations, first: {}",
            report.case.id(),
            report.violations.len(),
            report.violations[0]
        );
        assert!(report.case.id().contains("commit-batched-4"));
    }
}

/// The batched contract's own broken control: acknowledging obligations *without*
/// fencing claims durability for operations whose writes are still pending, and an
/// every-event sweep must catch the lie for every structure.
#[test]
fn acknowledge_before_fence_control_fails_for_every_structure() {
    let spec = HistorySpec::Random {
        seed: 0x2a,
        ops: 24,
        key_range: 8,
    };
    for structure in StructureKind::ALL {
        let report = run_case(
            structure,
            MethodKind::Automatic,
            PolicyKind::FlitHt,
            spec,
            &SweepSettings {
                commit: CommitMode::Batched(8),
                broken_acks: true,
                ..Default::default()
            },
        )
        .expect("combination supported");
        assert!(
            !report.clean(),
            "{}: acknowledge-before-fence swept clean — the acked-floor check is toothless",
            report.case.id()
        );
        let v = &report.violations[0];
        assert!(
            v.repro.contains("--broken-acks") && v.repro.contains("--commit batched-8"),
            "repro not reproducible: {}",
            v.repro
        );
    }
}

/// The broken control must keep failing under the elided instruction stream: fewer
/// fence events must not blind the harness to lost operations.
#[test]
fn broken_control_still_fails_with_elision_on() {
    for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
        let report = run_case(
            StructureKind::List,
            MethodKind::VolatileBroken,
            PolicyKind::FlitHt,
            HistorySpec::Scripted,
            &with_elision(budgeted(40), elision),
        )
        .expect("combination supported");
        assert!(
            !report.clean(),
            "{}: broken control swept clean",
            report.case.id()
        );
        assert!(report.violations[0]
            .repro
            .contains(&format!("--elision {}", elision.name())));
    }
}
