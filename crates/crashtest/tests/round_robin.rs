//! Proof-of-concept controlled-scheduler test (the explicit-handle redesign's
//! acceptance criterion): **two handles stepped round-robin by the crashtest
//! engine over a scripted history produce a deterministic, byte-identical global
//! persistence-event stream across runs.**
//!
//! This seeds the ROADMAP's deterministic multi-threaded crash-sweep item: once
//! the interleaved stream of a multi-handle history is byte-reproducible, a sweep
//! can crash at any absolute index of it and replay exactly — the same recipe the
//! single-handle sweeps already use.

use flit::{presets, FlitPolicy, HashedScheme};
use flit_crashtest::roundrobin::{round_robin_map, round_robin_script, ScriptedStep};
use flit_datastructs::{Automatic, HarrisList, HashTable, NatarajanTree, SkipList};
use flit_pmem::{ElisionMode, SimNvram};
use flit_workload::MapOp;

type P = FlitPolicy<HashedScheme, SimNvram>;

fn factory(b: SimNvram) -> P {
    presets::flit_ht_sized(b, 1 << 14)
}

/// A scripted mixed history: inserts, lookups, removes, duplicate inserts,
/// missing removes — enough churn to cross every code path of the structures.
fn scripted_history() -> Vec<MapOp> {
    vec![
        MapOp::Insert(5, 50),
        MapOp::Insert(1, 10),
        MapOp::Get(5),
        MapOp::Insert(5, 999), // duplicate: must fail
        MapOp::Remove(1),
        MapOp::Insert(9, 90),
        MapOp::Get(1),    // gone
        MapOp::Remove(7), // never present
        MapOp::Insert(3, 30),
        MapOp::Remove(5),
        MapOp::Get(9),
        MapOp::Insert(1, 11),
    ]
}

/// The headline assertion: two complete replays of the same two-handle scripted
/// history — fresh backend, fresh db, fresh handles each time — serialise to
/// byte-identical traces: same construction span, same per-step boundaries
/// (attributed to the same handles), same total, and the same global
/// store/pwb/pfence stream character for character.
#[test]
fn two_handle_round_robin_streams_are_byte_identical_across_runs() {
    let script = round_robin_script(&scripted_history(), 2);
    let run = || {
        round_robin_map::<P, HarrisList<P, Automatic>, _>(
            &factory,
            2,
            &script,
            ElisionMode::Enabled,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.stream_string(),
        b.stream_string(),
        "two runs of one scripted two-handle history must serialise identically"
    );
    // The serialisation is faithful: the underlying traces agree field by field.
    assert_eq!(a.kinds, b.kinds);
    assert_eq!(a.step_boundaries, b.step_boundaries);
    assert_eq!(a.construction_events, b.construction_events);
    assert_eq!(a.events_total, b.events_total);
    // And the stream is non-trivial: construction + the scripted operations.
    assert!(a.construction_events > 0);
    assert!(a.events_total > a.construction_events);
}

/// Determinism holds for every structure and for the paper-literal stream too
/// (the two streams differ from each other, but each is self-reproducible).
#[test]
fn round_robin_determinism_holds_across_structures_and_streams() {
    let script = round_robin_script(&scripted_history(), 2);
    fn check<M: flit_datastructs::ConcurrentMap<P>>(
        script: &[ScriptedStep],
        elision: ElisionMode,
        label: &str,
    ) {
        let run = || round_robin_map::<P, M, _>(&factory, 2, script, elision);
        let (a, b) = (run(), run());
        assert_eq!(
            a.stream_string(),
            b.stream_string(),
            "{label}: stream drifted between runs"
        );
    }
    for elision in [ElisionMode::Enabled, ElisionMode::Disabled] {
        check::<HarrisList<P, Automatic>>(&script, elision, "list");
        check::<HashTable<P, Automatic>>(&script, elision, "hashtable");
        check::<NatarajanTree<P, Automatic>>(&script, elision, "bst");
        check::<SkipList<P, Automatic>>(&script, elision, "skiplist");
    }
}

/// Three handles work the same way as two — the scheduler owns N sessions, and
/// the assignment of operations to handles is part of the reproducible recipe:
/// changing the assignment changes the stream (elision decisions are per
/// handle), but each assignment reproduces itself exactly.
#[test]
fn handle_assignment_is_part_of_the_reproducible_recipe() {
    let history = scripted_history();
    let two = round_robin_script(&history, 2);
    let three = round_robin_script(&history, 3);
    let run2 = || {
        round_robin_map::<P, HarrisList<P, Automatic>, _>(&factory, 2, &two, ElisionMode::Enabled)
    };
    let run3 = || {
        round_robin_map::<P, HarrisList<P, Automatic>, _>(&factory, 3, &three, ElisionMode::Enabled)
    };
    assert_eq!(run2().stream_string(), run2().stream_string());
    assert_eq!(run3().stream_string(), run3().stream_string());
    // Same operations, different logical-thread assignment: the interleaved
    // fence-elision pattern (and so the stream) may differ — but the *volatile*
    // outcome is the same sequential history either way, so total event counts
    // can only differ through per-handle fence attribution.
    let (t2, t3) = (run2(), run3());
    assert_eq!(
        t2.step_boundaries.len(),
        t3.step_boundaries.len(),
        "same history length"
    );
}
