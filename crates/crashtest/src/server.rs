//! Crash-point sweeps for the sharded KV service (`flit-server`).
//!
//! The engine sweeps ([`crate::engine`]) kill *a structure*; this module kills
//! *one shard of a service* while the other shards keep serving — the failure
//! model the sharded server exists to exercise. The mechanics carry over
//! unchanged because each shard owns its own backend: the crashed shard's
//! backend carries the armed [`CrashPlan`], the survivors carry plain tracking
//! backends, and the shard's event stream is exactly as stable and absolute as
//! a single structure's (one OS thread, deterministic routing, arena layout).
//!
//! What a sweep checks, per crash point `k` of the crashed shard's stream:
//!
//! * **Crashed shard**: the state recovered purely from the frozen image must
//!   be prefix-consistent with the subsequence of requests *routed to that
//!   shard* — after `c` completed requests, `state(c)` or `state(c + 1)`
//!   ([`crate::engine`]'s `check_prefix`, verbatim). The subsequence is
//!   derivable because routing is a pure function of `(key, shard count)`.
//! * **Surviving shards**: recovered from their trackers' final images, they
//!   must hold **exactly** their full routed history — a crash elsewhere in the
//!   service is no excuse to lose anything. Prefix consistency would be too
//!   weak here; the survivors never crashed.
//!
//! Note the crashed shard's stream includes its *mailbox* traffic (the mailbox
//! lives in the shard's database on purpose), so the sweep also crashes
//! mid-enqueue and mid-dequeue of the request queue — the recovered map must
//! shrug those off, because a request whose token was still queued never
//! started applying.
//!
//! [`round_robin_service`] is the determinism companion: the same single-thread
//! drive with logging plans on *every* shard, serialising each shard's complete
//! event-kind stream. Two runs must be byte-identical — the property that makes
//! the absolute crash indices above meaningful.

use std::collections::BTreeMap;

use flit::{FlitDb, Policy};
use flit_datastructs::{ConcurrentMap, MapCrashRecovery, RecoveredMap};
use flit_pmem::{CrashEventKind, CrashPlan, ElisionMode, LatencyModel, SimNvram};
use flit_server::{KvServer, Op, Reply, ServerConfig};
use flit_workload::MapOp;

use crate::engine::{
    acked_floor, check_prefix, completed_before, frozen_image, map_state, replay_backend,
    select_points, SweepSettings,
};

/// The service request corresponding to one crash-history map operation.
pub fn op_of(op: &MapOp) -> Op {
    match *op {
        MapOp::Insert(k, v) => Op::Put(k, v),
        MapOp::Remove(k) => Op::Del(k),
        MapOp::Get(k) => Op::Get(k),
    }
}

/// The reply a sequential model predicts for `op`, applying it to `model`.
fn expected_reply(model: &mut BTreeMap<u64, u64>, op: &Op) -> Reply {
    match *op {
        Op::Get(k) => model.get(&k).copied().map_or(Reply::Missing, Reply::Found),
        Op::Put(k, v) => {
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                e.insert(v);
                Reply::Inserted
            } else {
                Reply::Exists
            }
        }
        Op::Del(k) => {
            if model.remove(&k).is_some() {
                Reply::Deleted
            } else {
                Reply::Absent
            }
        }
        Op::Stats | Op::Scan { .. } => unreachable!("crash histories contain only data ops"),
    }
}

/// Outcome of one single-threaded service replay. All event counts are the
/// *crashed shard's*; survivor recoveries are captured only on armed runs.
struct ServiceReplay {
    base: u64,
    boundaries: Vec<u64>,
    /// Per-boundary `(enqueued, committed)` obligation counters of the crashed
    /// shard's handle, sampled after each request routed to it (the engine's
    /// acked-floor bookkeeping, lifted to the service path).
    marks: Vec<(u64, u64)>,
    total: u64,
    routes: Vec<usize>,
    recovered: Option<(RecoveredMap, &'static str)>,
    survivors: Vec<(usize, RecoveredMap)>,
    functional: Option<(usize, String)>,
    /// Flight-recorder tail of the worker's handle *on the crashed shard*,
    /// sampled at the first request boundary at or past the armed crash index.
    flight: Vec<flit::FlightEvent>,
}

/// Drive `history` through a fresh `shards`-shard server on the calling thread,
/// with shard `crash_shard`'s backend armed at `crash_at` (counting when
/// `None`). Mirrors the engine's `replay_map`, with the request pump — mailbox
/// included — as the replayed operation.
fn replay_service<P, M, F>(
    factory: &F,
    shards: usize,
    crash_shard: usize,
    history: &[MapOp],
    crash_at: Option<u64>,
    run_history: bool,
    settings: &SweepSettings,
) -> ServiceReplay
where
    P: Policy<Backend = SimNvram>,
    M: ConcurrentMap<P> + MapCrashRecovery<P>,
    F: Fn(SimNvram) -> P,
{
    let plan = match crash_at {
        Some(k) => CrashPlan::armed_at(k),
        None => CrashPlan::counting(),
    };
    let backends: Vec<SimNvram> = (0..shards)
        .map(|i| {
            if i == crash_shard {
                replay_backend(plan.clone(), settings.elision)
            } else {
                SimNvram::builder()
                    .latency(LatencyModel::none())
                    .tracking(true)
                    .elision(settings.elision)
                    .build()
            }
        })
        .collect();
    let server: KvServer<P, M> = KvServer::new_with(ServerConfig::new(shards, 64 * shards), |i| {
        FlitDb::builder(factory(backends[i].clone()))
            .commit_mode(settings.commit)
            .build()
    });
    let base = plan.events_seen();
    let slab: Vec<Vec<u8>> = history.iter().map(|op| op_of(op).encode()).collect();
    let mut models: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); shards];
    let mut boundaries = Vec::new();
    let mut marks = Vec::new();
    let mut routes = Vec::with_capacity(history.len());
    let mut functional = None;
    let mut flight = Vec::new();
    if run_history {
        let handles = server.handles();
        for h in &handles {
            h.arm_flight_recorder();
        }
        for (i, bytes) in slab.iter().enumerate() {
            let op = Op::decode(bytes).expect("slab holds well-formed requests");
            let key = op
                .key()
                .expect("crash histories contain only routed data ops");
            let sid = server.route(key);
            routes.push(sid);
            let (served, reply_bytes) = server
                .pump(&handles, &slab, i as u64)
                .expect("slab holds well-formed requests");
            assert_eq!(
                served, i as u64,
                "a single-threaded pump serves its own post"
            );
            let got = Reply::decode(&reply_bytes).expect("shards emit well-formed replies");
            let want = expected_reply(&mut models[sid], &op);
            if got != want && functional.is_none() {
                functional = Some((
                    sid,
                    format!("request {i} ({op:?}) replied {got:?} but the model says {want:?}"),
                ));
            }
            if settings.broken_acks {
                handles[sid].ack_obligations_without_fence();
            }
            if sid == crash_shard {
                boundaries.push(plan.events_seen());
                marks.push((
                    handles[sid].enqueued_obligations(),
                    handles[sid].committed_obligations(),
                ));
                if let Some(k) = crash_at {
                    if flight.is_empty() && plan.events_seen() >= k {
                        flight = handles[sid].flight_events();
                    }
                }
            }
        }
        if crash_at.is_some() && flight.is_empty() {
            flight = handles[crash_shard].flight_events();
        }
        drop(handles); // any dirty handle fences land inside the swept span
    }
    let total = plan.events_seen();
    let recovered = frozen_image(&plan, &backends[crash_shard], crash_at).map(|(image, kind)| {
        (
            server.shard(crash_shard).map().recover_from_image(&image),
            kind,
        )
    });
    let survivors = if crash_at.is_some() && run_history {
        (0..shards)
            .filter(|&s| s != crash_shard)
            .map(|s| {
                let image = backends[s]
                    .tracker()
                    .expect("survivors track")
                    .crash_image();
                (s, server.shard(s).map().recover_from_image(&image))
            })
            .collect()
    } else {
        Vec::new()
    };
    ServiceReplay {
        base,
        boundaries,
        marks,
        total,
        routes,
        recovered,
        survivors,
        functional,
        flight,
    }
}

/// One durability violation found by a server crash sweep.
#[derive(Debug, Clone)]
pub struct ServerViolation {
    /// Absolute crash index on the crashed shard's event stream.
    pub crash_event: u64,
    /// The shard whose recovered state was wrong.
    pub shard: usize,
    /// Event kind the plan triggered on (`"end"` for the nothing-lost control,
    /// `"live-run"` for functional mismatches, `"survivor"` for survivor-side
    /// losses).
    pub triggered_on: String,
    /// Requests routed to that shard that had completed before the crash.
    pub completed_ops: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Flight-recorder tail of the crashed shard's worker handle, sampled at
    /// the first request boundary at or past the crash point. Empty for
    /// survivor-side and counting-pass violations.
    pub flight: Vec<flit::FlightEvent>,
}

/// The outcome of one server crash sweep: one crashed shard, every selected
/// crash point, crashed-shard prefix consistency plus survivor exactness.
#[derive(Debug, Clone)]
pub struct ServerSweepReport {
    /// Label of the swept configuration (policy/structure name).
    pub label: String,
    /// Total shard count.
    pub shards: usize,
    /// The shard that was crashed.
    pub crash_shard: usize,
    /// Events the crashed shard's construction generated.
    pub events_construction: u64,
    /// Total events on the crashed shard's stream.
    pub events_total: u64,
    /// Requests in the driven history, across all shards.
    pub requests_total: usize,
    /// Requests the router sent to the crashed shard.
    pub requests_crashed_shard: usize,
    /// Crash points injected.
    pub points_tested: usize,
    /// Violations found (empty for a correct configuration).
    pub violations: Vec<ServerViolation>,
}

impl ServerSweepReport {
    /// `true` when no violation was found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} shards (crashed {}), {}/{} requests on the crashed shard, \
             events {}..{}, {} points, {} violations",
            self.label,
            self.shards,
            self.crash_shard,
            self.requests_crashed_shard,
            self.requests_total,
            self.events_construction,
            self.events_total,
            self.points_tested,
            self.violations.len()
        )
    }
}

/// Sweep crash points across one shard of a service while the other shards keep
/// serving. `history` is the global request stream; the crashed shard's checked
/// subsequence is derived from the (pure) routing function. See the module docs
/// for the exact per-point obligations.
pub fn sweep_server_crash<P, M, F>(
    label: &str,
    factory: F,
    shards: usize,
    crash_shard: usize,
    history: &[MapOp],
    settings: &SweepSettings,
) -> ServerSweepReport
where
    P: Policy<Backend = SimNvram>,
    M: ConcurrentMap<P> + MapCrashRecovery<P>,
    F: Fn(SimNvram) -> P,
{
    assert!(crash_shard < shards, "crash shard must exist");
    let counting =
        replay_service::<P, M, F>(&factory, shards, crash_shard, history, None, true, settings);
    // Per-shard routed subsequences, from the counting pass's recorded routes
    // (identical on every replay: routing is a pure function of key and count).
    let subs: Vec<Vec<MapOp>> = (0..shards)
        .map(|s| {
            history
                .iter()
                .zip(&counting.routes)
                .filter(|&(_, &r)| r == s)
                .map(|(op, _)| *op)
                .collect()
        })
        .collect();
    let crashed_sub = &subs[crash_shard];
    let points = match settings.crash_at {
        Some(k) => vec![k.min(counting.total)],
        None => select_points(0, counting.total, settings.budget),
    };
    let mut violations = Vec::new();
    if let Some((s, detail)) = counting.functional {
        violations.push(ServerViolation {
            crash_event: 0,
            shard: s,
            triggered_on: "live-run".to_string(),
            completed_ops: 0,
            detail,
            flight: Vec::new(),
        });
    }
    for &k in &points {
        let in_flight = k >= counting.base;
        let run = replay_service::<P, M, F>(
            &factory,
            shards,
            crash_shard,
            history,
            Some(k),
            in_flight,
            settings,
        );
        // The engine's determinism invariant, per shard: every replay reproduces
        // the counting pass's absolute event stream on the crashed shard.
        assert_eq!(
            run.base, counting.base,
            "event-stream determinism broke: construction span drifted between replays"
        );
        if in_flight {
            assert_eq!(
                run.total, counting.total,
                "event-stream determinism broke: total span drifted between replays"
            );
        }
        let (recovered, kind) = run.recovered.expect("crash point was armed");
        let completed = completed_before(&run.boundaries, k);
        let acked = acked_floor(&run.marks, completed);
        if let Some((s, detail)) = run.functional {
            violations.push(ServerViolation {
                crash_event: k,
                shard: s,
                triggered_on: "live-run".to_string(),
                completed_ops: completed,
                detail,
                flight: run.flight.clone(),
            });
        }
        let actual = recovered.sorted_pairs();
        if let Some(detail) = check_prefix(
            &actual,
            recovered.truncated,
            |n| map_state(crashed_sub, n),
            crashed_sub.len(),
            acked,
            completed,
            in_flight,
        ) {
            violations.push(ServerViolation {
                crash_event: k,
                shard: crash_shard,
                triggered_on: kind.to_string(),
                completed_ops: completed,
                detail,
                flight: run.flight,
            });
        }
        for (s, rec) in run.survivors {
            let want = map_state(&subs[s], subs[s].len());
            let got = rec.sorted_pairs();
            if rec.truncated || got != want {
                violations.push(ServerViolation {
                    crash_event: k,
                    shard: s,
                    triggered_on: "survivor".to_string(),
                    completed_ops: subs[s].len(),
                    detail: format!(
                        "surviving shard {s} must hold exactly its full history: \
                         recovered {} pairs, expected {}{}",
                        got.len(),
                        want.len(),
                        if rec.truncated {
                            " (recovery walk truncated)"
                        } else {
                            ""
                        }
                    ),
                    flight: Vec::new(),
                });
            }
        }
    }
    ServerSweepReport {
        label: label.to_string(),
        shards,
        crash_shard,
        events_construction: counting.base,
        events_total: counting.total,
        requests_total: history.len(),
        requests_crashed_shard: crashed_sub.len(),
        points_tested: points.len(),
        violations,
    }
}

/// The trace of one deterministic single-threaded service drive: where each
/// request routed, every reply byte-for-byte, and each shard's complete
/// persistence-event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTrace {
    /// Shard count.
    pub shards: usize,
    /// The shard each request routed to, in request order.
    pub routes: Vec<usize>,
    /// Encoded reply of each request, in request order.
    pub replies: Vec<Vec<u8>>,
    /// Serialised per-shard event streams (construction span, total, kinds).
    pub shard_streams: Vec<String>,
}

impl ServiceTrace {
    /// Serialise the whole trace into one comparable string. Two drives of one
    /// `(history, shards, elision)` triple must produce **byte-identical**
    /// results — the property the shard-routing test asserts, and what makes
    /// the absolute crash indices of [`sweep_server_crash`] reproducible.
    pub fn stream_string(&self) -> String {
        let routes: Vec<String> = self.routes.iter().map(|r| r.to_string()).collect();
        let replies: Vec<String> = self
            .replies
            .iter()
            .map(|r| r.iter().map(|b| format!("{b:02x}")).collect::<String>())
            .collect();
        format!(
            "shards={} routes=[{}] replies=[{}] {}",
            self.shards,
            routes.join(","),
            replies.join(","),
            self.shard_streams.join(" ")
        )
    }
}

/// Drive `history` through a fresh `shards`-shard server on the calling thread
/// with a logging plan on **every** shard, and serialise the result. The service
/// analogue of [`crate::round_robin_map`].
pub fn round_robin_service<P, M, F>(
    factory: &F,
    shards: usize,
    history: &[MapOp],
    elision: ElisionMode,
) -> ServiceTrace
where
    P: Policy<Backend = SimNvram>,
    M: ConcurrentMap<P>,
    F: Fn(SimNvram) -> P,
{
    assert!(shards > 0, "at least one shard");
    let plans: Vec<CrashPlan> = (0..shards).map(|_| CrashPlan::counting_logged()).collect();
    let backends: Vec<SimNvram> = plans
        .iter()
        .map(|p| {
            SimNvram::builder()
                .latency(LatencyModel::none())
                .tracking(true)
                .crash_plan(p.clone())
                .elision(elision)
                .build()
        })
        .collect();
    let server: KvServer<P, M> = KvServer::new_with(ServerConfig::new(shards, 64 * shards), |i| {
        FlitDb::create(factory(backends[i].clone()))
    });
    let construction: Vec<u64> = plans.iter().map(|p| p.events_seen()).collect();
    let slab: Vec<Vec<u8>> = history.iter().map(|op| op_of(op).encode()).collect();
    let handles = server.handles();
    let mut routes = Vec::with_capacity(history.len());
    let mut replies = Vec::with_capacity(history.len());
    for (i, bytes) in slab.iter().enumerate() {
        let op = Op::decode(bytes).expect("slab holds well-formed requests");
        let key = op
            .key()
            .expect("crash histories contain only routed data ops");
        routes.push(server.route(key));
        let (_, reply) = server
            .pump(&handles, &slab, i as u64)
            .expect("slab holds well-formed requests");
        replies.push(reply);
    }
    drop(handles); // dirty handle fences land inside the per-shard streams
    let shard_streams = (0..shards)
        .map(|s| {
            let kinds: String = plans[s]
                .event_log()
                .iter()
                .map(|k| match k {
                    CrashEventKind::Store => 'S',
                    CrashEventKind::Pwb => 'W',
                    CrashEventKind::Pfence => 'F',
                })
                .collect();
            format!(
                "shard{s}[construction={} total={} stream={}]",
                construction[s],
                plans[s].events_seen(),
                kinds
            )
        })
        .collect();
    ServiceTrace {
        shards,
        routes,
        replies,
        shard_streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VolatileStores;
    use flit::presets;
    use flit::{FlitPolicy, HashedScheme};
    use flit_datastructs::{Automatic, HashTable};
    use flit_workload::random_map_history;

    type P = FlitPolicy<HashedScheme, SimNvram>;

    fn factory(b: SimNvram) -> P {
        presets::flit_ht_sized(b, 1 << 12)
    }

    #[test]
    fn op_conversion_is_faithful() {
        assert_eq!(op_of(&MapOp::Insert(3, 30)), Op::Put(3, 30));
        assert_eq!(op_of(&MapOp::Remove(3)), Op::Del(3));
        assert_eq!(op_of(&MapOp::Get(3)), Op::Get(3));
    }

    #[test]
    fn flit_ht_one_shard_crash_sweep_is_clean() {
        let history = random_map_history(7, 40, 16);
        let report = sweep_server_crash::<P, HashTable<P, Automatic>, _>(
            "flit-ht",
            factory,
            2,
            0,
            &history,
            &SweepSettings {
                budget: 10,
                ..Default::default()
            },
        );
        assert!(report.clean(), "{:#?}", report.violations);
        assert!(
            report.requests_crashed_shard > 0,
            "router starved the shard"
        );
        assert!(
            report.requests_crashed_shard < report.requests_total,
            "the surviving shard must see traffic too"
        );
        assert_eq!(report.points_tested, 10);
        assert!(report.summary().contains("0 violations"));
    }

    #[test]
    fn broken_control_is_caught_through_the_service_path() {
        let history = random_map_history(7, 40, 16);
        let report = sweep_server_crash::<P, HashTable<P, VolatileStores>, _>(
            "volatile-broken",
            factory,
            2,
            0,
            &history,
            &SweepSettings {
                budget: 10,
                ..Default::default()
            },
        );
        assert!(
            !report.clean(),
            "a sweep over the broken control that finds nothing means the harness is broken"
        );
    }

    #[test]
    fn batched_commit_one_shard_crash_sweep_is_clean() {
        let history = random_map_history(7, 40, 16);
        let report = sweep_server_crash::<P, HashTable<P, Automatic>, _>(
            "flit-ht-batched",
            factory,
            2,
            0,
            &history,
            &SweepSettings {
                budget: 10,
                commit: flit::CommitMode::Batched(8),
                ..Default::default()
            },
        );
        assert!(report.clean(), "{:#?}", report.violations);
    }

    #[test]
    fn broken_acks_are_caught_through_the_service_path() {
        let history = random_map_history(7, 16, 8);
        let report = sweep_server_crash::<P, HashTable<P, Automatic>, _>(
            "flit-ht-ack-unfenced",
            factory,
            2,
            0,
            &history,
            &SweepSettings {
                commit: flit::CommitMode::Batched(8),
                broken_acks: true,
                ..Default::default()
            },
        );
        assert!(
            !report.clean(),
            "acknowledging before the fence must lose acknowledged requests in some crash"
        );
    }

    #[test]
    fn service_traces_are_byte_reproducible() {
        let history = random_map_history(3, 30, 16);
        let run = || {
            round_robin_service::<P, HashTable<P, Automatic>, _>(
                &factory,
                3,
                &history,
                ElisionMode::Enabled,
            )
            .stream_string()
        };
        assert_eq!(run(), run());
    }
}
