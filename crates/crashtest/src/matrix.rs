//! Value-addressable dispatch over the full sweep matrix: every structure ×
//! durability method × policy combination, named by the same keys the `crashtest`
//! CLI accepts.

use flit::{presets, Policy};
use flit_datastructs::{
    Automatic, Durability, HarrisList, HashTable, Manual, NatarajanTree, NvTraverse, SkipList,
};
use flit_pmem::SimNvram;

use crate::engine::{sweep_map, sweep_queue, SweepSettings};
use crate::report::{CaseMeta, HistorySpec, SweepReport};
use crate::VolatileStores;

/// flit-HT counter-table size used by sweeps. Smaller than the paper's 1 MB default
/// because every crash point rebuilds the policy from scratch; table size only
/// affects counter collisions, not durability semantics.
pub(crate) const FLIT_HT_SWEEP_BYTES: usize = 1 << 16;

/// The structures the engine can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Harris sorted linked list.
    List,
    /// Hash table with Harris-list buckets.
    HashTable,
    /// Natarajan–Mittal external BST.
    Bst,
    /// Lock-free skiplist.
    SkipList,
    /// Michael–Scott FIFO queue.
    MsQueue,
    /// Copy-on-write hash array mapped trie (`flit-hamt`, MOD discipline).
    Hamt,
}

impl StructureKind {
    /// Every structure, in sweep order.
    pub const ALL: [StructureKind; 6] = [
        StructureKind::List,
        StructureKind::HashTable,
        StructureKind::Bst,
        StructureKind::SkipList,
        StructureKind::MsQueue,
        StructureKind::Hamt,
    ];

    /// CLI key.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::List => "list",
            StructureKind::HashTable => "hashtable",
            StructureKind::Bst => "bst",
            StructureKind::SkipList => "skiplist",
            StructureKind::MsQueue => "msqueue",
            StructureKind::Hamt => "hamt",
        }
    }

    /// Parse a CLI key.
    pub fn parse(s: &str) -> Option<StructureKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// The persistence policies the engine can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The plain durable transformation (every p-load flushes).
    Plain,
    /// FliT with the hashed counter table.
    FlitHt,
    /// FliT with an adjacent per-word counter.
    FlitAdjacent,
    /// FliT with one counter per cache line.
    FlitCacheLine,
    /// The link-and-persist comparator (dirty bit inside the word).
    LinkPersist,
}

impl PolicyKind {
    /// Every policy, in sweep order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Plain,
        PolicyKind::FlitHt,
        PolicyKind::FlitAdjacent,
        PolicyKind::FlitCacheLine,
        PolicyKind::LinkPersist,
    ];

    /// CLI key.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Plain => "plain",
            PolicyKind::FlitHt => "flit-ht",
            PolicyKind::FlitAdjacent => "flit-adjacent",
            PolicyKind::FlitCacheLine => "flit-cacheline",
            PolicyKind::LinkPersist => "link-persist",
        }
    }

    /// Parse a CLI key.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// `false` for combinations the policy cannot express: link-and-persist needs a
    /// spare bit and CAS-only updates, which the Natarajan–Mittal BST's two-bit
    /// edges rule out (paper §6.6).
    pub fn supports(self, structure: StructureKind) -> bool {
        !(self == PolicyKind::LinkPersist && structure == StructureKind::Bst)
    }
}

/// The durability methods the engine can sweep — the paper's three plus the
/// deliberately broken control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Theorem 3.1: every instruction is a p-instruction.
    Automatic,
    /// NVTraverse: volatile traversal, persisted transition + critical phase.
    NvTraverse,
    /// Hand-tuned: persistence confined to the modified link.
    Manual,
    /// The broken control ([`VolatileStores`]): nothing persists; sweeps over it
    /// *must* find violations, proving the harness can catch durability bugs.
    VolatileBroken,
}

impl MethodKind {
    /// The correct methods (a sweep over these must find zero violations).
    pub const CORRECT: [MethodKind; 3] = [
        MethodKind::Automatic,
        MethodKind::NvTraverse,
        MethodKind::Manual,
    ];

    /// Every method including the broken control.
    pub const ALL: [MethodKind; 4] = [
        MethodKind::Automatic,
        MethodKind::NvTraverse,
        MethodKind::Manual,
        MethodKind::VolatileBroken,
    ];

    /// CLI key.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Automatic => "automatic",
            MethodKind::NvTraverse => "nvtraverse",
            MethodKind::Manual => "manual",
            MethodKind::VolatileBroken => "volatile-broken",
        }
    }

    /// Parse a CLI key.
    pub fn parse(s: &str) -> Option<MethodKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// `true` for the broken control, whose violations are expected.
    pub fn expects_violations(self) -> bool {
        self == MethodKind::VolatileBroken
    }
}

/// Sweep one case. Returns `None` for combinations the policy cannot express
/// (see [`PolicyKind::supports`]).
pub fn run_case(
    structure: StructureKind,
    method: MethodKind,
    policy: PolicyKind,
    history: HistorySpec,
    settings: &SweepSettings,
) -> Option<SweepReport> {
    if !policy.supports(structure) {
        return None;
    }
    let case = CaseMeta {
        structure: structure.name(),
        method: method.name(),
        policy: policy.name(),
        history,
        elision: settings.elision,
        commit: settings.commit,
        broken_acks: settings.broken_acks,
    };
    if structure == StructureKind::Hamt {
        return run_hamt_case(case, method, policy, settings);
    }
    Some(match policy {
        PolicyKind::Plain => with_policy(case, structure, method, settings, presets::plain),
        PolicyKind::FlitHt => with_policy(case, structure, method, settings, |b| {
            presets::flit_ht_sized(b, FLIT_HT_SWEEP_BYTES)
        }),
        PolicyKind::FlitAdjacent => {
            with_policy(case, structure, method, settings, presets::flit_adjacent)
        }
        PolicyKind::FlitCacheLine => {
            with_policy(case, structure, method, settings, presets::flit_cacheline)
        }
        PolicyKind::LinkPersist => {
            with_policy(case, structure, method, settings, presets::link_and_persist)
        }
    })
}

/// The HAMT carries its own durability discipline — MOD copy-on-write with a
/// single flushed CAS on the recovery root — instead of FliT's per-word
/// methods, so the traversal-phase method axis does not apply to it. Only
/// `automatic` (the real structure) and `volatile-broken` (the
/// skip-the-root-flush control, [`flit_hamt::BrokenHamt`], which *must* fail)
/// are swept; `nvtraverse` and `manual` return `None` like an unsupported
/// policy combination. The policy axis still selects the backend the handles
/// run on: the HAMT never touches a `FlitAtomic`, so a clean sweep under every
/// policy demonstrates exactly that policy-independence.
fn run_hamt_case(
    case: CaseMeta,
    method: MethodKind,
    policy: PolicyKind,
    settings: &SweepSettings,
) -> Option<SweepReport> {
    fn go<P, F>(case: CaseMeta, broken: bool, settings: &SweepSettings, factory: F) -> SweepReport
    where
        P: Policy<Backend = SimNvram>,
        F: Fn(SimNvram) -> P,
    {
        let history = case.history;
        if broken {
            sweep_map::<P, flit_hamt::BrokenHamt<P>, F>(
                case,
                factory,
                &history.map_history(),
                settings,
            )
        } else {
            sweep_map::<P, flit_hamt::Hamt<P>, F>(case, factory, &history.map_history(), settings)
        }
    }
    let broken = match method {
        MethodKind::Automatic => false,
        MethodKind::VolatileBroken => true,
        MethodKind::NvTraverse | MethodKind::Manual => return None,
    };
    Some(match policy {
        PolicyKind::Plain => go(case, broken, settings, presets::plain),
        PolicyKind::FlitHt => go(case, broken, settings, |b| {
            presets::flit_ht_sized(b, FLIT_HT_SWEEP_BYTES)
        }),
        PolicyKind::FlitAdjacent => go(case, broken, settings, presets::flit_adjacent),
        PolicyKind::FlitCacheLine => go(case, broken, settings, presets::flit_cacheline),
        PolicyKind::LinkPersist => go(case, broken, settings, presets::link_and_persist),
    })
}

fn with_policy<P, F>(
    case: CaseMeta,
    structure: StructureKind,
    method: MethodKind,
    settings: &SweepSettings,
    factory: F,
) -> SweepReport
where
    P: Policy<Backend = SimNvram> + Clone,
    F: Fn(SimNvram) -> P,
{
    match method {
        MethodKind::Automatic => with_method::<P, Automatic, F>(case, structure, settings, factory),
        MethodKind::NvTraverse => {
            with_method::<P, NvTraverse, F>(case, structure, settings, factory)
        }
        MethodKind::Manual => with_method::<P, Manual, F>(case, structure, settings, factory),
        MethodKind::VolatileBroken => {
            with_method::<P, VolatileStores, F>(case, structure, settings, factory)
        }
    }
}

fn with_method<P, D, F>(
    case: CaseMeta,
    structure: StructureKind,
    settings: &SweepSettings,
    factory: F,
) -> SweepReport
where
    P: Policy<Backend = SimNvram> + Clone,
    D: Durability,
    F: Fn(SimNvram) -> P,
{
    let history = case.history;
    match structure {
        StructureKind::List => {
            sweep_map::<P, HarrisList<P, D>, F>(case, factory, &history.map_history(), settings)
        }
        StructureKind::HashTable => {
            sweep_map::<P, HashTable<P, D>, F>(case, factory, &history.map_history(), settings)
        }
        StructureKind::Bst => {
            sweep_map::<P, NatarajanTree<P, D>, F>(case, factory, &history.map_history(), settings)
        }
        StructureKind::SkipList => {
            sweep_map::<P, SkipList<P, D>, F>(case, factory, &history.map_history(), settings)
        }
        StructureKind::MsQueue => {
            sweep_queue::<P, D, F>(case, factory, &history.queue_history(), settings)
        }
        StructureKind::Hamt => unreachable!("hamt cases are dispatched by run_hamt_case"),
    }
}

/// Sweep the cartesian product of the given kinds, skipping unsupported
/// combinations.
pub fn run_matrix(
    structures: &[StructureKind],
    methods: &[MethodKind],
    policies: &[PolicyKind],
    history: HistorySpec,
    settings: &SweepSettings,
) -> Vec<SweepReport> {
    let mut reports = Vec::new();
    for &structure in structures {
        for &method in methods {
            for &policy in policies {
                if let Some(report) = run_case(structure, method, policy, history, settings) {
                    reports.push(report);
                }
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_parse_and_round_trip() {
        for s in StructureKind::ALL {
            assert_eq!(StructureKind::parse(s.name()), Some(s));
        }
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
        }
        for m in MethodKind::ALL {
            assert_eq!(MethodKind::parse(m.name()), Some(m));
        }
        assert_eq!(StructureKind::parse("nope"), None);
    }

    #[test]
    fn bst_cannot_run_link_and_persist() {
        assert!(!PolicyKind::LinkPersist.supports(StructureKind::Bst));
        assert!(PolicyKind::LinkPersist.supports(StructureKind::List));
        assert!(run_case(
            StructureKind::Bst,
            MethodKind::Automatic,
            PolicyKind::LinkPersist,
            HistorySpec::Scripted,
            &SweepSettings::default(),
        )
        .is_none());
    }

    #[test]
    fn hamt_skips_traversal_phase_methods() {
        for method in [MethodKind::NvTraverse, MethodKind::Manual] {
            assert!(run_case(
                StructureKind::Hamt,
                method,
                PolicyKind::Plain,
                HistorySpec::Scripted,
                &SweepSettings::default(),
            )
            .is_none());
        }
    }

    #[test]
    fn broken_method_is_flagged_as_expecting_violations() {
        assert!(MethodKind::VolatileBroken.expects_violations());
        for m in MethodKind::CORRECT {
            assert!(!m.expects_violations());
        }
    }
}
