//! # `flit-crashtest` — deterministic crash injection and recovery verification
//!
//! FliT's whole claim (paper §3–4) is that the P-V interface makes any linearizable
//! structure *durably* linearizable. The seed repo tested that claim only at
//! hand-picked operation boundaries; this crate tests it the way the systematic
//! crash-consistency literature does (MOD, Memento, the persistent-FIFO work):
//! inject a simulated crash at **every persistence event** of a history and verify
//! that the state recovered from the frozen [`CrashImage`](flit_pmem::CrashImage)
//! is a prefix-consistent linearization of the operations issued so far.
//!
//! ## How a sweep works
//!
//! For each case (structure × durability method × policy × history) the
//! [`engine`]:
//!
//! 1. replays the history once with a counting [`CrashPlan`](flit_pmem::CrashPlan)
//!    to learn the event span and per-operation boundaries;
//! 2. for each selected crash point `k`, replays against a fresh backend with a
//!    plan armed at `k` — the plan freezes the adversarial persisted image the
//!    instant event `k` would have applied (the event is lost, exactly as if power
//!    failed during it);
//! 3. recovers the structure from the frozen image
//!    ([`MapCrashRecovery`](flit_datastructs::MapCrashRecovery) /
//!    [`MsQueue::recover`](flit_queues::MsQueue::recover)) and checks the result
//!    equals the model state after `c` or `c + 1` operations, where `c` operations
//!    had completed before the crash.
//!
//! Replays are single-threaded and the vendored RNG is deterministic, so every
//! violation comes with a complete repro string: the `crashtest` CLI invocation
//! that replays exactly that structure, policy, seed and crash event.
//!
//! ## Catching bugs, not just confirming correctness
//!
//! A harness that never fails proves nothing. [`VolatileStores`] is a deliberately
//! broken durability method — every instruction is a v-instruction, so nothing
//! after construction persists — and sweeps over it **must** report violations
//! (lost completed inserts, resurrected dequeues). The `crashtest` binary and the
//! integration tests treat "the broken control found nothing" as a failure of the
//! harness itself.
//!
//! ## Entry points
//!
//! * [`matrix::run_matrix`] / [`matrix::run_case`] — value-addressable sweeps over
//!   the full combination space (what the binary and CI drive);
//! * [`engine::sweep_map`] / [`engine::sweep_queue`] — generic sweeps for one
//!   concrete instantiation (what the integration tests drive directly);
//! * [`roundrobin::round_robin_map`] — the controlled scheduler: N explicit
//!   `FlitHandle`s stepped round-robin on one OS thread, producing a
//!   byte-reproducible global event stream (the explicit-handle redesign's
//!   proof-of-concept, seeding the multi-threaded sweep roadmap item);
//! * [`server::sweep_server_crash`] — the service-level sweep: crash exactly one
//!   shard of a `flit-server` [`KvServer`](flit_server::KvServer) mid-traffic,
//!   recover it image-only, and check the crashed shard is prefix-consistent
//!   while every surviving shard holds exactly its full routed history;
//! * [`kill::run_kill_round`] / [`kill::corruption_suite`] — the *real-pool*
//!   harness: `SIGKILL` a child process mid-traffic against a file-backed pool
//!   and verify the reopened pool (prefix consistency, acked floor, GC
//!   idempotence), plus targeted corruption of pool files asserting every case
//!   surfaces as a typed `OpenError` (what the `killtest` binary drives).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod engine;
pub mod hamt;
pub mod kill;
pub mod matrix;
pub mod report;
pub mod roundrobin;
pub mod server;

pub use engine::{sweep_map, sweep_queue, SweepSettings};
pub use hamt::{run_hamt_snapshot_case, sweep_hamt_snapshot, SNAPSHOT_STRUCTURE};
pub use kill::{
    run_kill_round, verify_hamt_pool, verify_pool, CorruptionOutcome, KillHamt, KillRound,
    KillRoundReport, KillViolation, CHILD_FLAG,
};
pub use matrix::{run_case, run_matrix, MethodKind, PolicyKind, StructureKind};
pub use report::{CaseMeta, HistorySpec, SweepReport, Violation};
pub use roundrobin::{round_robin_map, round_robin_script, RoundRobinTrace, ScriptedStep};
pub use server::{
    op_of, round_robin_service, sweep_server_crash, ServerSweepReport, ServerViolation,
    ServiceTrace,
};

use flit::PFlag;
use flit_datastructs::Durability;

/// A deliberately broken durability method: **every** instruction is a
/// v-instruction, so no store after construction is ever written back or fenced.
///
/// Any structure instantiated with this method is linearizable but *not* durably
/// linearizable — completed operations vanish in a crash. The crashtest engine uses
/// it as a control: a sweep over `VolatileStores` that reports zero violations
/// means the harness (not the structure) is broken.
#[derive(Debug, Default, Clone, Copy)]
pub struct VolatileStores;

impl Durability for VolatileStores {
    const NAME: &'static str = "volatile-broken";
    const TRAVERSAL_LOAD: PFlag = PFlag::Volatile;
    const CRITICAL_LOAD: PFlag = PFlag::Volatile;
    const STORE: PFlag = PFlag::Volatile;
    const INDEX_STORE: PFlag = PFlag::Volatile;
    const TRANSITION_DEPTH: usize = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_stores_persists_nothing() {
        assert!(VolatileStores::TRAVERSAL_LOAD.is_volatile());
        assert!(VolatileStores::CRITICAL_LOAD.is_volatile());
        assert!(VolatileStores::STORE.is_volatile());
        assert!(VolatileStores::INDEX_STORE.is_volatile());
        assert_eq!(VolatileStores::TRANSITION_DEPTH, 0);
    }
}
