//! The crash-point sweep engine.
//!
//! For one *case* (structure × durability method × policy × history) the engine:
//!
//! 1. runs a **counting pass**: replay the history against a fresh tracking backend
//!    with a counting [`CrashPlan`], recording how many persistence events
//!    construction generates, where every operation boundary falls, and the total
//!    event count;
//! 2. selects crash points across the **full absolute event span** `0..=total` —
//!    *including the construction window* `0..construction` — every event, or an
//!    evenly spaced subset under a budget;
//! 3. for each absolute index `k`, replays the identical history against a fresh
//!    backend with a plan armed at `k` — the plan freezes the adversarial image
//!    the instant that event would have applied — recovers the structure **purely
//!    from the frozen [`CrashImage`] + the arena's recovery-root table** (no live
//!    pointer, no live-memory reads), and checks **prefix consistency**: with `c`
//!    operations completed before the crash and at most one in flight, the
//!    recovered abstract state must equal the model state after `c` or after
//!    `c + 1` operations — and the recovery walk must not be truncated. A crash
//!    inside the construction window must recover to exactly the empty structure
//!    (either "no durable root yet" or the empty, fully-constructed skeleton).
//!
//! Under [`CommitMode::Batched`] (a sweep dimension next to elision) the contract
//! weakens to the watermark/ticket contract: the recovered state must be the
//! model state after `n` operations for some `n` between the `acked_floor` —
//! the operations whose completion obligations a drain had acknowledged — and
//! `c + 1`. Under [`CommitMode::Immediate`] the floor always equals `c`, so the
//! same check degenerates to the strict two-state contract above. The
//! deliberately broken [`SweepSettings::broken_acks`] mode acknowledges without
//! fencing and must make batched sweeps fail.
//!
//! Crash points are **stable absolute event indices**: arena allocation
//! (`flit-alloc`) makes every object flush cover a layout-independent number of
//! cache lines, so two replays of one history produce byte-identical event
//! streams — across runs, processes and machines. A repro string is therefore a
//! complete, portable reproduction recipe. The index `k = total` (nothing lost)
//! is always included as a control: there the recovered state must equal the full
//! history's final state. Replays that crash inside the construction window skip
//! the (irrelevant) history for speed: the image was frozen before any operation
//! began.

use std::collections::{BTreeMap, VecDeque};

use flit::{CommitMode, FlitDb, Policy};
use flit_datastructs::{ConcurrentMap, Durability, MapCrashRecovery, RecoveredMap};
use flit_pmem::{CrashImage, CrashPlan, ElisionMode, LatencyModel, SimNvram};
use flit_queues::{ConcurrentQueue, MsQueue};
use flit_workload::{MapOp, QueueOp};

use crate::report::{CaseMeta, SweepReport, Violation};

/// How much of the event span a sweep covers. The default (`budget: 0`, no pinned
/// crash point) sweeps every absolute event of the elision-enabled instruction
/// stream, construction included.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepSettings {
    /// Maximum number of crash points to inject (`0` = every event in the span).
    pub budget: usize,
    /// Inject exactly this one absolute crash index instead of sweeping
    /// (repro mode).
    pub crash_at: Option<u64>,
    /// Persist-epoch elision mode of the replayed backend. The default
    /// ([`ElisionMode::Enabled`]) sweeps the elided instruction stream — the one
    /// production runs execute; [`ElisionMode::Disabled`] sweeps the
    /// paper-literal stream. Note the two streams have different event spans
    /// (elision removes fence events), so crash indices are not comparable
    /// across modes.
    pub elision: ElisionMode,
    /// Commit mode of the replayed [`FlitDb`]. Under [`CommitMode::Batched`] the
    /// completion fence is amortized over batches, so the crash contract weakens
    /// to the watermark/ticket contract: the recovered state must be a consistent
    /// prefix containing at least every *acknowledged* operation (see
    /// `acked_floor`). Batching removes fence events from the stream, so — as
    /// with elision — crash indices are not comparable across commit modes.
    pub commit: CommitMode,
    /// Deliberately broken-acknowledgment mode: after every operation the replay
    /// acknowledges all enqueued completion obligations *without fencing*
    /// (`FlitHandle::ack_obligations_without_fence`). Under a batched commit mode
    /// this claims durability for operations whose writes are still pending, so
    /// sweeps with this flag **must** find violations — the control proving the
    /// acked-floor check can catch a broken group-commit implementation.
    pub broken_acks: bool,
}

/// The backend a replay runs against: zero latency, tracking, the given plan, and
/// the sweep's elision mode.
pub(crate) fn replay_backend(plan: CrashPlan, elision: ElisionMode) -> SimNvram {
    SimNvram::builder()
        .latency(LatencyModel::none())
        .tracking(true)
        .crash_plan(plan)
        .elision(elision)
        .build()
}

/// Evenly spaced crash points over `base..=total`, at most `budget` of them
/// (`budget == 0` selects every point). The first and last points are always
/// included.
pub(crate) fn select_points(base: u64, total: u64, budget: usize) -> Vec<u64> {
    let span = total - base + 1;
    if budget == 0 || budget as u64 >= span {
        return (base..=total).collect();
    }
    if budget == 1 {
        return vec![total];
    }
    let mut points: Vec<u64> = (0..budget as u64)
        .map(|i| base + i * (span - 1) / (budget as u64 - 1))
        .collect();
    points.dedup();
    points
}

/// The label used for the nothing-lost control point (`k == total`).
const END_EVENT: &str = "end";

/// Outcome of one replay. `boundaries` are *absolute event indices* recorded by
/// this very run; arena allocation makes them identical across replays of one
/// history, which is what lets crash points be absolute in the first place.
struct Replay<R> {
    base: u64,
    boundaries: Vec<u64>,
    /// Per-boundary `(enqueued, committed)` obligation counters of the replay
    /// handle, sampled right after each operation. Under [`CommitMode::Immediate`]
    /// both stay 0; under a batched mode they drive the `acked_floor`
    /// computation for the weaker ticket contract.
    marks: Vec<(u64, u64)>,
    total: u64,
    recovered: Option<(R, &'static str)>,
    /// First operation whose *return value* diverged from the sequential model
    /// during the replay (linearizability, not durability — the injected crash
    /// never perturbs execution, so any mismatch is a real structure/policy bug).
    functional: Option<String>,
    /// The replay handle's flight-recorder tail, sampled at the first operation
    /// boundary at or past the armed crash index (so it holds the persistence
    /// events leading *into* the crash, not the whole replay's tail). Empty for
    /// counting passes.
    flight: Vec<flit::FlightEvent>,
}

/// Replay `history` against a fresh `M`; when `crash_at` is set, freeze the image
/// the instant that absolute event would have applied and recover from it.
/// `run_history` is false for construction-window replays, where the image is
/// frozen before any operation begins and the history cannot affect it.
fn replay_map<P, M, F>(
    factory: &F,
    history: &[MapOp],
    crash_at: Option<u64>,
    run_history: bool,
    settings: &SweepSettings,
) -> Replay<RecoveredMap>
where
    P: Policy<Backend = SimNvram>,
    M: ConcurrentMap<P> + MapCrashRecovery<P>,
    F: Fn(SimNvram) -> P,
{
    let plan = match crash_at {
        Some(k) => CrashPlan::armed_at(k),
        None => CrashPlan::counting(),
    };
    let backend = replay_backend(plan.clone(), settings.elision);
    let db = FlitDb::builder(factory(backend.clone()))
        .commit_mode(settings.commit)
        .build();
    let map = M::with_capacity(&db, 64);
    // The single replay handle: the engine owns it explicitly, which is what the
    // round-robin harness generalises to N handles (see `roundrobin`). The
    // harness is the flight recorder's consumer, so arm the ring up front.
    let h = db.handle();
    h.arm_flight_recorder();
    let base = plan.events_seen();
    let mut boundaries = Vec::with_capacity(history.len());
    let mut marks = Vec::with_capacity(history.len());
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut functional = None;
    let mut flight = Vec::new();
    if run_history {
        for (i, op) in history.iter().enumerate() {
            let mismatch = |got: &dyn std::fmt::Debug, want: &dyn std::fmt::Debug| {
                format!("op {i} ({op:?}) returned {got:?} but the model says {want:?}")
            };
            match *op {
                MapOp::Insert(k, v) => {
                    let got = map.insert(&h, k, v);
                    let want = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k)
                    {
                        e.insert(v);
                        true
                    } else {
                        false
                    };
                    if got != want && functional.is_none() {
                        functional = Some(mismatch(&got, &want));
                    }
                }
                MapOp::Remove(k) => {
                    let got = map.remove(&h, k);
                    let want = model.remove(&k).is_some();
                    if got != want && functional.is_none() {
                        functional = Some(mismatch(&got, &want));
                    }
                }
                MapOp::Get(k) => {
                    let got = map.get(&h, k);
                    let want = model.get(&k).copied();
                    if got != want && functional.is_none() {
                        functional = Some(mismatch(&got, &want));
                    }
                }
            }
            if settings.broken_acks {
                h.ack_obligations_without_fence();
            }
            boundaries.push(plan.events_seen());
            marks.push((h.enqueued_obligations(), h.committed_obligations()));
            if let Some(k) = crash_at {
                if flight.is_empty() && plan.events_seen() >= k {
                    flight = h.flight_events();
                }
            }
        }
    }
    if crash_at.is_some() && flight.is_empty() {
        // Construction-window or past-the-end crash: no boundary crossed the
        // armed index, so the tail at replay end is the closest sample.
        flight = h.flight_events();
    }
    let total = plan.events_seen();
    let recovered = frozen_image(&plan, &backend, crash_at)
        .map(|(image, kind)| (map.recover_from_image(&image), kind));
    Replay {
        base,
        boundaries,
        marks,
        total,
        recovered,
        functional,
        flight,
    }
}

/// Replay a queue history; mirrors [`replay_map`] over [`MsQueue`].
fn replay_queue<P, D, F>(
    factory: &F,
    history: &[QueueOp],
    crash_at: Option<u64>,
    run_history: bool,
    settings: &SweepSettings,
) -> Replay<flit_queues::RecoveredQueue>
where
    P: Policy<Backend = SimNvram>,
    D: Durability,
    F: Fn(SimNvram) -> P,
{
    let plan = match crash_at {
        Some(k) => CrashPlan::armed_at(k),
        None => CrashPlan::counting(),
    };
    let backend = replay_backend(plan.clone(), settings.elision);
    let db = FlitDb::builder(factory(backend.clone()))
        .commit_mode(settings.commit)
        .build();
    let queue: MsQueue<P, D> = MsQueue::new(&db);
    let h = db.handle();
    h.arm_flight_recorder();
    let base = plan.events_seen();
    let mut boundaries = Vec::with_capacity(history.len());
    let mut marks = Vec::with_capacity(history.len());
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut functional = None;
    let mut flight = Vec::new();
    if run_history {
        for (i, op) in history.iter().enumerate() {
            match *op {
                QueueOp::Enqueue(v) => {
                    queue.enqueue(&h, v);
                    model.push_back(v);
                }
                QueueOp::Dequeue => {
                    let got = queue.dequeue(&h);
                    let want = model.pop_front();
                    if got != want && functional.is_none() {
                        functional = Some(format!(
                            "op {i} (Dequeue) returned {got:?} but the model says {want:?}"
                        ));
                    }
                }
            }
            if settings.broken_acks {
                h.ack_obligations_without_fence();
            }
            boundaries.push(plan.events_seen());
            marks.push((h.enqueued_obligations(), h.committed_obligations()));
            if let Some(k) = crash_at {
                if flight.is_empty() && plan.events_seen() >= k {
                    flight = h.flight_events();
                }
            }
        }
    }
    if crash_at.is_some() && flight.is_empty() {
        flight = h.flight_events();
    }
    let total = plan.events_seen();
    let recovered =
        frozen_image(&plan, &backend, crash_at).map(|(image, kind)| (queue.recover(&image), kind));
    Replay {
        base,
        boundaries,
        marks,
        total,
        recovered,
        functional,
        flight,
    }
}

/// The image a crash freezes: the plan's capture when the armed index fell inside
/// this run's event span, the tracker's final (nothing lost) state when it fell at
/// or past the end — the always-included full-history control point.
pub(crate) fn frozen_image(
    plan: &CrashPlan,
    backend: &SimNvram,
    crash_at: Option<u64>,
) -> Option<(CrashImage, &'static str)> {
    crash_at?;
    match plan.crash_image() {
        Some(image) => Some((image, plan.triggered_on().map(|e| e.name()).unwrap_or("?"))),
        None => Some((
            backend
                .tracker()
                .expect("crash backend tracks")
                .crash_image(),
            END_EVENT,
        )),
    }
}

/// The model map state after the first `n` operations of `history`, as sorted
/// `(key, value)` pairs (insert does not overwrite, mirroring `ConcurrentMap`).
pub(crate) fn map_state(history: &[MapOp], n: usize) -> Vec<(u64, u64)> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in &history[..n] {
        match *op {
            MapOp::Insert(k, v) => {
                model.entry(k).or_insert(v);
            }
            MapOp::Remove(k) => {
                model.remove(&k);
            }
            MapOp::Get(_) => {}
        }
    }
    model.into_iter().collect()
}

/// The model queue state after the first `n` operations of `history`.
fn queue_state(history: &[QueueOp], n: usize) -> Vec<u64> {
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in &history[..n] {
        match *op {
            QueueOp::Enqueue(v) => model.push_back(v),
            QueueOp::Dequeue => {
                model.pop_front();
            }
        }
    }
    model.into_iter().collect()
}

/// Bounded rendering of an abstract state for violation messages.
fn digest<T: std::fmt::Debug>(items: &[T]) -> String {
    const SHOWN: usize = 12;
    if items.len() <= SHOWN {
        format!("{items:?}")
    } else {
        format!("{:?}… ({} total)", &items[..SHOWN], items.len())
    }
}

/// Number of operations whose completion boundary lies at or before event `k`
/// (the plan captures *before* event `k` applies, so a boundary of exactly `k`
/// means every event of that operation applied).
pub(crate) fn completed_before(boundaries: &[u64], k: u64) -> usize {
    boundaries.partition_point(|&b| b <= k)
}

/// The **acknowledged floor**: the number of leading operations whose completion
/// obligations were acknowledged (covered by a drain, i.e. by the durability
/// watermark) by the last completed operation boundary. The ticket contract says
/// these operations *must* survive a crash; operations between the floor and
/// `completed` were executed but never acknowledged, so a crash may legally drop
/// any suffix of them.
///
/// `marks[i]` is the replay handle's `(enqueued, committed)` obligation pair right
/// after operation `i`. Both counters are monotone, so the floor is the partition
/// point of `enqueued <= committed_at_crash`. Under [`CommitMode::Immediate`]
/// every mark is `(0, 0)`, the predicate is vacuously true, and the floor equals
/// `completed` — the check degenerates to the strict exact-prefix contract. In
/// broken-acknowledgment mode (`SweepSettings::broken_acks`) `committed` is
/// forcibly kept equal to `enqueued`, so the floor again equals `completed` and
/// any operation whose writes were still pending at the crash is a violation.
pub(crate) fn acked_floor(marks: &[(u64, u64)], completed: usize) -> usize {
    if completed == 0 {
        return 0;
    }
    let committed = marks[completed - 1].1;
    marks[..completed].partition_point(|&(enqueued, _)| enqueued <= committed)
}

/// Prefix-consistency check shared by maps and queues: the recovered state must
/// equal the model state after `n` operations for some `n` in
/// `acked..=completed` — or `completed + 1` when an operation may have been in
/// flight at the crash (`in_flight`, false for construction-window points where
/// no operation had started). `acked` is the `acked_floor`: under
/// [`CommitMode::Immediate`] it equals `completed` and the window collapses to
/// the strict two-state check; under a batched commit mode the window widens to
/// the unacknowledged tail, which a crash may legally lose.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_prefix<S: PartialEq + std::fmt::Debug>(
    actual: &[S],
    truncated: bool,
    state: impl Fn(usize) -> Vec<S>,
    history_len: usize,
    acked: usize,
    completed: usize,
    in_flight: bool,
) -> Option<String> {
    if truncated {
        return Some(
            "recovery walk truncated: a node was reachable through persisted links but its own \
             recovery words were not in the image (persist-before-publish violated)"
                .to_string(),
        );
    }
    let hi = if in_flight {
        (completed + 1).min(history_len)
    } else {
        completed
    };
    let lo = acked.min(hi);
    for n in lo..=hi {
        if actual == state(n).as_slice() {
            return None;
        }
    }
    Some(format!(
        "recovered {} but expected the state after n ops for some n in {}..={} \
         (acked floor {}, {} completed{}); state({}) is {}, state({}) is {}{}",
        digest(actual),
        lo,
        hi,
        acked,
        completed,
        if in_flight { ", one in flight" } else { "" },
        lo,
        digest(&state(lo)),
        hi,
        digest(&state(hi)),
        if in_flight {
            ""
        } else {
            " (crash inside the construction window: only the empty structure is admissible)"
        }
    ))
}

/// Sweep crash points across `history` for a map structure `M` built by `factory`.
pub fn sweep_map<P, M, F>(
    case: CaseMeta,
    factory: F,
    history: &[MapOp],
    settings: &SweepSettings,
) -> SweepReport
where
    P: Policy<Backend = SimNvram>,
    M: ConcurrentMap<P> + MapCrashRecovery<P>,
    F: Fn(SimNvram) -> P,
{
    let counting = replay_map::<P, M, F>(&factory, history, None, true, settings);
    let points = match settings.crash_at {
        Some(k) => vec![k.min(counting.total)],
        None => select_points(0, counting.total, settings.budget),
    };
    let mut violations = Vec::new();
    if let Some(detail) = counting.functional {
        // The live return values diverged from the sequential model even without a
        // crash: a linearizability bug, reported before any durability verdicts.
        violations.push(Violation {
            crash_event: 0,
            triggered_on: "live-run",
            completed_ops: 0,
            detail,
            repro: case.repro(0),
            flight: Vec::new(),
        });
    }
    for &k in &points {
        let in_flight = k >= counting.base;
        let run = replay_map::<P, M, F>(&factory, history, Some(k), in_flight, settings);
        // The PR-4 core invariant, asserted rather than assumed: every replay of
        // one case reproduces the counting pass's absolute event stream exactly
        // (a drift would silently misclassify construction-window points).
        assert_eq!(
            run.base, counting.base,
            "event-stream determinism broke: construction span drifted between replays"
        );
        if in_flight {
            assert_eq!(
                run.total, counting.total,
                "event-stream determinism broke: total span drifted between replays"
            );
        }
        let (recovered, kind) = run.recovered.expect("crash point was armed");
        let completed = completed_before(&run.boundaries, k);
        let acked = acked_floor(&run.marks, completed);
        let actual = recovered.sorted_pairs();
        if let Some(detail) = run.functional {
            violations.push(Violation {
                crash_event: k,
                triggered_on: "live-run",
                completed_ops: completed,
                detail,
                repro: case.repro(k),
                flight: run.flight.clone(),
            });
        }
        if let Some(detail) = check_prefix(
            &actual,
            recovered.truncated,
            |n| map_state(history, n),
            history.len(),
            acked,
            completed,
            in_flight,
        ) {
            violations.push(Violation {
                crash_event: k,
                triggered_on: kind,
                completed_ops: completed,
                detail,
                repro: case.repro(k),
                flight: run.flight,
            });
        }
    }
    SweepReport {
        case,
        events_construction: counting.base,
        events_total: counting.total,
        points_tested: points.len(),
        violations,
    }
}

/// Sweep crash points across `history` for the Michael–Scott queue under durability
/// method `D` and the policy built by `factory`.
pub fn sweep_queue<P, D, F>(
    case: CaseMeta,
    factory: F,
    history: &[QueueOp],
    settings: &SweepSettings,
) -> SweepReport
where
    P: Policy<Backend = SimNvram>,
    D: Durability,
    F: Fn(SimNvram) -> P,
{
    let counting = replay_queue::<P, D, F>(&factory, history, None, true, settings);
    let points = match settings.crash_at {
        Some(k) => vec![k.min(counting.total)],
        None => select_points(0, counting.total, settings.budget),
    };
    let mut violations = Vec::new();
    if let Some(detail) = counting.functional {
        violations.push(Violation {
            crash_event: 0,
            triggered_on: "live-run",
            completed_ops: 0,
            detail,
            repro: case.repro(0),
            flight: Vec::new(),
        });
    }
    for &k in &points {
        let in_flight = k >= counting.base;
        let run = replay_queue::<P, D, F>(&factory, history, Some(k), in_flight, settings);
        // See sweep_map: replays must reproduce the counting pass's event stream.
        assert_eq!(
            run.base, counting.base,
            "event-stream determinism broke: construction span drifted between replays"
        );
        if in_flight {
            assert_eq!(
                run.total, counting.total,
                "event-stream determinism broke: total span drifted between replays"
            );
        }
        let (recovered, kind) = run.recovered.expect("crash point was armed");
        let completed = completed_before(&run.boundaries, k);
        let acked = acked_floor(&run.marks, completed);
        if let Some(detail) = run.functional {
            violations.push(Violation {
                crash_event: k,
                triggered_on: "live-run",
                completed_ops: completed,
                detail,
                repro: case.repro(k),
                flight: run.flight.clone(),
            });
        }
        if let Some(detail) = check_prefix(
            &recovered.values,
            recovered.truncated,
            |n| queue_state(history, n),
            history.len(),
            acked,
            completed,
            in_flight,
        ) {
            violations.push(Violation {
                crash_event: k,
                triggered_on: kind,
                completed_ops: completed,
                detail,
                repro: case.repro(k),
                flight: run.flight,
            });
        }
    }
    SweepReport {
        case,
        events_construction: counting.base,
        events_total: counting.total,
        points_tested: points.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_selection_covers_the_span_or_respects_the_budget() {
        assert_eq!(select_points(3, 7, 0), vec![3, 4, 5, 6, 7]);
        assert_eq!(select_points(3, 7, 100), vec![3, 4, 5, 6, 7]);
        let pts = select_points(0, 1000, 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(*pts.first().unwrap(), 0);
        assert_eq!(*pts.last().unwrap(), 1000);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(select_points(10, 10, 0), vec![10]);
        assert_eq!(select_points(0, 9, 1), vec![9]);
    }

    #[test]
    fn model_states_apply_map_semantics() {
        let hist = vec![
            MapOp::Insert(1, 10),
            MapOp::Insert(1, 99), // no overwrite
            MapOp::Insert(2, 20),
            MapOp::Remove(1),
            MapOp::Get(2),
        ];
        assert_eq!(map_state(&hist, 0), vec![]);
        assert_eq!(map_state(&hist, 2), vec![(1, 10)]);
        assert_eq!(map_state(&hist, 3), vec![(1, 10), (2, 20)]);
        assert_eq!(map_state(&hist, 5), vec![(2, 20)]);
    }

    #[test]
    fn model_states_apply_queue_semantics() {
        let hist = vec![
            QueueOp::Enqueue(1),
            QueueOp::Enqueue(2),
            QueueOp::Dequeue,
            QueueOp::Dequeue,
            QueueOp::Dequeue, // empty
            QueueOp::Enqueue(3),
        ];
        assert_eq!(queue_state(&hist, 2), vec![1, 2]);
        assert_eq!(queue_state(&hist, 4), vec![] as Vec<u64>);
        assert_eq!(queue_state(&hist, 6), vec![3]);
    }

    #[test]
    fn completed_before_uses_the_capture_before_semantics() {
        let boundaries = vec![4, 9, 9, 15];
        assert_eq!(completed_before(&boundaries, 0), 0);
        assert_eq!(completed_before(&boundaries, 4), 1, "boundary == k counts");
        assert_eq!(completed_before(&boundaries, 8), 1);
        assert_eq!(completed_before(&boundaries, 9), 3);
        assert_eq!(completed_before(&boundaries, 99), 4);
    }

    #[test]
    fn check_prefix_accepts_both_adjacent_states() {
        let hist_len = 2;
        let state = |n: usize| match n {
            0 => vec![],
            1 => vec![(1u64, 10u64)],
            _ => vec![(1, 10), (2, 20)],
        };
        // Strict (immediate) contract: acked == completed.
        assert!(check_prefix(&state(1), false, state, hist_len, 1, 1, true).is_none());
        assert!(check_prefix(&state(2), false, state, hist_len, 1, 1, true).is_none());
        assert!(check_prefix(&state(0), false, state, hist_len, 1, 1, true).is_some());
        assert!(check_prefix(&state(1), true, state, hist_len, 1, 1, true).is_some());
    }

    #[test]
    fn check_prefix_widens_to_the_acked_floor_under_batching() {
        let hist_len = 3;
        let state = |n: usize| (0..n as u64).map(|k| (k, k)).collect::<Vec<_>>();
        // Batched contract: 3 ops completed, only the first acknowledged — any
        // prefix of the unacknowledged tail may be lost...
        for n in 1..=3 {
            assert!(check_prefix(&state(n), false, state, hist_len, 1, 3, true).is_none());
        }
        // ...but the acknowledged prefix itself must survive.
        assert!(check_prefix(&state(0), false, state, hist_len, 1, 3, true).is_some());
        // Broken-ack control shape: everything claimed acknowledged, tail lost.
        let verdict = check_prefix(&state(1), false, state, hist_len, 3, 3, true);
        assert!(verdict.unwrap().contains("acked floor 3"));
    }

    #[test]
    fn acked_floor_counts_acknowledged_leading_ops() {
        // Immediate mode: counters never move, floor == completed.
        assert_eq!(acked_floor(&[(0, 0), (0, 0), (0, 0)], 3), 3);
        assert_eq!(acked_floor(&[], 0), 0);
        // Batched(2): drain after op 1 committed ops 0-1; op 2 unacknowledged.
        assert_eq!(acked_floor(&[(1, 0), (2, 2), (3, 2)], 3), 2);
        // Crash one op earlier: the drain at op 1's end already covered both.
        assert_eq!(acked_floor(&[(1, 0), (2, 2), (3, 2)], 2), 2);
        assert_eq!(acked_floor(&[(1, 0), (2, 2), (3, 2)], 1), 0);
        // Broken acks: committed forced equal to enqueued, floor == completed.
        assert_eq!(acked_floor(&[(1, 1), (2, 2), (3, 3)], 3), 3);
    }

    #[test]
    fn construction_window_points_admit_only_the_empty_state() {
        let hist_len = 2;
        let state = |n: usize| match n {
            0 => vec![],
            _ => vec![(1u64, 10u64)],
        };
        // No operation can be in flight during construction: state(1) is a bug.
        assert!(check_prefix(&state(0), false, state, hist_len, 0, 0, false).is_none());
        let verdict = check_prefix(&state(1), false, state, hist_len, 0, 0, false);
        assert!(verdict.is_some());
        assert!(verdict.unwrap().contains("construction window"));
    }
}
