//! Case identification, violation records and reproduction strings.
//!
//! Every sweep is identified by four coordinates — structure, durability method,
//! policy, history — and every violation it finds carries a `repro` string that is a
//! complete `crashtest` binary invocation replaying exactly that crash point. The
//! coordinates use the same keys the binary's CLI accepts, so a repro string can be
//! pasted verbatim.

/// Which operation history a sweep replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistorySpec {
    /// The fixed scripted history (`flit_workload::scripted_map_history` /
    /// `scripted_queue_history`).
    Scripted,
    /// A seeded random history (`flit_workload::random_map_history` /
    /// `random_queue_history`).
    Random {
        /// RNG seed; the history is a pure function of `(seed, ops, key_range)`.
        seed: u64,
        /// Number of operations.
        ops: usize,
        /// Key universe for map histories (ignored by queue histories).
        key_range: u64,
    },
}

impl HistorySpec {
    /// CLI-compatible label (`scripted` or `random` plus its parameters).
    pub fn label(&self) -> String {
        match self {
            HistorySpec::Scripted => "scripted".to_string(),
            HistorySpec::Random {
                seed,
                ops,
                key_range,
            } => format!("random seed={seed:#x} ops={ops} keys={key_range}"),
        }
    }

    /// The CLI flags reproducing this history.
    fn cli_flags(&self) -> String {
        match self {
            HistorySpec::Scripted => "--history scripted".to_string(),
            HistorySpec::Random {
                seed,
                ops,
                key_range,
            } => format!("--history random --seed {seed:#x} --ops {ops} --key-range {key_range}"),
        }
    }

    /// The map history this spec denotes.
    pub fn map_history(&self) -> Vec<flit_workload::MapOp> {
        match *self {
            HistorySpec::Scripted => flit_workload::scripted_map_history(),
            HistorySpec::Random {
                seed,
                ops,
                key_range,
            } => flit_workload::random_map_history(seed, ops, key_range),
        }
    }

    /// The queue history this spec denotes.
    pub fn queue_history(&self) -> Vec<flit_workload::QueueOp> {
        match *self {
            HistorySpec::Scripted => flit_workload::scripted_queue_history(),
            HistorySpec::Random { seed, ops, .. } => flit_workload::random_queue_history(seed, ops),
        }
    }
}

/// The coordinates of one sweep: structure × durability method × policy ×
/// history × elision mode × commit mode (plus the broken-acknowledgment flag).
#[derive(Debug, Clone)]
pub struct CaseMeta {
    /// Structure key (`list`, `hashtable`, `bst`, `skiplist`, `msqueue`).
    pub structure: &'static str,
    /// Durability-method key (`automatic`, `nvtraverse`, `manual`, `volatile-broken`).
    pub method: &'static str,
    /// Policy key (`plain`, `flit-ht`, `flit-adjacent`, `flit-cacheline`,
    /// `link-persist`).
    pub policy: &'static str,
    /// The history replayed.
    pub history: HistorySpec,
    /// Persist-epoch elision mode the backend ran with (`on` sweeps the elided
    /// instruction stream, `off` the paper-literal one).
    pub elision: flit_pmem::ElisionMode,
    /// Commit mode the replayed [`FlitDb`](flit::FlitDb) ran with (`immediate`
    /// sweeps the strict per-operation contract, `batched-k` the group-commit
    /// watermark/ticket contract).
    pub commit: flit_pmem::CommitMode,
    /// `true` for the broken-acknowledgment control (obligations acknowledged
    /// without fencing); such sweeps are *expected* to find violations.
    pub broken_acks: bool,
}

impl CaseMeta {
    /// Compact identifier, e.g.
    /// `list/automatic/flit-ht/scripted/elision-on/commit-batched-8`, with a
    /// trailing `/ack-unfenced` for the broken-acknowledgment control.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}/elision-{}/commit-{}{}",
            self.structure,
            self.method,
            self.policy,
            self.history.label(),
            self.elision.name(),
            self.commit.name(),
            if self.broken_acks {
                "/ack-unfenced"
            } else {
                ""
            }
        )
    }

    /// A complete `crashtest` invocation replaying one crash point of this case.
    pub fn repro(&self, crash_event: u64) -> String {
        format!(
            "crashtest --structures {} --methods {} --policies {} {} --elision {} --commit {}{} \
             --crash-at {}",
            self.structure,
            self.method,
            self.policy,
            self.history.cli_flags(),
            self.elision.name(),
            self.commit.name(),
            if self.broken_acks {
                " --broken-acks"
            } else {
                ""
            },
            crash_event
        )
    }
}

/// One durability violation found by a sweep.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The crash point as a **stable absolute event index** (construction events
    /// included). Arena allocation makes the event stream layout-independent, so
    /// the index — and with it the repro string — is portable across runs and
    /// machines.
    pub crash_event: u64,
    /// The kind of persistence event the crash landed on (`store`/`pwb`/`pfence`),
    /// `end` for the nothing-lost control point after the final event, or
    /// `live-run` for a *functional* violation: an operation's live return value
    /// diverged from the sequential model during the replay (a linearizability
    /// bug, independent of the injected crash).
    pub triggered_on: &'static str,
    /// Operations of the history that had completed before the crash.
    pub completed_ops: usize,
    /// Human-readable description of the divergence (expected vs recovered state).
    pub detail: String,
    /// Complete `crashtest` invocation replaying this exact failure.
    pub repro: String,
    /// The replay handle's flight-recorder tail: the last persistence events
    /// (store/pwb/pfence/elisions, with word addresses and store versions)
    /// recorded up to the first operation boundary at or past the crash point —
    /// the instruction stream the crash landed in, ready to read. Empty for
    /// pre-crash `live-run` violations of a counting pass.
    pub flight: Vec<flit::FlightEvent>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash at event {} (on {}, {} ops completed): {}\n  repro: {}",
            self.crash_event, self.triggered_on, self.completed_ops, self.detail, self.repro
        )?;
        if !self.flight.is_empty() {
            write!(f, "\n  flight recorder ({} events):", self.flight.len())?;
            for e in &self.flight {
                write!(
                    f,
                    "\n    [{}] {} word={:#x} v={}",
                    e.index,
                    e.kind.name(),
                    e.word,
                    e.store_version
                )?;
            }
        }
        Ok(())
    }
}

/// The outcome of sweeping one case.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The case's coordinates.
    pub case: CaseMeta,
    /// Events generated by structure construction alone, as measured by the
    /// counting pass. Crash indices below this value fall in the *construction
    /// window*, which the sweep covers too: there recovery must yield exactly the
    /// empty structure.
    pub events_construction: u64,
    /// Total events generated by construction + the full history (counting pass).
    /// The sweep's absolute crash indices range over `0..=events_total`.
    pub events_total: u64,
    /// Crash points actually injected (≤ the full event span when a budget
    /// applies).
    pub points_tested: usize,
    /// Violations found, in crash-event order.
    pub violations: Vec<Violation>,
}

impl SweepReport {
    /// `true` when the sweep found no violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary line for console output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<55} events {:>6} (constr {:>5})  points {:>5}  violations {:>3}",
            self.case.id(),
            self.events_total,
            self.events_construction,
            self.points_tested,
            self.violations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> CaseMeta {
        CaseMeta {
            structure: "list",
            method: "automatic",
            policy: "flit-ht",
            history: HistorySpec::Random {
                seed: 0x2a,
                ops: 64,
                key_range: 16,
            },
            elision: flit_pmem::ElisionMode::Enabled,
            commit: flit_pmem::CommitMode::Batched(8),
            broken_acks: false,
        }
    }

    #[test]
    fn repro_string_round_trips_the_coordinates() {
        let repro = case().repro(17);
        for needle in [
            "--structures list",
            "--methods automatic",
            "--policies flit-ht",
            "--history random",
            "--seed 0x2a",
            "--ops 64",
            "--key-range 16",
            "--elision on",
            "--commit batched-8",
            "--crash-at 17",
        ] {
            assert!(repro.contains(needle), "missing {needle:?} in {repro:?}");
        }
        assert!(!repro.contains("--broken-acks"));
        assert!(case().id().ends_with("/elision-on/commit-batched-8"));
        let broken = CaseMeta {
            broken_acks: true,
            ..case()
        };
        assert!(broken.repro(17).contains("--broken-acks"));
        assert!(broken.id().ends_with("/ack-unfenced"));
    }

    #[test]
    fn history_specs_produce_histories() {
        assert!(!HistorySpec::Scripted.map_history().is_empty());
        assert!(!HistorySpec::Scripted.queue_history().is_empty());
        let spec = HistorySpec::Random {
            seed: 1,
            ops: 20,
            key_range: 8,
        };
        assert_eq!(spec.map_history().len(), 20);
        assert_eq!(spec.queue_history().len(), 20);
    }

    #[test]
    fn violation_display_mentions_the_repro() {
        let v = Violation {
            crash_event: 5,
            triggered_on: "pwb",
            completed_ops: 2,
            detail: "x".into(),
            repro: case().repro(5),
            flight: vec![flit::FlightEvent {
                index: 3,
                kind: flit::FlightEventKind::Pwb,
                word: 0x40,
                store_version: 7,
            }],
        };
        let s = v.to_string();
        assert!(s.contains("repro: crashtest"));
        assert!(s.contains("flight recorder (1 events)"));
        assert!(s.contains("[3] pwb word=0x40 v=7"));
    }
}
