//! Process-kill crash rounds and corruption injection against file-backed
//! pools — the "real crash" counterpart of the simulated [`CrashPlan`] sweeps.
//!
//! The simulated sweeps freeze an adversarial image at chosen persistence
//! events; this module kills a **real child process** (`SIGKILL`, no cleanup
//! of any kind) mid-traffic against an mmap'd pool file and re-opens the pool
//! in the parent. What the file reflects after a kill is exactly the store
//! stream the child had executed — completed stores survive in the page
//! cache — so a kill lands *inside* whatever operation was in flight,
//! including mid-batch under [`CommitMode::Batched`].
//!
//! ## The workload and its prefix contract
//!
//! The child runs a fixed, deterministic single-handle workload over a
//! pool-backed hash table — op `j` (1-based) is `remove(j - 3)` when
//! `j % 7 == 0` and `insert(j, 3j + 1)` otherwise — and after every operation
//! writes its **acknowledged floor** to a sidecar file: the operation count
//! under [`CommitMode::Immediate`] (completions are synchronously durable),
//! the handle's `committed_obligations()` under batched group commit
//! (unacknowledged operations may legitimately die with the process).
//!
//! After the kill, [`run_kill_round`] re-opens the pool
//! (validate → adopt → recover → GC) and requires the recovered map to equal
//! the model state after **exactly `c` operations** for some single
//! `c ≥ floor` — the durable-linearizability prefix contract, checked against
//! a real dead process instead of a frozen image. It then re-runs
//! [`post_crash_gc`] and requires the second pass to reclaim zero slots (the
//! pass that ran inside `open` must have closed every leak).
//!
//! ## Corruption injection
//!
//! [`corruption_suite`] takes a valid pool file and clobbers one persisted
//! field at a time — truncation, superblock magic/version, the commit-mode
//! compat word, an arena header's slot size, a root-table entry, the
//! high-water mark — asserting that every case surfaces as the matching typed
//! [`OpenError`] variant and none of them panics.
//!
//! [`CrashPlan`]: flit_pmem::CrashPlan

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use flit::{CommitMode, FlitDb, FlitPolicy, HashedScheme, OpenError};
use flit_alloc::post_crash_gc;
use flit_datastructs::{Automatic, ConcurrentMap, HashTable, RecoverInImage};
use flit_hamt::Hamt;
use flit_pmem::{LatencyModel, SimNvram};

/// The policy every kill round runs under: flit-HT over simulated-NVRAM
/// instruction accounting (the data itself lives in the pool file).
pub type KillPolicy = FlitPolicy<HashedScheme, SimNvram>;
/// The structure under test: the pool-backed hash table.
pub type KillMap = HashTable<KillPolicy, Automatic>;
/// The copy-on-write structure the snapshot kill rounds run
/// ([`child_main_hamt`]).
pub type KillHamt = Hamt<KillPolicy>;

/// CLI marker the child-process dispatch hides behind (see [`child_main`]):
/// `<exe> --kill-child <pool> <sidecar> <ops> <commit>`.
pub const CHILD_FLAG: &str = "--kill-child";

/// The policy every kill round runs under: the hashed P-V scheme over a
/// backend with no simulated latency (real pools get their timing from the
/// page cache, not the latency model). Public so in-process tests can build
/// pools the [`verify_pool`]/[`verify_hamt_pool`] walks understand.
pub fn kill_policy() -> KillPolicy {
    FlitPolicy::new(
        HashedScheme::with_bytes(1 << 14),
        SimNvram::builder().latency(LatencyModel::none()).build(),
    )
}

/// `splitmix64` — the tiny deterministic seed mixer the rounds derive their
/// kill delays from (no RNG dependency).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Apply workload operation `j` (1-based) to a model map.
fn apply_model(model: &mut BTreeMap<u64, u64>, j: u64) {
    if j % 7 == 0 {
        model.remove(&(j - 3));
    } else {
        model.insert(j, 3 * j + 1);
    }
}

/// The model key→value state after the first `ops` workload operations.
pub fn model_state(ops: u64) -> BTreeMap<u64, u64> {
    let mut model = BTreeMap::new();
    for j in 1..=ops {
        apply_model(&mut model, j);
    }
    model
}

/// Parse a commit-mode CLI word: `immediate` or `batched-K`.
pub fn parse_commit(word: &str) -> Option<CommitMode> {
    if word == "immediate" {
        return Some(CommitMode::Immediate);
    }
    let k = word.strip_prefix("batched-")?.parse().ok()?;
    Some(CommitMode::Batched(k))
}

/// Render a commit mode as the CLI word [`parse_commit`] accepts.
pub fn commit_word(commit: CommitMode) -> String {
    match commit {
        CommitMode::Immediate => "immediate".into(),
        CommitMode::Batched(k) => format!("batched-{k}"),
    }
}

/// The child side of a kill round: create a fresh pool at `pool`, run the
/// deterministic workload, and after every operation overwrite the first
/// 8 bytes of `sidecar` with the acknowledged floor. Exits 0 after `ops`
/// operations — unless the parent's `SIGKILL` lands first, which is the
/// point. Returns an error message only for setup failures (which the parent
/// reports as harness breakage, not as a durability violation).
pub fn child_main(pool: &Path, sidecar: &Path, ops: u64, commit: CommitMode) -> Result<(), String> {
    let db = FlitDb::builder(kill_policy())
        .commit_mode(commit)
        .create_pool(pool)
        .map_err(|e| format!("child: create_pool: {e}"))?;
    // Size the node arena for the whole run: the pool directory caps an arena
    // at 40 chunks, so the chunk slot-count must scale with `ops` (the
    // workload keeps ~6/7 of its inserts live). The bucket count can stay
    // moderate — chain length only affects harness speed.
    let chunk_slots = ((ops as usize) / 16).next_power_of_two().max(1024);
    let buckets = (ops as usize / 16).clamp(64, 8192);
    let map = KillMap::with_capacity_cfg(
        &db,
        buckets,
        flit_alloc::ArenaConfig::with_slots_per_chunk(chunk_slots),
    );
    let h = db.handle();
    let side = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(sidecar)
        .map_err(|e| format!("child: sidecar: {e}"))?;
    for j in 1..=ops {
        if j % 7 == 0 {
            map.remove(&h, j - 3);
        } else {
            map.insert(&h, j, 3 * j + 1);
        }
        let floor = match commit {
            CommitMode::Immediate => j,
            CommitMode::Batched(_) => h.committed_obligations(),
        };
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            side.write_at(&floor.to_le_bytes(), 0)
                .map_err(|e| format!("child: sidecar write: {e}"))?;
        }
        #[cfg(not(unix))]
        {
            let _ = floor;
            return Err("kill rounds require a unix platform".into());
        }
    }
    Ok(())
}

/// The snapshot kill-round child ([`child_main_hamt`]): the same deterministic
/// workload over a copy-on-write [`Hamt`], with a [`Hamt::snapshot`] taken
/// right after operation `snap_at` and **held alive until the kill lands**.
/// The snapshot's retained-root table entry is persisted in the arena, so the
/// parent can replay the snapshot from the reopened pool and require it to
/// iterate to exactly the model state after `snap_at` operations — the frozen
/// contents — no matter how much the live trie mutated (and retired the
/// snapshot's unshared nodes into the pinned backlog) before the kill.
///
/// After taking the snapshot the child writes `snap_at` to sidecar offset 8
/// (offset 0 stays the acknowledged floor), which is the parent's signal that
/// the kill may land: every snapshot round verifies a retained snapshot.
pub fn child_main_hamt(
    pool: &Path,
    sidecar: &Path,
    ops: u64,
    commit: CommitMode,
    snap_at: u64,
) -> Result<(), String> {
    let db = FlitDb::builder(kill_policy())
        .commit_mode(commit)
        .create_pool(pool)
        .map_err(|e| format!("child: create_pool: {e}"))?;
    // COW churn: every update allocates a fresh path (leaf + interior copies),
    // and after the snapshot the retired old paths pile up in the pinned
    // backlog instead of recycling. The pool directory caps an arena at 40
    // chunks, so slots per chunk must scale with the op count, not the
    // live-key count.
    let chunk_slots = ((ops as usize) / 4).next_power_of_two().max(2048);
    let map = KillHamt::with_config(
        &db,
        ops as usize,
        flit_alloc::ArenaConfig::with_slots_per_chunk(chunk_slots),
    );
    let h = db.handle();
    let side = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(sidecar)
        .map_err(|e| format!("child: sidecar: {e}"))?;
    let mut snapshot = None;
    for j in 1..=ops {
        if j % 7 == 0 {
            map.remove(&h, j - 3);
        } else {
            map.insert(&h, j, 3 * j + 1);
        }
        let floor = match commit {
            CommitMode::Immediate => j,
            // `snapshot()` registers a durability obligation of its own (its
            // completion fence), so once it is live the committed count runs
            // one ahead of the workload; subtract it — a floor that lags by
            // one while the snapshot's own batch is still open is merely
            // conservative.
            CommitMode::Batched(_) => h
                .committed_obligations()
                .saturating_sub(snapshot.is_some() as u64),
        };
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            side.write_at(&floor.to_le_bytes(), 0)
                .map_err(|e| format!("child: sidecar write: {e}"))?;
            if j == snap_at {
                snapshot = Some(map.snapshot(&h));
                side.write_at(&snap_at.to_le_bytes(), 8)
                    .map_err(|e| format!("child: sidecar marker: {e}"))?;
            }
        }
        #[cfg(not(unix))]
        {
            let _ = (floor, &mut snapshot);
            return Err("kill rounds require a unix platform".into());
        }
    }
    drop(snapshot);
    Ok(())
}

/// What one kill round found (when it did not fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillRoundReport {
    /// The prefix length the recovered state matched.
    pub matched_prefix: u64,
    /// The acknowledged floor read back from the sidecar.
    pub acked_floor: u64,
    /// Slots the open-time GC pass reclaimed.
    pub reclaimed_slots: usize,
    /// Per-phase wall-clock timings of the re-open pipeline
    /// (validate → adopt → recover → GC), from [`OpenReport::timings`].
    ///
    /// [`OpenReport::timings`]: flit::OpenReport#structfield.timings
    pub timings: flit::OpenTimings,
    /// `true` when the child ran to completion before the kill landed (the
    /// round still validated a full clean-shutdown recovery).
    pub child_finished: bool,
}

/// How a kill round can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KillViolation {
    /// Re-opening the pool after the kill produced an error (rendered).
    OpenFailed(String),
    /// The recovered state matched no workload prefix at all.
    NoPrefixMatch {
        /// Recovered pairs, sorted by key.
        recovered: Vec<(u64, u64)>,
        /// The sidecar floor the match had to reach.
        floor: u64,
    },
    /// The recovered state matched a prefix *shorter* than the acknowledged
    /// floor — an acknowledged operation was lost.
    AckedOperationLost {
        /// The prefix that matched.
        matched: u64,
        /// The floor it had to reach.
        floor: u64,
    },
    /// A second GC pass reclaimed slots the open-time pass should have.
    GcNotIdempotent {
        /// Slots the second pass reclaimed (must be 0).
        second_pass: usize,
    },
    /// A snapshot round's retained snapshot failed verification: missing,
    /// unexpectedly present after a clean release, truncated, or diverged
    /// from its frozen contents (rendered).
    SnapshotCheck(String),
    /// The harness itself failed (spawn error, sidecar never appeared, …).
    Harness(String),
}

impl std::fmt::Display for KillViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OpenFailed(e) => write!(f, "re-open after kill failed: {e}"),
            Self::NoPrefixMatch { recovered, floor } => write!(
                f,
                "recovered state ({} pairs) matches no workload prefix ≥ floor {floor}",
                recovered.len()
            ),
            Self::AckedOperationLost { matched, floor } => write!(
                f,
                "recovered state is the prefix after {matched} ops, but {floor} were acknowledged"
            ),
            Self::GcNotIdempotent { second_pass } => write!(
                f,
                "second GC pass reclaimed {second_pass} slots (open-time pass missed them)"
            ),
            Self::SnapshotCheck(e) => write!(f, "retained-snapshot check failed: {e}"),
            Self::Harness(e) => write!(f, "harness failure: {e}"),
        }
    }
}

/// Everything [`run_kill_round`] needs to know.
#[derive(Debug, Clone)]
pub struct KillRound {
    /// The binary to spawn as the workload child — it must dispatch
    /// [`child_main`] when its first argument is [`CHILD_FLAG`] (the
    /// `killtest` binary does; tests can pass `std::env::current_exe()` when
    /// they implement the same dispatch).
    pub exe: PathBuf,
    /// Directory the round's pool and sidecar files live in.
    pub dir: PathBuf,
    /// Round index (names the files, so failed rounds leave their pool behind
    /// for artifact upload).
    pub round: u64,
    /// Seed for the kill-delay schedule.
    pub seed: u64,
    /// Operations the child attempts.
    pub ops: u64,
    /// Commit mode of the child's database.
    pub commit: CommitMode,
    /// Keep the round's pool and sidecar files even when the round passes
    /// (normally only failed rounds leave them behind). `flitctl inspect`
    /// consumers — the CI observability smoke job — use this to get a real
    /// post-kill pool to introspect.
    pub keep_files: bool,
    /// `Some(snap_at)` turns this into a **snapshot round**: the child runs
    /// the [`child_main_hamt`] workload, the parent waits for the snapshot
    /// marker before killing, and verification additionally requires the
    /// retained snapshot to replay to exactly the model state after `snap_at`
    /// operations. `None` runs the classic hash-table round.
    pub hamt_snap: Option<u64>,
}

impl KillRound {
    /// The round's pool file path.
    pub fn pool_path(&self) -> PathBuf {
        self.dir.join(format!(
            "kill{}-{}-round-{:03}.pool",
            if self.hamt_snap.is_some() {
                "-hamt"
            } else {
                ""
            },
            commit_word(self.commit),
            self.round
        ))
    }

    /// The round's sidecar (acknowledged-floor) file path.
    pub fn sidecar_path(&self) -> PathBuf {
        self.pool_path().with_extension("floor")
    }
}

fn read_sidecar_word(sidecar: &Path, offset: u64) -> u64 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let mut buf = [0u8; 8];
        match std::fs::File::open(sidecar) {
            Ok(f) => match f.read_exact_at(&mut buf, offset) {
                Ok(()) => u64::from_le_bytes(buf),
                Err(_) => 0,
            },
            Err(_) => 0,
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (sidecar, offset);
        0
    }
}

fn read_floor(sidecar: &Path) -> u64 {
    read_sidecar_word(sidecar, 0)
}

/// The snapshot marker [`child_main_hamt`] writes at sidecar offset 8 (0 until
/// the snapshot has been taken).
fn read_snap_marker(sidecar: &Path) -> u64 {
    read_sidecar_word(sidecar, 8)
}

/// Walk the model forward and find the unique prefix length the recovered
/// (sorted) state equals — `apply_model` never stutters, so at most one `c`
/// matches.
fn match_model_prefix(recovered: &[(u64, u64)], ops: u64) -> Option<u64> {
    let mut model = BTreeMap::new();
    for c in 0..=ops {
        if c > 0 {
            apply_model(&mut model, c);
        }
        if model.len() == recovered.len()
            && model
                .iter()
                .map(|(k, v)| (*k, *v))
                .eq(recovered.iter().copied())
        {
            return Some(c);
        }
    }
    None
}

/// Recover the workload map from a pool file and check it against the model:
/// the shared verification tail of [`run_kill_round`], also run directly by
/// the integration tests on pools they construct in-process.
pub fn verify_pool(pool: &Path, ops: u64, floor: u64) -> Result<KillRoundReport, KillViolation> {
    let (db, report) = match FlitDb::open(pool, kill_policy()) {
        Ok(ok) => ok,
        Err(e) => return Err(KillViolation::OpenFailed(e.to_string())),
    };
    let mut recovered: Vec<(u64, u64)> = Vec::new();
    for arena in db.arenas() {
        if arena
            .live_roots()
            .iter()
            .any(|(k, _)| *k == <KillMap as RecoverInImage>::ROOT_KEY)
        {
            recovered.extend(KillMap::recover_arena_image(&arena, &report.image).pairs);
        }
    }
    recovered.sort_unstable();

    let matched = match match_model_prefix(&recovered, ops) {
        Some(c) => c,
        None => return Err(KillViolation::NoPrefixMatch { recovered, floor }),
    };
    if matched < floor {
        return Err(KillViolation::AckedOperationLost { matched, floor });
    }

    // The open-time GC must have closed every leak: a second pass is a no-op.
    let second_pass = post_crash_gc(&db.arenas()).total_reclaimed();
    if second_pass != 0 {
        return Err(KillViolation::GcNotIdempotent { second_pass });
    }

    Ok(KillRoundReport {
        matched_prefix: matched,
        acked_floor: floor,
        reclaimed_slots: report.leaked_slots(),
        timings: report.timings,
        child_finished: false,
    })
}

/// [`verify_pool`] for snapshot rounds: recover the [`KillHamt`] main trie
/// (same prefix contract) **and** its retained-root table from the reopened
/// pool. When the kill landed mid-workload (`!released && floor < ops`)
/// exactly one retained snapshot must recover, un-truncated, and replay to
/// exactly the model state after `snap_at` operations; when the child finished
/// cleanly (`released` true) its snapshot drop wrote refcount 0, so the table
/// must recover empty. A kill that lands *after* the last acknowledged
/// operation but before process exit (`floor == ops`) races the release
/// itself, so either outcome is legal there — but a snapshot that is present
/// must still be exact.
pub fn verify_hamt_pool(
    pool: &Path,
    ops: u64,
    floor: u64,
    snap_at: u64,
    released: bool,
) -> Result<KillRoundReport, KillViolation> {
    let (db, report) = match FlitDb::open(pool, kill_policy()) {
        Ok(ok) => ok,
        Err(e) => return Err(KillViolation::OpenFailed(e.to_string())),
    };
    let mut recovered: Vec<(u64, u64)> = Vec::new();
    let mut snaps = Vec::new();
    for arena in db.arenas() {
        if arena
            .live_roots()
            .iter()
            .any(|(k, _)| *k == <KillHamt as RecoverInImage>::ROOT_KEY)
        {
            recovered.extend(KillHamt::recover_arena_image(&arena, &report.image).pairs);
            snaps.extend(KillHamt::recover_snapshots_in_image(&arena, &report.image));
        }
    }
    recovered.sort_unstable();

    let matched = match match_model_prefix(&recovered, ops) {
        Some(c) => c,
        None => return Err(KillViolation::NoPrefixMatch { recovered, floor }),
    };
    if matched < floor {
        return Err(KillViolation::AckedOperationLost { matched, floor });
    }

    // `floor == ops` means the kill landed in the child's exit path, where
    // the snapshot release (a plain refcount store that survives SIGKILL the
    // instant it executes) races the kill — the table may recover either way.
    let release_window = floor >= ops;
    if released {
        if !snaps.is_empty() {
            return Err(KillViolation::SnapshotCheck(format!(
                "{} retained snapshot(s) recovered after a clean release",
                snaps.len()
            )));
        }
    } else if !(snaps.is_empty() && release_window) {
        if snaps.len() != 1 {
            return Err(KillViolation::SnapshotCheck(format!(
                "expected exactly one retained snapshot, recovered {}",
                snaps.len()
            )));
        }
        let snap = &snaps[0];
        if snap.rec.truncated {
            return Err(KillViolation::SnapshotCheck(
                "retained snapshot's recovery walk truncated (part of its frozen path is \
                 missing from the pool)"
                    .into(),
            ));
        }
        let frozen: Vec<(u64, u64)> = model_state(snap_at).into_iter().collect();
        if snap.rec.sorted_pairs() != frozen {
            return Err(KillViolation::SnapshotCheck(format!(
                "retained snapshot (slot {}, version {}) recovered {} pair(s) but its frozen \
                 contents (model after {snap_at} ops) have {}",
                snap.slot,
                snap.version,
                snap.rec.pairs.len(),
                frozen.len()
            )));
        }
    }

    // The open-time GC must have closed every leak — including everything the
    // snapshot pins: a second pass is a no-op.
    let second_pass = post_crash_gc(&db.arenas()).total_reclaimed();
    if second_pass != 0 {
        return Err(KillViolation::GcNotIdempotent { second_pass });
    }

    Ok(KillRoundReport {
        matched_prefix: matched,
        acked_floor: floor,
        reclaimed_slots: report.leaked_slots(),
        timings: report.timings,
        child_finished: false,
    })
}

/// Run one seeded kill round: spawn the child workload, wait for its first
/// acknowledged operation, `SIGKILL` it after a seed-derived delay, and verify
/// the pool it left behind (see the module docs). On success the round's files
/// are deleted; on failure they are left in place for artifact upload.
pub fn run_kill_round(round: &KillRound) -> Result<KillRoundReport, KillViolation> {
    let pool = round.pool_path();
    let sidecar = round.sidecar_path();
    let _ = std::fs::remove_file(&pool);
    let _ = std::fs::remove_file(&sidecar);
    std::fs::create_dir_all(&round.dir)
        .map_err(|e| KillViolation::Harness(format!("create_dir_all: {e}")))?;

    let mut cmd = Command::new(&round.exe);
    cmd.arg(CHILD_FLAG)
        .arg(&pool)
        .arg(&sidecar)
        .arg(round.ops.to_string())
        .arg(commit_word(round.commit));
    if let Some(snap_at) = round.hamt_snap {
        cmd.arg("hamt").arg(snap_at.to_string());
    }
    let mut child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| KillViolation::Harness(format!("spawn {}: {e}", round.exe.display())))?;

    // Wait until the child has acknowledged at least one operation (so the
    // kill lands mid-traffic, not mid-setup) — and, for snapshot rounds, until
    // the snapshot marker appears (so every round verifies a retained
    // snapshot) — with a generous timeout.
    let started = Instant::now();
    let mut child_finished = false;
    loop {
        let ready = match round.hamt_snap {
            Some(_) => read_snap_marker(&sidecar) >= 1,
            None => read_floor(&sidecar) >= 1,
        };
        if ready {
            break;
        }
        if let Some(status) = child
            .try_wait()
            .map_err(|e| KillViolation::Harness(format!("try_wait: {e}")))?
        {
            if !status.success() {
                return Err(KillViolation::Harness(format!(
                    "child exited {status} before its first operation"
                )));
            }
            child_finished = true;
            break;
        }
        if started.elapsed() > Duration::from_secs(30) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(KillViolation::Harness(
                "child produced no acknowledged operation within 30s".into(),
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    if !child_finished {
        // Seed-derived delay, then SIGKILL — `Child::kill` sends SIGKILL on
        // unix, so the child gets no chance to flush, drop, or unwind. The
        // window is wide enough that kills land all over the run (and a round
        // whose child finishes first still verifies a full clean recovery).
        let delay = splitmix64(round.seed.wrapping_add(round.round)) % 120_000;
        std::thread::sleep(Duration::from_micros(delay));
        child_finished = match child.try_wait() {
            Ok(Some(_)) => true,
            _ => {
                child
                    .kill()
                    .map_err(|e| KillViolation::Harness(format!("kill: {e}")))?;
                false
            }
        };
        child
            .wait()
            .map_err(|e| KillViolation::Harness(format!("wait: {e}")))?;
    }

    let floor = read_floor(&sidecar);
    let mut report = match round.hamt_snap {
        Some(snap_at) => verify_hamt_pool(&pool, round.ops, floor, snap_at, child_finished)?,
        None => verify_pool(&pool, round.ops, floor)?,
    };
    report.child_finished = child_finished;
    if !round.keep_files {
        let _ = std::fs::remove_file(&pool);
        let _ = std::fs::remove_file(&sidecar);
    }
    Ok(report)
}

// ---- corruption injection ------------------------------------------------

/// One corruption case: a name, the clobber, and the check that the resulting
/// [`OpenError`] is the right variant.
pub struct CorruptionCase {
    /// Short kebab-case name (reported and used in failure messages).
    pub name: &'static str,
    corrupt: fn(&Path) -> std::io::Result<()>,
    expect: fn(&OpenError) -> bool,
    /// What the case expects, for failure messages.
    pub expected: &'static str,
}

#[cfg(unix)]
fn write_word_at(path: &Path, offset: u64, value: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.write_at(&value.to_le_bytes(), offset)?;
    f.sync_all()
}

#[cfg(unix)]
fn read_word_at(path: &Path, offset: u64) -> std::io::Result<u64> {
    use std::os::unix::fs::FileExt;
    let f = std::fs::File::open(path)?;
    let mut buf = [0u8; 8];
    f.read_exact_at(&mut buf, offset)?;
    Ok(u64::from_le_bytes(buf))
}

/// Locate arena 0's header base offset in the pool file (via its directory
/// entry), so corruption cases can clobber header words.
#[cfg(unix)]
fn arena0_header_off(path: &Path) -> std::io::Result<u64> {
    use flit_pmem::pool::{direntry, DIR_OFFSET};
    read_word_at(path, (DIR_OFFSET + direntry::HEADER_OFF) as u64)
}

/// The corruption cases: each takes a *valid* pool file and must surface as
/// exactly the named [`OpenError`] variant — diagnosable, typed, panic-free.
#[cfg(unix)]
pub fn corruption_cases() -> Vec<CorruptionCase> {
    use flit_pmem::pool::{direntry, superblock, DIR_OFFSET};
    vec![
        CorruptionCase {
            name: "truncate-below-data-area",
            corrupt: |p| {
                let f = std::fs::OpenOptions::new().write(true).open(p)?;
                f.set_len(8192)
            },
            expect: |e| matches!(e, OpenError::Truncated { .. }),
            expected: "OpenError::Truncated",
        },
        CorruptionCase {
            name: "flip-superblock-magic",
            corrupt: |p| write_word_at(p, superblock::MAGIC as u64, 0xDEAD_BEEF_DEAD_BEEF),
            expect: |e| matches!(e, OpenError::BadMagic { .. }),
            expected: "OpenError::BadMagic",
        },
        CorruptionCase {
            name: "bump-superblock-version",
            corrupt: |p| write_word_at(p, superblock::VERSION as u64, 99),
            expect: |e| matches!(e, OpenError::BadVersion { .. }),
            expected: "OpenError::BadVersion",
        },
        CorruptionCase {
            name: "clobber-commit-compat-word",
            corrupt: |p| write_word_at(p, superblock::COMMIT as u64, 0xFF),
            expect: |e| matches!(e, OpenError::CommitModeMismatch { pool: None, .. }),
            expected: "OpenError::CommitModeMismatch { pool: None, .. }",
        },
        CorruptionCase {
            name: "wild-bump-cursor",
            corrupt: |p| write_word_at(p, superblock::NEXT_FREE as u64, u64::MAX / 2),
            expect: |e| matches!(e, OpenError::BadSuperblock { .. }),
            expected: "OpenError::BadSuperblock",
        },
        CorruptionCase {
            name: "zero-arena-magic",
            corrupt: |p| {
                let h = arena0_header_off(p)?;
                write_word_at(p, h + flit_alloc::MAGIC_OFFSET as u64, 0)
            },
            expect: |e| matches!(e, OpenError::ArenaHeader { arena: 0, .. }),
            expected: "OpenError::ArenaHeader",
        },
        CorruptionCase {
            name: "header-directory-slot-size-disagree",
            corrupt: |p| {
                let h = arena0_header_off(p)?;
                write_word_at(p, h + flit_alloc::SLOT_SIZE_OFFSET as u64, 4096)
            },
            expect: |e| matches!(e, OpenError::SlotSizeMismatch { arena: 0, .. }),
            expected: "OpenError::SlotSizeMismatch",
        },
        CorruptionCase {
            name: "huge-high-water",
            corrupt: |p| {
                let h = arena0_header_off(p)?;
                write_word_at(p, h + flit_alloc::HIGH_WATER_OFFSET as u64, 1 << 40)
            },
            expect: |e| matches!(e, OpenError::ArenaHeader { arena: 0, .. }),
            expected: "OpenError::ArenaHeader",
        },
        CorruptionCase {
            name: "tear-root-table-entry",
            corrupt: |p| {
                // Zero the offset word of the first live root entry, leaving
                // its key — exactly the torn shape adoption must reject.
                let h = arena0_header_off(p)?;
                for i in 0..flit_alloc::ROOT_CAPACITY as u64 {
                    let key_off = h
                        + flit_alloc::ROOT_TABLE_OFFSET as u64
                        + i * flit_alloc::ROOT_ENTRY_BYTES as u64;
                    if read_word_at(p, key_off)? != 0 {
                        return write_word_at(p, key_off + 8, 0);
                    }
                }
                Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "no live root entry to tear",
                ))
            },
            expect: |e| matches!(e, OpenError::TornRootEntry { arena: 0, .. }),
            expected: "OpenError::TornRootEntry",
        },
        CorruptionCase {
            name: "free-list-link-above-high-water",
            corrupt: |p| {
                let h = arena0_header_off(p)?;
                let hw = read_word_at(p, h + flit_alloc::HIGH_WATER_OFFSET as u64)?;
                write_word_at(p, h + flit_alloc::FREE_HEAD_OFFSET as u64, hw + 10)
            },
            expect: |e| matches!(e, OpenError::ArenaHeader { arena: 0, .. }),
            expected: "OpenError::ArenaHeader",
        },
        CorruptionCase {
            name: "oversized-directory-chunk-count",
            corrupt: |p| write_word_at(p, (DIR_OFFSET + direntry::NCHUNKS) as u64, 1 << 20),
            expect: |e| matches!(e, OpenError::ArenaHeader { arena: 0, .. }),
            expected: "OpenError::ArenaHeader",
        },
    ]
}

/// Outcome of one corruption case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionOutcome {
    /// The case name.
    pub name: &'static str,
    /// `None` on pass; the failure description on fail.
    pub failure: Option<String>,
}

/// Run every corruption case: each one re-creates a small valid pool (with a
/// registered root, so root-entry cases have something to tear), applies its
/// clobber, and opens the pool expecting its typed error. Passing cases clean
/// up after themselves; failing cases leave `<dir>/corrupt-<name>.pool` behind
/// for artifact upload.
#[cfg(unix)]
pub fn corruption_suite(dir: &Path) -> Vec<CorruptionOutcome> {
    std::fs::create_dir_all(dir).ok();
    corruption_cases()
        .into_iter()
        .map(|case| {
            let pool = dir.join(format!("corrupt-{}.pool", case.name));
            let failure = run_corruption_case(&case, &pool);
            if failure.is_none() {
                let _ = std::fs::remove_file(&pool);
            }
            CorruptionOutcome {
                name: case.name,
                failure,
            }
        })
        .collect()
}

#[cfg(unix)]
fn run_corruption_case(case: &CorruptionCase, pool: &Path) -> Option<String> {
    let _ = std::fs::remove_file(pool);
    // A small valid pool with one arena, a little traffic, and a durable root.
    {
        let db = match FlitDb::builder(kill_policy()).create_pool(pool) {
            Ok(db) => db,
            Err(e) => return Some(format!("setup: create_pool: {e}")),
        };
        let map = KillMap::new(&db, 64);
        let h = db.handle();
        for j in 1..=20u64 {
            map.insert(&h, j, j);
        }
        drop(h);
        if let Err(e) = db.sync_pool() {
            return Some(format!("setup: sync_pool: {e}"));
        }
    }
    if let Err(e) = (case.corrupt)(pool) {
        return Some(format!("corruption step failed: {e}"));
    }
    match FlitDb::open(pool, kill_policy()) {
        Ok(_) => Some(format!("opened successfully; expected {}", case.expected)),
        Err(e) if (case.expect)(&e) => None,
        Err(e) => Some(format!("expected {}, got: {e}", case.expected)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_state_tracks_inserts_and_removes() {
        // Ops 1..=7: inserts 1..6 at j≠7, then op 7 removes key 4.
        let m = model_state(7);
        assert_eq!(m.len(), 5);
        assert!(!m.contains_key(&4));
        assert_eq!(m.get(&3), Some(&10));
        // Model never stutters: every op changes the state.
        let mut prev = BTreeMap::new();
        for j in 1..=100 {
            let mut next = prev.clone();
            apply_model(&mut next, j);
            assert_ne!(prev, next, "op {j} must change the state");
            prev = next;
        }
    }

    #[test]
    fn commit_words_round_trip() {
        for mode in [CommitMode::Immediate, CommitMode::Batched(8)] {
            assert_eq!(parse_commit(&commit_word(mode)), Some(mode));
        }
        assert_eq!(parse_commit("nonsense"), None);
        assert_eq!(parse_commit("batched-x"), None);
    }

    #[cfg(unix)]
    #[test]
    fn corruption_suite_is_all_typed_errors() {
        let dir = std::env::temp_dir().join(format!("flit-corrupt-{}", std::process::id()));
        let outcomes = corruption_suite(&dir);
        assert!(outcomes.len() >= 7, "the suite must stay comprehensive");
        for o in &outcomes {
            assert!(o.failure.is_none(), "case {}: {:?}", o.name, o.failure);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn verify_pool_accepts_a_cleanly_written_pool_and_flags_a_wrong_floor() {
        let dir = std::env::temp_dir().join(format!("flit-verify-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pool = dir.join("clean.pool");
        let ops = 50;
        child_main(&pool, &dir.join("clean.floor"), ops, CommitMode::Immediate).unwrap();
        let report = verify_pool(&pool, ops, ops).unwrap();
        assert_eq!(report.matched_prefix, ops);
        // The same pool cannot satisfy a floor beyond the ops it ran.
        match verify_pool(&pool, ops - 1, ops) {
            Err(KillViolation::NoPrefixMatch { .. }) => {}
            other => panic!("expected NoPrefixMatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
