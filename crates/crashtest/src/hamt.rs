//! HAMT snapshot-consistency sweep.
//!
//! [`sweep_map`](crate::engine::sweep_map) already proves the HAMT's *main*
//! trie is prefix-consistent at every crash point. This module proves a
//! stronger property: a **snapshot taken before the crash point must replay
//! to exactly its frozen contents** — not a prefix, not a nearby state, the
//! exact map the snapshot froze, even though the live trie kept mutating (and
//! retiring the snapshot's unshared nodes into the pinned backlog) between
//! the snapshot and the crash.
//!
//! The sweep replays a history, takes one snapshot after `snap_at` operations,
//! keeps it alive for the rest of the replay, and at every crash point `k`
//! recovers the retained-root table from the frozen
//! [`CrashImage`](flit_pmem::CrashImage) via
//! [`Hamt::recover_snapshots_in_image`]:
//!
//! * **at most one** retained snapshot may ever be recovered (the replay takes
//!   exactly one);
//! * a recovered snapshot's walk must not be truncated — its whole frozen path
//!   must be in the image (this is what the pre-publish fence in
//!   `Hamt::publish` buys: a root can only become visible, and hence
//!   retainable, after its path is durable);
//! * a recovered snapshot's pairs must equal **exactly** the model state after
//!   `snap_at` operations;
//! * under [`CommitMode::Immediate`], once `k` passes the snapshot's own
//!   completion boundary the snapshot **must** be recovered — its table entry
//!   (root, version, refcount) commits atomically at the snapshot's completion
//!   fence. Under a batched commit the entry may legally be lost until a later
//!   drain covers it, so only the exactness checks apply.
//!
//! Crash points inside the construction window (and any point before the
//! snapshot's completion fence) must recover an **empty** retained table: the
//! three entry words are pwb'd together and covered by the same fence, so the
//! loss model makes the entry all-or-nothing.

use flit::{CommitMode, FlitDb, Policy};
use flit_datastructs::ConcurrentMap;
use flit_hamt::{Hamt, RetainedSnapshot};
use flit_pmem::{CrashPlan, SimNvram};
use flit_workload::MapOp;

use flit::presets;

use crate::engine::{
    completed_before, frozen_image, map_state, replay_backend, select_points, SweepSettings,
};
use crate::matrix::FLIT_HT_SWEEP_BYTES;
use crate::report::{CaseMeta, HistorySpec, SweepReport, Violation};
use crate::PolicyKind;

/// The structure key the `crashtest` CLI uses for this sweep (it is not a
/// [`StructureKind`](crate::StructureKind) — the snapshot sweep has its own
/// entry point), so [`CaseMeta::repro`] strings stay replayable.
pub const SNAPSHOT_STRUCTURE: &str = "hamt-snapshot";

/// Where the sweep takes its snapshot: one third of the way through the
/// history (at least one operation in, so the frozen contents are non-trivial).
/// A convention rather than a parameter so repro strings don't need to carry
/// it.
pub fn default_snap_at(history_len: usize) -> usize {
    (history_len / 3).clamp(1, history_len.max(1))
}

/// One replay with a snapshot taken after `snap_at` operations and held alive
/// until the end.
struct SnapReplay {
    base: u64,
    /// Absolute event index right after the snapshot call returned (completion
    /// fence included); `u64::MAX` when the replay skipped the history.
    snap_boundary: u64,
    /// Per-operation completion boundaries (absolute event indices).
    boundaries: Vec<u64>,
    total: u64,
    recovered: Option<(Vec<RetainedSnapshot>, &'static str)>,
    flight: Vec<flit::FlightEvent>,
}

fn replay_snapshot<P, F>(
    factory: &F,
    history: &[MapOp],
    snap_at: usize,
    crash_at: Option<u64>,
    run_history: bool,
    settings: &SweepSettings,
) -> SnapReplay
where
    P: Policy<Backend = SimNvram>,
    F: Fn(SimNvram) -> P,
{
    let plan = match crash_at {
        Some(k) => CrashPlan::armed_at(k),
        None => CrashPlan::counting(),
    };
    let backend = replay_backend(plan.clone(), settings.elision);
    let db = FlitDb::builder(factory(backend.clone()))
        .commit_mode(settings.commit)
        .build();
    let map: Hamt<P> = Hamt::with_capacity(&db, 64);
    let h = db.handle();
    h.arm_flight_recorder();
    let base = plan.events_seen();
    let mut snap_boundary = u64::MAX;
    let mut boundaries = Vec::with_capacity(history.len());
    let mut snapshot = None;
    let mut flight = Vec::new();
    if run_history {
        if snap_at == 0 {
            snapshot = Some(map.snapshot(&h));
            snap_boundary = plan.events_seen();
        }
        for (i, op) in history.iter().enumerate() {
            match *op {
                MapOp::Insert(k, v) => {
                    map.insert(&h, k, v);
                }
                MapOp::Remove(k) => {
                    map.remove(&h, k);
                }
                MapOp::Get(k) => {
                    map.get(&h, k);
                }
            }
            if settings.broken_acks {
                h.ack_obligations_without_fence();
            }
            if i + 1 == snap_at {
                snapshot = Some(map.snapshot(&h));
                snap_boundary = plan.events_seen();
            }
            boundaries.push(plan.events_seen());
            if let Some(k) = crash_at {
                if flight.is_empty() && plan.events_seen() >= k {
                    flight = h.flight_events();
                }
            }
        }
    }
    if crash_at.is_some() && flight.is_empty() {
        flight = h.flight_events();
    }
    let total = plan.events_seen();
    // The snapshot must still be alive when the end-control image is taken:
    // dropping it writes refcount 0, which at `k == total` (nothing lost) would
    // make the tracker's final image legitimately snapshot-free.
    let recovered = frozen_image(&plan, &backend, crash_at).map(|(image, kind)| {
        (
            Hamt::<P>::recover_snapshots_in_image(map.arena(), &image),
            kind,
        )
    });
    drop(snapshot);
    SnapReplay {
        base,
        snap_boundary,
        boundaries,
        total,
        recovered,
        flight,
    }
}

/// Sweep crash points across `history`, holding a snapshot taken after
/// `snap_at` operations, and verify the retained-root table recovered from
/// every frozen image replays the snapshot to exactly its frozen contents.
pub fn sweep_hamt_snapshot<P, F>(
    case: CaseMeta,
    factory: F,
    history: &[MapOp],
    snap_at: usize,
    settings: &SweepSettings,
) -> SweepReport
where
    P: Policy<Backend = SimNvram>,
    F: Fn(SimNvram) -> P,
{
    let frozen = map_state(history, snap_at);
    let counting = replay_snapshot::<P, F>(&factory, history, snap_at, None, true, settings);
    let points = match settings.crash_at {
        Some(k) => vec![k.min(counting.total)],
        None => select_points(0, counting.total, settings.budget),
    };
    let mut violations = Vec::new();
    for &k in &points {
        let in_flight = k >= counting.base;
        let run = replay_snapshot::<P, F>(&factory, history, snap_at, Some(k), in_flight, settings);
        assert_eq!(
            run.base, counting.base,
            "event-stream determinism broke: construction span drifted between replays"
        );
        if in_flight {
            assert_eq!(
                run.total, counting.total,
                "event-stream determinism broke: total span drifted between replays"
            );
            assert_eq!(
                run.snap_boundary, counting.snap_boundary,
                "event-stream determinism broke: snapshot boundary drifted between replays"
            );
        }
        let (retained, kind) = run.recovered.expect("crash point was armed");
        let completed = completed_before(&run.boundaries, k);
        let mut fail = |detail: String| {
            violations.push(Violation {
                crash_event: k,
                triggered_on: kind,
                completed_ops: completed,
                detail,
                repro: case.repro(k),
                flight: run.flight.clone(),
            });
        };
        if retained.len() > 1 {
            fail(format!(
                "recovered {} retained snapshots but the replay took exactly one",
                retained.len()
            ));
        }
        match retained.first() {
            Some(snap) => {
                if snap.rec.truncated {
                    fail(
                        "retained snapshot's recovery walk truncated: its root was durably \
                         retained but part of its frozen path was not in the image \
                         (persist-before-publish violated for a pinned root)"
                            .to_string(),
                    );
                } else if snap.rec.sorted_pairs() != frozen {
                    fail(format!(
                        "retained snapshot (slot {}, version {}) recovered {:?} but its frozen \
                         contents (model after {} ops) are {:?}",
                        snap.slot,
                        snap.version,
                        snap.rec.sorted_pairs(),
                        snap_at,
                        frozen
                    ));
                }
            }
            None => {
                // The entry commits atomically at the snapshot's completion
                // fence, so under an immediate commit it must be in any image
                // frozen at or past that boundary.
                let durable = in_flight && k >= counting.snap_boundary;
                if durable && matches!(settings.commit, CommitMode::Immediate) {
                    fail(format!(
                        "no retained snapshot recovered, but the snapshot completed at event {} \
                         (crash at {}): its table entry must have been durable",
                        counting.snap_boundary, k
                    ));
                }
            }
        }
    }
    SweepReport {
        case,
        events_construction: counting.base,
        events_total: counting.total,
        points_tested: points.len(),
        violations,
    }
}

/// [`sweep_hamt_snapshot`] for a named policy and history spec, with the
/// snapshot taken at [`default_snap_at`] — the form the `crashtest` CLI and the
/// integration tests drive.
pub fn run_hamt_snapshot_case(
    policy: PolicyKind,
    history: HistorySpec,
    settings: &SweepSettings,
) -> SweepReport {
    let case = CaseMeta {
        structure: SNAPSHOT_STRUCTURE,
        method: "automatic",
        policy: policy.name(),
        history,
        elision: settings.elision,
        commit: settings.commit,
        broken_acks: settings.broken_acks,
    };
    let ops = history.map_history();
    let snap_at = default_snap_at(ops.len());
    match policy {
        PolicyKind::Plain => sweep_hamt_snapshot(case, presets::plain, &ops, snap_at, settings),
        PolicyKind::FlitHt => sweep_hamt_snapshot(
            case,
            |b| presets::flit_ht_sized(b, FLIT_HT_SWEEP_BYTES),
            &ops,
            snap_at,
            settings,
        ),
        PolicyKind::FlitAdjacent => {
            sweep_hamt_snapshot(case, presets::flit_adjacent, &ops, snap_at, settings)
        }
        PolicyKind::FlitCacheLine => {
            sweep_hamt_snapshot(case, presets::flit_cacheline, &ops, snap_at, settings)
        }
        PolicyKind::LinkPersist => {
            sweep_hamt_snapshot(case, presets::link_and_persist, &ops, snap_at, settings)
        }
    }
}
