//! The [`ConcurrentQueue`] interface shared by the durable queues, plus a sequential
//! reference model used by correctness tests.
//!
//! This mirrors [`flit_datastructs::ConcurrentMap`]: values are single machine words
//! (`u64`), construction takes the persistence policy, and the policy is reachable
//! from the structure so harnesses can read its statistics.

use flit::{FlitDb, FlitHandle, Policy};

/// A concurrent FIFO queue of `u64` values, generic over the persistence [`Policy`].
///
/// Construction takes the owning [`FlitDb`]; **every operation takes the calling
/// thread's [`FlitHandle`]** (`queue.enqueue(&h, v)`), mirroring
/// [`flit_datastructs::ConcurrentMap`].
///
/// `enqueue` always succeeds (the queue is unbounded); `dequeue` returns `None` when
/// the queue is observed empty. Both are linearizable, and durably linearizable when
/// instantiated with a persistent policy and a durability method that persists the
/// result-defining stores.
pub trait ConcurrentQueue<P: Policy>: Send + Sync {
    /// Short name used in benchmark output (`"msqueue"`, ...).
    const NAME: &'static str;

    /// Build an empty queue in `db`.
    fn in_db(db: &FlitDb<P>) -> Self;

    /// Append `value` at the tail.
    fn enqueue(&self, h: &FlitHandle<'_, P>, value: u64);

    /// Remove and return the value at the head, or `None` if the queue is empty.
    fn dequeue(&self, h: &FlitHandle<'_, P>) -> Option<u64>;

    /// Number of values currently queued. Only meaningful in quiescent states;
    /// intended for tests and for validating pre-fill (raw loads: no handle
    /// required).
    fn len(&self) -> usize;

    /// `true` when the queue holds no values (quiescent states only).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The database this queue lives in.
    fn db(&self) -> &FlitDb<P>;

    /// Access the persistence policy (e.g. to read its statistics).
    fn policy(&self) -> &P {
        self.db().policy()
    }
}

/// A trivially correct sequential queue used as the model in property-based tests: a
/// `VecDeque` behind a mutex.
#[derive(Debug, Default)]
pub struct SequentialQueue {
    inner: std::sync::Mutex<std::collections::VecDeque<u64>>,
}

impl SequentialQueue {
    /// Create an empty model queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model enqueue.
    pub fn enqueue(&self, value: u64) {
        self.inner.lock().unwrap().push_back(value);
    }

    /// Model dequeue.
    pub fn dequeue(&self) -> Option<u64> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Model size.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Model emptiness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queued values in FIFO order (used to compare against a concurrent
    /// queue's quiescent contents).
    pub fn snapshot(&self) -> Vec<u64> {
        self.inner.lock().unwrap().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_model_is_fifo() {
        let q = SequentialQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn snapshot_preserves_order() {
        let q = SequentialQueue::new();
        for v in [5u64, 7, 9] {
            q.enqueue(v);
        }
        assert_eq!(q.snapshot(), vec![5, 7, 9]);
        q.dequeue();
        assert_eq!(q.snapshot(), vec![7, 9]);
    }
}
